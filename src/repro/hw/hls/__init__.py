"""HLS lowering: hardware IR, code generation and synthesis reports."""

from .codegen import HLSCodeGenerator, generate_hls_project
from .ir import HardwareIR, HWLayerNode
from .report import SynthesisReport

__all__ = [
    "HardwareIR",
    "HWLayerNode",
    "HLSCodeGenerator",
    "generate_hls_project",
    "SynthesisReport",
]
