"""Hardware intermediate representation (IR).

Phase 4 of the transformation framework lowers the optimised multi-exit MCD
BayesNN into a dataflow graph of hardware layer nodes, from which the HLS
code generator emits the accelerator sources.  The IR is a
:class:`networkx.DiGraph` whose nodes are :class:`HWLayerNode` records; the
graph distinguishes the deterministic region (instantiated once) from the
Bayesian region (replicated per MC engine under spatial mapping).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from ..accelerator import AcceleratorModel

__all__ = ["HWLayerNode", "HardwareIR"]

#: mapping from substrate layer types to hardware kernel names
_HW_KERNELS = {
    "Conv2D": "conv2d",
    "Dense": "dense",
    "BatchNorm": "batchnorm",
    "ReLU": "relu",
    "Softmax": "softmax",
    "MaxPool2D": "maxpool2d",
    "AvgPool2D": "avgpool2d",
    "GlobalAvgPool2D": "global_avgpool",
    "Flatten": "flatten",
    "MCDropout": "mc_dropout",
    "Dropout": "mc_dropout",
    "ResidualBlock": "residual_block",
}


@dataclass
class HWLayerNode:
    """One hardware kernel instance in the accelerator dataflow graph."""

    name: str
    kernel: str
    source_type: str
    input_shape: tuple[int, ...]
    output_shape: tuple[int, ...]
    region: str  # "deterministic" or "bayesian"
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.region not in ("deterministic", "bayesian"):
            raise ValueError("region must be 'deterministic' or 'bayesian'")

    @property
    def is_bayesian(self) -> bool:
        return self.region == "bayesian"

    @property
    def input_size(self) -> int:
        return _prod(self.input_shape)

    @property
    def output_size(self) -> int:
        return _prod(self.output_shape)


class HardwareIR:
    """Dataflow-graph view of an accelerator design."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.graph = nx.DiGraph()
        self._order: list[str] = []

    # ------------------------------------------------------------------ #
    @classmethod
    def from_accelerator(cls, accel: AcceleratorModel) -> "HardwareIR":
        """Lower an :class:`AcceleratorModel` into a hardware IR."""
        ir = cls(name=accel.name)
        previous: str | None = None
        for desc in accel.deterministic_descs:
            previous = ir._append(desc, "deterministic", previous)
        boundary = previous
        for desc in accel.bayesian_descs:
            previous = ir._append(desc, "bayesian", previous)
        ir.graph.graph["mapping"] = accel.mapping.describe()
        ir.graph.graph["device"] = accel.device.name
        ir.graph.graph["bitwidth"] = accel.config.weight_bitwidth
        ir.graph.graph["reuse_factor"] = accel.config.reuse_factor
        ir.graph.graph["cache_boundary"] = boundary
        return ir

    def _append(self, desc: dict, region: str, previous: str | None) -> str:
        source_type = desc["type"]
        kernel = _HW_KERNELS.get(source_type, "passthrough")
        name = desc.get("name", source_type.lower())
        # guard against duplicate node names (flatten layers etc.)
        unique = name
        suffix = 1
        while unique in self.graph:
            suffix += 1
            unique = f"{name}_{suffix}"
        node = HWLayerNode(
            name=unique,
            kernel=kernel,
            source_type=source_type,
            input_shape=tuple(desc.get("input_shape") or ()),
            output_shape=tuple(desc.get("output_shape") or ()),
            region=region,
            params={
                k: v
                for k, v in desc.items()
                if k not in ("type", "name", "input_shape", "output_shape", "sublayers")
            },
        )
        self.graph.add_node(unique, node=node)
        self._order.append(unique)
        if previous is not None:
            self.graph.add_edge(previous, unique)
        return unique

    # ------------------------------------------------------------------ #
    def nodes(self) -> list[HWLayerNode]:
        """All layer nodes in execution order."""
        return [self.graph.nodes[n]["node"] for n in self._order]

    def deterministic_nodes(self) -> list[HWLayerNode]:
        return [n for n in self.nodes() if not n.is_bayesian]

    def bayesian_nodes(self) -> list[HWLayerNode]:
        return [n for n in self.nodes() if n.is_bayesian]

    def mcd_nodes(self) -> list[HWLayerNode]:
        return [n for n in self.nodes() if n.kernel == "mc_dropout"]

    @property
    def cache_boundary(self) -> str | None:
        """Name of the last deterministic node (where the tensor is cached)."""
        return self.graph.graph.get("cache_boundary")

    def validate(self) -> None:
        """Check structural invariants of the IR."""
        if not self._order:
            raise ValueError("IR contains no layers")
        if not nx.is_directed_acyclic_graph(self.graph):
            raise ValueError("hardware IR must be acyclic")
        seen_bayesian = False
        for node in self.nodes():
            if node.is_bayesian:
                seen_bayesian = True
            elif seen_bayesian:
                raise ValueError(
                    "deterministic node appears after the Bayesian region: "
                    f"{node.name}"
                )

    def describe(self) -> dict:
        return {
            "name": self.name,
            "num_layers": len(self._order),
            "num_bayesian_layers": len(self.bayesian_nodes()),
            "num_mcd_layers": len(self.mcd_nodes()),
            "mapping": self.graph.graph.get("mapping"),
            "device": self.graph.graph.get("device"),
            "bitwidth": self.graph.graph.get("bitwidth"),
            "reuse_factor": self.graph.graph.get("reuse_factor"),
        }


def _prod(shape) -> int:
    n = 1
    for s in shape or ():
        n *= int(s)
    return n
