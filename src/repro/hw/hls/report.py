"""Synthesis-report generation.

The original flow reads latency and resource figures from Vivado-HLS
C-synthesis reports and power from the Xilinx Power Estimator.  This module
produces the equivalent structured report from the analytical models so that
benchmarks and examples can print a familiar-looking summary and the
experiment harness can archive machine-readable results.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..accelerator import AcceleratorModel

__all__ = ["SynthesisReport"]


@dataclass
class SynthesisReport:
    """A Vivado-HLS-style report assembled from the analytical models."""

    design_name: str
    device: str
    clock_mhz: float
    bitwidth: int
    reuse_factor: int
    mapping: dict
    num_mcd_layers: int
    latency_cycles: int
    latency_ms: float
    resources: dict[str, float]
    utilization: dict[str, float]
    power_w: dict[str, float]
    energy_per_image_j: float
    extra: dict = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    @classmethod
    def from_accelerator(cls, accel: AcceleratorModel) -> "SynthesisReport":
        summary = accel.summary()
        return cls(
            design_name=summary["name"],
            device=summary["device"],
            clock_mhz=summary["clock_mhz"],
            bitwidth=summary["bitwidth"],
            reuse_factor=summary["reuse_factor"],
            mapping=summary["mapping"],
            num_mcd_layers=summary["num_mcd_layers"],
            latency_cycles=accel.total_cycles(),
            latency_ms=summary["latency_ms"],
            resources=summary["resources"],
            utilization=summary["utilization"],
            power_w=summary["power_w"],
            energy_per_image_j=summary["energy_per_image_j"],
        )

    # ------------------------------------------------------------------ #
    def as_dict(self) -> dict:
        return {
            "design_name": self.design_name,
            "device": self.device,
            "clock_mhz": self.clock_mhz,
            "bitwidth": self.bitwidth,
            "reuse_factor": self.reuse_factor,
            "mapping": self.mapping,
            "num_mcd_layers": self.num_mcd_layers,
            "latency_cycles": self.latency_cycles,
            "latency_ms": self.latency_ms,
            "resources": self.resources,
            "utilization": self.utilization,
            "power_w": self.power_w,
            "energy_per_image_j": self.energy_per_image_j,
            **({"extra": self.extra} if self.extra else {}),
        }

    def to_text(self) -> str:
        """Human-readable report in the spirit of a csynth.rpt file."""
        lines = [
            "=" * 68,
            f"  C-Synthesis report (analytical model) — {self.design_name}",
            "=" * 68,
            f"  Target device   : {self.device}",
            f"  Target clock    : {self.clock_mhz:.1f} MHz",
            f"  Data bitwidth   : {self.bitwidth} bits",
            f"  Reuse factor    : {self.reuse_factor}",
            f"  MC mapping      : {self.mapping['strategy']} "
            f"({self.mapping['num_engines']} engine(s), "
            f"{self.mapping['passes_per_engine']} pass(es)/engine)",
            f"  MCD layers      : {self.num_mcd_layers}",
            "-" * 68,
            "  Latency",
            f"    cycles        : {self.latency_cycles}",
            f"    time          : {self.latency_ms:.4f} ms",
            "-" * 68,
            "  Resource usage                 used        utilization",
        ]
        for key in ("bram_18k", "dsp", "ff", "lut"):
            lines.append(
                f"    {key.upper():<12}              {self.resources[key]:>12.0f}"
                f"        {self.utilization[key]:>8.1%}"
            )
        lines.extend(
            [
                "-" * 68,
                "  Power (W)",
            ]
        )
        for key in ("clocking", "logic_signal", "bram", "io", "dsp", "static", "total"):
            lines.append(f"    {key:<14}: {self.power_w[key]:.3f}")
        lines.extend(
            [
                "-" * 68,
                f"  Energy per image : {self.energy_per_image_j * 1000:.3f} mJ",
                "=" * 68,
            ]
        )
        return "\n".join(lines)
