"""HLS project generation (Phase 4).

:class:`HLSCodeGenerator` turns a hardware IR into a set of HLS C++ source
files plus a Vivado-HLS project script.  The generated code is not compiled
in this environment (no Vivado available); the tests instead check that the
emitted sources are structurally correct — every layer gets a kernel, the
MCD kernel matches Algorithm 1, the MC-engine dispatch matches the chosen
mapping, and the fixed-point typedefs match the co-explored bitwidth.
"""

from __future__ import annotations

from pathlib import Path

from ...quantization.fixed_point import FixedPointFormat
from ..accelerator import AcceleratorModel
from . import templates
from .ir import HardwareIR, HWLayerNode

__all__ = ["HLSCodeGenerator", "generate_hls_project"]


class HLSCodeGenerator:
    """Generate the HLS sources for one accelerator design."""

    def __init__(
        self, accel: AcceleratorModel, dropout_rate: float | None = None
    ) -> None:
        self.accel = accel
        self.ir = HardwareIR.from_accelerator(accel)
        self.ir.validate()
        if dropout_rate is None:
            dropout_rate = self._infer_dropout_rate()
        if not 0.0 <= dropout_rate < 1.0:
            raise ValueError("dropout_rate must be in [0, 1)")
        self.dropout_rate = dropout_rate

    def _infer_dropout_rate(self) -> float:
        for node in self.ir.mcd_nodes():
            rate = node.params.get("rate")
            if rate is not None:
                return float(rate)
        return 0.25

    # ------------------------------------------------------------------ #
    # individual files
    # ------------------------------------------------------------------ #
    def parameters_header(self) -> str:
        bits = self.accel.config.weight_bitwidth
        fmt = FixedPointFormat(total_bits=bits, integer_bits=max(1, min(bits // 2, 8)))
        return templates.HEADER_TEMPLATE.format(
            device=self.accel.device.name,
            clock_mhz=self.accel.config.clock_mhz,
            total_bits=fmt.total_bits,
            integer_bits=fmt.integer_bits,
            accum_bits=min(48, fmt.total_bits * 2 + 4),
            accum_integer_bits=min(24, fmt.integer_bits * 2 + 4),
            guard="BAYESNN_PARAMETERS_H",
            reuse_factor=self.accel.config.reuse_factor,
            num_mc_samples=self.accel.mapping.num_samples,
            num_engines=self.accel.mapping.num_engines,
            dropout_rate=self.dropout_rate,
            keep_rate=1.0 - self.dropout_rate,
        )

    def mcd_header(self) -> str:
        """One Algorithm-1 kernel per MC-dropout layer."""
        chunks = ["#pragma once", '#include "parameters.h"', ""]
        for node in self.ir.mcd_nodes():
            chunks.append(
                templates.MCD_LAYER_TEMPLATE.format(
                    name=_sanitize(node.name),
                    keep_rate=1.0 - float(node.params.get("rate", self.dropout_rate)),
                )
            )
        if not self.ir.mcd_nodes():
            chunks.append("// (design has no MC-dropout layers)")
        return "\n".join(chunks)

    def layers_header(self) -> str:
        """Kernels for every non-MCD layer of the design."""
        chunks = ["#pragma once", '#include "parameters.h"', ""]
        for node in self.ir.nodes():
            code = self._emit_layer(node)
            if code:
                chunks.append(code)
        return "\n".join(chunks)

    def _emit_layer(self, node: HWLayerNode) -> str:
        name = _sanitize(node.name)
        reuse = self.accel.config.reuse_factor
        if node.kernel == "dense":
            in_size = node.input_size
            out_size = node.output_size
            return templates.DENSE_LAYER_TEMPLATE.format(
                name=name,
                in_size=in_size,
                out_size=out_size,
                reuse_factor=reuse,
                partition_factor=max(1, in_size // reuse),
            )
        if node.kernel == "conv2d":
            in_c, in_h, in_w = node.input_shape
            out_c, out_h, out_w = node.output_shape
            return templates.CONV_LAYER_TEMPLATE.format(
                name=name,
                in_channels=in_c,
                in_height=in_h,
                in_width=in_w,
                out_channels=out_c,
                out_height=out_h,
                out_width=out_w,
                kernel=node.params.get("kernel_size", 3),
                stride=node.params.get("stride", 1),
                padding=node.params.get("padding", 0),
                reuse_factor=reuse,
            )
        if node.kernel in ("maxpool2d", "avgpool2d"):
            in_c, in_h, in_w = node.input_shape
            out_c, out_h, out_w = node.output_shape
            kind = "max" if node.kernel == "maxpool2d" else "avg"
            pool = node.params.get("pool_size", 2)
            select = "best" if kind == "max" else f"(data_t)(sum / (accum_t)({pool} * {pool}))"
            return templates.POOLING_LAYER_TEMPLATE.format(
                kind=kind,
                name=name,
                channels=in_c,
                in_height=in_h,
                in_width=in_w,
                out_height=out_h,
                out_width=out_w,
                pool_size=pool,
                select_expr=select,
            )
        if node.kernel == "relu":
            return templates.RELU_LAYER_TEMPLATE.format(name=name)
        if node.kernel == "mc_dropout":
            return ""  # emitted in mcd_header
        # batchnorm, softmax, flatten, residual blocks etc. are folded or
        # handled inside composite kernels; emit a comment as documentation.
        return f"// kernel '{node.kernel}' for layer {name} is folded into the adjacent kernels\n"

    def top_source(self) -> str:
        mapping = self.accel.mapping
        if mapping.strategy == "spatial":
            dispatch = templates.MC_ENGINE_SPATIAL_TEMPLATE.format(
                num_engines=mapping.num_engines
            )
        else:
            dispatch = templates.MC_ENGINE_TEMPORAL_TEMPLATE.format(
                passes_per_engine=mapping.passes_per_engine
            )

        nodes = self.ir.nodes()
        input_size = nodes[0].input_size if nodes else 1
        output_size = nodes[-1].output_size if nodes else 1
        det_nodes = self.ir.deterministic_nodes()
        cache_size = det_nodes[-1].output_size if det_nodes else input_size
        lfsr_seeds = ", ".join(
            str(0xACE1 + 977 * i) for i in range(mapping.num_engines)
        )
        return templates.TOP_FUNCTION_TEMPLATE.format(
            model_name=self.accel.name,
            num_deterministic=len(det_nodes),
            num_bayesian=len(self.ir.bayesian_nodes()),
            num_mcd=len(self.ir.mcd_nodes()),
            mapping_strategy=mapping.strategy,
            num_engines=mapping.num_engines,
            passes_per_engine=mapping.passes_per_engine,
            top_name=_sanitize(self.accel.name),
            input_size=input_size,
            output_size=output_size,
            num_outputs=mapping.num_samples,
            cache_size=cache_size,
            lfsr_seeds=lfsr_seeds,
            mc_dispatch=dispatch,
        )

    def build_script(self) -> str:
        return templates.BUILD_TCL_TEMPLATE.format(
            project_name=f"{_sanitize(self.accel.name)}_prj",
            top_name=_sanitize(self.accel.name),
            part=_part_for_device(self.accel.device.name),
            clock_period_ns=1000.0 / self.accel.config.clock_mhz,
        )

    # ------------------------------------------------------------------ #
    def generate(self) -> dict[str, str]:
        """All project files as a ``{filename: content}`` mapping."""
        return {
            "parameters.h": self.parameters_header(),
            "mcd_layers.h": self.mcd_header(),
            "layers.h": self.layers_header(),
            "top.cpp": self.top_source(),
            "build_prj.tcl": self.build_script(),
        }

    def write(self, output_dir: str | Path) -> list[Path]:
        """Write the project files to ``output_dir`` and return their paths."""
        out = Path(output_dir)
        out.mkdir(parents=True, exist_ok=True)
        written = []
        for filename, content in self.generate().items():
            path = out / filename
            path.write_text(content)
            written.append(path)
        return written


def generate_hls_project(
    accel: AcceleratorModel,
    output_dir: str | Path | None = None,
    dropout_rate: float | None = None,
) -> dict[str, str]:
    """Convenience wrapper: generate (and optionally write) an HLS project."""
    generator = HLSCodeGenerator(accel, dropout_rate=dropout_rate)
    files = generator.generate()
    if output_dir is not None:
        generator.write(output_dir)
    return files


def _sanitize(name: str) -> str:
    return "".join(c if c.isalnum() or c == "_" else "_" for c in name)


def _part_for_device(device_name: str) -> str:
    parts = {
        "XCKU115": "xcku115-flvb2104-2-e",
        "XC7Z020": "xc7z020clg400-1",
        "ZCU102 (XCZU9EG)": "xczu9eg-ffvb1156-2-e",
    }
    return parts.get(device_name, "xcku115-flvb2104-2-e")
