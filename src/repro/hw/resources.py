"""FPGA resource usage model.

The resource estimator follows the cost structure of hls4ml-style dataflow
accelerators:

* every layer is unrolled into ``n_mult / reuse_factor`` parallel multipliers;
  multipliers wider than the DSP threshold map to DSP slices, narrow ones to
  LUT fabric;
* weights are held on-chip; each partition of the weight array occupies BRAM
  (or LUT-RAM when tiny);
* pipeline registers and control contribute FF/LUT proportional to the
  datapath width and unroll factor;
* the Monte-Carlo-dropout layer (Algorithm 1 of the paper) needs an LFSR
  random-number generator, a comparator and a multiplier per parallel lane —
  logic only, **no BRAM**, which is why the paper's Figure 5 shows flat BRAM
  as the number of MCD layers grows.

The estimator works from layer *descriptions* (dicts produced by
``Layer.describe()`` / ``Network.describe()``), so a hardware estimate never
requires allocating the actual NumPy weights.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .devices import FPGADevice

__all__ = ["ResourceUsage", "LayerResourceModel", "estimate_layer_resources"]

#: multiplications at most this wide are implemented in LUTs instead of DSPs
DSP_BITWIDTH_THRESHOLD = 9
#: usable bits per 18 Kbit BRAM unit
BRAM_BITS = 18 * 1024


@dataclass
class ResourceUsage:
    """BRAM / DSP / FF / LUT consumption of a design or design fragment."""

    bram_18k: float = 0.0
    dsp: float = 0.0
    ff: float = 0.0
    lut: float = 0.0

    # ------------------------------------------------------------------ #
    def __add__(self, other: "ResourceUsage") -> "ResourceUsage":
        return ResourceUsage(
            bram_18k=self.bram_18k + other.bram_18k,
            dsp=self.dsp + other.dsp,
            ff=self.ff + other.ff,
            lut=self.lut + other.lut,
        )

    def __mul__(self, factor: float) -> "ResourceUsage":
        if factor < 0:
            raise ValueError("resource scaling factor must be non-negative")
        return ResourceUsage(
            bram_18k=self.bram_18k * factor,
            dsp=self.dsp * factor,
            ff=self.ff * factor,
            lut=self.lut * factor,
        )

    __rmul__ = __mul__

    def as_dict(self) -> dict[str, float]:
        return {
            "bram_18k": self.bram_18k,
            "dsp": self.dsp,
            "ff": self.ff,
            "lut": self.lut,
        }

    def utilization(self, device: FPGADevice) -> dict[str, float]:
        """Fractional utilization of each resource class on ``device``."""
        capacity = device.resource_capacity()
        return {
            key: (value / capacity[key] if capacity[key] else 0.0)
            for key, value in self.as_dict().items()
        }

    def fits(self, device: FPGADevice, margin: float = 1.0) -> bool:
        """Whether the design fits within ``margin`` of the device capacity."""
        if margin <= 0:
            raise ValueError("margin must be positive")
        return all(u <= margin for u in self.utilization(device).values())

    def max_utilization(self, device: FPGADevice) -> float:
        return max(self.utilization(device).values())


@dataclass
class LayerResourceModel:
    """Knobs of the per-layer resource estimator.

    ``lut_per_narrow_mult`` etc. are calibration constants chosen to land in
    the range reported by hls4ml / the paper for small CNN accelerators; the
    experiments only rely on relative trends, not on the absolute values.
    """

    lut_per_narrow_mult: float = 45.0
    lut_per_adder_bit: float = 1.0
    ff_per_pipeline_bit: float = 2.0
    lut_control_per_layer: float = 300.0
    ff_control_per_layer: float = 250.0
    lut_per_rng: float = 120.0
    ff_per_rng: float = 96.0
    lut_per_comparator_bit: float = 1.5


def _weights_bram(num_weights: int, bitwidth: int, partitions: int) -> float:
    """BRAM blocks needed to hold a weight array split into ``partitions``.

    Each partition must live in its own BRAM so the parallel multipliers can
    read concurrently, but HLS packs small partitions together and maps tiny
    arrays to LUT-RAM; the model approximates that by charging the larger of
    the pure-capacity count and a bandwidth term that grows slowly with the
    partition count.
    """
    if num_weights == 0:
        return 0.0
    total_bits = num_weights * bitwidth
    # arrays below the LUT-RAM threshold never use BRAM
    if total_bits <= 2048:
        return 0.0
    capacity_brams = math.ceil(total_bits / BRAM_BITS)
    bandwidth_brams = math.ceil(max(1, partitions) / 16)
    return float(max(capacity_brams, bandwidth_brams))


def estimate_layer_resources(
    layer_desc: dict,
    bitwidth: int = 16,
    reuse_factor: int = 1,
    model: LayerResourceModel | None = None,
) -> ResourceUsage:
    """Estimate the resources of one layer from its description.

    Parameters
    ----------
    layer_desc:
        Dict produced by ``Layer.describe()``; must contain ``type``,
        ``input_shape`` and ``output_shape`` (and layer-specific fields such
        as ``filters`` / ``kernel_size`` / ``units``).
    bitwidth:
        Datapath width for weights and activations.
    reuse_factor:
        hls4ml-style time-multiplexing factor; larger values use fewer
        multipliers at the cost of more cycles.
    """
    if bitwidth <= 0:
        raise ValueError("bitwidth must be positive")
    if reuse_factor <= 0:
        raise ValueError("reuse_factor must be positive")
    model = model or LayerResourceModel()
    ltype = layer_desc["type"]
    in_shape = layer_desc.get("input_shape") or []
    out_shape = layer_desc.get("output_shape") or []
    out_elements = _prod(out_shape)

    if ltype == "ResidualBlock":
        total = ResourceUsage()
        for sub in layer_desc.get("sublayers", []):
            total = total + estimate_layer_resources(sub, bitwidth, reuse_factor, model)
        # the elementwise residual adder
        total = total + ResourceUsage(
            lut=model.lut_per_adder_bit
            * bitwidth
            * max(1, out_shape[0] if out_shape else 1)
        )
        return total

    if ltype == "Conv2D":
        in_c = in_shape[0]
        kernel = layer_desc["kernel_size"]
        filters = layer_desc["filters"]
        mults = in_c * kernel * kernel * filters
        weights = mults + (filters if layer_desc.get("use_bias", True) else 0)
        return _mac_layer_resources(mults, weights, bitwidth, reuse_factor, model)

    if ltype == "Dense":
        in_f = in_shape[0]
        units = layer_desc["units"]
        mults = in_f * units
        weights = mults + (units if layer_desc.get("use_bias", True) else 0)
        return _mac_layer_resources(mults, weights, bitwidth, reuse_factor, model)

    if ltype == "BatchNorm":
        channels = in_shape[0] if in_shape else 1
        mults = channels
        weights = 2 * channels
        return _mac_layer_resources(mults, weights, bitwidth, reuse_factor, model)

    if ltype in ("MCDropout", "Dropout"):
        # Algorithm 1: one RNG, one comparator and one multiplier per parallel
        # lane; lanes = channels / reuse_factor.  No BRAM at all.
        channels = in_shape[0] if in_shape else 1
        lanes = max(1, math.ceil(channels / reuse_factor))
        lut = lanes * (
            model.lut_per_rng
            + model.lut_per_comparator_bit * bitwidth
            + model.lut_per_narrow_mult * (bitwidth / 8.0)
        )
        ff = lanes * (model.ff_per_rng + model.ff_per_pipeline_bit * bitwidth)
        dsp = 0.0
        if bitwidth > DSP_BITWIDTH_THRESHOLD:
            dsp = lanes  # the keep-rate scaling multiplier
            lut -= lanes * model.lut_per_narrow_mult * (bitwidth / 8.0)
        return ResourceUsage(
            bram_18k=0.0,
            dsp=dsp,
            ff=ff + model.ff_control_per_layer,
            lut=lut + model.lut_control_per_layer,
        )

    if ltype in ("MaxPool2D", "AvgPool2D", "GlobalAvgPool2D"):
        channels = in_shape[0] if in_shape else 1
        lanes = max(1, math.ceil(channels / reuse_factor))
        lut = lanes * model.lut_per_comparator_bit * bitwidth * 4
        ff = lanes * model.ff_per_pipeline_bit * bitwidth
        return ResourceUsage(
            lut=lut + model.lut_control_per_layer,
            ff=ff + model.ff_control_per_layer,
        )

    if ltype in ("ReLU", "Softmax", "Flatten"):
        width = bitwidth * max(1, min(out_elements, 64))
        return ResourceUsage(
            lut=model.lut_per_adder_bit * width + model.lut_control_per_layer / 2,
            ff=model.ff_per_pipeline_bit * width,
        )

    # unknown layers: small fixed control overhead
    return ResourceUsage(lut=model.lut_control_per_layer, ff=model.ff_control_per_layer)


def _mac_layer_resources(
    mults: int,
    weights: int,
    bitwidth: int,
    reuse_factor: int,
    model: LayerResourceModel,
) -> ResourceUsage:
    """Resources of a multiply-accumulate layer (conv / dense / batchnorm)."""
    parallel_mults = max(1, math.ceil(mults / reuse_factor))
    if bitwidth > DSP_BITWIDTH_THRESHOLD:
        dsp = float(parallel_mults)
        lut_mult = 0.0
    else:
        dsp = 0.0
        lut_mult = parallel_mults * model.lut_per_narrow_mult * (bitwidth / 8.0) ** 2

    accumulation_lut = parallel_mults * model.lut_per_adder_bit * bitwidth
    pipeline_ff = parallel_mults * model.ff_per_pipeline_bit * bitwidth * 2
    bram = _weights_bram(
        weights, bitwidth, partitions=parallel_mults if reuse_factor > 1 else 1
    )

    return ResourceUsage(
        bram_18k=bram,
        dsp=dsp,
        ff=pipeline_ff + model.ff_control_per_layer,
        lut=lut_mult + accumulation_lut + model.lut_control_per_layer,
    )


def _prod(shape) -> int:
    n = 1
    for s in shape or []:
        n *= int(s)
    return n
