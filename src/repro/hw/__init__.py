"""FPGA hardware substrate (DESIGN.md §3.6).

Analytical resource / latency / power models, spatial-temporal MC-engine
mapping, algorithm–hardware co-exploration, and HLS code generation — the
stand-in for Vivado-HLS synthesis and on-board measurement.
"""

from . import hls
from .accelerator import (
    AcceleratorConfig,
    AcceleratorModel,
    partition_multi_exit,
    partition_network,
)
from .baselines import (
    CPU_I9_9900K,
    GPU_RTX_2080,
    PUBLISHED_BASELINES,
    PlatformResult,
    ProcessorModel,
    cpu_gpu_projection,
)
from .devices import DEVICES, XCKU115, FPGADevice, get_device
from .dse import (
    CHANNEL_MULTIPLIERS,
    CoExplorer,
    DesignPoint,
    EvaluatedDesignPoint,
    pareto_front,
)
from .latency import LatencyModel, LayerLatency, estimate_layer_cycles
from .mapping import (
    MappingPlan,
    mixed_mapping,
    optimize_mapping,
    spatial_mapping,
    temporal_mapping,
)
from .power import PowerBreakdown, PowerModel
from .resources import LayerResourceModel, ResourceUsage, estimate_layer_resources
from .rng import GaloisLFSR, lfsr_uniform_stream

__all__ = [
    "hls",
    "AcceleratorConfig",
    "AcceleratorModel",
    "partition_network",
    "partition_multi_exit",
    "PlatformResult",
    "ProcessorModel",
    "PUBLISHED_BASELINES",
    "CPU_I9_9900K",
    "GPU_RTX_2080",
    "cpu_gpu_projection",
    "FPGADevice",
    "DEVICES",
    "get_device",
    "XCKU115",
    "CoExplorer",
    "DesignPoint",
    "EvaluatedDesignPoint",
    "CHANNEL_MULTIPLIERS",
    "pareto_front",
    "LatencyModel",
    "LayerLatency",
    "estimate_layer_cycles",
    "MappingPlan",
    "spatial_mapping",
    "temporal_mapping",
    "mixed_mapping",
    "optimize_mapping",
    "PowerBreakdown",
    "PowerModel",
    "LayerResourceModel",
    "ResourceUsage",
    "estimate_layer_resources",
    "GaloisLFSR",
    "lfsr_uniform_stream",
]
