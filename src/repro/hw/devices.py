"""FPGA device catalog.

Resource capacities are taken from the public data sheets of the devices the
paper and its baselines target.  The catalog is what the design-space
exploration checks candidate accelerators against ("all the designs are
optimized ... to ensure they can be fitted into the target platform").
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FPGADevice", "DEVICES", "get_device", "XCKU115"]


@dataclass(frozen=True)
class FPGADevice:
    """Capacity and technology description of an FPGA part.

    Attributes
    ----------
    bram_18k:
        Number of 18 Kbit block-RAM units (Xilinx convention; Intel M20K
        blocks are converted to an equivalent 18K count).
    dsp:
        Number of DSP slices / DSP blocks.
    ff, lut:
        Flip-flop and look-up-table capacity.
    technology_nm:
        Process node in nanometres.
    max_clock_mhz:
        Typical achievable clock for HLS dataflow designs on this part.
    static_power_w:
        Device static power at nominal operating conditions.
    """

    name: str
    vendor: str
    family: str
    bram_18k: int
    dsp: int
    ff: int
    lut: int
    technology_nm: int
    max_clock_mhz: float
    static_power_w: float

    def resource_capacity(self) -> dict[str, int]:
        """Capacity as a dict keyed like :class:`repro.hw.resources.ResourceUsage`."""
        return {
            "bram_18k": self.bram_18k,
            "dsp": self.dsp,
            "ff": self.ff,
            "lut": self.lut,
        }


XCKU115 = FPGADevice(
    name="XCKU115",
    vendor="Xilinx",
    family="Kintex UltraScale",
    bram_18k=4320,
    dsp=5520,
    ff=1326720,
    lut=663360,
    technology_nm=20,
    max_clock_mhz=181.0,
    static_power_w=1.299,
)

DEVICES: dict[str, FPGADevice] = {
    "XCKU115": XCKU115,
    "XC7Z020": FPGADevice(
        name="XC7Z020",
        vendor="Xilinx",
        family="Zynq-7000",
        bram_18k=280,
        dsp=220,
        ff=106400,
        lut=53200,
        technology_nm=28,
        max_clock_mhz=200.0,
        static_power_w=0.25,
    ),
    "CYCLONE_V": FPGADevice(
        name="Cyclone V",
        vendor="Intel",
        family="Cyclone V SoC",
        bram_18k=794,
        dsp=112,
        ff=128300,
        lut=110000,
        technology_nm=28,
        max_clock_mhz=213.0,
        static_power_w=0.5,
    ),
    "ARRIA10_GX1150": FPGADevice(
        name="Arria 10 GX1150",
        vendor="Intel",
        family="Arria 10",
        bram_18k=3036,
        dsp=1518,
        ff=1708800,
        lut=854400,
        technology_nm=20,
        max_clock_mhz=225.0,
        static_power_w=2.5,
    ),
    "ZCU102": FPGADevice(
        name="ZCU102 (XCZU9EG)",
        vendor="Xilinx",
        family="Zynq UltraScale+",
        bram_18k=1824,
        dsp=2520,
        ff=548160,
        lut=274080,
        technology_nm=16,
        max_clock_mhz=300.0,
        static_power_w=0.6,
    ),
}


def get_device(name: str) -> FPGADevice:
    """Look up a device by (case-insensitive) name."""
    key = name.upper().replace(" ", "_").replace("-", "_")
    aliases = {
        "KINTEX_XCKU115": "XCKU115",
        "XCKU115": "XCKU115",
        "ZYNQ_XC7Z020": "XC7Z020",
        "XC7Z020": "XC7Z020",
        "CYCLONE_V": "CYCLONE_V",
        "ALTERA_CYCLONE_V": "CYCLONE_V",
        "ARRIA_10_GX1150": "ARRIA10_GX1150",
        "ARRIA10_GX1150": "ARRIA10_GX1150",
        "ZCU102": "ZCU102",
    }
    resolved = aliases.get(key, key)
    try:
        return DEVICES[resolved]
    except KeyError as exc:
        raise KeyError(
            f"unknown device {name!r}; available: {sorted(DEVICES)}"
        ) from exc
