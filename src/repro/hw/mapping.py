"""Spatial and temporal mapping of Monte-Carlo engines (Phase 2, Figure 4).

The Bayesian component of a multi-exit MCD BayesNN (everything downstream of
the last non-Bayesian layer) must be evaluated once per Monte-Carlo sample.
The accelerator caches the last deterministic tensor and then either:

* **spatial mapping** — instantiates one *MC engine* per sample so all
  samples are produced in parallel (low latency, resources grow with the
  number of samples); or
* **temporal mapping** — shares a single MC engine and streams the cloned
  tensors through it one after another (constant resources, latency grows
  linearly with the number of samples); or
* a **mixed mapping** with ``E`` engines, each handling
  ``ceil(S / E)`` samples.

:func:`optimize_mapping` picks the largest engine count that still fits the
device, which is the "optimizes the mix of spatial and temporal mappings"
step described in Section IV-C.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .devices import FPGADevice
from .resources import ResourceUsage

__all__ = [
    "MappingPlan",
    "spatial_mapping",
    "temporal_mapping",
    "mixed_mapping",
    "optimize_mapping",
]


@dataclass(frozen=True)
class MappingPlan:
    """How MC samples are assigned to hardware MC engines."""

    num_samples: int
    num_engines: int

    def __post_init__(self) -> None:
        if self.num_samples <= 0:
            raise ValueError("num_samples must be positive")
        if not 1 <= self.num_engines <= self.num_samples:
            raise ValueError(
                "num_engines must be between 1 and num_samples "
                f"(got {self.num_engines} for {self.num_samples} samples)"
            )

    # ------------------------------------------------------------------ #
    @property
    def strategy(self) -> str:
        """``"spatial"``, ``"temporal"`` or ``"mixed"``."""
        if self.num_engines == self.num_samples:
            return "spatial"
        if self.num_engines == 1:
            return "temporal"
        return "mixed"

    @property
    def passes_per_engine(self) -> int:
        """Sequential passes each engine performs."""
        return math.ceil(self.num_samples / self.num_engines)

    # ------------------------------------------------------------------ #
    def engine_resources(self, single_engine: ResourceUsage) -> ResourceUsage:
        """Total resources of the replicated Bayesian component."""
        return single_engine * self.num_engines

    def bayesian_latency_cycles(self, single_pass_cycles: int) -> int:
        """Cycles to produce all samples (engines run in parallel)."""
        if single_pass_cycles < 0:
            raise ValueError("single_pass_cycles must be non-negative")
        return self.passes_per_engine * single_pass_cycles

    def describe(self) -> dict:
        return {
            "strategy": self.strategy,
            "num_samples": self.num_samples,
            "num_engines": self.num_engines,
            "passes_per_engine": self.passes_per_engine,
        }


def spatial_mapping(num_samples: int) -> MappingPlan:
    """One MC engine per sample (Figure 4a)."""
    return MappingPlan(num_samples=num_samples, num_engines=num_samples)


def temporal_mapping(num_samples: int) -> MappingPlan:
    """A single shared MC engine (Figure 4b)."""
    return MappingPlan(num_samples=num_samples, num_engines=1)


def mixed_mapping(num_samples: int, num_engines: int) -> MappingPlan:
    """``num_engines`` engines each serving several samples."""
    return MappingPlan(num_samples=num_samples, num_engines=num_engines)


def optimize_mapping(
    num_samples: int,
    engine_resources: ResourceUsage,
    base_resources: ResourceUsage,
    device: FPGADevice,
    utilization_cap: float = 0.8,
) -> MappingPlan:
    """Choose the most parallel mapping that fits the device.

    Parameters
    ----------
    num_samples:
        Number of MC samples the accelerator must produce.
    engine_resources:
        Resources of a single MC engine (one copy of the Bayesian component).
    base_resources:
        Resources of the non-Bayesian part of the accelerator (always
        instantiated exactly once).
    device:
        Target FPGA.
    utilization_cap:
        Maximum allowed utilization of any resource class; HLS designs that
        exceed ~80% typically fail placement or timing.
    """
    if not 0 < utilization_cap <= 1.0:
        raise ValueError("utilization_cap must be in (0, 1]")
    best: MappingPlan | None = None
    for engines in range(1, num_samples + 1):
        plan = MappingPlan(num_samples=num_samples, num_engines=engines)
        total = base_resources + plan.engine_resources(engine_resources)
        if total.max_utilization(device) <= utilization_cap:
            best = plan
        else:
            break
    if best is None:
        raise ValueError(
            "even a fully temporal mapping does not fit the device under the "
            f"{utilization_cap:.0%} utilization cap"
        )
    return best
