"""Reference platforms for the Table II comparison.

The paper compares its accelerator against published numbers: CPU and GPU
implementations of MCD-based BayesNNs (quoted from TPDS'22) and four prior
FPGA accelerators (VIBNN/ASPLOS'18, BYNQNET/DATE'20, DAC'21, TPDS'22).  This
module records those published figures verbatim — they are comparison
*inputs*, not something we re-measure — and additionally provides a simple
analytical CPU/GPU model so new workloads can be projected onto those
platforms for the what-if studies in the examples.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "PlatformResult",
    "PUBLISHED_BASELINES",
    "cpu_gpu_projection",
    "ProcessorModel",
    "CPU_I9_9900K",
    "GPU_RTX_2080",
]


@dataclass(frozen=True)
class PlatformResult:
    """One row of the Table II comparison."""

    name: str
    platform: str
    frequency_mhz: float
    technology_nm: int
    power_w: float
    latency_ms: float

    @property
    def energy_per_image_j(self) -> float:
        """Energy per image in joules (power x latency)."""
        return self.power_w * self.latency_ms / 1000.0

    def as_row(self) -> dict:
        return {
            "name": self.name,
            "platform": self.platform,
            "frequency_mhz": self.frequency_mhz,
            "technology_nm": self.technology_nm,
            "power_w": self.power_w,
            "latency_ms": self.latency_ms,
            "energy_per_image_j": self.energy_per_image_j,
        }


#: Published comparison points quoted by the paper (Table II), keyed by the
#: label used in the table.  Our own design is *not* in this dict — it is
#: produced by the accelerator model at benchmark time.
PUBLISHED_BASELINES: dict[str, PlatformResult] = {
    "CPU": PlatformResult(
        name="CPU",
        platform="Intel Core i9-9900K",
        frequency_mhz=3600.0,
        technology_nm=14,
        power_w=205.0,
        latency_ms=1.26,
    ),
    "GPU": PlatformResult(
        name="GPU",
        platform="NVIDIA RTX 2080",
        frequency_mhz=1545.0,
        technology_nm=12,
        power_w=236.0,
        latency_ms=0.57,
    ),
    "ASPLOS18": PlatformResult(
        name="ASPLOS'18 (VIBNN)",
        platform="Altera Cyclone V",
        frequency_mhz=213.0,
        technology_nm=28,
        power_w=6.11,
        latency_ms=5.5,
    ),
    "DATE20": PlatformResult(
        name="DATE'20 (BYNQNET)",
        platform="Zynq XC7Z020",
        frequency_mhz=200.0,
        technology_nm=28,
        power_w=2.76,
        latency_ms=4.5,
    ),
    "DAC21": PlatformResult(
        name="DAC'21",
        platform="Arria 10 GX1150",
        frequency_mhz=225.0,
        technology_nm=20,
        power_w=45.0,
        latency_ms=0.42,
    ),
    "TPDS22": PlatformResult(
        name="TPDS'22",
        platform="Arria 10 GX1150",
        frequency_mhz=220.0,
        technology_nm=20,
        power_w=43.6,
        latency_ms=0.32,
    ),
}


@dataclass(frozen=True)
class ProcessorModel:
    """Roofline-style model of a CPU/GPU running MCD-based BayesNN inference.

    ``effective_gflops`` is the sustained throughput on small-batch CNN
    inference (well below peak because MC sampling runs at batch size 1), and
    ``average_power_w`` the package power during inference.
    """

    name: str
    platform: str
    frequency_mhz: float
    technology_nm: int
    effective_gflops: float
    average_power_w: float
    overhead_ms: float = 0.05

    def project(self, total_flops: float) -> PlatformResult:
        """Project latency/energy for a workload of ``total_flops`` FLOPs."""
        if total_flops < 0:
            raise ValueError("total_flops must be non-negative")
        latency_ms = (
            total_flops / (self.effective_gflops * 1e9) * 1000.0 + self.overhead_ms
        )
        return PlatformResult(
            name=self.name,
            platform=self.platform,
            frequency_mhz=self.frequency_mhz,
            technology_nm=self.technology_nm,
            power_w=self.average_power_w,
            latency_ms=latency_ms,
        )


CPU_I9_9900K = ProcessorModel(
    name="CPU (projected)",
    platform="Intel Core i9-9900K",
    frequency_mhz=3600.0,
    technology_nm=14,
    effective_gflops=45.0,
    average_power_w=205.0,
)

GPU_RTX_2080 = ProcessorModel(
    name="GPU (projected)",
    platform="NVIDIA RTX 2080",
    frequency_mhz=1545.0,
    technology_nm=12,
    effective_gflops=350.0,
    average_power_w=236.0,
)


def cpu_gpu_projection(total_flops: float) -> dict[str, PlatformResult]:
    """Project a workload onto the CPU and GPU analytical models."""
    return {
        "CPU": CPU_I9_9900K.project(total_flops),
        "GPU": GPU_RTX_2080.project(total_flops),
    }
