"""Power model with the Table III breakdown categories.

The model follows the structure of the Xilinx Power Estimator: total power is
static (leakage, roughly constant per device) plus dynamic power made of
clocking, logic & signal, BRAM, DSP and IO contributions.  Each dynamic
component scales with the amount of the corresponding resource that is used,
the clock frequency, and an activity (toggle-rate) factor; IO additionally
scales with the number of Monte-Carlo engines streaming in parallel, which is
why the paper's spatial mapping shows a high IO share (21% in Table III).

The coefficients are calibrated so that the paper's Bayes-LeNet design on the
XCKU115 lands near the reported 4.6 W with a similar percentage split; only
the split and the relative ordering across designs matter for the
reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass

from .devices import FPGADevice
from .resources import ResourceUsage

__all__ = ["PowerBreakdown", "PowerModel"]


@dataclass
class PowerBreakdown:
    """Static + dynamic power split (Watts), mirroring Table III."""

    clocking: float
    logic_signal: float
    bram: float
    io: float
    dsp: float
    static: float

    @property
    def dynamic(self) -> float:
        return self.clocking + self.logic_signal + self.bram + self.io + self.dsp

    @property
    def total(self) -> float:
        return self.dynamic + self.static

    def percentages(self) -> dict[str, float]:
        """Each component as a fraction of the total (sums to 1)."""
        total = self.total
        if total <= 0:
            raise ValueError("total power must be positive")
        return {
            "clocking": self.clocking / total,
            "logic_signal": self.logic_signal / total,
            "bram": self.bram / total,
            "io": self.io / total,
            "dsp": self.dsp / total,
            "static": self.static / total,
        }

    def as_dict(self) -> dict[str, float]:
        return {
            "clocking": self.clocking,
            "logic_signal": self.logic_signal,
            "bram": self.bram,
            "io": self.io,
            "dsp": self.dsp,
            "static": self.static,
            "dynamic": self.dynamic,
            "total": self.total,
        }

    def energy_per_image_j(self, latency_ms: float) -> float:
        """Energy per inference in joules given the per-image latency."""
        if latency_ms < 0:
            raise ValueError("latency must be non-negative")
        return self.total * latency_ms / 1000.0


@dataclass
class PowerModel:
    """Resource-driven dynamic power model.

    The per-unit coefficients are in Watts per resource unit at 100 MHz with
    an activity factor of 1; actual power scales linearly with frequency and
    activity.
    """

    watts_per_klut_100mhz: float = 0.016
    watts_per_kff_100mhz: float = 0.008
    watts_per_bram_100mhz: float = 0.004
    watts_per_dsp_100mhz: float = 0.0011
    clock_tree_fraction: float = 0.16
    io_watts_per_stream_100mhz: float = 0.11
    activity_factor: float = 0.6

    def estimate(
        self,
        resources: ResourceUsage,
        device: FPGADevice,
        clock_mhz: float,
        num_parallel_streams: int = 1,
    ) -> PowerBreakdown:
        """Estimate the power breakdown of a design.

        Parameters
        ----------
        resources:
            Total resource usage of the accelerator.
        device:
            Target device (supplies the static power).
        clock_mhz:
            Operating clock frequency.
        num_parallel_streams:
            Number of concurrently-streaming engines (1 for a purely temporal
            mapping; equals the number of MC engines under spatial mapping).
            Drives the IO component.
        """
        if clock_mhz <= 0:
            raise ValueError("clock frequency must be positive")
        if num_parallel_streams <= 0:
            raise ValueError("num_parallel_streams must be positive")

        freq_scale = clock_mhz / 100.0
        act = self.activity_factor

        logic = (
            resources.lut / 1000.0 * self.watts_per_klut_100mhz
            + resources.ff / 1000.0 * self.watts_per_kff_100mhz
        ) * freq_scale * act
        bram = resources.bram_18k * self.watts_per_bram_100mhz * freq_scale * act
        dsp = resources.dsp * self.watts_per_dsp_100mhz * freq_scale * act
        # IO: one base stream (input + output) plus one stream per extra engine
        io = self.io_watts_per_stream_100mhz * (1 + num_parallel_streams) * freq_scale
        clocking = self.clock_tree_fraction * (logic + bram + dsp + io)

        return PowerBreakdown(
            clocking=clocking,
            logic_signal=logic,
            bram=bram,
            io=io,
            dsp=dsp,
            static=device.static_power_w,
        )
