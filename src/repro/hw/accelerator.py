"""Analytical accelerator model tying resources, latency and power together.

An :class:`AcceleratorModel` is the hardware view of a (multi-exit) BayesNN:
the network is partitioned into a **deterministic part** (everything up to
the last non-Bayesian layer, instantiated exactly once) and a **Bayesian
part** (the Monte-Carlo engine that must run once per MC sample).  The
chosen :class:`~repro.hw.mapping.MappingPlan` decides how many copies of the
MC engine exist and how many sequential passes each performs.

This model is what the benchmarks query to regenerate Figure 5 and
Tables II/III; it plays the role of the Vivado-HLS C-synthesis and XPE power
reports in the original paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from ..nn.model import Network

if TYPE_CHECKING:  # pragma: no cover - import for type checkers only
    from ..core.bayesnn import MultiExitBayesNet
from .devices import FPGADevice, get_device
from .latency import LatencyModel, estimate_layer_cycles
from .mapping import MappingPlan, temporal_mapping
from .power import PowerBreakdown, PowerModel
from .resources import LayerResourceModel, ResourceUsage, estimate_layer_resources

__all__ = [
    "AcceleratorConfig",
    "AcceleratorModel",
    "partition_network",
    "partition_multi_exit",
]

_STOCHASTIC_TYPES = ("MCDropout",)


def _is_stochastic_desc(desc: dict) -> bool:
    return desc.get("type") in _STOCHASTIC_TYPES


def partition_network(network: Network) -> tuple[list[dict], list[dict]]:
    """Split a single-exit network into (deterministic, Bayesian) layer descs.

    The Bayesian part starts at the first MC-dropout layer; if the network
    has no MCD layer the Bayesian part is empty and the whole design is
    deterministic (a non-Bayesian accelerator).
    """
    descs = [layer.describe() for layer in network.layers]
    split = len(descs)
    for i, desc in enumerate(descs):
        if _is_stochastic_desc(desc):
            split = i
            break
    return descs[:split], descs[split:]


def partition_multi_exit(model: "MultiExitBayesNet") -> tuple[list[dict], list[dict]]:
    """Split a multi-exit BayesNN into (deterministic, Bayesian) layer descs.

    The deterministic part is the shared backbone plus the non-Bayesian
    prefix of every exit head; the Bayesian part (one MC engine) is the
    concatenation of every exit head's stochastic suffix.
    """
    deterministic = [layer.describe() for layer in model.backbone.layers]
    bayesian: list[dict] = []
    for head in model.exits:
        head_det, head_bayes = partition_network(head)
        deterministic.extend(head_det)
        bayesian.extend(head_bayes)
    return deterministic, bayesian


@dataclass
class AcceleratorConfig:
    """Design parameters of a generated accelerator."""

    device: str | FPGADevice = "XCKU115"
    clock_mhz: float | None = None
    weight_bitwidth: int = 16
    reuse_factor: int = 1
    num_mc_samples: int = 3
    mapping: MappingPlan | None = None
    dataflow: bool = True
    resource_model: LayerResourceModel = field(default_factory=LayerResourceModel)
    power_model: PowerModel = field(default_factory=PowerModel)

    def __post_init__(self) -> None:
        if isinstance(self.device, str):
            self.device = get_device(self.device)
        if self.clock_mhz is None:
            self.clock_mhz = self.device.max_clock_mhz
        if self.clock_mhz <= 0:
            raise ValueError("clock_mhz must be positive")
        if self.weight_bitwidth <= 0:
            raise ValueError("weight_bitwidth must be positive")
        if self.reuse_factor <= 0:
            raise ValueError("reuse_factor must be positive")
        if self.num_mc_samples <= 0:
            raise ValueError("num_mc_samples must be positive")
        if self.mapping is None:
            self.mapping = temporal_mapping(self.num_mc_samples)
        if self.mapping.num_samples != self.num_mc_samples:
            raise ValueError(
                "mapping plan covers a different number of samples than the "
                "accelerator configuration"
            )


class AcceleratorModel:
    """Hardware performance/resource/power model of one accelerator design."""

    def __init__(
        self,
        model: "MultiExitBayesNet | Network",
        config: AcceleratorConfig | None = None,
        name: str | None = None,
    ) -> None:
        self.config = config or AcceleratorConfig()
        self.source_model = model
        if isinstance(model, Network):
            if not model.built:
                raise ValueError("network must be built before hardware modelling")
            self.deterministic_descs, self.bayesian_descs = partition_network(model)
            self.name = name or f"{model.name}_accel"
        elif hasattr(model, "backbone") and hasattr(model, "exits"):
            # a MultiExitBayesNet (checked structurally to avoid a circular import)
            self.deterministic_descs, self.bayesian_descs = partition_multi_exit(model)
            self.name = name or f"{model.name}_accel"
        else:
            raise TypeError(
                "AcceleratorModel expects a MultiExitBayesNet or Network, "
                f"got {type(model).__name__}"
            )
        self._latency_model = LatencyModel(
            clock_mhz=self.config.clock_mhz, dataflow=self.config.dataflow
        )

    # ------------------------------------------------------------------ #
    # structural properties
    # ------------------------------------------------------------------ #
    @property
    def device(self) -> FPGADevice:
        return self.config.device

    @property
    def mapping(self) -> MappingPlan:
        return self.config.mapping

    @property
    def num_mcd_layers(self) -> int:
        """Number of MC-dropout layers in the design."""
        return sum(1 for d in self.bayesian_descs if _is_stochastic_desc(d))

    @property
    def is_bayesian(self) -> bool:
        return self.num_mcd_layers > 0

    def all_layer_descs(self) -> list[dict]:
        return list(self.deterministic_descs) + list(self.bayesian_descs)

    # ------------------------------------------------------------------ #
    # resources
    # ------------------------------------------------------------------ #
    def _descs_resources(self, descs: Sequence[dict]) -> ResourceUsage:
        total = ResourceUsage()
        for desc in descs:
            total = total + estimate_layer_resources(
                desc,
                bitwidth=self.config.weight_bitwidth,
                reuse_factor=self.config.reuse_factor,
                model=self.config.resource_model,
            )
        return total

    def deterministic_resources(self) -> ResourceUsage:
        """Resources of the non-Bayesian part (instantiated once)."""
        return self._descs_resources(self.deterministic_descs)

    def mc_engine_resources(self) -> ResourceUsage:
        """Resources of one MC engine (one copy of the Bayesian part)."""
        return self._descs_resources(self.bayesian_descs)

    def resources(self) -> ResourceUsage:
        """Total resources with the configured MC-engine replication."""
        total = self.deterministic_resources()
        if self.bayesian_descs:
            total = total + self.mapping.engine_resources(self.mc_engine_resources())
        return total

    def utilization(self) -> dict[str, float]:
        return self.resources().utilization(self.device)

    def fits(self, margin: float = 1.0) -> bool:
        return self.resources().fits(self.device, margin=margin)

    # ------------------------------------------------------------------ #
    # latency
    # ------------------------------------------------------------------ #
    def _descs_cycles(self, descs: Sequence[dict]) -> int:
        latencies = [estimate_layer_cycles(d, self.config.reuse_factor) for d in descs]
        return self._latency_model.chain_cycles(latencies)

    def deterministic_cycles(self) -> int:
        return self._descs_cycles(self.deterministic_descs)

    def mc_engine_cycles(self) -> int:
        """Cycles of a single pass through one MC engine."""
        return self._descs_cycles(self.bayesian_descs)

    def total_cycles(self, num_samples: int | None = None) -> int:
        """End-to-end cycles to produce all MC samples for one input."""
        mapping = self.mapping
        if num_samples is not None and num_samples != mapping.num_samples:
            mapping = MappingPlan(
                num_samples=num_samples,
                num_engines=min(mapping.num_engines, num_samples),
            )
        cycles = self.deterministic_cycles()
        if self.bayesian_descs:
            cycles += mapping.bayesian_latency_cycles(self.mc_engine_cycles())
        return cycles

    def latency_ms(self, num_samples: int | None = None) -> float:
        return self._latency_model.cycles_to_ms(self.total_cycles(num_samples))

    def throughput_images_per_s(self) -> float:
        latency = self.latency_ms()
        if latency <= 0:
            raise ZeroDivisionError("latency must be positive")
        return 1000.0 / latency

    # ------------------------------------------------------------------ #
    # power and energy
    # ------------------------------------------------------------------ #
    def power(self) -> PowerBreakdown:
        return self.config.power_model.estimate(
            self.resources(),
            self.device,
            clock_mhz=self.config.clock_mhz,
            num_parallel_streams=self.mapping.num_engines,
        )

    def energy_per_image_j(self) -> float:
        return self.power().energy_per_image_j(self.latency_ms())

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def summary(self) -> dict:
        """Dictionary summary used by the synthesis-report generator."""
        power = self.power()
        return {
            "name": self.name,
            "device": self.device.name,
            "clock_mhz": self.config.clock_mhz,
            "bitwidth": self.config.weight_bitwidth,
            "reuse_factor": self.config.reuse_factor,
            "mapping": self.mapping.describe(),
            "num_mcd_layers": self.num_mcd_layers,
            "resources": self.resources().as_dict(),
            "utilization": self.utilization(),
            "latency_ms": self.latency_ms(),
            "power_w": power.as_dict(),
            "energy_per_image_j": power.energy_per_image_j(self.latency_ms()),
        }
