"""Hardware-style uniform random number generation.

The HLS implementation of the MCD layer (Algorithm 1) needs a uniform random
number per element to compare against the keep rate.  On FPGA this is
implemented with a linear-feedback shift register (LFSR); this module models
a 32-bit Galois LFSR bit-exactly so the generated HLS code and the Python
simulation of the accelerator share the same random stream semantics.
"""

from __future__ import annotations

import numpy as np

__all__ = ["GaloisLFSR", "lfsr_uniform_stream"]

#: Taps of the maximal-length 32-bit Galois LFSR (x^32 + x^22 + x^2 + x^1 + 1).
DEFAULT_TAPS = 0x80200003


class GaloisLFSR:
    """32-bit Galois linear-feedback shift register.

    The register must be seeded with a non-zero value; the all-zeros state is
    a fixed point of the recurrence and would produce a constant stream.
    """

    PERIOD = 2**32 - 1

    def __init__(self, seed: int = 0xACE1, taps: int = DEFAULT_TAPS) -> None:
        seed = int(seed) & 0xFFFFFFFF
        if seed == 0:
            raise ValueError("LFSR seed must be non-zero")
        self.state = seed
        self.taps = int(taps) & 0xFFFFFFFF

    def next_word(self) -> int:
        """Advance one step and return the new 32-bit state."""
        lsb = self.state & 1
        self.state >>= 1
        if lsb:
            self.state ^= self.taps
        return self.state

    def next_uniform(self) -> float:
        """Uniform float in ``[0, 1)`` derived from the next state."""
        return self.next_word() / 2**32

    def uniform_array(self, size: int) -> np.ndarray:
        """Array of ``size`` uniform samples (sequential LFSR draws)."""
        if size < 0:
            raise ValueError("size must be non-negative")
        out = np.empty(size, dtype=np.float64)
        for i in range(size):
            out[i] = self.next_uniform()
        return out

    def bernoulli_keep_mask(self, size: int, keep_rate: float) -> np.ndarray:
        """Binary keep-mask as produced by the HLS MCD layer's comparator."""
        if not 0.0 <= keep_rate <= 1.0:
            raise ValueError("keep_rate must be in [0, 1]")
        return (self.uniform_array(size) <= keep_rate).astype(np.float64)


def lfsr_uniform_stream(seed: int, count: int) -> np.ndarray:
    """Convenience wrapper returning ``count`` uniforms from a fresh LFSR."""
    return GaloisLFSR(seed).uniform_array(count)
