"""Latency model for HLS dataflow accelerators.

Each layer is modelled as a pipelined loop whose initiation interval is set
by the reuse factor: the layer produces one output "bundle" every
``reuse_factor`` cycles, plus a fixed pipeline-fill depth.  Layers are
composed either as a streaming **dataflow** (throughput limited by the
slowest stage, latency is the sum of stage latencies for the first output)
or **sequentially** (latency is the plain sum), matching the two execution
strategies available in hls4ml.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["LayerLatency", "LatencyModel", "estimate_layer_cycles"]


@dataclass
class LayerLatency:
    """Cycle counts of one layer."""

    name: str
    cycles: int
    pipeline_depth: int

    @property
    def total_cycles(self) -> int:
        return self.cycles + self.pipeline_depth


def estimate_layer_cycles(
    layer_desc: dict,
    reuse_factor: int = 1,
    unroll_limit: int | None = None,
) -> LayerLatency:
    """Estimate the cycle count of one layer from its description.

    The model charges ``reuse_factor`` cycles per output pixel/neuron for
    multiply-accumulate layers (the inner products are unrolled across the
    parallel multipliers counted by the resource model) and one cycle per
    element for element-wise and pooling layers.
    """
    if reuse_factor <= 0:
        raise ValueError("reuse_factor must be positive")
    ltype = layer_desc["type"]
    out_shape = layer_desc.get("output_shape") or []
    in_shape = layer_desc.get("input_shape") or []
    out_elements = _prod(out_shape)
    name = layer_desc.get("name", ltype)

    if ltype == "ResidualBlock":
        cycles = 0
        depth = 0
        for sub in layer_desc.get("sublayers", []):
            sub_lat = estimate_layer_cycles(sub, reuse_factor, unroll_limit)
            cycles += sub_lat.cycles
            depth += sub_lat.pipeline_depth
        return LayerLatency(name=name, cycles=cycles, pipeline_depth=depth)

    if ltype == "Conv2D":
        out_c, out_h, out_w = out_shape
        pixels = out_h * out_w
        cycles = pixels * reuse_factor
        depth = 8 + int(math.log2(max(2, in_shape[0] * layer_desc["kernel_size"] ** 2)))
        return LayerLatency(name=name, cycles=cycles, pipeline_depth=depth)

    if ltype == "Dense":
        cycles = max(1, reuse_factor)
        depth = 4 + int(math.log2(max(2, in_shape[0])))
        return LayerLatency(name=name, cycles=cycles, pipeline_depth=depth)

    if ltype == "BatchNorm":
        channels = out_shape[0] if out_shape else 1
        spatial = out_elements // max(1, channels)
        return LayerLatency(name=name, cycles=max(1, spatial), pipeline_depth=3)

    if ltype in ("MCDropout", "Dropout"):
        # Algorithm 1: a single pipelined loop over dropout_size elements
        return LayerLatency(name=name, cycles=max(1, out_elements), pipeline_depth=3)

    if ltype in ("MaxPool2D", "AvgPool2D"):
        return LayerLatency(name=name, cycles=max(1, out_elements), pipeline_depth=2)

    if ltype == "GlobalAvgPool2D":
        return LayerLatency(name=name, cycles=max(1, _prod(in_shape)), pipeline_depth=4)

    if ltype in ("ReLU", "Softmax"):
        channels = out_shape[-1] if out_shape else 1
        return LayerLatency(
            name=name, cycles=max(1, out_elements // max(1, channels)), pipeline_depth=2
        )

    if ltype == "Flatten":
        return LayerLatency(name=name, cycles=1, pipeline_depth=1)

    return LayerLatency(name=name, cycles=max(1, out_elements), pipeline_depth=2)


@dataclass
class LatencyModel:
    """Compose per-layer cycle counts into an end-to-end latency.

    Parameters
    ----------
    clock_mhz:
        Accelerator clock frequency.
    dataflow:
        When true (default, matching hls4ml's ``io_stream`` dataflow), the
        end-to-end latency of a chain is the sum of the stage latencies but
        the *throughput* interval is set by the slowest stage.
    """

    clock_mhz: float = 181.0
    dataflow: bool = True

    def __post_init__(self) -> None:
        if self.clock_mhz <= 0:
            raise ValueError("clock frequency must be positive")

    @property
    def cycle_time_us(self) -> float:
        return 1.0 / self.clock_mhz

    def chain_cycles(self, latencies: list[LayerLatency]) -> int:
        """Latency in cycles of a chain of layers."""
        if not latencies:
            return 0
        return sum(lat.total_cycles for lat in latencies)

    def chain_interval_cycles(self, latencies: list[LayerLatency]) -> int:
        """Throughput interval (cycles between consecutive inputs)."""
        if not latencies:
            return 0
        if self.dataflow:
            return max(lat.cycles for lat in latencies)
        return sum(lat.total_cycles for lat in latencies)

    def cycles_to_ms(self, cycles: int) -> float:
        return cycles * self.cycle_time_us / 1000.0

    def network_latency_ms(
        self, layer_descs: list[dict], reuse_factor: int = 1
    ) -> float:
        """End-to-end latency in milliseconds of a sequential layer chain."""
        latencies = [estimate_layer_cycles(d, reuse_factor) for d in layer_descs]
        return self.cycles_to_ms(self.chain_cycles(latencies))


def _prod(shape) -> int:
    n = 1
    for s in shape or []:
        n *= int(s)
    return n
