"""Phase 3: algorithm–hardware co-exploration (Section IV-D).

The co-exploration jointly searches algorithmic knobs (weight/activation
bitwidth, channel count) and hardware knobs (reuse factor, spatial/temporal
mapping mix) by grid search, following the paper's heuristics: bitwidths are
chosen from {4, 6, 8, 16} and channel counts from {C, C/2, C/4, C/8}.  A
design point is feasible when the accelerator fits the target device and its
algorithmic performance does not drop below the default configuration by
more than a user-set tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from ..quantization.fixed_point import STANDARD_BITWIDTHS
from .accelerator import AcceleratorConfig, AcceleratorModel
from .devices import FPGADevice, get_device
from .mapping import MappingPlan, optimize_mapping, temporal_mapping

__all__ = [
    "DesignPoint",
    "EvaluatedDesignPoint",
    "CoExplorer",
    "CHANNEL_MULTIPLIERS",
    "pareto_front",
]

#: Channel scaling factors searched by the co-exploration ({C, C/2, C/4, C/8}).
CHANNEL_MULTIPLIERS: tuple[float, ...] = (1.0, 0.5, 0.25, 0.125)


@dataclass(frozen=True)
class DesignPoint:
    """One point of the joint algorithm/hardware design space."""

    bitwidth: int
    channel_multiplier: float
    reuse_factor: int

    def __post_init__(self) -> None:
        if self.bitwidth <= 0:
            raise ValueError("bitwidth must be positive")
        if self.channel_multiplier <= 0:
            raise ValueError("channel_multiplier must be positive")
        if self.reuse_factor <= 0:
            raise ValueError("reuse_factor must be positive")


@dataclass
class EvaluatedDesignPoint:
    """A design point together with its hardware and algorithmic metrics."""

    point: DesignPoint
    mapping: MappingPlan
    latency_ms: float
    energy_per_image_j: float
    max_utilization: float
    fits: bool
    accuracy: float | None = None
    extra: dict = field(default_factory=dict)

    def objective(self, name: str) -> float:
        """Scalar objective (lower is better)."""
        if name == "latency":
            return self.latency_ms
        if name == "energy":
            return self.energy_per_image_j
        if name == "resources":
            return self.max_utilization
        raise ValueError(
            f"unknown objective {name!r}; expected 'latency', 'energy' or 'resources'"
        )


def pareto_front(
    points: Sequence[EvaluatedDesignPoint],
    objectives: tuple[str, str] = ("latency", "energy"),
) -> list[EvaluatedDesignPoint]:
    """Non-dominated subset of design points under two minimisation objectives."""
    front: list[EvaluatedDesignPoint] = []
    for candidate in points:
        c = (candidate.objective(objectives[0]), candidate.objective(objectives[1]))
        dominated = False
        for other in points:
            if other is candidate:
                continue
            o = (other.objective(objectives[0]), other.objective(objectives[1]))
            if o[0] <= c[0] and o[1] <= c[1] and (o[0] < c[0] or o[1] < c[1]):
                dominated = True
                break
        if not dominated:
            front.append(candidate)
    return front


class CoExplorer:
    """Grid-search co-exploration of algorithm and hardware parameters.

    Parameters
    ----------
    model_factory:
        Callable mapping a channel multiplier to a built model (either a
        :class:`~repro.core.bayesnn.MultiExitBayesNet` or a plain
        :class:`~repro.nn.model.Network`).  Each call must return a fresh
        model.
    device:
        Target FPGA (name or :class:`FPGADevice`).
    num_mc_samples:
        MC samples the accelerator must produce per input.
    accuracy_fn:
        Optional callable ``(model, bitwidth) -> accuracy`` used to enforce
        the "no algorithmic regression" constraint.  When omitted, only
        hardware feasibility is checked.
    accuracy_tolerance:
        Maximum allowed accuracy drop relative to the baseline configuration
        (bitwidth 16, full channels).
    utilization_cap:
        Maximum allowed device utilization for any resource class.
    """

    def __init__(
        self,
        model_factory: Callable[[float], object],
        device: str | FPGADevice = "XCKU115",
        num_mc_samples: int = 3,
        accuracy_fn: Callable[[object, int], float] | None = None,
        accuracy_tolerance: float = 0.02,
        utilization_cap: float = 0.8,
        clock_mhz: float | None = None,
    ) -> None:
        self.model_factory = model_factory
        self.device = get_device(device) if isinstance(device, str) else device
        self.num_mc_samples = int(num_mc_samples)
        self.accuracy_fn = accuracy_fn
        self.accuracy_tolerance = float(accuracy_tolerance)
        self.utilization_cap = float(utilization_cap)
        self.clock_mhz = clock_mhz
        self._baseline_accuracy: float | None = None

    # ------------------------------------------------------------------ #
    def baseline_accuracy(self) -> float | None:
        """Accuracy of the default configuration (16 bits, full channels)."""
        if self.accuracy_fn is None:
            return None
        if self._baseline_accuracy is None:
            model = self.model_factory(1.0)
            self._baseline_accuracy = float(self.accuracy_fn(model, 16))
        return self._baseline_accuracy

    def evaluate_point(self, point: DesignPoint) -> EvaluatedDesignPoint:
        """Build and evaluate the accelerator for one design point."""
        model = self.model_factory(point.channel_multiplier)

        # first pass with a temporal mapping to measure one engine's footprint
        probe_config = AcceleratorConfig(
            device=self.device,
            clock_mhz=self.clock_mhz,
            weight_bitwidth=point.bitwidth,
            reuse_factor=point.reuse_factor,
            num_mc_samples=self.num_mc_samples,
            mapping=temporal_mapping(self.num_mc_samples),
        )
        probe = AcceleratorModel(model, probe_config)
        try:
            mapping = optimize_mapping(
                self.num_mc_samples,
                probe.mc_engine_resources(),
                probe.deterministic_resources(),
                self.device,
                utilization_cap=self.utilization_cap,
            )
        except ValueError:
            mapping = temporal_mapping(self.num_mc_samples)

        config = AcceleratorConfig(
            device=self.device,
            clock_mhz=self.clock_mhz,
            weight_bitwidth=point.bitwidth,
            reuse_factor=point.reuse_factor,
            num_mc_samples=self.num_mc_samples,
            mapping=mapping,
        )
        accel = AcceleratorModel(model, config)

        accuracy = None
        if self.accuracy_fn is not None:
            accuracy = float(self.accuracy_fn(model, point.bitwidth))

        return EvaluatedDesignPoint(
            point=point,
            mapping=mapping,
            latency_ms=accel.latency_ms(),
            energy_per_image_j=accel.energy_per_image_j(),
            max_utilization=accel.resources().max_utilization(self.device),
            fits=accel.fits(margin=self.utilization_cap),
            accuracy=accuracy,
        )

    # ------------------------------------------------------------------ #
    def explore(
        self,
        bitwidths: Iterable[int] = STANDARD_BITWIDTHS,
        channel_multipliers: Iterable[float] = CHANNEL_MULTIPLIERS,
        reuse_factors: Iterable[int] = (1, 2, 4),
    ) -> list[EvaluatedDesignPoint]:
        """Evaluate the full grid of design points."""
        results = []
        for bits in bitwidths:
            for mult in channel_multipliers:
                for reuse in reuse_factors:
                    results.append(
                        self.evaluate_point(
                            DesignPoint(
                                bitwidth=bits,
                                channel_multiplier=mult,
                                reuse_factor=reuse,
                            )
                        )
                    )
        return results

    def feasible(
        self, points: Sequence[EvaluatedDesignPoint]
    ) -> list[EvaluatedDesignPoint]:
        """Points that fit the device and preserve algorithmic performance."""
        baseline = self.baseline_accuracy()
        out = []
        for p in points:
            if not p.fits:
                continue
            if (
                baseline is not None
                and p.accuracy is not None
                and p.accuracy < baseline - self.accuracy_tolerance
            ):
                continue
            out.append(p)
        return out

    def select(
        self,
        points: Sequence[EvaluatedDesignPoint],
        objective: str = "energy",
    ) -> EvaluatedDesignPoint:
        """Best feasible point under the given objective (lower is better)."""
        feasible = self.feasible(points)
        candidates = feasible if feasible else list(points)
        if not candidates:
            raise ValueError("no design points to select from")
        return min(candidates, key=lambda p: p.objective(objective))

    def run(
        self,
        objective: str = "energy",
        bitwidths: Iterable[int] = STANDARD_BITWIDTHS,
        channel_multipliers: Iterable[float] = CHANNEL_MULTIPLIERS,
        reuse_factors: Iterable[int] = (1, 2, 4),
    ) -> tuple[EvaluatedDesignPoint, list[EvaluatedDesignPoint]]:
        """Full Phase 3 flow: explore the grid and pick the best design."""
        points = self.explore(bitwidths, channel_multipliers, reuse_factors)
        return self.select(points, objective), points
