"""FLOP accounting and the multi-exit sampling-cost model (Eq. 1–3).

The paper quantifies the benefit of multi-exit Monte-Carlo sampling with a
simple cost model: getting ``N_sample`` MC samples from a single-exit
BayesNN costs ``N_sample * (FLOP_main + FLOP_exit)`` (Eq. 1), while a
multi-exit network with ``N_exit`` exits only needs
``FLOP_main + N_sample / N_exit * FLOP_exit`` (Eq. 2) because the backbone
result is cached and every forward pass harvests one sample per exit.  The
reduction rate (Eq. 3) is the ratio of the two.

This module provides per-layer FLOP counting for the NumPy substrate plus
those three equations.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..nn.layers import (
    AvgPool2D,
    BatchNorm,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    GlobalAvgPool2D,
    Layer,
    MaxPool2D,
    MCDropout,
    ReLU,
    ResidualBlock,
    Softmax,
)
from ..nn.model import Network

__all__ = [
    "layer_flops",
    "layer_macs",
    "network_flops",
    "single_exit_sampling_flops",
    "multi_exit_sampling_flops",
    "reduction_rate",
    "FlopBreakdown",
]


def _conv_flops(layer: Conv2D) -> int:
    out_c, out_h, out_w = layer.output_shape
    in_c = layer.input_shape[0]
    macs = out_c * out_h * out_w * in_c * layer.kernel_size * layer.kernel_size
    flops = 2 * macs
    if layer.use_bias:
        flops += out_c * out_h * out_w
    return flops


def _dense_flops(layer: Dense) -> int:
    in_features = layer.input_shape[0]
    flops = 2 * in_features * layer.units
    if layer.use_bias:
        flops += layer.units
    return flops


def layer_flops(layer: Layer) -> int:
    """Floating-point operations of one forward pass through ``layer``.

    The layer must be built (shapes known).  Element-wise layers count one
    FLOP per output element; normalisation counts two (scale and shift);
    pooling counts one per pooled input element.
    """
    if not layer.built:
        raise ValueError(f"layer {layer.name!r} must be built to count FLOPs")

    if isinstance(layer, ResidualBlock):
        total = sum(layer_flops(sub) for sub in layer.sublayers())
        # the residual addition itself
        total += _num_elements(layer.output_shape)
        return total
    if isinstance(layer, Conv2D):
        return _conv_flops(layer)
    if isinstance(layer, Dense):
        return _dense_flops(layer)
    if isinstance(layer, BatchNorm):
        return 2 * _num_elements(layer.output_shape)
    if isinstance(layer, (ReLU, Softmax)):
        return _num_elements(layer.output_shape)
    if isinstance(layer, (MCDropout, Dropout)):
        # mask multiply + scale
        return 2 * _num_elements(layer.output_shape)
    if isinstance(layer, (MaxPool2D, AvgPool2D)):
        return _num_elements(layer.input_shape)
    if isinstance(layer, GlobalAvgPool2D):
        return _num_elements(layer.input_shape)
    if isinstance(layer, Flatten):
        return 0
    # unknown layer types contribute nothing rather than failing, so that
    # user-defined layers do not break the analysis
    return 0


def layer_macs(layer: Layer) -> int:
    """Multiply-accumulate count of a layer (used by the hardware model)."""
    if isinstance(layer, ResidualBlock):
        return sum(layer_macs(sub) for sub in layer.sublayers())
    if isinstance(layer, Conv2D):
        out_c, out_h, out_w = layer.output_shape
        in_c = layer.input_shape[0]
        return out_c * out_h * out_w * in_c * layer.kernel_size**2
    if isinstance(layer, Dense):
        return layer.input_shape[0] * layer.units
    return 0


def _num_elements(shape: tuple[int, ...]) -> int:
    n = 1
    for s in shape:
        n *= int(s)
    return n


def network_flops(network: Network) -> int:
    """Total forward FLOPs of a built network."""
    if not network.built:
        raise ValueError("network must be built to count FLOPs")
    return sum(layer_flops(layer) for layer in network.layers)


@dataclass
class FlopBreakdown:
    """FLOPs of a multi-exit model split into backbone and per-exit parts."""

    backbone_flops: int
    exit_flops: list[int]

    @property
    def total_exit_flops(self) -> int:
        return sum(self.exit_flops)

    @property
    def alpha(self) -> float:
        """The paper's :math:`\\alpha = FLOP_{exit} / FLOP_{main}` ratio."""
        if self.backbone_flops == 0:
            raise ZeroDivisionError("backbone has zero FLOPs")
        return self.total_exit_flops / self.backbone_flops

    @property
    def num_exits(self) -> int:
        return len(self.exit_flops)

    def single_pass_flops(self) -> int:
        """FLOPs of one full forward pass through backbone and every exit."""
        return self.backbone_flops + self.total_exit_flops

    def mc_sampling_flops(self, num_samples: int) -> int:
        """FLOPs to obtain ``num_samples`` MC samples with backbone caching (Eq. 2)."""
        return multi_exit_sampling_flops(
            self.backbone_flops, self.total_exit_flops, num_samples, self.num_exits
        )


def single_exit_sampling_flops(
    flops_main: float, flops_exit: float, num_samples: int
) -> float:
    """Equation 1: cost of ``num_samples`` MC samples from a single-exit BayesNN."""
    _validate_counts(flops_main, flops_exit, num_samples, 1)
    return num_samples * (flops_main + flops_exit)


def multi_exit_sampling_flops(
    flops_main: float, flops_exit: float, num_samples: int, num_exits: int
) -> float:
    """Equation 2: cost of ``num_samples`` MC samples from an ``num_exits``-exit BayesNN.

    The backbone runs once per *batch of exits*; ``num_samples / num_exits``
    forward passes of the exit ensemble produce all samples.  Non-divisible
    sample counts round the number of passes up, matching the implementation
    (you cannot run a fractional pass).
    """
    _validate_counts(flops_main, flops_exit, num_samples, num_exits)
    import math

    passes = math.ceil(num_samples / num_exits)
    return flops_main + passes * flops_exit


def reduction_rate(alpha: float, num_samples: int, num_exits: int) -> float:
    """Equation 3: FLOP reduction of multi-exit over single-exit sampling.

    ``alpha`` is the exit-to-backbone FLOP ratio.  The idealised form of the
    paper assumes ``num_samples`` divisible by ``num_exits``; this function
    uses the same idealisation.
    """
    if alpha < 0:
        raise ValueError("alpha must be non-negative")
    if num_samples <= 0 or num_exits <= 0:
        raise ValueError("num_samples and num_exits must be positive")
    return (1.0 + alpha) / (1.0 / num_samples + alpha / num_exits)


def _validate_counts(
    flops_main: float, flops_exit: float, num_samples: int, num_exits: int
) -> None:
    if flops_main < 0 or flops_exit < 0:
        raise ValueError("FLOP counts must be non-negative")
    if num_samples <= 0:
        raise ValueError("num_samples must be positive")
    if num_exits <= 0:
        raise ValueError("num_exits must be positive")
