"""Multi-exit machinery: exit heads, exit ensembles, confidence-based exiting.

An *exit head* is a small classifier attached to an intermediate backbone
activation.  The paper places one exit after each semantic block (Section
III) and forms an equally-weighted ensemble of the exit predictions; at
deployment time it can additionally use confidence-based early exiting
(Kaya et al., "shallow-deep networks") to stop computation as soon as an
exit is confident enough.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..nn.layers import Conv2D, Dense, Flatten, GlobalAvgPool2D, Layer, ReLU
from .mcd import insert_mcd_into_head

__all__ = [
    "ExitHeadConfig",
    "build_exit_head",
    "exit_ensemble",
    "cumulative_exit_ensembles",
    "EarlyExitResult",
    "confidence_early_exit",
    "CONFIDENCE_THRESHOLDS",
    "DROPOUT_RATE_GRID",
]

#: Confidence thresholds searched in the paper's grid (Section V-B).
CONFIDENCE_THRESHOLDS: tuple[float, ...] = (
    0.1,
    0.15,
    0.25,
    0.5,
    0.6,
    0.7,
    0.8,
    0.9,
    0.95,
    0.99,
    0.999,
)

#: Dropout rates searched in the paper's grid (Section V-B).
DROPOUT_RATE_GRID: tuple[float, ...] = (0.125, 0.25, 0.375, 0.5)


@dataclass
class ExitHeadConfig:
    """Configuration of one exit head.

    Attributes
    ----------
    num_classes:
        Output dimensionality.
    conv_channels:
        When non-zero, the head starts with a 3x3 convolution of this many
        channels (adds capacity to early exits at a modest FLOP cost).
    mcd_layers:
        Number of MC-dropout layers inserted into the head, counted from the
        exit backwards (0 = non-Bayesian exit).
    dropout_rate:
        Bernoulli drop probability for the MCD layers.
    filter_wise:
        Whether dropout masks whole filters (paper default) or elements.
    """

    num_classes: int
    conv_channels: int = 0
    mcd_layers: int = 1
    dropout_rate: float = 0.25
    filter_wise: bool = True
    extra: dict = field(default_factory=dict)


def build_exit_head(
    config: ExitHeadConfig,
    feature_shape: tuple[int, ...],
    name: str = "exit",
    seed: int | None = None,
    custom_layers: Sequence[Layer] | None = None,
) -> list[Layer]:
    """Create the (unbuilt) layers of an exit head.

    Parameters
    ----------
    feature_shape:
        Per-sample shape of the backbone activation the head attaches to:
        ``(C, H, W)`` for convolutional features or ``(F,)`` for flat ones.
    custom_layers:
        When given, these layers are used as the head body (e.g. the original
        architecture classifier for the final exit) and only the MCD
        insertion step is applied to them.
    """
    if custom_layers is not None:
        layers = list(custom_layers)
    elif len(feature_shape) == 3:
        layers = []
        if config.conv_channels > 0:
            layers.append(
                Conv2D(config.conv_channels, 3, padding=1, name=f"{name}_conv")
            )
            layers.append(ReLU(name=f"{name}_relu"))
        layers.append(GlobalAvgPool2D(name=f"{name}_gap"))
        layers.append(Dense(config.num_classes, name=f"{name}_classifier"))
    elif len(feature_shape) == 1:
        layers = [
            Flatten(name=f"{name}_flatten"),
            Dense(config.num_classes, name=f"{name}_classifier"),
        ]
    else:
        raise ValueError(f"unsupported feature shape {feature_shape}")

    return insert_mcd_into_head(
        layers,
        num_mcd_layers=config.mcd_layers,
        dropout_rate=config.dropout_rate,
        filter_wise=config.filter_wise,
        seed=seed,
        name_prefix=f"{name}_mcd",
    )


# --------------------------------------------------------------------------- #
# ensembling and early exiting
# --------------------------------------------------------------------------- #
def exit_ensemble(exit_probs: Sequence[np.ndarray]) -> np.ndarray:
    """Equally-weighted average of per-exit predictive distributions."""
    if not exit_probs:
        raise ValueError("exit_probs must not be empty")
    stacked = np.stack(list(exit_probs))
    return stacked.mean(axis=0)


def cumulative_exit_ensembles(exit_probs: Sequence[np.ndarray]) -> list[np.ndarray]:
    """Running ensembles: element ``i`` averages exits ``0..i``.

    The paper evaluates confidence exiting both on individual exit
    predictions and on "the largest possible ensemble at each exit"; the
    latter is exactly this cumulative average.
    """
    if not exit_probs:
        raise ValueError("exit_probs must not be empty")
    out: list[np.ndarray] = []
    running = np.zeros_like(exit_probs[0])
    for i, probs in enumerate(exit_probs):
        running = running + probs
        out.append(running / (i + 1))
    return out


@dataclass
class EarlyExitResult:
    """Outcome of confidence-based early exiting on a batch."""

    probs: np.ndarray
    exit_indices: np.ndarray
    threshold: float
    #: fraction of samples that left at each exit
    exit_distribution: np.ndarray

    def predicted_labels(self) -> np.ndarray:
        return self.probs.argmax(axis=1)

    def expected_flops(self, cumulative_exit_flops: Sequence[float]) -> float:
        """Average FLOPs per sample given the cumulative cost of reaching each exit."""
        costs = np.asarray(list(cumulative_exit_flops), dtype=np.float64)
        if costs.shape[0] != self.exit_distribution.shape[0]:
            raise ValueError("cost vector length must equal the number of exits")
        return float((costs * self.exit_distribution).sum())


def confidence_early_exit(
    exit_probs: Sequence[np.ndarray],
    threshold: float,
    use_ensemble: bool = True,
) -> EarlyExitResult:
    """Confidence-based early exiting over precomputed exit predictions.

    A sample leaves at the first exit whose confidence (max probability of
    either the exit prediction or the cumulative ensemble, depending on
    ``use_ensemble``) exceeds ``threshold``; samples that never reach the
    threshold use the final exit's prediction.
    """
    if not 0.0 < threshold < 1.0:
        raise ValueError("threshold must be in (0, 1)")
    candidates = (
        cumulative_exit_ensembles(exit_probs)
        if use_ensemble
        else [np.asarray(p) for p in exit_probs]
    )
    num_exits = len(candidates)
    n = candidates[0].shape[0]

    chosen_probs = candidates[-1].copy()
    exit_indices = np.full(n, num_exits - 1, dtype=np.int64)
    undecided = np.ones(n, dtype=bool)

    for i, probs in enumerate(candidates):
        confident = undecided & (probs.max(axis=1) >= threshold)
        chosen_probs[confident] = probs[confident]
        exit_indices[confident] = i
        undecided &= ~confident
        if not undecided.any():
            break

    distribution = np.bincount(exit_indices, minlength=num_exits) / n
    return EarlyExitResult(
        probs=chosen_probs,
        exit_indices=exit_indices,
        threshold=float(threshold),
        exit_distribution=distribution,
    )
