"""The four-phase transformation framework (Figure 2).

Given a non-Bayesian neural architecture, the framework produces an
FPGA-accelerator design for the corresponding multi-exit MCD BayesNN:

* **Phase 1** — multi-exit optimization: construct and train candidate
  multi-exit MCD BayesNNs, evaluate accuracy/calibration/FLOPs, and pick the
  best configuration under user constraints
  (:class:`repro.core.optimization.MultiExitOptimizer`).  Candidate
  evaluation runs through the sample-folded
  :class:`repro.inference.InferenceEngine`.
* **Phase 2** — spatial and temporal mapping of the Monte-Carlo engines
  (:mod:`repro.hw.mapping`).  The *spatial* mapping replicates the MC engine
  per sample so all ``S`` samples of the stochastic suffix are evaluated at
  once on the cloned cached tensor; :mod:`repro.inference` is the software
  analogue of exactly this mapping — samples are folded into the batch axis
  and the stochastic suffix runs once, so the Python hot path mirrors what
  the silicon does instead of paying ``S`` sequential passes.
* **Phase 3** — algorithm–hardware co-exploration of bitwidth, channel
  scaling and reuse factor (:class:`repro.hw.dse.CoExplorer`).
* **Phase 4** — generation of the HLS-based accelerator and its synthesis
  report (:mod:`repro.hw.hls`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..datasets.synthetic import DatasetSplit
from ..hw.accelerator import AcceleratorConfig, AcceleratorModel
from ..hw.devices import FPGADevice, get_device
from ..hw.dse import CoExplorer, EvaluatedDesignPoint
from ..hw.hls.codegen import HLSCodeGenerator
from ..hw.hls.report import SynthesisReport
from ..hw.mapping import MappingPlan, optimize_mapping, temporal_mapping
from ..nn.architectures.common import BackboneSpec
from ..quantization.fixed_point import STANDARD_BITWIDTHS
from ..uncertainty.metrics import accuracy as accuracy_metric
from .bayesnn import MultiExitBayesNet, MultiExitConfig
from .optimization import (
    CandidateConfig,
    EvaluatedDesign,
    MultiExitOptimizer,
    UserConstraints,
)

__all__ = ["FrameworkConfig", "AcceleratorDesign", "TransformationFramework"]


@dataclass
class FrameworkConfig:
    """User-facing knobs of the transformation framework."""

    device: str | FPGADevice = "XCKU115"
    num_mc_samples: int = 3
    optimization_priority: str = "calibration"
    constraints: UserConstraints = field(default_factory=UserConstraints)
    train_epochs: int = 1
    learning_rate: float = 0.05
    batch_size: int = 32
    dse_objective: str = "energy"
    bitwidths: Sequence[int] = STANDARD_BITWIDTHS
    channel_multipliers: Sequence[float] = (1.0, 0.5)
    reuse_factors: Sequence[int] = (1, 2)
    utilization_cap: float = 0.8
    seed: int = 0

    def __post_init__(self) -> None:
        if isinstance(self.device, str):
            self.device = get_device(self.device)


@dataclass
class AcceleratorDesign:
    """Final output of the framework: model + hardware design + artefacts."""

    model: MultiExitBayesNet
    phase1_design: EvaluatedDesign
    phase1_all_designs: list[EvaluatedDesign]
    mapping: MappingPlan
    phase3_point: EvaluatedDesignPoint
    phase3_all_points: list[EvaluatedDesignPoint]
    accelerator: AcceleratorModel
    report: SynthesisReport
    hls_files: dict[str, str]

    def summary(self) -> dict:
        return {
            "algorithm": {
                "num_exits": self.phase1_design.config.num_exits,
                "dropout_rate": self.phase1_design.config.dropout_rate,
                "mcd_layers_per_exit": self.phase1_design.config.mcd_layers_per_exit,
                "accuracy": self.phase1_design.accuracy,
                "ece": self.phase1_design.ece,
                "relative_flops": self.phase1_design.relative_flops,
            },
            "hardware": self.report.as_dict(),
        }


class TransformationFramework:
    """End-to-end driver of the four phases.

    Parameters
    ----------
    spec_factory:
        Callable returning a fresh :class:`BackboneSpec`.  It may optionally
        accept a ``width_multiplier`` keyword (used by Phase 3 channel
        scaling); factories that do not accept it are still supported, in
        which case channel scaling is skipped.
    train_split, test_split:
        Dataset used for Phase 1 training/evaluation and the Phase 3
        accuracy-preservation check.
    config:
        Framework configuration.
    """

    def __init__(
        self,
        spec_factory: Callable[..., BackboneSpec],
        train_split: DatasetSplit,
        test_split: DatasetSplit,
        config: FrameworkConfig | None = None,
    ) -> None:
        self.spec_factory = spec_factory
        self.train_split = train_split
        self.test_split = test_split
        self.config = config or FrameworkConfig()

    # ------------------------------------------------------------------ #
    def _spec(self, width_multiplier: float = 1.0) -> BackboneSpec:
        try:
            return self.spec_factory(width_multiplier=width_multiplier)
        except TypeError:
            return self.spec_factory()

    # ------------------------------------------------------------------ #
    # Phase 1
    # ------------------------------------------------------------------ #
    def run_phase1(
        self, candidates: Sequence[CandidateConfig] | None = None
    ) -> tuple[EvaluatedDesign, list[EvaluatedDesign]]:
        """Multi-exit optimization (Figure 3)."""
        optimizer = MultiExitOptimizer(
            spec_factory=self._spec,
            train_split=self.train_split,
            test_split=self.test_split,
            epochs=self.config.train_epochs,
            lr=self.config.learning_rate,
            batch_size=self.config.batch_size,
            seed=self.config.seed,
        )
        return optimizer.run(
            candidates=candidates,
            constraints=self.config.constraints,
            priority=self.config.optimization_priority,
        )

    # ------------------------------------------------------------------ #
    # Phase 2
    # ------------------------------------------------------------------ #
    def run_phase2(self, model: MultiExitBayesNet) -> MappingPlan:
        """Choose the spatial/temporal MC-engine mapping for the device."""
        probe = AcceleratorModel(
            model,
            AcceleratorConfig(
                device=self.config.device,
                num_mc_samples=self.config.num_mc_samples,
                mapping=temporal_mapping(self.config.num_mc_samples),
            ),
        )
        if not probe.bayesian_descs:
            return temporal_mapping(self.config.num_mc_samples)
        try:
            return optimize_mapping(
                self.config.num_mc_samples,
                probe.mc_engine_resources(),
                probe.deterministic_resources(),
                self.config.device,
                utilization_cap=self.config.utilization_cap,
            )
        except ValueError:
            return temporal_mapping(self.config.num_mc_samples)

    # ------------------------------------------------------------------ #
    # Phase 3
    # ------------------------------------------------------------------ #
    def run_phase3(
        self, phase1_design: EvaluatedDesign
    ) -> tuple[EvaluatedDesignPoint, list[EvaluatedDesignPoint]]:
        """Algorithm–hardware co-exploration around the Phase 1 design."""
        candidate = phase1_design.config

        def model_factory(width_multiplier: float) -> MultiExitBayesNet:
            spec = self._spec(width_multiplier)
            return MultiExitBayesNet(
                spec,
                MultiExitConfig(
                    num_exits=min(candidate.num_exits, spec.num_blocks),
                    mcd_layers_per_exit=candidate.mcd_layers_per_exit,
                    dropout_rate=candidate.dropout_rate,
                    default_mc_samples=candidate.num_mc_samples,
                    seed=self.config.seed,
                ),
            )

        def accuracy_fn(model: MultiExitBayesNet, bitwidth: int) -> float:
            # quantization-aware accuracy check on (a subset of) the test split
            from ..quantization.quantizers import QuantizationConfig, quantize_network

            for head in model.exits:
                quantize_network(head, QuantizationConfig(weight_bits=bitwidth))
            quantize_network(model.backbone, QuantizationConfig(weight_bits=bitwidth))
            subset = min(len(self.test_split), 64)
            probs = model.predict_proba(
                self.test_split.x[:subset], self.config.num_mc_samples
            )
            return accuracy_metric(probs, self.test_split.y[:subset])

        explorer = CoExplorer(
            model_factory=model_factory,
            device=self.config.device,
            num_mc_samples=self.config.num_mc_samples,
            accuracy_fn=accuracy_fn,
            utilization_cap=self.config.utilization_cap,
        )
        return explorer.run(
            objective=self.config.dse_objective,
            bitwidths=self.config.bitwidths,
            channel_multipliers=self.config.channel_multipliers,
            reuse_factors=self.config.reuse_factors,
        )

    # ------------------------------------------------------------------ #
    # Phase 4
    # ------------------------------------------------------------------ #
    def run_phase4(
        self,
        model: MultiExitBayesNet,
        mapping: MappingPlan,
        point: EvaluatedDesignPoint,
    ) -> tuple[AcceleratorModel, SynthesisReport, dict[str, str]]:
        """Generate the HLS accelerator and its synthesis report."""
        accel = AcceleratorModel(
            model,
            AcceleratorConfig(
                device=self.config.device,
                weight_bitwidth=point.point.bitwidth,
                reuse_factor=point.point.reuse_factor,
                num_mc_samples=self.config.num_mc_samples,
                mapping=mapping,
            ),
        )
        generator = HLSCodeGenerator(accel)
        files = generator.generate()
        report = SynthesisReport.from_accelerator(accel)
        return accel, report, files

    # ------------------------------------------------------------------ #
    def run(
        self, candidates: Sequence[CandidateConfig] | None = None
    ) -> AcceleratorDesign:
        """Execute all four phases and return the complete design bundle."""
        best_design, all_designs = self.run_phase1(candidates)
        model = best_design.model
        if model is None:
            raise RuntimeError("Phase 1 must keep the trained model (keep_models=True)")

        best_point, all_points = self.run_phase3(best_design)

        # Phase 2 is re-run with the Phase-3 bitwidth/reuse so the mapping
        # reflects the final per-engine footprint.
        probe = AcceleratorModel(
            model,
            AcceleratorConfig(
                device=self.config.device,
                weight_bitwidth=best_point.point.bitwidth,
                reuse_factor=best_point.point.reuse_factor,
                num_mc_samples=self.config.num_mc_samples,
                mapping=temporal_mapping(self.config.num_mc_samples),
            ),
        )
        if probe.bayesian_descs:
            try:
                mapping = optimize_mapping(
                    self.config.num_mc_samples,
                    probe.mc_engine_resources(),
                    probe.deterministic_resources(),
                    self.config.device,
                    utilization_cap=self.config.utilization_cap,
                )
            except ValueError:
                mapping = temporal_mapping(self.config.num_mc_samples)
        else:
            mapping = temporal_mapping(self.config.num_mc_samples)

        accel, report, files = self.run_phase4(model, mapping, best_point)
        return AcceleratorDesign(
            model=model,
            phase1_design=best_design,
            phase1_all_designs=all_designs,
            mapping=mapping,
            phase3_point=best_point,
            phase3_all_points=all_points,
            accelerator=accel,
            report=report,
            hls_files=files,
        )
