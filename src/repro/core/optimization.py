"""Phase 1 of the transformation framework: multi-exit optimization.

This implements the optimization exploration flow of Figure 3: candidate
multi-exit MCD BayesNNs are constructed over a grid of (number of exits,
dropout rate, number of MC forward passes), each candidate is trained on the
target dataset, evaluated (accuracy, calibration, FLOPs), filtered against
user constraints, and the best remaining design according to the chosen
optimization priority is returned.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

import numpy as np

from ..datasets.synthetic import DatasetSplit
from ..nn.architectures.common import BackboneSpec
from ..nn.optimizers import SGD
from ..nn.training import DistillationTrainer
from ..uncertainty.calibration import expected_calibration_error
from ..uncertainty.metrics import accuracy as accuracy_metric
from ..uncertainty.metrics import negative_log_likelihood
from .bayesnn import MultiExitBayesNet, MultiExitConfig
from .multi_exit import DROPOUT_RATE_GRID

__all__ = [
    "CandidateConfig",
    "UserConstraints",
    "EvaluatedDesign",
    "MultiExitOptimizer",
    "default_candidate_grid",
]


@dataclass(frozen=True)
class CandidateConfig:
    """One point of the Phase 1 design space."""

    num_exits: int
    dropout_rate: float
    mcd_layers_per_exit: int
    num_mc_samples: int

    @property
    def num_forward_passes(self) -> int:
        """``N_pass = ceil(N_sample / N_exit)`` (Section IV-B)."""
        return -(-self.num_mc_samples // self.num_exits)


@dataclass
class UserConstraints:
    """Constraints that Phase 1 designs must satisfy (Figure 3 "filter" step)."""

    min_accuracy: float | None = None
    max_ece: float | None = None
    max_relative_flops: float | None = None

    def satisfied_by(self, design: "EvaluatedDesign") -> bool:
        if self.min_accuracy is not None and design.accuracy < self.min_accuracy:
            return False
        if self.max_ece is not None and design.ece > self.max_ece:
            return False
        if (
            self.max_relative_flops is not None
            and design.relative_flops > self.max_relative_flops
        ):
            return False
        return True


@dataclass
class EvaluatedDesign:
    """A trained candidate together with its evaluated metrics."""

    config: CandidateConfig
    accuracy: float
    ece: float
    nll: float
    flops: float
    relative_flops: float
    model: MultiExitBayesNet | None = None
    extra: dict = field(default_factory=dict)

    def score(self, priority: str) -> float:
        """Scalar score (higher is better) under the given optimization priority."""
        if priority == "accuracy":
            return self.accuracy
        if priority in ("ece", "calibration"):
            return -self.ece
        if priority == "flops":
            return -self.relative_flops
        raise ValueError(
            f"unknown optimization priority {priority!r}; "
            "expected 'accuracy', 'calibration'/'ece' or 'flops'"
        )


def default_candidate_grid(
    max_exits: int,
    num_mc_samples: int = 4,
    dropout_rates: Sequence[float] = DROPOUT_RATE_GRID,
    mcd_layers: Sequence[int] = (1,),
    exit_counts: Sequence[int] | None = None,
) -> list[CandidateConfig]:
    """The default Phase 1 grid: exits x dropout rates x MCD depths."""
    if max_exits <= 0:
        raise ValueError("max_exits must be positive")
    exits = (
        list(exit_counts) if exit_counts is not None else list(range(1, max_exits + 1))
    )
    grid = []
    for n_exit in exits:
        for rate in dropout_rates:
            for depth in mcd_layers:
                grid.append(
                    CandidateConfig(
                        num_exits=n_exit,
                        dropout_rate=rate,
                        mcd_layers_per_exit=depth,
                        num_mc_samples=num_mc_samples,
                    )
                )
    return grid


class MultiExitOptimizer:
    """Phase 1 optimizer: construct, train, evaluate, filter, select.

    Parameters
    ----------
    spec_factory:
        Zero-argument callable returning a fresh :class:`BackboneSpec`
        (a spec instance can only be consumed by one model).
    train_split, test_split:
        Dataset splits used for training and evaluation.
    epochs, lr, batch_size:
        Training hyper-parameters shared by all candidates.
    reference_flops:
        FLOPs of the single-exit non-Bayesian baseline used to normalise the
        ``relative_flops`` metric; computed automatically when omitted.
    eval_batch_size:
        When set, candidate evaluation streams the test split through the
        sample-folded engine in microbatches of this size
        (``InferenceEngine.predict_stream``), bounding peak activation
        memory on large evaluation sets.  ``None`` evaluates in one batch.
    """

    def __init__(
        self,
        spec_factory: Callable[[], BackboneSpec],
        train_split: DatasetSplit,
        test_split: DatasetSplit,
        epochs: int = 2,
        lr: float = 0.05,
        batch_size: int = 32,
        distill_weight: float = 0.5,
        seed: int = 0,
        reference_flops: float | None = None,
        keep_models: bool = True,
        eval_batch_size: int | None = None,
    ) -> None:
        self.spec_factory = spec_factory
        self.train_split = train_split
        self.test_split = test_split
        self.epochs = int(epochs)
        self.lr = float(lr)
        self.batch_size = int(batch_size)
        self.distill_weight = float(distill_weight)
        self.seed = int(seed)
        self.keep_models = bool(keep_models)
        self.eval_batch_size = eval_batch_size
        self._reference_flops = reference_flops

    # ------------------------------------------------------------------ #
    def reference_flops(self) -> float:
        """FLOPs of one forward pass of the single-exit baseline."""
        if self._reference_flops is None:
            from .flops import network_flops

            spec = self.spec_factory()
            baseline = spec.single_exit_network(seed=self.seed)
            self._reference_flops = float(network_flops(baseline))
        return self._reference_flops

    def build_candidate(self, candidate: CandidateConfig) -> MultiExitBayesNet:
        """Construct an (untrained) model for one candidate configuration."""
        spec = self.spec_factory()
        config = MultiExitConfig(
            num_exits=candidate.num_exits,
            mcd_layers_per_exit=candidate.mcd_layers_per_exit,
            dropout_rate=candidate.dropout_rate,
            default_mc_samples=candidate.num_mc_samples,
            seed=self.seed,
        )
        return MultiExitBayesNet(spec, config)

    def train_candidate(self, model: MultiExitBayesNet) -> None:
        """Train one candidate with exit-ensemble distillation."""
        optimizer = SGD(model.parameters(), lr=self.lr, momentum=0.9, weight_decay=5e-4)
        trainer = DistillationTrainer(
            model,
            optimizer,
            distill_weight=self.distill_weight,
            batch_size=self.batch_size,
            seed=self.seed,
        )
        trainer.fit(self.train_split.x, self.train_split.y, epochs=self.epochs)

    def evaluate_candidate(
        self, candidate: CandidateConfig, model: MultiExitBayesNet
    ) -> EvaluatedDesign:
        """Evaluate accuracy, ECE, NLL and FLOPs of a trained candidate.

        Prediction runs through the model's sample-folded
        :class:`repro.inference.InferenceEngine`: the backbone is evaluated
        once per (micro)batch and all MC samples share it.
        """
        engine = model.engine
        if self.eval_batch_size is not None:
            probs = np.concatenate(
                list(
                    engine.predict_stream(
                        self.test_split.x,
                        batch_size=self.eval_batch_size,
                        num_samples=candidate.num_mc_samples,
                    )
                )
            )
        else:
            probs = engine.predict_proba(self.test_split.x, candidate.num_mc_samples)
        labels = self.test_split.y
        flops = model.sampling_flops(candidate.num_mc_samples)
        return EvaluatedDesign(
            config=candidate,
            accuracy=accuracy_metric(probs, labels),
            ece=expected_calibration_error(probs, labels),
            nll=negative_log_likelihood(probs, labels),
            flops=float(flops),
            relative_flops=float(flops) / self.reference_flops(),
            model=model if self.keep_models else None,
        )

    # ------------------------------------------------------------------ #
    def explore(self, candidates: Iterable[CandidateConfig]) -> list[EvaluatedDesign]:
        """Train and evaluate every candidate configuration."""
        designs = []
        for candidate in candidates:
            model = self.build_candidate(candidate)
            self.train_candidate(model)
            designs.append(self.evaluate_candidate(candidate, model))
        return designs

    @staticmethod
    def filter(
        designs: Sequence[EvaluatedDesign], constraints: UserConstraints
    ) -> list[EvaluatedDesign]:
        """Drop designs that violate the user constraints."""
        return [d for d in designs if constraints.satisfied_by(d)]

    @staticmethod
    def select(designs: Sequence[EvaluatedDesign], priority: str) -> EvaluatedDesign:
        """Pick the best design under the given optimization priority."""
        if not designs:
            raise ValueError("no designs satisfy the constraints")
        return max(designs, key=lambda d: d.score(priority))

    def run(
        self,
        candidates: Iterable[CandidateConfig] | None = None,
        constraints: UserConstraints | None = None,
        priority: str = "calibration",
        max_exits: int | None = None,
    ) -> tuple[EvaluatedDesign, list[EvaluatedDesign]]:
        """Execute the full Phase 1 flow of Figure 3.

        Returns the selected design and the list of all evaluated designs.
        """
        if candidates is None:
            if max_exits is None:
                max_exits = self.spec_factory().num_blocks
            candidates = default_candidate_grid(max_exits)
        constraints = constraints or UserConstraints()

        designs = self.explore(candidates)
        feasible = self.filter(designs, constraints)
        if not feasible:
            # fall back to the least-violating design rather than failing hard,
            # mirroring a designer relaxing constraints after inspection
            feasible = list(designs)
        best = self.select(feasible, priority)
        return best, designs
