"""Monte-Carlo-dropout sampling utilities.

The building blocks here are architecture-agnostic:

* :func:`insert_mcd_into_head` implements the paper's MCD-placement rule —
  dropout layers are inserted *starting from the exit and moving towards the
  input*, one in front of each of the last ``n`` parameterised layers.
* :class:`MCSampler` draws Monte-Carlo predictive samples from a network
  that contains :class:`~repro.nn.layers.MCDropout` layers.  It is a thin
  façade over :class:`repro.inference.NetworkEngine`, the software analogue
  of the accelerator's **spatial MC-engine mapping** (Phase 2, Figure 4):
  the deterministic prefix is evaluated once and its activation cached —
  the hardware's cached-tensor clone step — and the ``S`` samples are then
  *folded into the batch axis* so the stochastic suffix runs in a single
  pass, exactly as the replicated MC engines evaluate all samples at once
  in silicon.  The folded pass is bit-identical to running the suffix once
  per sample (see :mod:`repro.inference.folding` for the contract).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn.context import ForwardContext, resolve_context
from ..nn.layers import Conv2D, Dense, Layer, MCDropout
from ..nn.model import Network

__all__ = ["insert_mcd_into_head", "deterministic_forward", "MCSampler", "MCPrediction"]


def insert_mcd_into_head(
    layers: list[Layer],
    num_mcd_layers: int,
    dropout_rate: float,
    filter_wise: bool = True,
    seed: int | None = None,
    name_prefix: str = "mcd",
) -> list[Layer]:
    """Insert MC-dropout layers in front of the last parameterised layers.

    Parameters
    ----------
    layers:
        The (unbuilt) layers of an exit head, in execution order.
    num_mcd_layers:
        How many MCD layers to insert.  ``0`` returns the layers unchanged
        (the non-Bayesian multi-exit baseline).  If larger than the number of
        parameterised layers in the head, one MCD layer is placed before each
        parameterised layer.
    dropout_rate:
        The Bernoulli drop probability of every inserted layer.
    """
    if num_mcd_layers < 0:
        raise ValueError("num_mcd_layers must be non-negative")
    if num_mcd_layers == 0:
        return list(layers)

    parameterised = [
        i for i, layer in enumerate(layers) if isinstance(layer, (Conv2D, Dense))
    ]
    if not parameterised:
        raise ValueError("head has no parameterised layers to attach MCD to")

    # choose insertion points from the exit (end of the list) backwards
    targets = sorted(parameterised[-num_mcd_layers:])
    out: list[Layer] = []
    inserted = 0
    for i, layer in enumerate(layers):
        if i in targets:
            out.append(
                MCDropout(
                    rate=dropout_rate,
                    filter_wise=filter_wise,
                    seed=None if seed is None else seed + inserted,
                    name=f"{name_prefix}_{inserted}",
                )
            )
            inserted += 1
        out.append(layer)
    return out


def deterministic_forward(
    network: Network, x: np.ndarray, ctx: ForwardContext | None = None
) -> np.ndarray:
    """Forward pass with every MC-dropout layer replaced by its expectation.

    With inverted dropout the expectation of the MCD layer is the identity,
    so this simply skips the stochastic masking.  Used for the non-Bayesian
    point prediction that Table I's "SE"/"ME" rows rely on.
    """
    ctx = resolve_context(ctx)
    out = x
    for layer in network.layers:
        if isinstance(layer, MCDropout):
            out = layer.deterministic_forward(out, ctx=ctx)
        else:
            out = layer.forward(out, training=False, ctx=ctx)
    return out


@dataclass
class MCPrediction:
    """Result of Monte-Carlo sampling.

    Attributes
    ----------
    mean_probs:
        Mean predictive distribution, shape ``(N, classes)``.
    sample_probs:
        Per-sample distributions, shape ``(S, N, classes)``.
    """

    mean_probs: np.ndarray
    sample_probs: np.ndarray

    @property
    def num_samples(self) -> int:
        return int(self.sample_probs.shape[0])

    def predicted_labels(self) -> np.ndarray:
        return self.mean_probs.argmax(axis=1)


class MCSampler:
    """Draw Monte-Carlo predictive samples from a network with MCD layers.

    The sampler splits the network at its first stochastic layer: the
    deterministic prefix is evaluated once and its activation cached — the
    accelerator's cached-tensor clone step (Figure 4) — and the ``S``
    samples are folded into the batch axis so the stochastic suffix runs in
    a single pass (:class:`repro.inference.NetworkEngine`).  Results are
    bit-identical to the historical one-pass-per-sample loop, which lives on
    as :func:`repro.inference.legacy.looped_mc_sample`.
    """

    def __init__(self, network: Network, seed: int | None = None) -> None:
        from ..inference.engine import NetworkEngine

        self._engine = NetworkEngine(network, seed=seed)
        self.network = network
        self.split_index = network.first_stochastic_index()

    def reseed(self, seed: int) -> None:
        """Reseed every MCD layer for reproducible sample sequences."""
        self._engine.reseed(seed)

    @property
    def has_stochastic_layers(self) -> bool:
        return self.split_index < len(self.network.layers)

    def sample(self, x: np.ndarray, num_samples: int = 3) -> MCPrediction:
        """Draw ``num_samples`` predictive samples in one folded pass."""
        return self._engine.sample(x, num_samples)
