"""Multi-exit Monte-Carlo-Dropout Bayesian neural network.

:class:`MultiExitBayesNet` is the paper's core algorithmic contribution: a
shared deterministic backbone with one classifier ("exit") per semantic
block, where Monte-Carlo-dropout layers are inserted only near the exits.
Monte-Carlo samples are produced by caching the backbone activations and
re-running only the stochastic exit heads, which makes the cost of ``S``
samples ``FLOP_main + ceil(S / N_exit) * FLOP_exit`` instead of
``S * (FLOP_main + FLOP_exit)`` (Eq. 1–2).

The same class expresses all four model families of Table I:

================  =========================================================
SE                ``num_exits=1, mcd_layers_per_exit=0``
MCD               ``num_exits=1, mcd_layers_per_exit>=1``
ME                ``num_exits=M, mcd_layers_per_exit=0``
MCD+ME (ours)     ``num_exits=M, mcd_layers_per_exit>=1``
================  =========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from ..nn.architectures.common import BackboneSpec
from ..nn.context import ForwardContext, resolve_context
from ..nn.layers.base import Parameter
from ..nn.model import Network
from .flops import FlopBreakdown, network_flops
from .mcd import MCPrediction
from .multi_exit import EarlyExitResult, ExitHeadConfig, build_exit_head

__all__ = ["MultiExitConfig", "MultiExitBayesNet", "single_exit_bayesnet"]


def single_exit_bayesnet(
    spec: BackboneSpec,
    num_mcd_layers: int = 1,
    dropout_rate: float = 0.25,
    filter_wise: bool = True,
    seed: int = 0,
    name: str | None = None,
) -> Network:
    """Build a *single-exit* MCD BayesNN as one flat :class:`Network`.

    The backbone and the architecture's original classifier head are
    composed into a single sequential network, and ``num_mcd_layers``
    MC-dropout layers are inserted in front of the last parameterised layers
    (from the exit towards the input, the paper's placement rule).  This is
    the "Bayes-LeNet / Bayes-ResNet18 / Bayes-VGG11" construction used in
    the hardware-cost study of Figure 5.
    """
    from .mcd import insert_mcd_into_head

    layers = list(spec.backbone.layers) + list(spec._require_factory()())
    layers = insert_mcd_into_head(
        layers,
        num_mcd_layers=num_mcd_layers,
        dropout_rate=dropout_rate,
        filter_wise=filter_wise,
        seed=seed,
        name_prefix="mcd",
    )
    net = Network(layers, name=name or f"{spec.name}_bayes_mcd{num_mcd_layers}")
    net.build(spec.input_shape, seed=seed)
    return net


@dataclass
class MultiExitConfig:
    """Configuration of a multi-exit MCD BayesNN.

    Attributes
    ----------
    num_exits:
        Number of exits.  Exits are attached to the *last* ``num_exits``
        semantic blocks of the backbone (the final exit is always present).
    mcd_layers_per_exit:
        MC-dropout layers inserted into each exit head, counted from the exit
        towards the input.  ``0`` disables MCD (non-Bayesian exits).
    dropout_rate:
        Bernoulli drop probability of every MCD layer.
    exit_conv_channels:
        Channels of the optional 3x3 convolution at the start of each
        intermediate exit head (0 = plain pooling + linear head).
    default_mc_samples:
        Number of MC samples drawn when :meth:`MultiExitBayesNet.predict_mc`
        is called without an explicit count (the paper uses 3 for the
        hardware comparison).
    use_original_final_head:
        When true, the final exit reuses the architecture's original
        classifier head; otherwise it uses the same lightweight head as the
        intermediate exits.
    filter_wise_dropout:
        Whether MCD masks whole filters (paper default) or single elements.
    seed:
        Seed for weight initialization and MCD mask streams.
    """

    num_exits: int = 1
    mcd_layers_per_exit: int = 1
    dropout_rate: float = 0.25
    exit_conv_channels: int = 0
    default_mc_samples: int = 3
    use_original_final_head: bool = True
    filter_wise_dropout: bool = True
    seed: int = 0
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_exits <= 0:
            raise ValueError("num_exits must be positive")
        if self.mcd_layers_per_exit < 0:
            raise ValueError("mcd_layers_per_exit must be non-negative")
        if not 0.0 <= self.dropout_rate < 1.0:
            raise ValueError("dropout_rate must be in [0, 1)")
        if self.default_mc_samples <= 0:
            raise ValueError("default_mc_samples must be positive")

    @property
    def is_bayesian(self) -> bool:
        return self.mcd_layers_per_exit > 0 and self.dropout_rate > 0.0


class MultiExitBayesNet:
    """Multi-exit MCD-based Bayesian neural network (see module docstring)."""

    def __init__(self, spec: BackboneSpec, config: MultiExitConfig) -> None:
        if config.num_exits > spec.num_blocks:
            raise ValueError(
                f"architecture {spec.name!r} has only {spec.num_blocks} blocks; "
                f"cannot attach {config.num_exits} exits"
            )
        self.spec = spec
        self.config = config
        self.name = f"{spec.name}_me{config.num_exits}_mcd{config.mcd_layers_per_exit}"

        # exits are attached to the last `num_exits` blocks (the final exit is
        # always the end of the backbone)
        self.exit_points: list[int] = list(spec.exit_points[-config.num_exits :])

        self.backbone: Network = spec.backbone
        self.backbone.build(spec.input_shape, seed=config.seed)

        self._engine = None  # lazily-built repro.inference.InferenceEngine

        self.exits: list[Network] = []
        for i, point in enumerate(self.exit_points):
            feature_shape = (
                self.backbone.layers[point - 1].output_shape
                if point > 0
                else spec.input_shape
            )
            is_final = i == len(self.exit_points) - 1
            head_cfg = ExitHeadConfig(
                num_classes=spec.num_classes,
                conv_channels=0 if is_final else config.exit_conv_channels,
                mcd_layers=config.mcd_layers_per_exit,
                dropout_rate=config.dropout_rate,
                filter_wise=config.filter_wise_dropout,
            )
            custom = (
                spec._require_factory()()
                if (is_final and config.use_original_final_head)
                else None
            )
            layers = build_exit_head(
                head_cfg,
                feature_shape,
                name=f"exit{i}",
                seed=config.seed * 1000 + i,
                custom_layers=custom,
            )
            head = Network(layers, name=f"{spec.name}_exit{i}")
            head.build(feature_shape, seed=config.seed + 17 * (i + 1))
            self.exits.append(head)

    # ------------------------------------------------------------------ #
    # pickling
    # ------------------------------------------------------------------ #
    def __getstate__(self) -> dict:
        # the lazily-built engine holds per-process state (forward context,
        # weak-keyed activation cache) — receivers rebuild their own lazily
        state = self.__dict__.copy()
        state["_engine"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    # ------------------------------------------------------------------ #
    # structure
    # ------------------------------------------------------------------ #
    @property
    def num_exits(self) -> int:
        return len(self.exits)

    @property
    def num_classes(self) -> int:
        return self.spec.num_classes

    @property
    def input_shape(self) -> tuple[int, ...]:
        return self.spec.input_shape

    def parameters(self) -> Iterator[Parameter]:
        yield from self.backbone.parameters()
        for head in self.exits:
            yield from head.parameters()

    @property
    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        self.backbone.zero_grad()
        for head in self.exits:
            head.zero_grad()

    def describe(self) -> dict:
        """Structural description used by the hardware back-end."""
        return {
            "name": self.name,
            "architecture": self.spec.name,
            "input_shape": list(self.spec.input_shape),
            "num_classes": self.spec.num_classes,
            "num_exits": self.num_exits,
            "exit_points": list(self.exit_points),
            "mcd_layers_per_exit": self.config.mcd_layers_per_exit,
            "dropout_rate": self.config.dropout_rate,
            "backbone": self.backbone.describe(),
            "exits": [head.describe() for head in self.exits],
        }

    # ------------------------------------------------------------------ #
    # forward / backward (training)
    # ------------------------------------------------------------------ #
    def _segment_bounds(self) -> list[tuple[int, int]]:
        bounds = []
        prev = 0
        for point in self.exit_points:
            bounds.append((prev, point))
            prev = point
        return bounds

    def backbone_activations(
        self,
        x: np.ndarray,
        training: bool = False,
        ctx: ForwardContext | None = None,
    ) -> list[np.ndarray]:
        """Activation of the backbone at each exit point (computed once)."""
        ctx = resolve_context(ctx)
        activations = []
        out = x
        for start, stop in self._segment_bounds():
            out = self.backbone.forward_range(
                out, start, stop, training=training, ctx=ctx
            )
            activations.append(out)
        return activations

    def forward_exits(
        self,
        x: np.ndarray,
        training: bool = False,
        ctx: ForwardContext | None = None,
    ) -> list[np.ndarray]:
        """Logits of every exit for one (stochastic, if MCD) forward pass."""
        if self._engine is not None:
            # weights are about to change (training) or activations will be
            # recomputed anyway — drop the engine's backbone cache
            self._engine.invalidate_cache()
        ctx = resolve_context(ctx)
        activations = self.backbone_activations(x, training=training, ctx=ctx)
        return [
            head.forward(act, training=training, ctx=ctx)
            for head, act in zip(self.exits, activations)
        ]

    def backward_exits(
        self, grads: Sequence[np.ndarray], ctx: ForwardContext | None = None
    ) -> np.ndarray:
        """Back-propagate one logits-gradient per exit through the shared backbone.

        Must be called right after :meth:`forward_exits` with the same
        context (layer caches are read back from it).  Returns the gradient
        with respect to the network input.
        """
        if len(grads) != self.num_exits:
            raise ValueError(f"expected {self.num_exits} gradients, got {len(grads)}")
        ctx = resolve_context(ctx)
        bounds = self._segment_bounds()
        grad_back: np.ndarray | None = None
        for i in reversed(range(self.num_exits)):
            grad_head = self.exits[i].backward(grads[i], ctx=ctx)
            total = grad_head if grad_back is None else grad_head + grad_back
            start, stop = bounds[i]
            grad_back = self.backbone.backward_range(total, start, stop, ctx=ctx)
        return grad_back

    # ------------------------------------------------------------------ #
    # inference (delegated to the sample-folded engine)
    # ------------------------------------------------------------------ #
    @property
    def engine(self):
        """The :class:`repro.inference.InferenceEngine` serving this model.

        Built lazily.  Its backbone-activation cache is invalidated
        automatically by :meth:`forward_exits` (i.e. by training) and by
        anything that changes ``backbone.weights_version`` — optimizer
        steps, ``Parameter.assign``, ``set_weights``, post-training
        quantization.  Only a raw ``param.value[...]`` write without a
        ``param.bump_version()`` needs a manual
        ``model.engine.invalidate_cache()``.
        """
        if self._engine is None:
            from ..inference.engine import InferenceEngine

            self._engine = InferenceEngine(self)
        return self._engine

    def serving_engine(self, config=None, **kwargs):
        """Build a :class:`repro.serving.ServingEngine` over this model.

        The serving engine wraps :attr:`engine` (sharing its activation
        cache) and adds asyncio dynamic batching with backpressure::

            config = ServingConfig(num_samples=8)
            async with model.serving_engine(config) as server:
                result = await server.submit(example)

        ``config`` is a :class:`repro.serving.ServingConfig`; the
        historical flat kwargs (``num_samples``, ``max_batch_size``, …)
        still work through ``ServingEngine``'s deprecation shim.
        """
        from ..serving import ServingEngine

        return ServingEngine(self, config, **kwargs)

    def exit_probabilities(
        self, x: np.ndarray, stochastic: bool | None = None
    ) -> list[np.ndarray]:
        """Per-exit predictive distributions for one forward pass.

        ``stochastic=None`` uses MCD sampling when the model is Bayesian and
        the deterministic expectation otherwise.
        """
        return self.engine.exit_probabilities(x, stochastic=stochastic)

    def predict_deterministic(self, x: np.ndarray) -> np.ndarray:
        """Ensemble prediction with MCD replaced by its expectation."""
        return self.engine.predict_deterministic(x)

    def predict_mc(self, x: np.ndarray, num_samples: int | None = None) -> MCPrediction:
        """Monte-Carlo prediction with cached backbone activations.

        The backbone runs once; the ``ceil(num_samples / num_exits)``
        stochastic passes through each exit head are folded into the batch
        axis and run as a single pass (:class:`repro.inference.InferenceEngine`).
        Samples are interleaved round-robin across exits and truncated to
        exactly ``num_samples``, bit-identically to the historical per-pass
        loop (:func:`repro.inference.legacy.looped_predict_mc`).
        """
        return self.engine.predict_mc(x, num_samples)

    def predict_proba(
        self, x: np.ndarray, num_samples: int | None = None
    ) -> np.ndarray:
        """Mean predictive distribution (MC if Bayesian, deterministic otherwise)."""
        return self.engine.predict_proba(x, num_samples)

    def predict(self, x: np.ndarray, num_samples: int | None = None) -> np.ndarray:
        """Predicted class labels."""
        return self.engine.predict(x, num_samples)

    def predict_stream(
        self,
        inputs,
        batch_size: int = 64,
        num_samples: int | None = None,
        early_exit_threshold: float | None = None,
    ):
        """Microbatched predictive distributions (see ``InferenceEngine.predict_stream``)."""
        return self.engine.predict_stream(
            inputs,
            batch_size=batch_size,
            num_samples=num_samples,
            early_exit_threshold=early_exit_threshold,
        )

    def early_exit_predict(
        self, x: np.ndarray, threshold: float, use_ensemble: bool = True
    ) -> EarlyExitResult:
        """Confidence-based early exiting with per-example termination.

        Delegates to the engine's active-set path: only still-undecided
        examples are propagated through later backbone segments and heads.
        """
        return self.engine.early_exit_predict(x, threshold, use_ensemble=use_ensemble)

    # ------------------------------------------------------------------ #
    # cost analysis
    # ------------------------------------------------------------------ #
    def flop_breakdown(self) -> FlopBreakdown:
        """Backbone / per-exit FLOP split used by Eq. 1–3 and Table I."""
        return FlopBreakdown(
            backbone_flops=network_flops(self.backbone),
            exit_flops=[network_flops(head) for head in self.exits],
        )

    def cumulative_exit_flops(self) -> list[float]:
        """FLOPs needed to produce the prediction of exit ``i`` (for early exiting)."""
        bounds = self._segment_bounds()
        from .flops import layer_flops

        costs = []
        running_backbone = 0.0
        for (start, stop), head in zip(bounds, self.exits):
            running_backbone += sum(
                layer_flops(layer) for layer in self.backbone.layers[start:stop]
            )
            costs.append(running_backbone + network_flops(head))
        return costs

    def sampling_flops(self, num_samples: int | None = None) -> float:
        """FLOPs of one MC prediction (Eq. 2 with the implemented ceil)."""
        if num_samples is None:
            num_samples = self.config.default_mc_samples
        return self.flop_breakdown().mc_sampling_flops(num_samples)
