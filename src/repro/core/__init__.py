"""The paper's core contribution (DESIGN.md §3.2).

Multi-exit MCD BayesNNs, Monte-Carlo sampling with cached backbones, the
FLOP cost model (Eq. 1–3), the Phase-1 multi-exit optimizer, and the
four-phase transformation framework.
"""

from .bayesnn import MultiExitBayesNet, MultiExitConfig, single_exit_bayesnet
from .flops import (
    FlopBreakdown,
    layer_flops,
    layer_macs,
    multi_exit_sampling_flops,
    network_flops,
    reduction_rate,
    single_exit_sampling_flops,
)
from .framework import AcceleratorDesign, FrameworkConfig, TransformationFramework
from .mcd import MCPrediction, MCSampler, deterministic_forward, insert_mcd_into_head
from .multi_exit import (
    CONFIDENCE_THRESHOLDS,
    DROPOUT_RATE_GRID,
    EarlyExitResult,
    ExitHeadConfig,
    build_exit_head,
    confidence_early_exit,
    cumulative_exit_ensembles,
    exit_ensemble,
)
from .optimization import (
    CandidateConfig,
    EvaluatedDesign,
    MultiExitOptimizer,
    UserConstraints,
    default_candidate_grid,
)

__all__ = [
    "MultiExitBayesNet",
    "MultiExitConfig",
    "single_exit_bayesnet",
    "FlopBreakdown",
    "layer_flops",
    "layer_macs",
    "network_flops",
    "single_exit_sampling_flops",
    "multi_exit_sampling_flops",
    "reduction_rate",
    "AcceleratorDesign",
    "FrameworkConfig",
    "TransformationFramework",
    "MCPrediction",
    "MCSampler",
    "deterministic_forward",
    "insert_mcd_into_head",
    "CONFIDENCE_THRESHOLDS",
    "DROPOUT_RATE_GRID",
    "EarlyExitResult",
    "ExitHeadConfig",
    "build_exit_head",
    "confidence_early_exit",
    "cumulative_exit_ensembles",
    "exit_ensemble",
    "CandidateConfig",
    "EvaluatedDesign",
    "MultiExitOptimizer",
    "UserConstraints",
    "default_candidate_grid",
]
