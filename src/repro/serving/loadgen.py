"""Open-loop load harness for the network front end.

Every benchmark before this module was *closed-loop*: N coroutine clients
each await a response before submitting again, so the offered rate
quietly adapts to the server's speed and queueing delay never compounds.
Real traffic does not behave that way.  An **open-loop** generator fires
requests on a fixed arrival schedule regardless of how the server is
doing — if the server falls behind, the backlog (and the latency tail)
grows, which is exactly the regime coordinated omission hides.

:class:`LoadGenerator` drives :class:`~repro.serving.server.ServingServer`
(or anything speaking its wire schema) with three arrival processes:

* ``"poisson"`` — exponential inter-arrivals at ``rate`` req/s (seeded,
  so a schedule is replayable bit-for-bit);
* ``"burst"`` — ``burst_size`` back-to-back arrivals every
  ``burst_size / rate`` seconds: same average rate, maximally unfriendly
  arrival pattern for a latency-triggered batcher;
* ``"trace"`` — an explicit list of arrival offsets (seconds from start),
  for replaying a recorded schedule.

The generator keeps at most ``max_outstanding`` requests in flight — the
budget bounds client memory, not the arrival process: when the budget is
exhausted at fire time the arrival is *dropped and counted* rather than
delayed (delaying would silently convert the harness back to closed
loop).  Every completed request records its end-to-end latency; the
:class:`LoadReport` summarises offered vs achieved rate and the
p50/p95/p99 tail, in the style of huggingbench's ``ExperimentRunner``.

Connections are **keep-alive by default**: idle sockets return to a pool
and the next arrival reuses one, so the harness pays the TCP handshake
per *concurrency slot* rather than per request and can offer rates near
the engine's in-process throughput.  ``keep_alive=False`` restores the
old connection-per-request behaviour; either way the report counts
``connections_opened`` so the before/after is visible in the numbers.

A run's arrival schedule is replayable: :meth:`LoadReport.save_trace`
persists the offsets to JSON and :func:`load_trace` feeds them back as a
``"trace"`` schedule — capture against one build, replay bit-for-bit
against the next (``--trace-out`` / ``--trace-in`` on the CLI).

``python -m repro.serving.loadgen`` is the CLI twin of
``python -m repro.serving.server`` (the ``make loadgen`` target).
"""

from __future__ import annotations

import asyncio
import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

import numpy as np

__all__ = ["LoadGenerator", "LoadReport", "load_trace"]

ARRIVAL_PROCESSES = ("poisson", "burst", "trace")


def poisson_schedule(rate: float, duration: float, seed: int = 0) -> list[float]:
    """Seeded Poisson arrivals: exponential gaps at ``rate`` req/s."""
    if rate <= 0:
        raise ValueError("rate must be positive")
    if duration <= 0:
        raise ValueError("duration must be positive")
    rng = np.random.default_rng(seed)
    offsets: list[float] = []
    t = 0.0
    while True:
        t += float(rng.exponential(1.0 / rate))
        if t >= duration:
            return offsets
        offsets.append(t)


def burst_schedule(
    rate: float, duration: float, burst_size: int = 8
) -> list[float]:
    """Deterministic bursts: ``burst_size`` simultaneous arrivals per period.

    The period is ``burst_size / rate``, so the *average* offered rate
    matches the Poisson schedule at the same ``rate`` — only the arrival
    pattern differs.
    """
    if rate <= 0:
        raise ValueError("rate must be positive")
    if duration <= 0:
        raise ValueError("duration must be positive")
    if burst_size <= 0:
        raise ValueError("burst_size must be positive")
    period = burst_size / rate
    total = math.floor(rate * duration)
    offsets: list[float] = []
    t = 0.0
    while len(offsets) < total:
        offsets.extend([t] * burst_size)
        t += period
    return offsets[:total]


def _percentile(sorted_values: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile over an already-sorted sample."""
    if not sorted_values:
        return float("nan")
    rank = max(0, math.ceil(pct / 100.0 * len(sorted_values)) - 1)
    return sorted_values[rank]


@dataclass
class LoadReport:
    """What one open-loop run observed, JSON-ready via :meth:`to_dict`."""

    process: str
    offered_rate: float  #: scheduled arrivals / schedule span (req/s)
    achieved_rate: float  #: completed OK responses / wall time (req/s)
    duration_s: float  #: wall time from first arrival to last completion
    scheduled: int  #: arrivals in the schedule
    sent: int  #: requests actually fired
    ok: int  #: 200 responses
    dropped: int  #: arrivals shed client-side (outstanding budget)
    errors: dict[str, int] = field(default_factory=dict)  #: status/exc -> count
    latency_mean_s: float = float("nan")
    latency_p50_s: float = float("nan")
    latency_p95_s: float = float("nan")
    latency_p99_s: float = float("nan")
    keep_alive: bool = True  #: whether connections were pooled and reused
    connections_opened: int = 0  #: TCP connections dialled over the run
    #: the arrival offsets that were fired, for :meth:`save_trace`
    schedule: list[float] = field(default_factory=list, repr=False)

    @property
    def failed(self) -> int:
        """Requests that fired but did not come back 200."""
        return sum(self.errors.values())

    def to_dict(self) -> dict[str, Any]:
        return {
            "process": self.process,
            "offered_rate": self.offered_rate,
            "achieved_rate": self.achieved_rate,
            "duration_s": self.duration_s,
            "scheduled": self.scheduled,
            "sent": self.sent,
            "ok": self.ok,
            "failed": self.failed,
            "dropped": self.dropped,
            "errors": dict(self.errors),
            "latency_mean_s": self.latency_mean_s,
            "latency_p50_s": self.latency_p50_s,
            "latency_p95_s": self.latency_p95_s,
            "latency_p99_s": self.latency_p99_s,
            "keep_alive": self.keep_alive,
            "connections_opened": self.connections_opened,
        }

    def save_trace(self, path: str | Path) -> Path:
        """Persist this run's arrival schedule for later replay.

        The file is JSON — ``{"process", "offered_rate", "schedule"}`` —
        and :func:`load_trace` turns it back into the offsets a
        ``process="trace"`` generator replays bit-for-bit against a new
        build (the ``--trace-out`` / ``--trace-in`` CLI round trip).
        """
        path = Path(path)
        path.write_text(
            json.dumps(
                {
                    "process": self.process,
                    "offered_rate": self.offered_rate,
                    "schedule": list(self.schedule),
                }
            )
        )
        return path


def load_trace(path: str | Path) -> list[float]:
    """Arrival offsets from a :meth:`LoadReport.save_trace` file."""
    data = json.loads(Path(path).read_text())
    schedule = data.get("schedule")
    if not isinstance(schedule, list):
        raise ValueError(f"{path} is not a saved trace (no schedule list)")
    return [float(t) for t in schedule]


class LoadGenerator:
    """Open-loop HTTP client for ``/v1/predict``.

    Parameters
    ----------
    host / port:
        Where the :class:`~repro.serving.server.ServingServer` listens.
    rate / duration / process / seed:
        The arrival schedule: ``process`` is ``"poisson"`` (default),
        ``"burst"`` or ``"trace"``; ``seed`` makes the Poisson schedule
        (and the generated inputs) replayable.
    schedule:
        With ``process="trace"``: explicit arrival offsets in seconds,
        non-negative and non-decreasing.
    burst_size:
        Arrivals per burst for ``process="burst"``.
    max_outstanding:
        In-flight budget.  An arrival that fires while the budget is
        exhausted is dropped and counted (open-loop semantics), never
        queued client-side.
    keep_alive:
        Pool and reuse connections (default).  ``False`` dials a fresh
        TCP connection per request — the pre-reuse behaviour, kept so
        the harness can measure what connection churn costs.
    deadline_ms:
        Optional per-request latency budget forwarded to the server.
    examples:
        Input array of shape ``(n, *input_shape)`` cycled over requests.
        Default: discover ``input_shape`` from ``GET /v1/health`` and
        generate 16 seeded Gaussian examples.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        rate: float = 50.0,
        duration: float = 2.0,
        process: str = "poisson",
        seed: int = 0,
        schedule: Sequence[float] | None = None,
        burst_size: int = 8,
        max_outstanding: int = 64,
        keep_alive: bool = True,
        deadline_ms: float | None = None,
        examples: np.ndarray | None = None,
        request_timeout: float = 30.0,
    ) -> None:
        if process not in ARRIVAL_PROCESSES:
            raise ValueError(
                f"process must be one of {sorted(ARRIVAL_PROCESSES)}, "
                f"got {process!r}"
            )
        if process == "trace":
            if schedule is None:
                raise ValueError("process='trace' requires an explicit schedule")
            offsets = [float(t) for t in schedule]
            if any(t < 0 for t in offsets) or any(
                b < a for a, b in zip(offsets, offsets[1:])
            ):
                raise ValueError(
                    "trace schedule must be non-negative and non-decreasing"
                )
        elif schedule is not None:
            raise ValueError("schedule is only valid with process='trace'")
        elif process == "poisson":
            offsets = poisson_schedule(rate, duration, seed)
        else:
            offsets = burst_schedule(rate, duration, burst_size)
        if max_outstanding <= 0:
            raise ValueError("max_outstanding must be positive")
        self.host = host
        self.port = int(port)
        self.process = process
        self.seed = int(seed)
        self.schedule = offsets
        self.max_outstanding = int(max_outstanding)
        self.keep_alive = bool(keep_alive)
        self.deadline_ms = deadline_ms
        self.examples = examples
        self.request_timeout = float(request_timeout)
        span = offsets[-1] if offsets else 0.0
        self.offered_rate = len(offsets) / span if span > 0 else float(len(offsets))
        #: per-request end-to-end latencies of OK responses (seconds)
        self.latencies: list[float] = []
        #: TCP connections dialled (pool misses included)
        self.connections_opened = 0
        # idle keep-alive connections; at most one per concurrency slot
        self._idle: list[tuple[asyncio.StreamReader, asyncio.StreamWriter]] = []

    # ------------------------------------------------------------------ #
    # one raw HTTP exchange (stdlib only, pooled keep-alive connections)
    # ------------------------------------------------------------------ #
    async def _open(self) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        self.connections_opened += 1
        return await asyncio.open_connection(self.host, self.port)

    @staticmethod
    async def _close(writer: asyncio.StreamWriter) -> None:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass

    async def _close_idle(self) -> None:
        """Drop every pooled connection (end of run)."""
        idle, self._idle = self._idle, []
        for _, writer in idle:
            await self._close(writer)

    async def _exchange(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        method: str,
        path: str,
        payload: dict | None,
    ) -> tuple[int, dict, bool]:
        """One request/response on an open connection.

        Returns ``(status, body, reusable)`` — ``reusable`` is False when
        either side asked to close, so the caller knows whether the
        connection may go back to the pool.
        """
        body = b"" if payload is None else json.dumps(payload).encode()
        connection = "keep-alive" if self.keep_alive else "close"
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {connection}\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()
        status_line = await reader.readline()
        if not status_line:
            raise ConnectionResetError("server closed the connection")
        status = int(status_line.split()[1])
        content_length = 0
        server_close = not self.keep_alive
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            name = name.strip().lower()
            if name == "content-length":
                content_length = int(value)
            elif name == "connection" and value.strip().lower() == "close":
                server_close = True
        raw = await reader.readexactly(content_length)
        return status, json.loads(raw) if raw else {}, not server_close

    async def _request(
        self, method: str, path: str, payload: dict | None = None
    ) -> tuple[int, dict]:
        pooled = bool(self._idle) and self.keep_alive
        reader, writer = self._idle.pop() if pooled else await self._open()
        try:
            status, body, reusable = await self._exchange(
                reader, writer, method, path, payload
            )
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
        ):
            await self._close(writer)
            if not pooled:
                raise
            # a pooled connection can go stale between requests (the server
            # closed it while idle); one retry on a fresh dial is safe
            # because nothing of the request was processed
            reader, writer = await self._open()
            try:
                status, body, reusable = await self._exchange(
                    reader, writer, method, path, payload
                )
            except BaseException:
                await self._close(writer)
                raise
        except BaseException:
            await self._close(writer)
            raise
        if reusable and self.keep_alive:
            self._idle.append((reader, writer))
        else:
            await self._close(writer)
        return status, body

    async def _resolve_examples(self) -> np.ndarray:
        if self.examples is not None:
            return np.asarray(self.examples, dtype=np.float64)
        _, health = await self._request("GET", "/v1/health")
        shape = health.get("input_shape")
        if not shape:
            raise RuntimeError(
                "server did not report input_shape; pass examples= explicitly"
            )
        rng = np.random.default_rng(self.seed)
        return rng.normal(size=(16, *shape))

    # ------------------------------------------------------------------ #
    # the open loop
    # ------------------------------------------------------------------ #
    async def run(self) -> LoadReport:
        """Fire the schedule; returns the :class:`LoadReport`."""
        examples = await self._resolve_examples()
        bodies = [
            {"x": examples[i % len(examples)].tolist()}
            for i in range(len(self.schedule))
        ]
        if self.deadline_ms is not None:
            for body in bodies:
                body["deadline_ms"] = self.deadline_ms
        loop = asyncio.get_running_loop()
        sem = asyncio.Semaphore(self.max_outstanding)
        errors: dict[str, int] = {}
        tasks: list[asyncio.Task] = []
        ok = dropped = 0

        async def fire(body: dict) -> None:
            nonlocal ok
            t0 = loop.time()
            try:
                status, _ = await asyncio.wait_for(
                    self._request("POST", "/v1/predict", body),
                    timeout=self.request_timeout,
                )
            except Exception as exc:
                key = type(exc).__name__
                errors[key] = errors.get(key, 0) + 1
            else:
                if status == 200:
                    ok += 1
                    self.latencies.append(loop.time() - t0)
                else:
                    key = str(status)
                    errors[key] = errors.get(key, 0) + 1
            finally:
                sem.release()

        start = loop.time()
        for offset, body in zip(self.schedule, bodies):
            delay = start + offset - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            if sem.locked():
                # budget exhausted: open-loop drops, never queues
                dropped += 1
                continue
            await sem.acquire()
            tasks.append(asyncio.ensure_future(fire(body)))
        if tasks:
            await asyncio.gather(*tasks)
        wall = loop.time() - start
        await self._close_idle()

        lat = sorted(self.latencies)
        return LoadReport(
            process=self.process,
            offered_rate=self.offered_rate,
            achieved_rate=ok / wall if wall > 0 else 0.0,
            duration_s=wall,
            scheduled=len(self.schedule),
            sent=len(tasks),
            ok=ok,
            dropped=dropped,
            errors=errors,
            latency_mean_s=sum(lat) / len(lat) if lat else float("nan"),
            latency_p50_s=_percentile(lat, 50),
            latency_p95_s=_percentile(lat, 95),
            latency_p99_s=_percentile(lat, 99),
            keep_alive=self.keep_alive,
            connections_opened=self.connections_opened,
            schedule=list(self.schedule),
        )


# ---------------------------------------------------------------------- #
# CLI: `python -m repro.serving.loadgen` (the `make loadgen` entry point)
# ---------------------------------------------------------------------- #
def _build_parser():
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.serving.loadgen",
        description="Open-loop load against a running repro serving server.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8100)
    parser.add_argument("--rate", type=float, default=50.0, help="offered req/s")
    parser.add_argument("--duration", type=float, default=2.0, help="seconds")
    parser.add_argument(
        "--process", choices=("poisson", "burst"), default="poisson"
    )
    parser.add_argument("--burst-size", type=int, default=8)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--deadline-ms", type=float, default=None)
    parser.add_argument("--max-outstanding", type=int, default=64)
    parser.add_argument(
        "--no-keep-alive",
        action="store_true",
        help="dial a fresh connection per request (the pre-reuse behaviour)",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="save this run's arrival schedule for replay with --trace-in",
    )
    parser.add_argument(
        "--trace-in",
        default=None,
        metavar="PATH",
        help="replay a saved schedule (overrides --process/--rate/--duration)",
    )
    parser.add_argument(
        "--json", action="store_true", help="print the raw LoadReport dict"
    )
    return parser


async def _main(args) -> None:
    if args.trace_in is not None:
        process, schedule = "trace", load_trace(args.trace_in)
    else:
        process, schedule = args.process, None
    gen = LoadGenerator(
        args.host,
        args.port,
        rate=args.rate,
        duration=args.duration,
        process=process,
        schedule=schedule,
        burst_size=args.burst_size,
        seed=args.seed,
        deadline_ms=args.deadline_ms,
        max_outstanding=args.max_outstanding,
        keep_alive=not args.no_keep_alive,
    )
    report = await gen.run()
    if args.trace_out is not None:
        report.save_trace(args.trace_out)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
        return
    print(
        f"{report.process} arrivals: offered {report.offered_rate:.1f} req/s, "
        f"achieved {report.achieved_rate:.1f} req/s over {report.duration_s:.2f}s "
        f"({report.connections_opened} connections, "
        f"keep-alive {'on' if report.keep_alive else 'off'})"
    )
    print(
        f"{report.ok} ok / {report.failed} failed / {report.dropped} dropped "
        f"of {report.scheduled} scheduled"
    )
    print(
        f"latency p50 {report.latency_p50_s * 1e3:.2f} ms, "
        f"p95 {report.latency_p95_s * 1e3:.2f} ms, "
        f"p99 {report.latency_p99_s * 1e3:.2f} ms"
    )


def main(argv=None) -> None:
    args = _build_parser().parse_args(argv)
    asyncio.run(_main(args))


if __name__ == "__main__":
    main()
