"""Network front end: an asyncio HTTP/1.1 server over :class:`ServingEngine`.

Everything before this module stopped at in-process ``await submit(x)`` —
every throughput/latency number was *closed-loop* (each caller waits for
its response before sending again), which hides the queueing behaviour a
real deployment lives or dies by.  :class:`ServingServer` puts a protocol
boundary on the serving tier using nothing but the standard library
(``asyncio.start_server`` + hand-rolled HTTP/1.1 with keep-alive), so an
open-loop load generator (:mod:`repro.serving.loadgen`) can drive it the
way clients drive a model server.

Endpoints
---------
``POST /v1/predict``
    Body ``{"x": <nested list, the per-example input shape>,
    "deadline_ms": <optional latency budget>}``.  Responds 200 with the
    JSON form of :class:`~repro.uncertainty.metrics.UncertaintyResult`:
    ``{"probs": [...], "label": ..., "confidence": ..., "entropy": ...,
    "mutual_information": ..., "exit_index": ..., "num_samples": ...,
    "latency_s": ...}``.  ``probs`` round-trips float64 exactly (JSON
    carries ``repr``-faithful doubles), so a served response is
    **bit-identical** to a direct ``ServingEngine.submit`` under the same
    config and batch formation.
``GET /v1/stats``
    The full :class:`~repro.serving.engine.ServingStats` as JSON
    (``ServingStats.to_dict()``).
``GET /v1/health``
    Fleet liveness: 200 with ``{"status": "ok" | "degraded", ...}`` while
    at least one worker probes alive (``degraded`` = fewer than target),
    503 ``{"status": "down"}`` when none do.  Uses the pools' *probed*
    liveness (``alive_workers``), so a killed worker flips health
    immediately — before the supervisor's next scan respawns it.

Error mapping is typed, not stringly: ``ServerOverloaded`` → **503**,
``DeadlineExceeded`` → **504**, malformed JSON / wrong shape / bad field
types → **400**, a body over ``max_body_bytes`` → **413**, unknown path →
**404**, wrong method → **405**, anything unexpected → **500**.  Every
error body is ``{"error": <slug>, "detail": <message>}``.

Shutdown is graceful by default: :meth:`ServingServer.stop` closes the
listener, lets every request already past its request line finish and
write its response, then stops the engine (draining its queue) if the
server started it.

``python -m repro.serving.server`` boots a demo model behind the front
end — the ``make serve`` entry point; drive it with
``python -m repro.serving.loadgen``.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass
from typing import Any

import numpy as np

from .batcher import DeadlineExceeded, ServerOverloaded
from .config import ServingConfig
from .engine import ServingEngine
from .workers.base import engine_num_classes

__all__ = ["ServingServer"]

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: request-line + header hygiene bounds (per request, not per body)
_MAX_HEADER_LINE = 8192
_MAX_HEADERS = 64


class _HttpError(Exception):
    """Internal: map a protocol-level problem to (status, slug, detail)."""

    def __init__(self, status: int, error: str, detail: str) -> None:
        super().__init__(detail)
        self.status = status
        self.error = error
        self.detail = detail


@dataclass
class _Request:
    method: str
    path: str
    version: str
    headers: dict[str, str]
    body: bytes

    @property
    def keep_alive(self) -> bool:
        connection = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return connection == "keep-alive"
        return connection != "close"


class ServingServer:
    """Serve a :class:`ServingEngine` over loopback-grade HTTP/1.1.

    Parameters
    ----------
    engine:
        The serving engine to expose.  If it is not running when
        :meth:`start` is called, the server starts it and owns its
        lifecycle (stopping it again on :meth:`stop`); an already-running
        engine is left running on shutdown.
    host / port:
        Bind address.  ``port=0`` (default) picks a free port; read the
        bound one from :attr:`port` after :meth:`start` — this is what
        keeps tests and CI smoke runs collision-free.
    max_body_bytes:
        Reject request bodies larger than this with **413** instead of
        buffering them (one microbatch of float64 images fits in the
        default 8 MiB with room to spare).

    Examples
    --------
    >>> # doctest: +SKIP
    >>> server = ServingServer(ServingEngine(model, config))
    >>> async with server:
    ...     print(f"listening on http://{server.host}:{server.port}")
    ...     await asyncio.Event().wait()  # serve forever
    """

    def __init__(
        self,
        engine: ServingEngine,
        host: str = "127.0.0.1",
        port: int = 0,
        max_body_bytes: int = 8 << 20,
    ) -> None:
        if max_body_bytes <= 0:
            raise ValueError("max_body_bytes must be positive")
        self.engine = engine
        self.host = host
        self.port = int(port)
        self.max_body_bytes = int(max_body_bytes)
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.Task] = set()
        self._closing = asyncio.Event()
        self._owns_engine = False

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def running(self) -> bool:
        return self._server is not None

    async def start(self) -> None:
        """Bind the listener (idempotent); starts the engine if needed."""
        if self._server is not None:
            return
        if not self.engine.running:
            await self.engine.start()
            self._owns_engine = True
        self._closing = asyncio.Event()
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port
        )
        # port=0 resolves at bind time; publish the real one
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self, drain: bool = True) -> None:
        """Stop listening; with ``drain=True`` finish in-flight requests.

        Draining lets every request that already sent its request line
        run to completion and write its response; idle keep-alive
        connections are closed immediately.  ``drain=False`` aborts
        in-flight requests instead.  Either way, the engine is stopped
        (with the same ``drain`` policy) iff this server started it.
        """
        if self._server is None:
            return
        server, self._server = self._server, None
        server.close()
        await server.wait_closed()
        self._closing.set()  # wakes idle keep-alive connections
        connections = list(self._connections)
        if not drain:
            for task in connections:
                task.cancel()
        if connections:
            await asyncio.gather(*connections, return_exceptions=True)
        if self._owns_engine:
            self._owns_engine = False
            await self.engine.stop(drain=drain)

    async def __aenter__(self) -> "ServingServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop(drain=True)

    # ------------------------------------------------------------------ #
    # connection handling
    # ------------------------------------------------------------------ #
    def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.ensure_future(self._serve_connection(reader, writer))
        self._connections.add(task)
        task.add_done_callback(self._connections.discard)

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while not self._closing.is_set():
                # wait for the next request OR the shutdown signal: an idle
                # keep-alive connection must not hold a draining stop() open
                read_task = asyncio.ensure_future(self._read_request(reader))
                closing = asyncio.ensure_future(self._closing.wait())
                done, _ = await asyncio.wait(
                    {read_task, closing}, return_when=asyncio.FIRST_COMPLETED
                )
                closing.cancel()
                if read_task not in done:
                    read_task.cancel()
                    try:
                        await read_task
                    except (asyncio.CancelledError, _HttpError, Exception):
                        pass
                    break
                try:
                    request = read_task.result()
                except _HttpError as exc:
                    # protocol-level failure: answer if possible, then drop
                    # the connection (the stream position is untrustworthy)
                    await self._write_json(
                        writer,
                        exc.status,
                        {"error": exc.error, "detail": exc.detail},
                        keep_alive=False,
                    )
                    break
                except (
                    asyncio.IncompleteReadError,
                    ConnectionResetError,
                    BrokenPipeError,
                ):
                    break
                if request is None:  # clean EOF between requests
                    break
                status, payload = await self._handle(request)
                keep_alive = request.keep_alive and not self._closing.is_set()
                try:
                    await self._write_json(writer, status, payload, keep_alive)
                except (ConnectionResetError, BrokenPipeError):
                    break
                if not keep_alive:
                    break
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader) -> _Request | None:
        """Parse one HTTP/1.1 request; ``None`` on clean EOF."""
        request_line = await reader.readline()
        if not request_line:
            return None
        if len(request_line) > _MAX_HEADER_LINE:
            raise _HttpError(400, "bad_request", "request line too long")
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise _HttpError(400, "bad_request", "malformed request line")
        method, target, version = parts
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if len(line) > _MAX_HEADER_LINE:
                raise _HttpError(400, "bad_request", "header line too long")
            if line in (b"\r\n", b"\n"):
                break
            if not line:
                raise _HttpError(400, "bad_request", "truncated headers")
            name, sep, value = line.decode("latin-1").partition(":")
            if not sep:
                raise _HttpError(400, "bad_request", f"malformed header {name!r}")
            headers[name.strip().lower()] = value.strip()
            if len(headers) > _MAX_HEADERS:
                raise _HttpError(400, "bad_request", "too many headers")
        try:
            content_length = int(headers.get("content-length", "0"))
        except ValueError:
            raise _HttpError(400, "bad_request", "invalid Content-Length") from None
        if content_length < 0:
            raise _HttpError(400, "bad_request", "invalid Content-Length")
        if content_length > self.max_body_bytes:
            raise _HttpError(
                413,
                "payload_too_large",
                f"body of {content_length} bytes exceeds the "
                f"{self.max_body_bytes}-byte limit",
            )
        body = await reader.readexactly(content_length) if content_length else b""
        return _Request(method, target.split("?", 1)[0], version, headers, body)

    async def _write_json(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict,
        keep_alive: bool,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_REASONS[status]}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #
    async def _handle(self, request: _Request) -> tuple[int, dict]:
        route = (request.method, request.path)
        try:
            if route == ("POST", "/v1/predict"):
                return await self._predict(request)
            if route == ("GET", "/v1/stats"):
                return 200, self.engine.stats().to_dict()
            if route == ("GET", "/v1/health"):
                return self._health()
            if request.path in ("/v1/predict", "/v1/stats", "/v1/health"):
                return 405, {
                    "error": "method_not_allowed",
                    "detail": f"{request.method} not supported on {request.path}",
                }
            return 404, {
                "error": "not_found",
                "detail": f"unknown path {request.path}",
            }
        except ServerOverloaded as exc:
            return 503, {"error": "overloaded", "detail": str(exc)}
        except DeadlineExceeded as exc:
            return 504, {"error": "deadline_exceeded", "detail": str(exc)}
        except _HttpError as exc:
            return exc.status, {"error": exc.error, "detail": exc.detail}
        except Exception as exc:  # boundary: never kill the connection loop
            return 500, {"error": "internal", "detail": f"{type(exc).__name__}: {exc}"}

    async def _predict(self, request: _Request) -> tuple[int, dict]:
        try:
            payload = json.loads(request.body)
        except ValueError:
            raise _HttpError(400, "bad_request", "body is not valid JSON") from None
        if not isinstance(payload, dict) or "x" not in payload:
            raise _HttpError(400, "bad_request", 'body must be {"x": <example>, ...}')
        deadline_ms = payload.get("deadline_ms")
        if deadline_ms is not None and (
            isinstance(deadline_ms, bool)
            or not isinstance(deadline_ms, (int, float))
            or deadline_ms < 0
        ):
            raise _HttpError(
                400, "bad_request", "deadline_ms must be a non-negative number"
            )
        try:
            x = np.asarray(payload["x"], dtype=np.float64)
        except (TypeError, ValueError) as exc:
            raise _HttpError(
                400, "bad_request", f"x is not a numeric array: {exc}"
            ) from None
        deadline = None if deadline_ms is None else float(deadline_ms) / 1000.0
        try:
            result = await self.engine.submit(x, deadline=deadline)
        except ValueError as exc:  # shape validation — the caller's fault
            raise _HttpError(400, "bad_request", str(exc)) from None
        return 200, {
            # float64 -> repr-faithful JSON doubles: parsing them back
            # yields bit-identical arrays (tests/serving/test_server.py)
            "probs": result.probs.tolist(),
            "label": int(result.label),
            "confidence": float(result.confidence),
            "entropy": float(result.entropy),
            "mutual_information": (
                None
                if result.mutual_information is None
                else float(result.mutual_information)
            ),
            "exit_index": result.exit_index,
            "num_samples": result.num_samples,
            "latency_s": result.latency_s,
        }

    def _health(self) -> tuple[int, dict]:
        engine = self.engine
        alive = engine.alive_workers if engine.running else 0
        target = engine._pool.target_workers
        if not engine.running or alive == 0:
            status, state = 503, "down"
        elif alive < target:
            status, state = 200, "degraded"
        else:
            status, state = 200, "ok"
        input_shape = engine.input_shape
        return status, {
            "status": state,
            "alive_workers": alive,
            "current_workers": engine._pool.current_workers if engine.running else 0,
            "target_workers": target,
            "worker_backend": engine.worker_backend,
            # enough model facts for a client to shape its requests
            "input_shape": list(input_shape) if input_shape is not None else None,
            "num_classes": engine_num_classes(engine.engine),
        }


# ---------------------------------------------------------------------- #
# CLI: `python -m repro.serving.server` (the `make serve` entry point)
# ---------------------------------------------------------------------- #
def _demo_model():
    """The small demo LeNet served by the CLI (same scale as the examples)."""
    from ..core import MultiExitBayesNet, MultiExitConfig
    from ..nn.architectures import lenet5_spec

    spec = lenet5_spec(input_shape=(1, 12, 12), num_classes=5, width_multiplier=0.5)
    return MultiExitBayesNet(
        spec, MultiExitConfig(num_exits=2, mcd_layers_per_exit=1, seed=0)
    )


def _build_parser():
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.serving.server",
        description="Serve the demo multi-exit MCD model over HTTP.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8100)
    parser.add_argument("--num-samples", type=int, default=8)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument(
        "--backend", choices=("thread", "process"), default="thread"
    )
    parser.add_argument("--max-batch-size", type=int, default=32)
    parser.add_argument("--max-batch-latency", type=float, default=0.002)
    parser.add_argument("--max-queue-size", type=int, default=256)
    parser.add_argument(
        "--config-json",
        default=None,
        help="full ServingConfig as JSON (overrides the flat flags)",
    )
    return parser


async def _serve_forever(args) -> None:
    if args.config_json is not None:
        config = ServingConfig.from_dict(json.loads(args.config_json))
    else:
        config = ServingConfig.from_kwargs(
            num_samples=args.num_samples,
            workers=args.workers,
            worker_backend=args.backend,
            max_batch_size=args.max_batch_size,
            max_batch_latency=args.max_batch_latency,
            max_queue_size=args.max_queue_size,
        )
    engine = ServingEngine(_demo_model(), config)
    async with ServingServer(engine, host=args.host, port=args.port) as server:
        shape = "x".join(map(str, engine.input_shape or ()))
        print(
            f"serving on http://{server.host}:{server.port}  "
            f"(input {shape}, {config.worker_backend} backend, "
            f"workers={config.workers}) — Ctrl-C to stop",
            flush=True,
        )
        try:
            await asyncio.Event().wait()
        except asyncio.CancelledError:
            pass


def main(argv=None) -> None:
    args = _build_parser().parse_args(argv)
    try:
        asyncio.run(_serve_forever(args))
    except KeyboardInterrupt:
        print("shutting down")


if __name__ == "__main__":
    main()
