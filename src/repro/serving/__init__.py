"""Async serving layer over the sample-folded inference engines.

The batch-oriented engines of :mod:`repro.inference` answer "run this
``(N, …)`` array"; a service has to answer "here is *one* example, respond
soon" for thousands of concurrent callers.  This subpackage bridges the
two with classic dynamic batching:

* :class:`DynamicBatcher` — payload-agnostic microbatch assembly: dispatch
  when full (``max_batch_size``) or when the oldest queued request has
  waited ``max_batch_latency`` seconds; earliest-deadline-first ordering of
  the backlog for deadlined requests; up to ``max_concurrent_batches``
  batches in flight with assembly pipelined against compute; bounded-queue
  backpressure that either *awaits* capacity (default) or fails fast with
  :class:`ServerOverloaded`.
* :class:`ServingEngine` — the facade: ``await submit(x, deadline=…)``
  returns an :class:`repro.uncertainty.UncertaintyResult` (probabilities,
  entropy, mutual information, exit index, latency).  Batches run the
  folded ``predict_mc`` hot path — or the active-set early-exit path — on
  a pool of ``workers`` reentrant engine replicas (shared parameters,
  private :class:`~repro.nn.ForwardContext` per replica plus a spawned
  per-batch context), so the event loop never blocks on NumPy and
  multi-core hosts compute batches genuinely in parallel.
* :mod:`repro.serving.workers` — the two batch-execution backends behind
  ``ServingEngine(worker_backend=...)``: K reentrant engine replicas on a
  thread pool, or K worker *processes* over a shared-memory parameter
  arena (:class:`~repro.nn.shm.SharedParameterArena`) with crash retry.
* :mod:`repro.serving.fleet` — the self-healing, elastic fleet layer:
  :class:`WorkerSupervisor` respawns dead workers re-attached to the
  current arena generation, :class:`Autoscaler` sizes K between
  ``min_workers``/``max_workers`` from live signals, and a test-only
  :class:`FaultPlan` injects deterministic worker kills for the chaos
  suite.  Enable with ``ServingEngine(fleet=FleetConfig(...))``; hot-swap
  models with ``ServingEngine.swap_model``.
* :class:`ServingConfig` / :class:`BatcherConfig` — the serializable
  configuration surface: one frozen, validated object instead of 15 flat
  kwargs; ``ServingEngine(model, config=ServingConfig(...))`` is the
  primary constructor and the dicts round-trip as JSON across the wire.
* :class:`ServingServer` — the network front end: a stdlib asyncio
  HTTP/1.1 server exposing ``POST /v1/predict``, ``GET /v1/stats`` and
  ``GET /v1/health``, with typed error mapping (``ServerOverloaded`` →
  503, ``DeadlineExceeded`` → 504, bad payload → 400).
* :class:`LoadGenerator` / :class:`LoadReport` — the open-loop load
  harness: Poisson / burst / replayable-trace arrival schedules, a
  bounded outstanding-request budget, and achieved-vs-offered-rate plus
  p50/p95/p99 latency reporting.
* :class:`ServingStats` / :class:`BatcherStats` — throughput, latency
  percentiles, batch-size, exit-distribution, shed, crash and fleet
  counters.

See ``docs/architecture.md`` for the request dataflow and
``examples/serving_demo.py`` for an end-to-end run.
"""

from importlib import import_module

from .batcher import BatcherStats, DeadlineExceeded, DynamicBatcher, ServerOverloaded
from .config import BatcherConfig, ServingConfig
from .engine import ServingEngine, ServingStats
from .fleet import (
    Autoscaler,
    FaultInjection,
    FaultPlan,
    FleetConfig,
    FleetSignals,
    WorkerSupervisor,
)
from .workers import ProcessWorkerPool, ThreadWorkerPool, WorkerCrashed

__all__ = [
    "DynamicBatcher",
    "BatcherStats",
    "BatcherConfig",
    "ServingConfig",
    "ServerOverloaded",
    "DeadlineExceeded",
    "ServingEngine",
    "ServingServer",
    "ServingStats",
    "LoadGenerator",
    "LoadReport",
    "load_trace",
    "ThreadWorkerPool",
    "ProcessWorkerPool",
    "WorkerCrashed",
    "Autoscaler",
    "FaultInjection",
    "FaultPlan",
    "FleetConfig",
    "FleetSignals",
    "WorkerSupervisor",
]

# ``server`` and ``loadgen`` double as CLI entry points
# (``python -m repro.serving.server`` / ``...loadgen``); importing them
# eagerly here would make runpy warn about the module being half-imported.
# PEP 562 lazy attributes keep ``from repro.serving import ServingServer``
# working without the package init pulling the CLI modules in.
_LAZY_EXPORTS = {
    "ServingServer": ".server",
    "LoadGenerator": ".loadgen",
    "LoadReport": ".loadgen",
    "load_trace": ".loadgen",
}


def __getattr__(name: str):
    if name in _LAZY_EXPORTS:
        value = getattr(import_module(_LAZY_EXPORTS[name], __name__), name)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
