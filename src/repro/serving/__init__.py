"""Async serving layer over the sample-folded inference engines.

The batch-oriented engines of :mod:`repro.inference` answer "run this
``(N, …)`` array"; a service has to answer "here is *one* example, respond
soon" for thousands of concurrent callers.  This subpackage bridges the
two with classic dynamic batching:

* :class:`DynamicBatcher` — payload-agnostic microbatch assembly: dispatch
  when full (``max_batch_size``) or when the oldest queued request has
  waited ``max_batch_latency`` seconds; bounded-queue backpressure that
  either *awaits* capacity (default) or fails fast with
  :class:`ServerOverloaded`.
* :class:`ServingEngine` — the facade: ``await submit(x)`` returns an
  :class:`repro.uncertainty.UncertaintyResult` (probabilities, entropy,
  mutual information, exit index, latency).  Batches run the folded
  ``predict_mc`` hot path — or the active-set early-exit path — inside a
  worker executor, so the event loop never blocks on NumPy.
* :class:`ServingStats` / :class:`BatcherStats` — throughput, latency
  percentiles, batch-size and exit-distribution counters.

See ``docs/architecture.md`` for the request dataflow and
``examples/serving_demo.py`` for an end-to-end run.
"""

from .batcher import BatcherStats, DynamicBatcher, ServerOverloaded
from .engine import ServingEngine, ServingStats

__all__ = [
    "DynamicBatcher",
    "BatcherStats",
    "ServerOverloaded",
    "ServingEngine",
    "ServingStats",
]
