"""Async serving facade over the sample-folded inference engines.

:class:`ServingEngine` turns the batch-oriented engines of
:mod:`repro.inference` into a request/response service: callers submit one
example at a time, a :class:`~repro.serving.batcher.DynamicBatcher`
assembles concurrent requests into microbatches, and each microbatch runs
through the folded Monte-Carlo hot path (or the active-set early-exit path)
on one of ``workers`` engine replicas in a thread-pool executor, so the
asyncio event loop never blocks on NumPy.

Request lifecycle::

    submit(x) ──► bounded queue ──► DynamicBatcher ──► replica checkout
                  (backpressure)    (size/latency/EDF)       │
                                                             ▼
    UncertaintyResult ◄── per-example split ◄── folded predict_mc /
    (+ latency stamp)                           early_exit_predict
                                                (K-worker executor)

Multi-worker serving (``workers=K``) exploits the reentrancy of the layer
stack: each worker owns an engine *replica* — same ``Parameter`` storage
(zero-copy), private :class:`~repro.nn.context.ForwardContext` and
activation cache.  Two interchangeable backends execute the batches
(see :mod:`repro.serving.workers`): ``worker_backend="thread"`` runs
replicas on a thread pool (NumPy's GEMMs release the GIL, so GEMM-heavy
batches overlap on multi-core hosts), while ``worker_backend="process"``
spawns K worker *processes* over a shared-memory parameter arena — lifting
the GIL ceiling entirely for small, glue-bound models, with crash
isolation and weight updates propagated through the shared segment.
Every batch gets a *fresh context spawned from the layers' seeds and the
batch's sequence number*, which makes a batch's results deterministic and
independent of which worker computes it, which backend runs it, or what
that worker served before.  Consequently ``workers=1`` and ``workers=4``
servers — thread or process — produce bit-identical responses whenever
they form the same batches, e.g. under one-request-at-a-time submission;
a concurrent flood may batch differently across worker counts (different
batch boundaries ⇒ different spawned contexts), changing MC draws while
keeping the distributional semantics.

The response type is :class:`repro.uncertainty.UncertaintyResult` — mean
probabilities plus calibrated uncertainty (predictive entropy, and mutual
information when MC samples are drawn), the exit index in early-exit mode,
and the end-to-end request latency.
"""

from __future__ import annotations

import asyncio
import time
import warnings
from collections import deque
from concurrent.futures import Executor, ThreadPoolExecutor
from dataclasses import asdict, dataclass
from typing import Iterable, Sequence

import numpy as np

from ..core.bayesnn import MultiExitBayesNet
from ..inference.engine import InferenceEngine, NetworkEngine
from ..nn.model import Network
from ..uncertainty.metrics import UncertaintyResult
from .batcher import BatcherStats, DynamicBatcher
from .config import ServingConfig
from .fleet import FleetSignals, WorkerSupervisor
from .workers import ProcessWorkerPool, ThreadWorkerPool

__all__ = ["ServingEngine", "ServingStats"]

_POOL_BACKENDS = {"thread": ThreadWorkerPool, "process": ProcessWorkerPool}


@dataclass
class ServingStats:
    """Aggregate view of a :class:`ServingEngine`'s lifetime so far.

    Attributes
    ----------
    requests_completed / requests_rejected / requests_cancelled:
        Request outcome counters (from the underlying batcher).
    num_batches / mean_batch_size / queue_peak:
        Batch-assembly counters — how well dynamic batching amortised the
        folded passes, and how deep the backlog got.
    throughput_rps:
        Completed requests per second of wall time between the first
        submission and the latest completion (0.0 before any completion).
    latency_p50_s / latency_p95_s / latency_max_s:
        Percentiles of end-to-end request latency (submit to response,
        queueing included), over a bounded window of the most recent
        requests.
    exit_counts:
        In early-exit mode, completed requests per exit index; ``None``
        in MC-sampling mode.
    workers / worker_backend:
        Size and kind (``"thread"``/``"process"``) of the replica pool
        serving batches.
    worker_crashes:
        Worker processes that died mid-service; their in-flight batches
        were retried on live siblings (always 0 for the thread backend).
    requests_shed:
        Requests rejected with ``DeadlineExceeded`` by the opt-in
        shed-on-missed-deadline policy (``admission_timeout``).
    transport:
        How batches reach workers: ``"inproc"`` for the thread backend,
        ``"ring"``/``"pipe"`` for the process backend.
    transport_ring_batches / transport_pipe_batches:
        Process backend: batches that crossed the boundary through the
        shared-memory ring vs the pickle pipe (fallbacks included) —
        a healthy ring configuration shows pipe counts near zero.
    workers_respawned / scale_events / current_workers / arena_generation:
        Fleet telemetry (see :mod:`repro.serving.fleet`): dead workers
        replaced by the supervisor, completed grow/shrink transitions,
        replicas currently able to take a batch, and the shared-arena
        generation (bumped once per zero-downtime model swap).
    cache_hits / cache_misses:
        Content-keyed activation-cache traffic summed over every replica
        the pool has owned (thread replicas report directly, process
        workers piggyback deltas on each batch acknowledgement).  A hit
        means a batch's bytes were served before under the current
        weights and the deterministic forward prefix was skipped.
    """

    requests_completed: int
    requests_rejected: int
    requests_cancelled: int
    num_batches: int
    mean_batch_size: float
    queue_peak: int
    throughput_rps: float
    latency_p50_s: float
    latency_p95_s: float
    latency_max_s: float
    exit_counts: list[int] | None = None
    workers: int = 1
    #: ``"thread"`` or ``"process"`` — where batches execute
    worker_backend: str = "thread"
    #: worker processes that died and were replaced-by-retry (process backend)
    worker_crashes: int = 0
    #: requests rejected by the shed-on-missed-deadline policy (see
    #: :class:`~repro.serving.batcher.DynamicBatcher` ``admission_timeout``)
    requests_shed: int = 0
    #: batch transport: ``"inproc"`` (thread), ``"ring"`` or ``"pipe"``
    transport: str = "inproc"
    #: process backend: batches shipped via the shm ring / the pickle pipe
    transport_ring_batches: int = 0
    transport_pipe_batches: int = 0
    #: dead workers replaced by the supervisor (crash-retry excluded)
    workers_respawned: int = 0
    #: completed autoscale (or manual ``scale_to``) transitions
    scale_events: int = 0
    #: replicas currently able to take a batch (tracks scaling live)
    current_workers: int = 0
    #: replicas whose worker probes alive *right now* (process liveness;
    #: a silent death shows here before the supervisor reaps it)
    alive_workers: int = 0
    #: shared-arena generation; +1 per zero-downtime ``swap_model``
    arena_generation: int = 0
    #: content-keyed activation-cache traffic summed over every replica the
    #: pool has owned: a hit skips the deterministic forward prefix for a
    #: batch whose bytes were served before under the current weights
    cache_hits: int = 0
    cache_misses: int = 0

    def to_dict(self) -> dict:
        """JSON-ready plain-dict form — the ``GET /v1/stats`` wire payload."""
        return asdict(self)


class ServingEngine:
    """Asynchronous single-example serving over folded inference engines.

    Parameters
    ----------
    model:
        What to serve: a :class:`~repro.core.bayesnn.MultiExitBayesNet`
        (its lazily-built folded engine is reused, so activation caches are
        shared with batch callers), an :class:`InferenceEngine` /
        :class:`NetworkEngine`, or a flat :class:`~repro.nn.model.Network`
        (wrapped in a :class:`NetworkEngine`).
    config:
        A :class:`~repro.serving.config.ServingConfig` describing
        everything else: inference mode (``num_samples`` /
        ``early_exit_threshold``), the nested
        :class:`~repro.serving.config.BatcherConfig` (batching,
        backpressure, deadline shedding), the worker fleet (``workers``,
        ``worker_backend``, ``worker_transport``), an optional
        :class:`~repro.serving.fleet.FleetConfig` and the test-only
        :class:`~repro.serving.fleet.FaultPlan`.  Field semantics are
        documented on the config classes; the config round-trips through
        :meth:`~repro.serving.config.ServingConfig.to_dict` /
        ``from_dict`` so the network front end
        (:mod:`repro.serving.server`) can carry it as JSON.  ``None``
        serves with all defaults.
    executor:
        Executor for the parent-side work (NumPy for threads, channel I/O
        for processes).  Defaults to a private ``workers``-thread pool.
        A custom executor must provide at least ``workers`` threads;
        worker checkout still guarantees no replica runs two batches at
        once.  Deliberately *not* part of the config: an executor is a
        live resource, not serializable policy.
    **legacy_kwargs:
        The historical flat keyword surface (``num_samples=...,
        max_batch_size=..., workers=..., fleet=...,`` …) keeps working
        through a deprecation shim: the kwargs are folded into a
        :class:`ServingConfig` via
        :meth:`~repro.serving.config.ServingConfig.from_kwargs` and a
        :class:`DeprecationWarning` is emitted.  Mixing ``config=`` with
        flat kwargs is an error.

    Examples
    --------
    >>> # doctest: +SKIP
    >>> config = ServingConfig(num_samples=8, workers=4)
    >>> async with model.serving_engine(config=config) as server:
    ...     result = await server.submit(example, deadline=0.050)
    ...     print(result.label, result.confidence, result.latency_s)
    """

    def __init__(
        self,
        model: MultiExitBayesNet | InferenceEngine | NetworkEngine | Network,
        config: ServingConfig | None = None,
        *,
        executor: Executor | None = None,
        **legacy_kwargs,
    ) -> None:
        if legacy_kwargs:
            if config is not None:
                raise TypeError(
                    "pass either config=ServingConfig(...) or the legacy flat "
                    f"kwargs, not both (got {sorted(legacy_kwargs)})"
                )
            warnings.warn(
                "ServingEngine's flat keyword arguments are deprecated; build "
                "a repro.serving.ServingConfig and pass "
                "ServingEngine(model, config=...)",
                DeprecationWarning,
                stacklevel=2,
            )
            config = ServingConfig.from_kwargs(**legacy_kwargs)
        elif config is None:
            config = ServingConfig()
        elif not isinstance(config, ServingConfig):
            raise TypeError(
                f"config must be a ServingConfig, got {type(config).__name__}"
            )
        if isinstance(model, MultiExitBayesNet):
            self.engine: InferenceEngine | NetworkEngine = model.engine
        elif isinstance(model, Network):
            self.engine = NetworkEngine(model, cache_size=4)
        elif isinstance(model, (InferenceEngine, NetworkEngine)):
            self.engine = model
        else:
            raise TypeError(
                "model must be a MultiExitBayesNet, InferenceEngine, "
                f"NetworkEngine or Network, got {type(model).__name__}"
            )
        # the one validation the config cannot do alone: early exit needs
        # a model that actually has exits
        if config.early_exit_threshold is not None and not isinstance(
            self.engine, InferenceEngine
        ):
            raise ValueError(
                "early-exit serving requires a multi-exit model "
                "(InferenceEngine); flat networks have a single exit"
            )
        self.config = config
        self.num_samples = config.num_samples
        self.early_exit_threshold = config.early_exit_threshold
        self.workers = int(config.workers)
        self.worker_backend = config.worker_backend
        self.worker_transport = config.worker_transport
        self.fleet = config.fleet
        fleet = config.fleet
        batcher_config = config.batcher
        #: largest fleet size this engine may reach (executor sizing)
        self._max_fleet = (
            fleet.resolve_bounds(self.workers)[1] if fleet is not None else self.workers
        )
        pool_kwargs = dict(
            workers=self.workers,
            num_samples=config.num_samples,
            early_exit_threshold=config.early_exit_threshold,
            # batch geometry enables pre-pinned staging buffers (thread
            # backend) and ring-slot sizing (process backend)
            max_batch_size=int(batcher_config.max_batch_size),
            input_shape=self.input_shape,
        )
        if config.worker_backend == "process":
            pool_kwargs["transport"] = config.worker_transport
            pool_kwargs["fault_plan"] = config.fault_plan
            if fleet is not None:
                pool_kwargs["respawn_wait"] = fleet.respawn_wait
        self._pool = _POOL_BACKENDS[config.worker_backend](self.engine, **pool_kwargs)
        self.supervisor: WorkerSupervisor | None = None
        # autoscaler signal deltas (shed/completed since last evaluation)
        self._shed_seen = 0
        self._completed_seen = 0
        self._batch_seq = 0
        self._batcher = DynamicBatcher(
            self._dispatch,
            max_batch_size=batcher_config.max_batch_size,
            max_batch_latency=batcher_config.max_batch_latency,
            max_queue_size=batcher_config.max_queue_size,
            reject_on_full=batcher_config.reject_on_full,
            admission_timeout=batcher_config.admission_timeout,
            max_concurrent_batches=self.workers,
        )
        self._executor = executor
        self._owns_executor = executor is None
        # bounded: a long-lived server must not accumulate one float per
        # request forever; percentiles are over the most recent window
        self._latencies: deque[float] = deque(maxlen=16384)
        self._exit_counts: list[int] | None = None
        if config.early_exit_threshold is not None and isinstance(
            self.engine, InferenceEngine
        ):
            self._exit_counts = [0] * self.engine.model.num_exits
        self._first_submit_at: float | None = None
        self._last_done_at: float | None = None

    @staticmethod
    def _engine_input_shape(
        engine: InferenceEngine | NetworkEngine,
    ) -> tuple[int, ...] | None:
        if isinstance(engine, InferenceEngine):
            return tuple(engine.model.input_shape)
        shape = engine.network.input_shape
        return tuple(shape) if shape is not None else None

    @property
    def input_shape(self) -> tuple[int, ...] | None:
        """Per-example input shape requests must match (``None`` if unknown)."""
        return self._engine_input_shape(self.engine)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def running(self) -> bool:
        return self._batcher.running

    async def start(self) -> None:
        """Start the worker pool and the batching loop (idempotent).

        With ``worker_backend="process"`` this is where the shared-memory
        arena is built and the K worker processes spawn — expect a startup
        cost of an interpreter + imports per worker.
        """
        if self._executor is None:
            # headroom beyond the largest fleet: supervisor respawns and
            # drain-retire shutdowns run on this executor concurrently
            # with up to max-fleet in-flight batches
            extra = 2 if self.fleet is not None else 0
            self._executor = ThreadPoolExecutor(
                max_workers=self._max_fleet + extra,
                thread_name_prefix="repro-serving",
            )
        await self._pool.start(self._executor)
        await self._batcher.start()
        if self.fleet is not None:
            if self.supervisor is None:
                signal_source = (
                    self._fleet_signals if self.fleet.autoscaling else None
                )
                self.supervisor = WorkerSupervisor(
                    self._pool,
                    self.fleet,
                    signal_source=signal_source,
                    on_scale=self._on_scale,
                )
            await self.supervisor.start()

    async def stop(self, drain: bool = True) -> None:
        """Stop serving; with ``drain=True`` answer queued requests first.

        The supervisor keeps healing through the drain (queued requests
        must survive a crash during shutdown) and detaches just before
        the pool itself is torn down: process workers exit, and the
        shared-memory arena (if any) is released — parameters return to
        private storage and the model remains fully usable, training
        included.
        """
        await self._batcher.stop(drain=drain)
        if self.supervisor is not None:
            await self.supervisor.stop()
        await self._pool.stop()
        if self._owns_executor and self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def _fleet_signals(self) -> FleetSignals:
        """Snapshot the live load signals one autoscaler evaluation needs."""
        b = self._batcher.stats
        shed_delta = b.shed - self._shed_seen
        self._shed_seen = b.shed
        completed_delta = b.completed - self._completed_seen
        self._completed_seen = b.completed
        if self._latencies:
            lat95 = float(np.percentile(np.asarray(self._latencies), 95))
        else:
            lat95 = 0.0
        return FleetSignals(
            queue_depth=self._batcher.queue_depth,
            current_workers=self._pool.current_workers,
            shed_delta=shed_delta,
            completed_delta=completed_delta,
            latency_p95_s=lat95,
        )

    def _on_scale(self, target: int) -> None:
        # keep the dispatch pipeline as wide as the fleet, so grown
        # workers actually receive concurrent batches
        self._batcher.max_concurrent_batches = max(1, int(target))

    async def swap_model(
        self, model: MultiExitBayesNet | InferenceEngine | NetworkEngine | Network
    ) -> int:
        """Hot-swap the served model with zero downtime; returns the generation.

        Weights **and shapes** may differ from the current model (e.g. a
        DSE rescaling picked a new width) — only the per-example input
        shape and the number of classes must match, since in-flight and
        queued requests were validated against them.  The rollout follows
        the arena-generation protocol (:mod:`repro.nn.shm`): a successor
        arena is built, a fresh worker cohort attaches to it, the old
        cohort drains and retires, and the old arena is released.  No
        request fails and no reader ever sees a torn update; responses
        switch from old-model to new-model bits at a batch boundary.
        """
        if isinstance(model, MultiExitBayesNet):
            engine: InferenceEngine | NetworkEngine = model.engine
        elif isinstance(model, Network):
            engine = NetworkEngine(model, cache_size=4)
        elif isinstance(model, (InferenceEngine, NetworkEngine)):
            engine = model
        else:
            raise TypeError(
                "model must be a MultiExitBayesNet, InferenceEngine, "
                f"NetworkEngine or Network, got {type(model).__name__}"
            )
        if self.early_exit_threshold is not None and not isinstance(
            engine, InferenceEngine
        ):
            raise ValueError("early-exit serving requires a multi-exit model")
        old_shape = self.input_shape
        new_shape = self._engine_input_shape(engine)
        if old_shape is not None and new_shape is not None and old_shape != new_shape:
            raise ValueError(
                f"swapped model must keep the input shape {old_shape}, "
                f"got {new_shape}"
            )
        generation = await self._pool.swap_engine(engine)
        self.engine = engine
        return generation

    async def __aenter__(self) -> "ServingEngine":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop(drain=True)

    # ------------------------------------------------------------------ #
    # request path
    # ------------------------------------------------------------------ #
    async def submit(
        self, x: np.ndarray, deadline: float | None = None
    ) -> UncertaintyResult:
        """Serve one example; awaits until its microbatch has been computed.

        Parameters
        ----------
        x:
            A single example of the model's per-sample input shape (no batch
            dimension), e.g. ``(C, H, W)``.
        deadline:
            Optional latency budget in seconds.  Requests waiting for batch
            assembly are scheduled earliest-deadline-first under backlog;
            without a deadline the request keeps arrival order behind every
            deadlined one.  Ordering only by default — with
            ``admission_timeout`` configured, a request that misses its
            deadline before dispatch is shed with
            :class:`~repro.serving.batcher.DeadlineExceeded` instead.

        Returns
        -------
        UncertaintyResult
            Prediction + uncertainty for this example, with ``latency_s``
            covering queueing, batching and compute.

        Raises
        ------
        ServerOverloaded
            Queue full and ``reject_on_full`` is set.  With the default
            awaiting policy, overload instead slows submitters down.
        DeadlineExceeded
            The request expired before dispatch and ``admission_timeout``
            is configured (shed-on-missed-deadline policy).
        WorkerCrashed
            Process backend only: every worker process died.  Individual
            crashes are retried transparently and only counted in stats.
        """
        x = np.asarray(x, dtype=np.float64)
        expected = self.input_shape
        if expected is not None and x.shape != expected:
            # fail fast: a mis-shaped payload must never reach np.stack,
            # where it would fail the whole microbatch it rides in
            raise ValueError(
                f"expected a single example of shape {expected}, got {x.shape}"
            )
        t0 = time.perf_counter()
        if self._first_submit_at is None:
            self._first_submit_at = t0
        result = await self._batcher.submit(x, deadline=deadline)
        done = time.perf_counter()
        latency = done - t0
        self._last_done_at = done
        self._latencies.append(latency)
        if self._exit_counts is not None and result.exit_index is not None:
            self._exit_counts[result.exit_index] += 1
        # each result object belongs to exactly one request: stamp in place
        result.latency_s = latency
        return result

    async def submit_many(
        self,
        xs: np.ndarray | Iterable[np.ndarray],
        deadline: float | Sequence[float | None] | None = None,
    ) -> list[UncertaintyResult]:
        """Serve many examples concurrently; results keep submission order.

        ``deadline`` mirrors :meth:`submit`'s parameter: a scalar applies
        one latency budget to every example, a sequence supplies one
        budget per example (``None`` entries leave that example
        deadline-less) and must match ``xs`` in length.
        """
        xs = list(xs)
        if deadline is None or isinstance(deadline, (int, float)):
            deadlines: list[float | None] = [deadline] * len(xs)
        else:
            deadlines = list(deadline)
            if len(deadlines) != len(xs):
                raise ValueError(
                    f"deadline sequence has {len(deadlines)} entries "
                    f"for {len(xs)} examples"
                )
        return list(
            await asyncio.gather(
                *(self.submit(x, deadline=d) for x, d in zip(xs, deadlines))
            )
        )

    # ------------------------------------------------------------------ #
    # batch execution (runs on the event loop + worker executor)
    # ------------------------------------------------------------------ #
    async def _dispatch(
        self, payloads: list[np.ndarray]
    ) -> Sequence[UncertaintyResult]:
        # the sequence number is assigned here, on the event loop, in batch-
        # assembly order — it seeds the batch's spawned RNG context, which is
        # what makes responses independent of worker count, backend and
        # scheduling (see repro.serving.workers.base.compute_batch)
        seq = self._batch_seq
        self._batch_seq += 1
        return await self._pool.run(seq, payloads)

    # ------------------------------------------------------------------ #
    # stats
    # ------------------------------------------------------------------ #
    @property
    def batcher_stats(self) -> BatcherStats:
        """Raw counters of the underlying :class:`DynamicBatcher`."""
        return self._batcher.stats

    def stats(self) -> ServingStats:
        """Aggregate throughput/latency/batching statistics so far."""
        b = self._batcher.stats
        lat = np.asarray(self._latencies, dtype=np.float64)
        if self._first_submit_at is not None and self._last_done_at is not None:
            wall = self._last_done_at - self._first_submit_at
        else:
            wall = 0.0
        return ServingStats(
            requests_completed=b.completed,
            requests_rejected=b.rejected,
            requests_cancelled=b.cancelled,
            num_batches=b.batches,
            mean_batch_size=b.mean_batch_size,
            queue_peak=b.queue_peak,
            throughput_rps=b.completed / wall if wall > 0 else 0.0,
            latency_p50_s=float(np.percentile(lat, 50)) if lat.size else 0.0,
            latency_p95_s=float(np.percentile(lat, 95)) if lat.size else 0.0,
            latency_max_s=float(lat.max()) if lat.size else 0.0,
            exit_counts=list(self._exit_counts) if self._exit_counts else None,
            workers=self.workers,
            worker_backend=self.worker_backend,
            worker_crashes=self._pool.worker_crashes,
            requests_shed=b.shed,
            transport=(
                self.worker_transport if self.worker_backend == "process" else "inproc"
            ),
            transport_ring_batches=self._pool.ring_batches,
            transport_pipe_batches=self._pool.pipe_batches,
            workers_respawned=self._pool.workers_respawned,
            scale_events=self._pool.scale_events,
            current_workers=self._pool.current_workers,
            alive_workers=self._pool.alive_workers,
            arena_generation=self._pool.generation,
            cache_hits=self._pool.cache_hits,
            cache_misses=self._pool.cache_misses,
        )

    @property
    def alive_workers(self) -> int:
        """Workers that probe alive right now (see ``WorkerPool.alive_workers``)."""
        return self._pool.alive_workers
