"""Worker-pool abstraction shared by the thread and process backends.

The serving tier separates *what a batch computes* from *where it runs*:

* :func:`compute_batch` — stacks a batch's payloads and runs the folded MC
  hot path (or the active-set early-exit path) on one engine under a fresh
  :class:`~repro.nn.context.ForwardContext` spawned from the batch sequence
  number.  It returns plain arrays (:class:`BatchOutput`), so the result
  can cross a process boundary as a cheap pickle.
* :func:`assemble_results` — turns those arrays into the per-request
  :class:`~repro.uncertainty.metrics.UncertaintyResult` objects.

Both backends run the *same two functions* — the thread pool calls them
back-to-back on a worker thread, the process pool calls the first in a
worker process and the second on the receiving thread.  Responses are
therefore **bit-identical across backends** (and across worker counts,
by the spawn-key rule) whenever batch formation is identical.

:class:`WorkerPool` is the small lifecycle contract
:class:`~repro.serving.engine.ServingEngine` drives: ``start`` /
``run(seq, payloads)`` / ``stop``, plus a crash counter.  Pools own their
engine replicas; the serving engine owns batch formation and sequencing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from ...inference.engine import InferenceEngine, NetworkEngine
from ...nn.context import ForwardContext
from ...nn.layers.base import Parameter
from ...uncertainty.metrics import (
    _EPS,
    UncertaintyResult,
    mc_uncertainty_results,
    predictive_entropy,
)

__all__ = [
    "BatchOutput",
    "ResponseStager",
    "WorkerCrashed",
    "WorkerPool",
    "assemble_results",
    "compute_batch",
    "compute_batch_array",
    "engine_num_classes",
    "engine_parameters",
]

Engine = InferenceEngine | NetworkEngine


class WorkerCrashed(RuntimeError):
    """No live worker is left to serve a batch (process backend only).

    Individual worker deaths are absorbed: the dead worker's in-flight
    batch is retried on a live sibling and the death is surfaced in
    ``ServingStats.worker_crashes``.  This error reaches callers only when
    *every* worker of the pool has died.
    """


@dataclass
class BatchOutput:
    """Raw per-batch arrays, cheap to pickle across a process boundary.

    Exactly one of the two forms is populated: ``sample_probs`` of shape
    ``(S, N, classes)`` in MC-sampling mode, or ``probs`` ``(N, classes)``
    plus ``exit_indices`` ``(N,)`` in early-exit mode.
    """

    sample_probs: np.ndarray | None = None
    probs: np.ndarray | None = None
    exit_indices: np.ndarray | None = None


def engine_parameters(engine: Engine) -> Iterator[Parameter]:
    """The engine's parameters in the deterministic model order."""
    if isinstance(engine, InferenceEngine):
        return engine.model.parameters()
    return engine.network.parameters()


def engine_num_classes(engine: Engine) -> int | None:
    """Classes per prediction, or ``None`` when not derivable (unbuilt net)."""
    if isinstance(engine, InferenceEngine):
        return int(engine.model.num_classes)
    try:
        return int(engine.network.output_shape[-1])
    except (RuntimeError, TypeError, IndexError):
        return None


def compute_batch(
    engine: Engine,
    seq: int,
    payloads: Sequence[np.ndarray],
    num_samples: int | None,
    early_exit_threshold: float | None,
) -> BatchOutput:
    """Stack a batch's payloads and run them (see :func:`compute_batch_array`).

    Stacking happens here, off the event loop.  Transports that already
    assembled the batch into one array (pre-pinned staging buffers, ring
    slots) call :func:`compute_batch_array` directly — the stack below and
    a staged buffer have identical values *and identical memory layout*,
    which is what keeps the two entry points bit-identical.
    """
    return compute_batch_array(
        engine, seq, np.stack(payloads), num_samples, early_exit_threshold
    )


def compute_batch_array(
    engine: Engine,
    seq: int,
    batch: np.ndarray,
    num_samples: int | None,
    early_exit_threshold: float | None,
) -> BatchOutput:
    """Run one assembled batch on one engine; returns raw arrays only.

    The fresh per-batch context spawns every dropout stream from
    ``(layer seed, seq)``, so the output depends only on the batch's
    position in the request sequence — never on which worker (thread *or*
    process) computes it, which transport delivered it, or what that
    worker served before.
    """
    ctx = ForwardContext(spawn_key=seq)
    if early_exit_threshold is not None:
        assert isinstance(engine, InferenceEngine)
        res = engine.early_exit_predict(batch, early_exit_threshold, ctx=ctx)
        return BatchOutput(probs=res.probs, exit_indices=res.exit_indices)
    if isinstance(engine, InferenceEngine):
        pred = engine.predict_mc(batch, num_samples, ctx=ctx)
    else:
        pred = engine.sample(batch, num_samples or 1, ctx=ctx)
    return BatchOutput(sample_probs=pred.sample_probs)


class ResponseStager:
    """Pre-pinned scratch for MC response assembly, one per replica.

    :func:`~repro.uncertainty.metrics.mc_uncertainty_results` allocates a
    stack of full-width temporaries per batch — clip/log/product arrays at
    both ``(N, C)`` and ``(S, N, C)`` plus the reduction vectors — mirroring
    the request-side allocations the :class:`~repro.serving.batcher
    .BatchStager` already eliminated.  A response stager owns those
    temporaries once, sized for the pool's batch geometry, and re-runs the
    identical arithmetic in-place on its buffers.

    **What is deliberately *not* pinned:** ``mean_probs``.  Each
    :class:`UncertaintyResult` carries a row *view* of it, owned by the
    caller for the response's whole lifetime, so the mean must be a fresh
    array per batch — pinning it would let the next batch overwrite
    responses already delivered.

    Bit-exactness: every in-place step runs the same ufunc on the same
    values as the allocating path (``clip``/``log``/``multiply``/``sum``/
    ``mean`` with ``out=`` change memory placement, never bits), the mean
    is reused instead of recomputed (NumPy's pairwise mean is
    deterministic, so the recompute is bit-identical anyway), and sliced
    scratch views only change outer strides, which reductions over the
    last axis never see.  :meth:`assemble` returns ``None`` for anything
    that does not fit its geometry — the caller falls back to the
    allocating path, so staging is an optimisation, never a constraint.
    """

    def __init__(self, max_batch_size: int, num_samples: int, num_classes: int) -> None:
        if max_batch_size <= 0 or num_samples <= 0 or num_classes <= 0:
            raise ValueError("response-stager geometry must be positive")
        self.max_batch_size = int(max_batch_size)
        self.num_samples = int(num_samples)
        self.num_classes = int(num_classes)
        shape3 = (self.num_samples, self.max_batch_size, self.num_classes)
        shape2 = shape3[1:]
        self._clip3 = np.empty(shape3)
        self._log3 = np.empty(shape3)
        self._clip2 = np.empty(shape2)
        self._log2 = np.empty(shape2)
        self._sample_ent = np.empty(shape3[:2])
        self._entropy = np.empty(self.max_batch_size)
        self._expected = np.empty(self.max_batch_size)

    def assemble(self, sample_probs: np.ndarray) -> list[UncertaintyResult] | None:
        """Per-example results from ``(S, N, C)`` MC samples; ``None`` = no fit."""
        if (
            sample_probs.ndim != 3
            or sample_probs.dtype != np.float64
            or sample_probs.shape[0] != self.num_samples
            or sample_probs.shape[1] > self.max_batch_size
            or sample_probs.shape[2] != self.num_classes
        ):
            return None
        n = sample_probs.shape[1]
        # fresh per batch: result rows are views of it (see class docstring)
        mean_probs = sample_probs.mean(axis=0)

        # predictive entropy of the mean, computed once and reused for the
        # mutual information (the legacy path recomputes it bit-identically)
        c2, l2 = self._clip2[:n], self._log2[:n]
        np.clip(mean_probs, _EPS, 1.0, out=c2)
        np.log(c2, out=l2)
        np.multiply(c2, l2, out=c2)
        entropy = np.sum(c2, axis=-1, out=self._entropy[:n])
        np.negative(entropy, out=entropy)

        # expected per-sample entropy, then MI = H[mean] - E[H].  The
        # legacy path negates per-sample entropies before the mean; here
        # the mean is taken first and negated on the contiguous (n,)
        # result — bit-identical, since IEEE negation is exact and
        # commutes with every partial sum and the final division.
        c3, l3 = self._clip3[:, :n], self._log3[:, :n]
        np.clip(sample_probs, _EPS, 1.0, out=c3)
        np.log(c3, out=l3)
        np.multiply(c3, l3, out=c3)
        sample_ent = np.sum(c3, axis=-1, out=self._sample_ent[:, :n])
        expected = np.mean(sample_ent, axis=0, out=self._expected[:n])
        np.negative(expected, out=expected)
        mi = entropy - expected

        labels = mean_probs.argmax(axis=1)
        confidence = mean_probs.max(axis=1)
        return [
            UncertaintyResult(
                probs=mean_probs[i],
                label=int(labels[i]),
                confidence=float(confidence[i]),
                entropy=float(entropy[i]),
                mutual_information=float(mi[i]),
                num_samples=self.num_samples,
            )
            for i in range(n)
        ]


def assemble_results(
    out: BatchOutput, response_stager: ResponseStager | None = None
) -> list[UncertaintyResult]:
    """Split a batch's raw arrays into one ``UncertaintyResult`` per request.

    ``response_stager`` (thread backend) assembles MC results on pre-pinned
    scratch instead of fresh per-batch temporaries; batches outside its
    geometry fall back to the allocating path, bit-identically.
    """
    if out.sample_probs is not None:
        if response_stager is not None:
            results = response_stager.assemble(out.sample_probs)
            if results is not None:
                return results
        return mc_uncertainty_results(out.sample_probs)
    entropy = predictive_entropy(out.probs)
    return [
        UncertaintyResult(
            probs=out.probs[i],
            label=int(out.probs[i].argmax()),
            confidence=float(out.probs[i].max()),
            entropy=float(entropy[i]),
            exit_index=int(out.exit_indices[i]),
        )
        for i in range(out.probs.shape[0])
    ]


class WorkerPool:
    """Lifecycle contract between :class:`ServingEngine` and its workers.

    Subclasses own a fleet of engine replicas and guarantee that
    :meth:`run` never executes two batches on the same replica at once.
    ``start``/``stop`` bracket the serving engine's lifecycle; ``stop``
    must be idempotent and leave the wrapped engine fully usable.

    Beyond the original start/run/stop triple, pools expose the *fleet*
    surface that :mod:`repro.serving.fleet` drives:

    * :meth:`ensure_healthy` — detect replicas that died since the last
      check, reclaim their resources and respawn replacements up to the
      current target size (a no-op for backends whose replicas cannot
      die, e.g. threads).
    * :meth:`scale_to` — grow or shrink the fleet between batches.
      Shrinking must *drain before retiring*: a replica with a batch in
      flight finishes it and is only then released.
    * :meth:`swap_engine` — replace the served engine with a new one
      (weights **and shapes** may differ) via a rolling generation swap:
      no request ever fails, no reader ever sees a torn update, and
      :attr:`generation` increments exactly once per swap.

    The counters below feed ``ServingStats``; they are plain ints mutated
    only on the event loop (or under the GIL from executor threads).
    """

    #: dead workers observed so far (process backend; threads cannot die)
    worker_crashes: int = 0
    #: dead workers replaced by the supervisor (process backend)
    workers_respawned: int = 0
    #: completed grow/shrink transitions (either backend)
    scale_events: int = 0
    #: current model/arena generation; bumped once per ``swap_engine``
    generation: int = 0
    #: batches delivered over a shared-memory ring / over the pickle pipe
    #: (process backend; the thread backend never crosses a boundary)
    ring_batches: int = 0
    pipe_batches: int = 0
    #: content-keyed activation-cache hits/misses summed over every replica
    #: the pool has ever owned (retired and crashed replicas included)
    cache_hits: int = 0
    cache_misses: int = 0

    def __init__(
        self,
        engine: Engine,
        workers: int,
        num_samples: int | None,
        early_exit_threshold: float | None,
        *,
        max_batch_size: int | None = None,
        input_shape: tuple[int, ...] | None = None,
    ) -> None:
        self.engine = engine
        self.workers = int(workers)
        self.num_samples = num_samples
        self.early_exit_threshold = early_exit_threshold
        #: staging geometry (largest batch, per-example shape) — lets the
        #: pool pre-pin assembly buffers / size ring slots; ``None`` keeps
        #: the historical stack-per-batch behaviour
        self.max_batch_size = max_batch_size
        self.input_shape = tuple(input_shape) if input_shape is not None else None
        #: desired fleet size; ``scale_to`` moves it, ``ensure_healthy``
        #: restores it after crashes
        self.target_workers = self.workers
        #: set by a :class:`~repro.serving.fleet.WorkerSupervisor` when it
        #: takes ownership of crash recovery: with a supervisor attached, a
        #: transiently dead fleet *waits* for respawns instead of failing
        #: submissions with :class:`WorkerCrashed`
        self.supervised = False

    @property
    def current_workers(self) -> int:
        """Replicas currently able to take a batch (excludes retiring/dead)."""
        return self.workers

    @property
    def alive_workers(self) -> int:
        """Replicas whose worker is verifiably alive *right now*.

        Unlike :attr:`current_workers` (the roster view, updated when the
        supervisor reaps a corpse), this probes the underlying workers —
        the process backend checks ``process.is_alive()`` — so a silent
        death is visible immediately.  It feeds the network front end's
        ``/v1/health`` endpoint, which must flip before the supervisor's
        next scan, not after.  Thread replicas cannot die independently,
        so the default mirrors the roster.
        """
        return self.current_workers

    async def start(self, executor) -> None:
        raise NotImplementedError

    async def stop(self) -> None:
        raise NotImplementedError

    async def run(self, seq: int, payloads: list) -> list[UncertaintyResult]:
        """Serve one assembled batch; safe to call ``workers``-way concurrently."""
        raise NotImplementedError

    async def ensure_healthy(self) -> int:
        """Reap dead replicas and respawn up to ``target_workers``.

        Returns how many replicas were respawned.  The default is a no-op:
        backends whose replicas cannot die independently (threads) are
        always healthy.
        """
        return 0

    async def scale_to(self, target: int) -> None:
        """Grow or shrink the fleet to ``target`` replicas (drain on shrink)."""
        raise NotImplementedError

    async def swap_engine(self, engine: Engine) -> int:
        """Roll the fleet onto ``engine`` (new weights/shapes); new generation."""
        raise NotImplementedError
