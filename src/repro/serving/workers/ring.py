"""Fixed-slot shared-memory ring: zero-copy batch transport per worker.

The pipe protocol of :mod:`repro.serving.workers.procpool` pickles every
request batch and every response array across the process boundary — two
full serialisations plus two copies per direction, all on the glue-bound
hot path PR 5 measured.  A :class:`BatchRing` removes the pickling and the
parent-side intermediate copy entirely:

* Each worker owns one shared-memory segment holding ``slots`` fixed-size
  slots.  A slot has a **request region** and a **response region**, each a
  small int64 header (array count, dtype codes, shapes) followed by a
  64-byte-aligned payload area.
* The parent *stages* a microbatch by writing request rows straight into a
  slot's payload (:meth:`stage_request` hands out the destination view, so
  batch assembly is the only copy that happens on the parent side — the
  historical ``np.stack`` intermediate is gone).
* The pipe remains as a **doorbell** carrying only ``(seq, token, slot)``
  — kilobyte-free.  The worker maps the same slot
  (:meth:`read_request` returns an ndarray view, no copy), computes, and
  writes the result arrays into the response region
  (:meth:`write_response`); the parent reads them back as views
  (:meth:`read_response`) and assembles per-request results before the
  slot is recycled.

**Ownership and reuse rules.**  A slot is owned by the parent from
checkout until the response has been fully assembled; the worker may touch
it only between receiving the doorbell and sending the acknowledgement.
Each ``(request, response)`` exchange is strictly serialised per worker by
the handle lock in ``procpool``, so a slot is never concurrently staged
and read.  Responses read as views must be consumed (or copied) *before*
the slot returns to the free list.

Anything that does not fit — an oversized payload, a response larger than
the sized region, an exotic dtype — falls back to the legacy pickle-pipe
path; the ring is an optimisation, never a constraint on what can be
served.

Segments attach through the same per-process cache as the parameter arena
(:func:`repro.nn.shm.open_attached_segment`), inheriting its
resource-tracker discipline; the parent owns every ring segment and
unlinks it on worker reap / pool stop.
"""

from __future__ import annotations

import math
import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from ...nn.shm import destroy_segment, open_attached_segment

__all__ = ["BatchRing", "RingManifest"]

#: most arrays one response may carry (MC: 1, early-exit: 2; headroom)
_MAX_ARRAYS = 4
#: most dimensions one array may have
_MAX_DIMS = 8
#: supported payload dtypes, by header code
_DTYPES: dict[int, np.dtype] = {0: np.dtype(np.float64), 1: np.dtype(np.int64)}
_DTYPE_CODES = {dtype: code for code, dtype in _DTYPES.items()}

#: int64 words per region header: [narrays | per array: dtype, ndim, shape…]
_HEADER_WORDS = 1 + _MAX_ARRAYS * (2 + _MAX_DIMS)
_ALIGN = 64
_HEADER_BYTES = -(-_HEADER_WORDS * 8 // _ALIGN) * _ALIGN


def _align(nbytes: int) -> int:
    return -(-nbytes // _ALIGN) * _ALIGN


@dataclass(frozen=True)
class RingManifest:
    """Picklable description of one worker's ring, sent at spawn."""

    segment_name: str
    slots: int
    request_bytes: int
    response_bytes: int


class BatchRing:
    """Fixed-slot SPSC request/response ring over one shm segment.

    Created (and eventually unlinked) by the parent; the worker attaches
    via the :class:`RingManifest`.  ``request_bytes`` / ``response_bytes``
    are payload capacities per slot, excluding headers.
    """

    def __init__(
        self,
        segment: shared_memory.SharedMemory,
        slots: int,
        request_bytes: int,
        response_bytes: int,
        owner: bool,
    ) -> None:
        self._segment = segment
        self.slots = slots
        self._request_bytes = request_bytes
        self._response_bytes = response_bytes
        self._owner = owner
        self._released = False
        # header views are at fixed offsets with a fixed dtype, so they are
        # built once per (slot, region) and reused on every exchange — view
        # construction was a measurable share of per-batch glue
        self._headers: dict[tuple[int, bool], np.ndarray] = {}
        self._slot_bytes = (
            _HEADER_BYTES
            + _align(request_bytes)
            + _HEADER_BYTES
            + _align(response_bytes)
        )
        if owner:
            # last-resort cleanup, mirroring SharedParameterArena: a pool
            # that never reaches stop() must not leak /dev/shm segments
            self._finalizer = weakref.finalize(self, destroy_segment, segment)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def create(cls, slots: int, request_bytes: int, response_bytes: int) -> "BatchRing":
        """Allocate a ring of ``slots`` fixed-size slots (parent side)."""
        if slots <= 0:
            raise ValueError("slots must be positive")
        if request_bytes <= 0 or response_bytes <= 0:
            raise ValueError("slot payload capacities must be positive")
        slot_bytes = (
            _HEADER_BYTES
            + _align(request_bytes)
            + _HEADER_BYTES
            + _align(response_bytes)
        )
        segment = shared_memory.SharedMemory(create=True, size=slots * slot_bytes)
        return cls(segment, slots, request_bytes, response_bytes, owner=True)

    @classmethod
    def attached(cls, manifest: RingManifest) -> "BatchRing":
        """Attach to an existing ring (worker side)."""
        segment = open_attached_segment(manifest.segment_name)
        return cls(
            segment,
            manifest.slots,
            manifest.request_bytes,
            manifest.response_bytes,
            owner=False,
        )

    @property
    def closed(self) -> bool:
        """Whether :meth:`release` ran — a closed ring must not be staged into.

        The supervisor unlinks a dead worker's ring and builds a fresh one
        for the respawn; any stale reference racing that hand-off sees
        ``closed`` and falls back to the pipe instead of writing into a
        segment whose backing file is already gone.
        """
        return self._released

    @property
    def manifest(self) -> RingManifest:
        return RingManifest(
            segment_name=self._segment.name,
            slots=self.slots,
            request_bytes=self._request_bytes,
            response_bytes=self._response_bytes,
        )

    # ------------------------------------------------------------------ #
    # region plumbing
    # ------------------------------------------------------------------ #
    def _region(self, slot: int, response: bool) -> tuple[int, int]:
        """(payload offset, payload capacity) of one slot region."""
        if not 0 <= slot < self.slots:
            raise IndexError(f"slot {slot} out of range [0, {self.slots})")
        base = slot * self._slot_bytes
        if response:
            base += _HEADER_BYTES + _align(self._request_bytes)
            return base + _HEADER_BYTES, self._response_bytes
        return base + _HEADER_BYTES, self._request_bytes

    def _header(self, slot: int, response: bool) -> np.ndarray:
        header = self._headers.get((slot, response))
        if header is None:
            payload_off, _ = self._region(slot, response)
            header = np.ndarray(
                (_HEADER_WORDS,),
                dtype=np.int64,
                buffer=self._segment.buf,
                offset=payload_off - _HEADER_BYTES,
            )
            self._headers[(slot, response)] = header
        return header

    def _write_region(
        self, slot: int, response: bool, arrays
    ) -> list[np.ndarray] | None:
        """Describe ``arrays`` in the region header; return destination views.

        ``arrays`` is a sequence of ``(shape, dtype)`` pairs.  Returns
        ``None`` (header untouched beyond narrays=0) when the payloads do
        not fit the region or a dtype/rank is unsupported — the caller
        falls back to the pipe.
        """
        header = self._header(slot, response)
        payload_off, capacity = self._region(slot, response)
        if len(arrays) > _MAX_ARRAYS:
            return None
        views: list[np.ndarray] = []
        cursor = 0
        words: list[int] = [len(arrays)]
        for shape, dtype in arrays:
            dtype = np.dtype(dtype)
            code = _DTYPE_CODES.get(dtype)
            if code is None or len(shape) > _MAX_DIMS:
                return None
            nbytes = math.prod(shape) * dtype.itemsize
            if cursor + nbytes > capacity:
                return None
            views.append(
                np.ndarray(
                    tuple(shape),
                    dtype=dtype,
                    buffer=self._segment.buf,
                    offset=payload_off + cursor,
                )
            )
            cursor += _align(nbytes)
            words.extend([code, len(shape), *shape, *([0] * (_MAX_DIMS - len(shape)))])
        header[: len(words)] = words
        return views

    def _read_region(self, slot: int, response: bool) -> list[np.ndarray]:
        """Fresh ndarray views over a region's arrays, per its header.

        A *new* view object per call: downstream activation caches key on
        array identity, so a recycled slot must never resurface as the
        same Python object.
        """
        # one C-level tolist beats per-word ndarray indexing on this path
        words = self._header(slot, response).tolist()
        payload_off, _ = self._region(slot, response)
        narrays = words[0]
        views: list[np.ndarray] = []
        cursor = 0
        word = 1
        for _ in range(narrays):
            dtype = _DTYPES[words[word]]
            ndim = words[word + 1]
            shape = tuple(words[word + 2 : word + 2 + ndim])
            views.append(
                np.ndarray(
                    shape,
                    dtype=dtype,
                    buffer=self._segment.buf,
                    offset=payload_off + cursor,
                )
            )
            cursor += _align(math.prod(shape) * dtype.itemsize)
            word += 2 + _MAX_DIMS
        return views

    # ------------------------------------------------------------------ #
    # parent side
    # ------------------------------------------------------------------ #
    def stage_request(self, slot: int, shape: tuple[int, ...]) -> np.ndarray | None:
        """Destination view for one float64 request batch, or ``None``.

        The caller assembles the microbatch by writing rows directly into
        the returned view — there is no intermediate stacked array.
        ``None`` means the batch does not fit this ring (oversized payload
        fallback: send it down the pipe instead), or that the ring was
        already released (a recycled worker slot racing a respawn).
        """
        if self._released:
            return None
        views = self._write_region(slot, response=False, arrays=[(shape, np.float64)])
        return views[0] if views is not None else None

    def read_response(self, slot: int) -> list[np.ndarray]:
        """The response arrays a worker left in ``slot``, as views.

        Views alias the slot: consume or copy them before the slot is
        recycled (MC assembly derives fresh arrays immediately; early-exit
        assembly must copy, see ``procpool``).
        """
        return self._read_region(slot, response=True)

    # ------------------------------------------------------------------ #
    # worker side
    # ------------------------------------------------------------------ #
    def read_request(self, slot: int) -> np.ndarray:
        """The staged request batch in ``slot``, as a fresh view."""
        return self._read_region(slot, response=False)[0]

    def write_response(self, slot: int, arrays) -> bool:
        """Copy result arrays into the response region; ``False`` = no fit.

        On ``False`` nothing useful was written and the worker falls back
        to pickling the result over the pipe.
        """
        specs = [(a.shape, a.dtype) for a in arrays]
        views = self._write_region(slot, response=True, arrays=specs)
        if views is None:
            return False
        for view, array in zip(views, arrays):
            view[...] = array
        return True

    # ------------------------------------------------------------------ #
    # teardown
    # ------------------------------------------------------------------ #
    def release(self) -> None:
        """Owner: unlink the segment; attached: drop the local mapping.

        Idempotent.  Attached (worker-side) rings only close their handle
        indirectly via process exit — the mapping is shared through the
        per-process segment cache, mirroring the parameter arena.
        """
        if self._released:
            return
        self._released = True
        self._headers.clear()  # drop cached views so close() can unmap
        if self._owner:
            self._finalizer()  # close + unlink, exactly once
