"""Worker backends for the serving tier.

Two interchangeable :class:`~repro.serving.workers.base.WorkerPool`
implementations execute the batches a
:class:`~repro.serving.engine.ServingEngine` assembles:

* :class:`ThreadWorkerPool` — K reentrant engine replicas on a thread-pool
  executor (in-process; scales while the GIL-released GEMMs dominate).
* :class:`ProcessWorkerPool` — K spawned worker processes over one
  shared-memory parameter arena (true multi-core scaling even when the
  Python glue dominates; survives individual worker crashes).

Both run the same compute path (:func:`~repro.serving.workers.base
.compute_batch_array` under a per-batch spawned context), so responses are
bit-identical across backends and worker counts for identical batch
formation.  Select with ``ServingEngine(worker_backend="thread"|"process")``.

The process backend ships batches over per-worker shared-memory ring
buffers by default (:class:`~repro.serving.workers.ring.BatchRing`,
``worker_transport="ring"``) with the pipe demoted to a doorbell; see
:mod:`repro.serving.workers.ring` for the slot ownership rules.
"""

from .base import (
    WorkerCrashed,
    WorkerPool,
    assemble_results,
    compute_batch,
    compute_batch_array,
)
from .procpool import ProcessWorkerPool
from .ring import BatchRing, RingManifest
from .threads import ThreadWorkerPool

__all__ = [
    "BatchRing",
    "RingManifest",
    "WorkerCrashed",
    "WorkerPool",
    "ThreadWorkerPool",
    "ProcessWorkerPool",
    "assemble_results",
    "compute_batch",
    "compute_batch_array",
]
