"""Thread-backed worker pool: K engine replicas on a thread-pool executor.

This is the historical (PR 4) multi-worker mode, repackaged behind the
:class:`~repro.serving.workers.base.WorkerPool` contract: replica 0 is the
caller's engine (so its activation cache stays shared with batch callers),
replicas 1..K-1 come from ``engine.replicate()`` — same ``Parameter``
arrays zero-copy, private context and cache each.  NumPy's GEMMs release
the GIL, so batches genuinely overlap on multi-core hosts; the Python glue
between the GEMMs does not, which is what the process backend
(:mod:`repro.serving.workers.procpool`) exists to lift.
"""

from __future__ import annotations

import asyncio

from ...uncertainty.metrics import UncertaintyResult
from .base import WorkerPool, assemble_results, compute_batch

__all__ = ["ThreadWorkerPool"]


class ThreadWorkerPool(WorkerPool):
    """Check batches out to K reentrant engine replicas in worker threads."""

    def __init__(self, engine, workers, num_samples, early_exit_threshold) -> None:
        super().__init__(engine, workers, num_samples, early_exit_threshold)
        # replica 0 is the caller's engine (shared activation cache);
        # the rest share its parameters zero-copy but nothing per-call
        self._engines = [engine] + [engine.replicate() for _ in range(workers - 1)]
        self._checkout: asyncio.Queue | None = None
        self._executor = None

    async def start(self, executor) -> None:
        if self._checkout is not None:
            # idempotent, like ServingEngine.start(): rebuilding the queue
            # here would re-enqueue replicas that are currently checked out
            return
        self._executor = executor
        self._checkout = asyncio.Queue()
        for replica in self._engines:
            self._checkout.put_nowait(replica)

    async def stop(self) -> None:
        self._checkout = None
        self._executor = None

    async def run(self, seq: int, payloads: list) -> list[UncertaintyResult]:
        assert self._checkout is not None, "pool is not started"
        engine = await self._checkout.get()
        try:
            loop = asyncio.get_running_loop()
            return await loop.run_in_executor(
                self._executor, self._serve, engine, seq, payloads
            )
        finally:
            self._checkout.put_nowait(engine)

    def _serve(self, engine, seq: int, payloads: list) -> list[UncertaintyResult]:
        return assemble_results(
            compute_batch(
                engine, seq, payloads, self.num_samples, self.early_exit_threshold
            )
        )
