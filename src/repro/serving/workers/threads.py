"""Thread-backed worker pool: K engine replicas on a thread-pool executor.

This is the historical (PR 4) multi-worker mode, repackaged behind the
:class:`~repro.serving.workers.base.WorkerPool` contract: replica 0 is the
caller's engine (so its activation cache stays shared with batch callers),
replicas 1..K-1 come from ``engine.replicate()`` — same ``Parameter``
arrays zero-copy, private context and cache each.  NumPy's GEMMs release
the GIL, so batches genuinely overlap on multi-core hosts; the Python glue
between the GEMMs does not, which is what the process backend
(:mod:`repro.serving.workers.procpool`) exists to lift.

When the serving engine knows the batch geometry, each replica carries a
:class:`~repro.serving.batcher.BatchStager` — a pre-pinned assembly buffer
that replaces the per-batch ``np.stack`` allocation — and, for MC sampling,
a :class:`~repro.serving.workers.base.ResponseStager` that assembles the
uncertainty results on pre-pinned scratch instead of fresh per-batch
temporaries.  Staged and stacked batches have identical layout, and staged
assembly runs the identical arithmetic, so responses stay bit-identical
either way.

The fleet surface is implemented in-process: threads cannot die, so
:meth:`~WorkerPool.ensure_healthy` stays the base no-op, but the pool
scales (:meth:`ThreadWorkerPool.scale_to` replicates or drain-retires)
and swaps engines (:meth:`ThreadWorkerPool.swap_engine` builds a fresh
replica cohort over the new engine, retires the old one as each replica
finishes its in-flight batch, and bumps :attr:`~WorkerPool.generation`).
By the spawn-key rule, none of this changes any response bit.
"""

from __future__ import annotations

import asyncio

from ...uncertainty.metrics import UncertaintyResult
from ..batcher import BatchStager
from .base import (
    ResponseStager,
    WorkerPool,
    assemble_results,
    compute_batch,
    compute_batch_array,
    engine_num_classes,
)

__all__ = ["ThreadWorkerPool"]


class _Replica:
    """One engine replica + its staging buffers + its drain-to-retire flag."""

    __slots__ = ("engine", "stager", "response_stager", "retiring")

    def __init__(
        self,
        engine,
        stager: BatchStager | None,
        response_stager: ResponseStager | None = None,
    ) -> None:
        self.engine = engine
        self.stager = stager
        self.response_stager = response_stager
        self.retiring = False


class ThreadWorkerPool(WorkerPool):
    """Check batches out to K reentrant engine replicas in worker threads."""

    def __init__(
        self,
        engine,
        workers,
        num_samples,
        early_exit_threshold,
        *,
        max_batch_size=None,
        input_shape=None,
    ) -> None:
        super().__init__(
            engine,
            workers,
            num_samples,
            early_exit_threshold,
            max_batch_size=max_batch_size,
            input_shape=input_shape,
        )
        # replica 0 is the caller's engine (shared activation cache);
        # the rest share its parameters zero-copy but nothing per-call.
        # One pinned staging buffer per replica; checkout pairs them, so a
        # buffer is never written while its previous batch is in flight.
        self._replicas = [self._make_replica(engine)] + [
            self._make_replica(engine.replicate()) for _ in range(workers - 1)
        ]
        self._checkout: asyncio.Queue | None = None
        self._executor = None
        #: cache traffic of replicas already dropped from the roster
        #: (retired by a scale-down or an engine swap); live replicas are
        #: summed on read, so the pool totals survive replica turnover
        self._retired_cache_hits = 0
        self._retired_cache_misses = 0

    def _make_replica(self, engine) -> _Replica:
        return _Replica(engine, self._make_stager(), self._make_response_stager())

    def _make_stager(self) -> BatchStager | None:
        if self.max_batch_size is not None and self.input_shape is not None:
            return BatchStager(self.max_batch_size, self.input_shape)
        return None

    def _make_response_stager(self) -> ResponseStager | None:
        """Pinned MC-assembly scratch, or ``None`` when geometry is unknown.

        Mirrors the sample-count resolution of the process backend's ring
        sizing: an explicit ``num_samples`` wins, else the model's default
        (``NetworkEngine`` has no default and samples once).  Early-exit
        pools return per-row results with no MC assembly to stage.
        """
        if self.early_exit_threshold is not None or self.max_batch_size is None:
            return None
        classes = engine_num_classes(self.engine)
        if classes is None:
            return None
        if self.num_samples is not None:
            samples = self.num_samples
        else:
            model = getattr(self.engine, "model", None)
            samples = model.config.default_mc_samples if model is not None else 1
        return ResponseStager(self.max_batch_size, max(int(samples), 1), classes)

    @property
    def cache_hits(self) -> int:  # type: ignore[override]
        return self._retired_cache_hits + sum(
            r.engine.cache_stats()[0] for r in self._replicas
        )

    @property
    def cache_misses(self) -> int:  # type: ignore[override]
        return self._retired_cache_misses + sum(
            r.engine.cache_stats()[1] for r in self._replicas
        )

    @property
    def current_workers(self) -> int:
        return sum(1 for r in self._replicas if not r.retiring)

    async def start(self, executor) -> None:
        if self._checkout is not None:
            # idempotent, like ServingEngine.start(): rebuilding the queue
            # here would re-enqueue replicas that are currently checked out
            return
        self._executor = executor
        self._checkout = asyncio.Queue()
        for replica in self._replicas:
            self._checkout.put_nowait(replica)

    async def stop(self) -> None:
        self._checkout = None
        self._executor = None
        for replica in self._replicas:
            if replica.retiring:
                self._bank_cache_stats(replica)
        self._replicas = [r for r in self._replicas if not r.retiring]

    # ------------------------------------------------------------------ #
    # fleet surface
    # ------------------------------------------------------------------ #
    def _bank_cache_stats(self, replica: _Replica) -> None:
        hits, misses = replica.engine.cache_stats()
        self._retired_cache_hits += hits
        self._retired_cache_misses += misses

    def _discard(self, replica: _Replica) -> None:
        if replica in self._replicas:
            self._bank_cache_stats(replica)
            self._replicas.remove(replica)

    def _drain_idle_retirees(self) -> None:
        """Drop every retiring replica currently parked in checkout."""
        if self._checkout is None:
            self._replicas = [r for r in self._replicas if not r.retiring]
            return
        keep: list[_Replica] = []
        while True:
            try:
                replica = self._checkout.get_nowait()
            except asyncio.QueueEmpty:
                break
            if replica.retiring:
                self._discard(replica)
            else:
                keep.append(replica)
        for replica in keep:
            self._checkout.put_nowait(replica)

    async def scale_to(self, target: int) -> None:
        """Grow (replicate) or shrink (drain-retire) to ``target`` replicas."""
        target = max(1, int(target))
        self.target_workers = target
        live = [r for r in self._replicas if not r.retiring]
        if target == len(live):
            return
        if target > len(live):
            for _ in range(target - len(live)):
                replica = self._make_replica(self.engine.replicate())
                self._replicas.append(replica)
                if self._checkout is not None:
                    self._checkout.put_nowait(replica)
        else:
            for replica in live[target:]:
                replica.retiring = True
            self._drain_idle_retirees()
        if self._checkout is None:
            self.workers = target
        self.scale_events += 1

    async def swap_engine(self, engine) -> int:
        """Swap in a new engine (weights/shapes may differ); new generation.

        A fresh same-size replica cohort is built over ``engine`` and the
        old cohort is marked retiring: an old replica with a batch in
        flight finishes it on the *old* engine object (never a torn read —
        each replica's engine is internally consistent) and is dropped on
        check-in.  No request fails.
        """
        old = [r for r in self._replicas if not r.retiring]
        self.engine = engine
        cohort = [self._make_replica(engine)] + [
            self._make_replica(engine.replicate())
            for _ in range(max(len(old), 1) - 1)
        ]
        self._replicas.extend(cohort)
        for replica in old:
            replica.retiring = True
        if self._checkout is not None:
            for replica in cohort:
                self._checkout.put_nowait(replica)
        self._drain_idle_retirees()
        self.generation += 1
        return self.generation

    # ------------------------------------------------------------------ #
    # serving
    # ------------------------------------------------------------------ #
    async def run(self, seq: int, payloads: list) -> list[UncertaintyResult]:
        assert self._checkout is not None, "pool is not started"
        while True:
            replica = await self._checkout.get()
            if replica.retiring:
                self._discard(replica)
                continue
            try:
                loop = asyncio.get_running_loop()
                return await loop.run_in_executor(
                    self._executor, self._serve, replica, seq, payloads
                )
            finally:
                # drain-before-retire: a replica marked retiring while this
                # batch was in flight is dropped instead of re-enqueued
                if replica.retiring:
                    self._discard(replica)
                elif self._checkout is not None:
                    self._checkout.put_nowait(replica)

    def _serve(
        self, replica: _Replica, seq: int, payloads: list
    ) -> list[UncertaintyResult]:
        stager = replica.stager
        batch = stager.stage(payloads) if stager is not None else None
        if batch is None:
            out = compute_batch(
                replica.engine,
                seq,
                payloads,
                self.num_samples,
                self.early_exit_threshold,
            )
        else:
            out = compute_batch_array(
                replica.engine,
                seq,
                batch,
                self.num_samples,
                self.early_exit_threshold,
            )
        return assemble_results(out, replica.response_stager)
