"""Thread-backed worker pool: K engine replicas on a thread-pool executor.

This is the historical (PR 4) multi-worker mode, repackaged behind the
:class:`~repro.serving.workers.base.WorkerPool` contract: replica 0 is the
caller's engine (so its activation cache stays shared with batch callers),
replicas 1..K-1 come from ``engine.replicate()`` — same ``Parameter``
arrays zero-copy, private context and cache each.  NumPy's GEMMs release
the GIL, so batches genuinely overlap on multi-core hosts; the Python glue
between the GEMMs does not, which is what the process backend
(:mod:`repro.serving.workers.procpool`) exists to lift.

When the serving engine knows the batch geometry, each replica carries a
:class:`~repro.serving.batcher.BatchStager` — a pre-pinned assembly buffer
that replaces the per-batch ``np.stack`` allocation.  Staged and stacked
batches have identical layout, so responses stay bit-identical either way.

The fleet surface is implemented in-process: threads cannot die, so
:meth:`~WorkerPool.ensure_healthy` stays the base no-op, but the pool
scales (:meth:`ThreadWorkerPool.scale_to` replicates or drain-retires)
and swaps engines (:meth:`ThreadWorkerPool.swap_engine` builds a fresh
replica cohort over the new engine, retires the old one as each replica
finishes its in-flight batch, and bumps :attr:`~WorkerPool.generation`).
By the spawn-key rule, none of this changes any response bit.
"""

from __future__ import annotations

import asyncio

from ...uncertainty.metrics import UncertaintyResult
from ..batcher import BatchStager
from .base import WorkerPool, assemble_results, compute_batch, compute_batch_array

__all__ = ["ThreadWorkerPool"]


class _Replica:
    """One engine replica + its staging buffer + its drain-to-retire flag."""

    __slots__ = ("engine", "stager", "retiring")

    def __init__(self, engine, stager: BatchStager | None) -> None:
        self.engine = engine
        self.stager = stager
        self.retiring = False


class ThreadWorkerPool(WorkerPool):
    """Check batches out to K reentrant engine replicas in worker threads."""

    def __init__(
        self,
        engine,
        workers,
        num_samples,
        early_exit_threshold,
        *,
        max_batch_size=None,
        input_shape=None,
    ) -> None:
        super().__init__(
            engine,
            workers,
            num_samples,
            early_exit_threshold,
            max_batch_size=max_batch_size,
            input_shape=input_shape,
        )
        # replica 0 is the caller's engine (shared activation cache);
        # the rest share its parameters zero-copy but nothing per-call.
        # One pinned staging buffer per replica; checkout pairs them, so a
        # buffer is never written while its previous batch is in flight.
        self._replicas = [_Replica(engine, self._make_stager())] + [
            _Replica(engine.replicate(), self._make_stager())
            for _ in range(workers - 1)
        ]
        self._checkout: asyncio.Queue | None = None
        self._executor = None

    def _make_stager(self) -> BatchStager | None:
        if self.max_batch_size is not None and self.input_shape is not None:
            return BatchStager(self.max_batch_size, self.input_shape)
        return None

    @property
    def current_workers(self) -> int:
        return sum(1 for r in self._replicas if not r.retiring)

    async def start(self, executor) -> None:
        if self._checkout is not None:
            # idempotent, like ServingEngine.start(): rebuilding the queue
            # here would re-enqueue replicas that are currently checked out
            return
        self._executor = executor
        self._checkout = asyncio.Queue()
        for replica in self._replicas:
            self._checkout.put_nowait(replica)

    async def stop(self) -> None:
        self._checkout = None
        self._executor = None
        self._replicas = [r for r in self._replicas if not r.retiring]

    # ------------------------------------------------------------------ #
    # fleet surface
    # ------------------------------------------------------------------ #
    def _discard(self, replica: _Replica) -> None:
        if replica in self._replicas:
            self._replicas.remove(replica)

    def _drain_idle_retirees(self) -> None:
        """Drop every retiring replica currently parked in checkout."""
        if self._checkout is None:
            self._replicas = [r for r in self._replicas if not r.retiring]
            return
        keep: list[_Replica] = []
        while True:
            try:
                replica = self._checkout.get_nowait()
            except asyncio.QueueEmpty:
                break
            if replica.retiring:
                self._discard(replica)
            else:
                keep.append(replica)
        for replica in keep:
            self._checkout.put_nowait(replica)

    async def scale_to(self, target: int) -> None:
        """Grow (replicate) or shrink (drain-retire) to ``target`` replicas."""
        target = max(1, int(target))
        self.target_workers = target
        live = [r for r in self._replicas if not r.retiring]
        if target == len(live):
            return
        if target > len(live):
            for _ in range(target - len(live)):
                replica = _Replica(self.engine.replicate(), self._make_stager())
                self._replicas.append(replica)
                if self._checkout is not None:
                    self._checkout.put_nowait(replica)
        else:
            for replica in live[target:]:
                replica.retiring = True
            self._drain_idle_retirees()
        if self._checkout is None:
            self.workers = target
        self.scale_events += 1

    async def swap_engine(self, engine) -> int:
        """Swap in a new engine (weights/shapes may differ); new generation.

        A fresh same-size replica cohort is built over ``engine`` and the
        old cohort is marked retiring: an old replica with a batch in
        flight finishes it on the *old* engine object (never a torn read —
        each replica's engine is internally consistent) and is dropped on
        check-in.  No request fails.
        """
        old = [r for r in self._replicas if not r.retiring]
        self.engine = engine
        cohort = [_Replica(engine, self._make_stager())] + [
            _Replica(engine.replicate(), self._make_stager())
            for _ in range(max(len(old), 1) - 1)
        ]
        self._replicas.extend(cohort)
        for replica in old:
            replica.retiring = True
        if self._checkout is not None:
            for replica in cohort:
                self._checkout.put_nowait(replica)
        self._drain_idle_retirees()
        self.generation += 1
        return self.generation

    # ------------------------------------------------------------------ #
    # serving
    # ------------------------------------------------------------------ #
    async def run(self, seq: int, payloads: list) -> list[UncertaintyResult]:
        assert self._checkout is not None, "pool is not started"
        while True:
            replica = await self._checkout.get()
            if replica.retiring:
                self._discard(replica)
                continue
            try:
                loop = asyncio.get_running_loop()
                return await loop.run_in_executor(
                    self._executor, self._serve, replica, seq, payloads
                )
            finally:
                # drain-before-retire: a replica marked retiring while this
                # batch was in flight is dropped instead of re-enqueued
                if replica.retiring:
                    self._discard(replica)
                elif self._checkout is not None:
                    self._checkout.put_nowait(replica)

    def _serve(
        self, replica: _Replica, seq: int, payloads: list
    ) -> list[UncertaintyResult]:
        stager = replica.stager
        batch = stager.stage(payloads) if stager is not None else None
        if batch is None:
            out = compute_batch(
                replica.engine,
                seq,
                payloads,
                self.num_samples,
                self.early_exit_threshold,
            )
        else:
            out = compute_batch_array(
                replica.engine,
                seq,
                batch,
                self.num_samples,
                self.early_exit_threshold,
            )
        return assemble_results(out)
