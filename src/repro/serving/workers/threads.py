"""Thread-backed worker pool: K engine replicas on a thread-pool executor.

This is the historical (PR 4) multi-worker mode, repackaged behind the
:class:`~repro.serving.workers.base.WorkerPool` contract: replica 0 is the
caller's engine (so its activation cache stays shared with batch callers),
replicas 1..K-1 come from ``engine.replicate()`` — same ``Parameter``
arrays zero-copy, private context and cache each.  NumPy's GEMMs release
the GIL, so batches genuinely overlap on multi-core hosts; the Python glue
between the GEMMs does not, which is what the process backend
(:mod:`repro.serving.workers.procpool`) exists to lift.

When the serving engine knows the batch geometry, each replica carries a
:class:`~repro.serving.batcher.BatchStager` — a pre-pinned assembly buffer
that replaces the per-batch ``np.stack`` allocation.  Staged and stacked
batches have identical layout, so responses stay bit-identical either way.
"""

from __future__ import annotations

import asyncio

from ...uncertainty.metrics import UncertaintyResult
from ..batcher import BatchStager
from .base import WorkerPool, assemble_results, compute_batch, compute_batch_array

__all__ = ["ThreadWorkerPool"]


class ThreadWorkerPool(WorkerPool):
    """Check batches out to K reentrant engine replicas in worker threads."""

    def __init__(
        self,
        engine,
        workers,
        num_samples,
        early_exit_threshold,
        *,
        max_batch_size=None,
        input_shape=None,
    ) -> None:
        super().__init__(
            engine,
            workers,
            num_samples,
            early_exit_threshold,
            max_batch_size=max_batch_size,
            input_shape=input_shape,
        )
        # replica 0 is the caller's engine (shared activation cache);
        # the rest share its parameters zero-copy but nothing per-call
        self._engines = [engine] + [engine.replicate() for _ in range(workers - 1)]
        # one pinned staging buffer per replica; checkout pairs them, so a
        # buffer is never written while its previous batch is in flight
        if self.max_batch_size is not None and self.input_shape is not None:
            self._stagers = [
                BatchStager(self.max_batch_size, self.input_shape)
                for _ in self._engines
            ]
        else:
            self._stagers = [None] * len(self._engines)
        self._checkout: asyncio.Queue | None = None
        self._executor = None

    async def start(self, executor) -> None:
        if self._checkout is not None:
            # idempotent, like ServingEngine.start(): rebuilding the queue
            # here would re-enqueue replicas that are currently checked out
            return
        self._executor = executor
        self._checkout = asyncio.Queue()
        for replica in zip(self._engines, self._stagers):
            self._checkout.put_nowait(replica)

    async def stop(self) -> None:
        self._checkout = None
        self._executor = None

    async def run(self, seq: int, payloads: list) -> list[UncertaintyResult]:
        assert self._checkout is not None, "pool is not started"
        engine, stager = await self._checkout.get()
        try:
            loop = asyncio.get_running_loop()
            return await loop.run_in_executor(
                self._executor, self._serve, engine, stager, seq, payloads
            )
        finally:
            self._checkout.put_nowait((engine, stager))

    def _serve(
        self, engine, stager: BatchStager | None, seq: int, payloads: list
    ) -> list[UncertaintyResult]:
        batch = stager.stage(payloads) if stager is not None else None
        if batch is None:
            out = compute_batch(
                engine, seq, payloads, self.num_samples, self.early_exit_threshold
            )
        else:
            out = compute_batch_array(
                engine, seq, batch, self.num_samples, self.early_exit_threshold
            )
        return assemble_results(out)
