"""Process-backed worker pool: true multi-core serving over shared weights.

Thread replicas (PR 4) only scale while NumPy holds the GIL-released GEMMs
long enough to hide the Python glue around them; on small models the glue
dominates and K threads flatline near 1x.  This backend runs each replica
in its **own process**:

* At ``start`` the pool moves every ``Parameter`` value into one
  :class:`~repro.nn.shm.SharedParameterArena` segment and spawns K workers.
  Each worker receives a pickled engine whose shared parameters serialize
  as ``(segment, offset, shape)`` descriptors — kilobytes, not weights —
  and reconstructs a zero-copy replica over the very same storage
  (unpickling an engine *is* ``replicate()`` across the process boundary).
* Per batch, arrays cross the boundary through a per-worker shared-memory
  :class:`~repro.serving.workers.ring.BatchRing` (the default
  ``transport="ring"``): the parent stages request rows straight into a
  ring slot, the pipe carries only a ``("ring", seq, token, slot)``
  doorbell, and the worker reads the batch as a zero-copy view and writes
  the result arrays into the slot's response region.  Anything that does
  not fit — an oversized payload, exhausted slots, an over-long response —
  transparently falls back to the pickle pipe.  Even there the batch is
  pre-assembled when it conforms: a per-handle
  :class:`~repro.serving.batcher.BatchStager` packs the rows into one
  pinned buffer and ships a single ``("batch", seq, token, array)`` frame
  (one pickled array instead of N, and no ``np.stack`` in the worker);
  only non-conforming payloads take the legacy
  ``("predict", seq, token, payloads)`` row-list frame.  Both pipe frames
  answer ``("ok", out, cache_delta)``, and those three frames are also
  the whole protocol under ``transport="pipe"``.  Either way the channel
  carries inputs and probabilities only, never model state.
* **Staleness:** weight mutations in the parent (optimizer steps,
  ``assign``, quantization) write straight into the shared segment, so
  workers always *read* current bytes; the ``weights_token`` riding on
  each request tells a worker when the weights changed so it re-syncs its
  local version counters from the arena and drops its activation caches —
  the same ``weights_version`` rule that keeps in-process caches honest.
  Updates are not transactional against in-flight batches: quiesce
  submissions around an update if a batch must never mix old and new
  weights.
* **Crashes:** a worker that dies (OOM killer, segfault, ``kill -9``)
  fails pipe I/O in the parent; its in-flight batch is retried on a live
  sibling (each worker has its own ring, so a batch staged into a dead
  worker's slot is simply re-staged into the sibling's), the dead
  worker's ring segment is unlinked with it, and the death is surfaced
  via ``worker_crashes``.  Without a supervisor, ``WorkerCrashed``
  reaches callers once no worker is left; with one
  (:class:`~repro.serving.fleet.WorkerSupervisor`), dead workers are
  respawned attached to the current arena + a fresh ring, and a
  transiently empty fleet parks batches until a respawn lands.
* **Elasticity:** :meth:`ProcessWorkerPool.scale_to` grows the fleet by
  spawning extra workers over the same arena and shrinks it by *marking*
  workers retiring — a retiring worker finishes its in-flight batch,
  takes no new ones, and is shut down on check-in (drain-before-retire).
* **Generations:** :meth:`ProcessWorkerPool.swap_engine` rolls the fleet
  onto a *new* engine — weights **and shapes** may differ — by building
  a successor :class:`~repro.nn.shm.SharedParameterArena` (generation
  n+1), spawning a same-size cohort attached to it, draining and
  retiring the old cohort, then releasing the old arena.  No request
  fails, and no worker ever reads a half-updated parameter: a
  generation's segment is immutable-in-shape for its whole lifetime.

Workers are spawned (not forked): forking a process that already runs an
asyncio loop plus BLAS threads is unsound, and spawn keeps the backend
portable.  Startup therefore costs a Python interpreter + import per
worker — amortised over a serving lifetime, irrelevant per request.

For deterministic crash-path testing the pool accepts a
:class:`~repro.serving.fleet.FaultPlan`: the parent consumes one
injection per delivery attempt keyed on the batch sequence number and
either kills the victim before the doorbell or poisons the message so
the worker traps and dies at the requested lifecycle point (the
``fault`` field riding every request frame; ``None`` in production).
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import threading
import time
from dataclasses import dataclass

import numpy as np

from ...nn.shm import ArenaManifest, SharedParameterArena
from ...uncertainty.metrics import UncertaintyResult
from ..batcher import BatchStager, payloads_conform
from .base import (
    BatchOutput,
    WorkerCrashed,
    WorkerPool,
    assemble_results,
    compute_batch,
    compute_batch_array,
    engine_num_classes,
    engine_parameters,
)
from .ring import BatchRing, RingManifest

__all__ = ["ProcessWorkerPool"]

#: how often a parent thread waiting on a worker re-checks its liveness
_POLL_INTERVAL_S = 0.2

#: response modes on the ring acknowledgement
_MODE_MC = 0  # one array: sample_probs (S, N, classes)
_MODE_EARLY_EXIT = 1  # two arrays: probs (N, classes), exit_indices (N,)


class _WorkerDied(Exception):
    """Internal: the worker process behind a handle is gone."""


@dataclass
class _WorkerConfig:
    """Everything a worker needs, pickled once at spawn."""

    engine: object  # InferenceEngine | NetworkEngine, shm-backed parameters
    num_samples: int | None
    early_exit_threshold: float | None
    manifest: ArenaManifest


def _batch_output_arrays(out: BatchOutput) -> tuple[int, list[np.ndarray]]:
    """(ring mode, arrays in slot order) for one batch result."""
    if out.sample_probs is not None:
        return _MODE_MC, [out.sample_probs]
    return _MODE_EARLY_EXIT, [out.probs, out.exit_indices]


def _worker_main(
    conn, config: _WorkerConfig, ring_manifest: RingManifest | None
) -> None:
    """Worker process entry point: serve batches until told to stop."""
    engine = config.engine
    arena = SharedParameterArena.attached(
        config.manifest, list(engine_parameters(engine))
    )
    arena.refresh()
    ring = BatchRing.attached(ring_manifest) if ring_manifest is not None else None
    seen_token = None
    # cache counters already reported to the parent; each reply carries the
    # delta since the previous one, so parent totals survive worker deaths
    seen_hits = seen_misses = 0
    try:
        conn.send(("ready", os.getpid()))
        while True:
            msg = conn.recv()
            kind = msg[0]
            if kind == "stop":
                break
            _, seq, token, payload, fault = msg
            if fault == "mid_compute":
                # poisoned doorbell (FaultPlan, test-only): die holding the
                # request exactly as a real mid-compute crash would —
                # after mapping the slot, before producing any response
                if kind == "ring":
                    ring.read_request(payload)
                os._exit(70)
            try:
                if token != seen_token:
                    # weights changed in the parent: sync version counters
                    # from the arena and drop activation caches keyed on
                    # the stale token (the shared bytes are already current)
                    arena.refresh()
                    engine.invalidate_cache()
                    seen_token = token
                if kind == "ring":
                    out = compute_batch_array(
                        engine,
                        seq,
                        ring.read_request(payload),
                        config.num_samples,
                        config.early_exit_threshold,
                    )
                elif kind == "batch":
                    # pipe fallback, pre-assembled: the parent staged the
                    # rows into one pinned array before pickling — layout
                    # identical to np.stack, so bit-identical results
                    out = compute_batch_array(
                        engine,
                        seq,
                        payload,
                        config.num_samples,
                        config.early_exit_threshold,
                    )
                else:
                    out = compute_batch(
                        engine,
                        seq,
                        payload,
                        config.num_samples,
                        config.early_exit_threshold,
                    )
            except Exception as exc:  # compute failed; the worker lives on
                conn.send(("error", f"{type(exc).__name__}: {exc}"))
            else:
                hits, misses = engine.cache_stats()
                delta = (hits - seen_hits, misses - seen_misses)
                seen_hits, seen_misses = hits, misses
                if kind == "ring":
                    mode, arrays = _batch_output_arrays(out)
                    if ring.write_response(payload, arrays):
                        conn.send(("ok_ring", payload, mode, delta))
                    else:  # response outgrew the slot: pickle it instead
                        conn.send(("ok", out, delta))
                else:
                    conn.send(("ok", out, delta))
                if fault == "post_response":
                    # die *after* answering, before the parent recycles the
                    # slot: a silent death only a liveness scan can find
                    os._exit(71)
    except (EOFError, OSError, KeyboardInterrupt):
        pass  # parent went away (or interactive interrupt): just exit
    finally:
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass


class _WorkerHandle:
    """Parent-side endpoint of one worker process."""

    def __init__(
        self,
        index: int,
        process,
        conn,
        ring: BatchRing | None,
        generation: int = 0,
        stager: BatchStager | None = None,
    ) -> None:
        self.index = index
        self.process = process
        self.conn = conn
        self.ring = ring
        #: pipe-side staging fallback: when no ring slot is free the batch
        #: is assembled into this pinned buffer and shipped as one pickled
        #: array ("batch" frame) instead of a per-row list.  The pickle in
        #: conn.send copies the bytes before returning, so the buffer is
        #: free for reuse the moment the frame is on the wire.
        self.stager = stager
        self.alive = True
        #: which arena generation this worker attached at spawn; retired
        #: (never mutated) by a generation swap
        self.generation = generation
        #: drain-before-retire flag: a retiring worker finishes its
        #: in-flight batch but is shut down instead of re-entering checkout
        self.retiring = False
        #: whether an executor thread is currently inside execute(); the
        #: supervisor's liveness scan skips in-flight handles (their own
        #: exchange surfaces the death) to avoid reaping under a live drain
        self.in_flight = False
        #: crash accounting guard: the executing batch and the liveness
        #: scan may both observe one death; it must count once
        self.crash_counted = False
        #: transport breakdown for this worker's batches, summed by the pool
        self.ring_batches = 0
        self.pipe_batches = 0
        #: activation-cache traffic in the worker process, accumulated from
        #: the per-reply deltas riding each acknowledgement
        self.cache_hits = 0
        self.cache_misses = 0
        self._free_slots = list(range(ring.slots)) if ring is not None else []
        # execute() is called from pool-executor threads; the lock keeps a
        # send/recv exchange atomic per worker even if a cancelled batch's
        # thread is still draining its response
        self._lock = threading.Lock()

    def _stage(self, payloads: list) -> tuple[int | None, np.ndarray | None]:
        """Claim a slot and stage the batch into it; (None, None) = pipe."""
        if self.ring is None or self.ring.closed or not self._free_slots:
            return None, None
        if not isinstance(payloads[0], np.ndarray):
            return None, None
        shape = payloads[0].shape
        if not payloads_conform(payloads, shape):
            return None, None
        slot = self._free_slots.pop()
        dest = self.ring.stage_request(slot, (len(payloads),) + tuple(shape))
        if dest is None:  # oversized payload: recycle the slot, use the pipe
            self._free_slots.append(slot)
            return None, None
        for i, payload in enumerate(payloads):
            dest[i] = payload
        return slot, dest

    def execute(
        self, seq: int, token: int, payloads: list, fault: str | None = None
    ) -> list[UncertaintyResult]:
        """Blocking request/response exchange; runs on an executor thread."""
        with self._lock:
            slot = None
            try:
                slot, _ = self._stage(payloads)
                if fault == "pre_doorbell":
                    # FaultPlan (test-only): deterministic crash *between*
                    # staging and the doorbell — the batch dies holding a
                    # ring slot and must be re-staged on a sibling
                    self.process.kill()
                    self.process.join(5.0)
                if slot is not None:
                    self.conn.send(("ring", seq, token, slot, fault))
                    self.ring_batches += 1
                else:
                    # pipe fallback: still stage when the batch conforms —
                    # one pinned pre-assembled array pickles as a single
                    # frame and spares the worker its np.stack
                    batch = (
                        self.stager.stage(payloads)
                        if self.stager is not None
                        else None
                    )
                    if batch is not None:
                        self.conn.send(("batch", seq, token, batch, fault))
                    else:
                        self.conn.send(("predict", seq, token, payloads, fault))
                    self.pipe_batches += 1
                while not self.conn.poll(_POLL_INTERVAL_S):
                    if not self.process.is_alive():
                        raise _WorkerDied(
                            f"worker {self.index} died "
                            f"(exitcode {self.process.exitcode})"
                        )
                reply = self.conn.recv()
                if reply[0] == "ok_ring":
                    # assemble while the slot is still owned: MC assembly
                    # derives fresh arrays from the view immediately;
                    # early-exit results retain per-row views, so those
                    # arrays are copied out before the slot is recycled
                    _, rslot, mode, delta = reply
                    self.cache_hits += delta[0]
                    self.cache_misses += delta[1]
                    arrays = self.ring.read_response(rslot)
                    if mode == _MODE_MC:
                        out = BatchOutput(sample_probs=arrays[0])
                    else:
                        out = BatchOutput(
                            probs=arrays[0].copy(), exit_indices=arrays[1].copy()
                        )
                    return assemble_results(out)
            except (OSError, EOFError) as exc:
                # OSError covers BrokenPipeError/ConnectionResetError and
                # also "handle is closed": teardown may close the pipe while
                # a cancelled batch's executor thread still drains it here
                raise _WorkerDied(f"worker {self.index}: {exc!r}") from None
            finally:
                if slot is not None:
                    self._free_slots.append(slot)
        if reply[0] == "error":
            raise RuntimeError(f"serving worker {self.index} failed: {reply[1]}")
        _, value, delta = reply
        self.cache_hits += delta[0]
        self.cache_misses += delta[1]
        return assemble_results(value)

    def _release_ring(self) -> None:
        if self.ring is not None:
            self.ring.release()

    def reap(self) -> None:
        """Mark dead and reclaim OS resources (idempotent)."""
        self.alive = False
        try:
            self.conn.close()
        except OSError:  # pragma: no cover
            pass
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=5.0)
        self._release_ring()

    def shutdown(self, timeout: float = 5.0) -> None:
        """Ask the worker to exit, escalating to terminate."""
        if not self.alive:
            return
        self.alive = False
        # serialize the stop frame with any executor thread still inside
        # execute() (a cancelled batch's thread keeps draining the pipe) —
        # two concurrent send()s would interleave bytes on the channel.
        # Bounded wait: a wedged exchange falls through to terminate below.
        locked = self._lock.acquire(timeout=timeout)
        try:
            if locked and self.process.is_alive():
                try:
                    self.conn.send(("stop",))
                except OSError:
                    pass
        finally:
            if locked:
                self._lock.release()
        self.process.join(timeout)
        if self.process.is_alive():  # pragma: no cover - stuck worker
            self.process.terminate()
            self.process.join(timeout)
        try:
            self.conn.close()
        except OSError:  # pragma: no cover
            pass
        self._release_ring()


class ProcessWorkerPool(WorkerPool):
    """K spawned worker processes over one shared-memory parameter arena."""

    def __init__(
        self,
        engine,
        workers,
        num_samples,
        early_exit_threshold,
        mp_context: str = "spawn",
        start_timeout: float = 120.0,
        *,
        transport: str = "ring",
        ring_slots: int = 2,
        ring_request_bytes: int | None = None,
        ring_response_bytes: int | None = None,
        max_batch_size: int | None = None,
        input_shape: tuple[int, ...] | None = None,
        fault_plan=None,
        respawn_wait: float = 60.0,
    ) -> None:
        super().__init__(
            engine,
            workers,
            num_samples,
            early_exit_threshold,
            max_batch_size=max_batch_size,
            input_shape=input_shape,
        )
        if transport not in ("ring", "pipe"):
            raise ValueError(f"transport must be 'ring' or 'pipe', got {transport!r}")
        if ring_slots <= 0:
            raise ValueError("ring_slots must be positive")
        self.transport = transport
        self._ring_slots = int(ring_slots)
        self._ring_request_bytes = ring_request_bytes
        self._ring_response_bytes = ring_response_bytes
        self._mp_context = mp_context
        self._start_timeout = start_timeout
        #: test-only deterministic kill schedule (see repro.serving.fleet)
        self._fault_plan = fault_plan
        #: supervised mode: how long a batch waits on an all-dead fleet
        #: for the supervisor to deliver a respawn before giving up
        self._respawn_wait = float(respawn_wait)
        self._arena: SharedParameterArena | None = None
        self._handles: list[_WorkerHandle] = []
        self._checkout: asyncio.Queue | None = None
        self._executor = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._published_token: int | None = None
        #: monotonically increasing worker index (respawns/grows get fresh
        #: indices, so logs and crash messages never alias two lifetimes)
        self._next_index = 0
        #: in-progress retire shutdowns; stop() waits for these
        self._retire_futures: set = set()
        #: serializes fleet mutations (respawn / scale / swap) against each
        #: other — the supervisor's health and scale loops are separate
        #: tasks, and two concurrent spawns would race the roster
        self._fleet_lock = asyncio.Lock()

    # ------------------------------------------------------------------ #
    # transport stats
    # ------------------------------------------------------------------ #
    @property
    def ring_batches(self) -> int:  # type: ignore[override]
        return sum(h.ring_batches for h in self._handles)

    @property
    def pipe_batches(self) -> int:  # type: ignore[override]
        return sum(h.pipe_batches for h in self._handles)

    @property
    def cache_hits(self) -> int:  # type: ignore[override]
        return sum(h.cache_hits for h in self._handles)

    @property
    def cache_misses(self) -> int:  # type: ignore[override]
        return sum(h.cache_misses for h in self._handles)

    # ------------------------------------------------------------------ #
    # ring sizing
    # ------------------------------------------------------------------ #
    def _ring_geometry(self) -> tuple[int, int] | None:
        """Per-slot (request_bytes, response_bytes), or ``None`` = no ring.

        Sizing is best-effort: an underestimate only costs a fallback to
        the pipe (stage/write refuse, the batch ships pickled), never a
        wrong answer.
        """
        if self.transport != "ring":
            return None
        if (
            self._ring_request_bytes is not None
            and self._ring_response_bytes is not None
        ):
            return self._ring_request_bytes, self._ring_response_bytes
        if self.max_batch_size is None or self.input_shape is None:
            return None
        classes = engine_num_classes(self.engine)
        if classes is None:
            return None
        example = int(np.prod(self.input_shape, dtype=np.int64))
        request_bytes = 8 * self.max_batch_size * example
        if self.num_samples is not None:
            samples = self.num_samples
        else:
            model = getattr(self.engine, "model", None)
            samples = model.config.default_mc_samples if model is not None else 1
        # MC: (S, N, classes) float64; early-exit: (N, classes) + (N,) int64.
        # Sized for the larger of the two so one geometry serves both modes.
        response_bytes = 8 * self.max_batch_size * (max(samples, 1) * classes + 1)
        return (
            self._ring_request_bytes or request_bytes,
            self._ring_response_bytes or response_bytes,
        )

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self, executor) -> None:
        if self._checkout is not None:
            return
        self._executor = executor
        self._loop = asyncio.get_running_loop()
        # spawning + the ready handshake block on process startup; keep the
        # event loop responsive meanwhile
        await self._loop.run_in_executor(executor, self._start_sync)
        self._checkout = asyncio.Queue()
        for handle in self._handles:
            self._checkout.put_nowait(handle)

    def _spawn_worker(self, config: _WorkerConfig) -> _WorkerHandle:
        """Spawn one worker process (no ready-wait); blocking, off-loop."""
        ctx = multiprocessing.get_context(self._mp_context)
        geometry = self._ring_geometry()
        ring = (
            BatchRing.create(self._ring_slots, *geometry)
            if geometry is not None
            else None
        )
        index = self._next_index
        self._next_index += 1
        parent_conn, child_conn = ctx.Pipe()
        process = ctx.Process(
            target=_worker_main,
            args=(
                child_conn,
                config,
                ring.manifest if ring is not None else None,
            ),
            daemon=True,
            name=f"repro-serving-worker-{index}",
        )
        process.start()
        child_conn.close()
        stager = (
            BatchStager(self.max_batch_size, self.input_shape)
            if self.max_batch_size is not None and self.input_shape is not None
            else None
        )
        return _WorkerHandle(
            index, process, parent_conn, ring, generation=self.generation, stager=stager
        )

    @staticmethod
    def _await_ready(handle: _WorkerHandle, deadline: float) -> None:
        """Block until the worker's ready handshake (or fail); off-loop."""
        remaining = deadline - time.monotonic()
        if remaining <= 0 or not handle.conn.poll(remaining):
            raise RuntimeError(
                f"serving worker {handle.index} did not become ready in time"
            )
        msg = handle.conn.recv()  # EOFError if it died during import
        if msg[0] != "ready":  # pragma: no cover - protocol violation
            raise RuntimeError(f"unexpected handshake from worker: {msg!r}")

    def _current_config(self) -> _WorkerConfig:
        """The spawn config for the *current* engine + arena generation."""
        return _WorkerConfig(
            engine=self.engine,
            num_samples=self.num_samples,
            early_exit_threshold=self.early_exit_threshold,
            manifest=self._arena.manifest,
        )

    def _start_sync(self) -> None:
        params = list(engine_parameters(self.engine))
        arena = SharedParameterArena.create(params, generation=self.generation)
        self._arena = arena
        handles: list[_WorkerHandle] = []
        try:
            config = self._current_config()
            for _ in range(self.workers):
                handles.append(self._spawn_worker(config))
            deadline = time.monotonic() + self._start_timeout
            for handle in handles:
                self._await_ready(handle, deadline)
        except BaseException:
            for handle in handles:
                handle.shutdown(timeout=1.0)
            self._arena = None
            arena.release()
            raise
        self._published_token = self.engine.weights_token()
        self._handles = handles

    def _spawn_ready_handle(self) -> _WorkerHandle:
        """Spawn + handshake one worker and register it; blocking, off-loop.

        Used by respawn (supervisor), grow (autoscaler) and generation
        swaps.  Registration happens *here*, in the worker thread — the
        handle joins the roster immediately and checkout enqueue is
        marshalled onto the event loop with ``call_soon_threadsafe`` — so
        a cancelled awaiting task can never orphan a spawned process:
        once this function returns, stop() knows about the worker.
        """
        handle = self._spawn_worker(self._current_config())
        try:
            self._await_ready(handle, time.monotonic() + self._respawn_wait)
        except BaseException:
            handle.shutdown(timeout=1.0)
            raise
        self._handles.append(handle)  # GIL-atomic; roster owns it now
        loop = self._loop
        if loop is not None:
            loop.call_soon_threadsafe(self._enqueue_handle, handle)
        return handle

    def _enqueue_handle(self, handle: _WorkerHandle) -> None:
        """Event-loop callback: offer a freshly spawned worker for checkout."""
        if self._checkout is not None and handle.alive and not handle.retiring:
            self._checkout.put_nowait(handle)

    async def stop(self) -> None:
        if self._checkout is None and not self._handles:
            return
        self._checkout = None
        if self._retire_futures:
            # let in-progress drain-before-retire shutdowns finish first;
            # they run on the executor we are about to drop
            await asyncio.gather(*list(self._retire_futures), return_exceptions=True)
        loop = asyncio.get_running_loop()
        executor, self._executor = self._executor, None
        self._loop = None
        await loop.run_in_executor(executor, self._stop_sync)

    def _stop_sync(self) -> None:
        for handle in self._handles:
            handle.shutdown()
        self._handles = []
        if self._arena is not None:
            # detaches the parent's parameters back into private arrays and
            # unlinks the segment — the model stays fully usable afterwards
            self._arena.release()
            self._arena = None

    # ------------------------------------------------------------------ #
    # fleet surface (supervisor / autoscaler / generation swaps)
    # ------------------------------------------------------------------ #
    @property
    def current_workers(self) -> int:
        """Live, non-retiring workers (falls back to K when not serving)."""
        if self._checkout is None and not self._handles:
            return self.workers
        return sum(1 for h in self._handles if h.alive and not h.retiring)

    @property
    def alive_workers(self) -> int:
        """Workers whose *process* answers ``is_alive()`` right now.

        Stricter than :attr:`current_workers`: a silently dead worker
        stays on the roster (``h.alive``) until a liveness scan reaps it,
        but its process already reads dead here — this is what lets the
        ``/v1/health`` endpoint flip the moment a worker dies instead of
        one supervisor interval later.
        """
        if self._checkout is None and not self._handles:
            return self.workers
        return sum(
            1
            for h in self._handles
            if h.alive and not h.retiring and h.process.is_alive()
        )

    def _note_crash(self, handle: _WorkerHandle) -> None:
        """Count one worker death exactly once (batch path vs. health scan)."""
        if not handle.crash_counted:
            handle.crash_counted = True
            self.worker_crashes += 1

    def _check_in(self, handle: _WorkerHandle) -> None:
        """Return a worker after a batch: back to checkout, or retire it."""
        if handle.retiring:
            self._retire_handle(handle)
        elif self._checkout is not None:
            self._checkout.put_nowait(handle)

    def _retire_handle(self, handle: _WorkerHandle) -> None:
        """Drop a drained worker from the roster and shut it down off-loop."""
        if handle in self._handles:
            self._handles.remove(handle)
        if self._executor is None:  # stopping anyway; _stop_sync got it
            return
        loop = asyncio.get_running_loop()
        fut = loop.run_in_executor(self._executor, handle.shutdown)
        self._retire_futures.add(fut)
        fut.add_done_callback(self._reap_retire_future)

    def _reap_retire_future(self, fut) -> None:
        self._retire_futures.discard(fut)
        if not fut.cancelled():
            fut.exception()  # consume; shutdown() failures are best-effort

    def _drain_idle_retirees(self) -> None:
        """Retire every *idle* retiring worker parked in the checkout queue.

        In-flight retirees are retired by their own check-in.  Dead poison
        tokens are preserved only in unsupervised mode, where parked
        waiters rely on them to observe a total-pool death.
        """
        if self._checkout is None:
            return
        keep: list[_WorkerHandle] = []
        while True:
            try:
                handle = self._checkout.get_nowait()
            except asyncio.QueueEmpty:
                break
            if handle.alive and handle.retiring:
                self._retire_handle(handle)
            elif handle.alive or not self.supervised:
                keep.append(handle)
        for handle in keep:
            self._checkout.put_nowait(handle)

    async def ensure_healthy(self) -> int:
        """Reap silently dead workers and respawn up to ``target_workers``.

        A worker that dies *between* batches never fails a pipe exchange,
        so only this liveness scan can find it.  In-flight handles are
        skipped — their own exchange surfaces the death — which keeps the
        scan from reaping a worker mid-drain.
        """
        if self._checkout is None:
            return 0
        async with self._fleet_lock:
            if self._checkout is None:  # stopped while waiting on the lock
                return 0
            loop = asyncio.get_running_loop()
            silent = [
                h
                for h in self._handles
                if h.alive and not h.in_flight and not h.process.is_alive()
            ]
            for handle in silent:
                self._note_crash(handle)
                # reap blocks (join + ring unlink); keep it off the loop
                await loop.run_in_executor(self._executor, handle.reap)
            # prune corpses (both silent deaths and batch-path reaps)
            self._handles = [h for h in self._handles if h.alive]
            respawned = 0
            while (
                sum(1 for h in self._handles if h.alive and not h.retiring)
                < self.target_workers
            ):
                if self._checkout is None or self._executor is None:
                    break
                await loop.run_in_executor(self._executor, self._spawn_ready_handle)
                respawned += 1
            self.workers_respawned += respawned
            return respawned

    async def scale_to(self, target: int) -> None:
        """Grow or shrink the live fleet to ``target`` (drain on shrink)."""
        target = max(1, int(target))
        if self._checkout is None:
            self.workers = self.target_workers = target
            return
        async with self._fleet_lock:
            self.target_workers = target
            live = [h for h in self._handles if h.alive and not h.retiring]
            if target == len(live):
                return
            loop = asyncio.get_running_loop()
            if target > len(live):
                for _ in range(target - len(live)):
                    await loop.run_in_executor(
                        self._executor, self._spawn_ready_handle
                    )
            else:
                for handle in live[target:]:
                    handle.retiring = True
                self._drain_idle_retirees()
            self.scale_events += 1

    async def swap_engine(self, engine) -> int:
        """Roll the fleet onto ``engine`` via a new arena generation.

        Weights **and shapes** may differ from the current engine.  The
        rollout is: build arena ``n+1`` → spawn a same-size cohort attached
        to it → mark the old cohort retiring (each finishes its in-flight
        batch, then shuts down) → release arena ``n`` once nothing reads
        it.  Requests keep flowing throughout; every response comes from a
        worker whose arena was complete and immutable at attach time, so
        no reader ever sees a torn update.
        """
        if self._checkout is None:
            self.engine = engine
            self.generation += 1
            return self.generation
        async with self._fleet_lock:
            loop = asyncio.get_running_loop()
            old_arena = self._arena
            old_cohort = [h for h in self._handles if h.alive and not h.retiring]
            params = list(engine_parameters(engine))
            new_gen = self.generation + 1
            new_arena = await loop.run_in_executor(
                self._executor,
                lambda: SharedParameterArena.create(params, generation=new_gen),
            )
            # from here on every spawn (including supervisor respawns)
            # attaches to generation n+1 with the new engine
            self.engine = engine
            self._arena = new_arena
            self.generation = new_gen
            self._published_token = engine.weights_token()
            for _ in range(max(len(old_cohort), 1)):
                await loop.run_in_executor(self._executor, self._spawn_ready_handle)
            for handle in old_cohort:
                handle.retiring = True
            self._drain_idle_retirees()
            # wait out the drain: in-flight old-generation workers retire
            # on check-in; alive flips false once shutdown() runs off-loop
            while any(h.alive for h in old_cohort) or self._retire_futures:
                self._drain_idle_retirees()
                await asyncio.sleep(0.01)
            if old_arena is not None:
                await loop.run_in_executor(self._executor, old_arena.release)
            return self.generation

    # ------------------------------------------------------------------ #
    # serving
    # ------------------------------------------------------------------ #
    async def run(self, seq: int, payloads: list) -> list[UncertaintyResult]:
        assert self._checkout is not None, "pool is not started"
        loop = asyncio.get_running_loop()
        token = self.engine.weights_token()
        if token != self._published_token:
            self._arena.publish()
            self._published_token = token
        while True:
            # fail fast once the whole pool is gone — without this check a
            # batch would park on the (then permanently empty) checkout
            # queue forever, wedging drain-on-stop along with it.  Under a
            # supervisor a transiently empty fleet is survivable: park on
            # checkout (bounded) until a respawn lands.
            if not any(h.alive for h in self._handles):
                if not self.supervised:
                    raise WorkerCrashed(
                        f"all {self.workers} serving worker processes have died"
                    )
                try:
                    handle = await asyncio.wait_for(
                        self._checkout.get(), self._respawn_wait
                    )
                except asyncio.TimeoutError:
                    if any(h.alive for h in self._handles):
                        continue  # respawn landed but was snatched; retry
                    raise WorkerCrashed(
                        f"all serving workers died and no respawn arrived "
                        f"within {self._respawn_wait}s"
                    ) from None
            else:
                handle = await self._checkout.get()
            if not handle.alive:
                if self.supervised:
                    # the supervisor owns recovery: swallow the stale token
                    # so the queue only ever hands out live workers
                    continue
                # a poison token from a total-pool death: pass the wake-up
                # on to any other parked waiter, then raise at the loop top
                self._checkout.put_nowait(handle)
                continue
            if handle.retiring:
                # drain-before-retire: a retiring worker takes no new work
                self._retire_handle(handle)
                continue
            fault = (
                self._fault_plan.take(seq) if self._fault_plan is not None else None
            )
            handle.in_flight = True
            try:
                result = await loop.run_in_executor(
                    self._executor, handle.execute, seq, token, payloads, fault
                )
            except _WorkerDied as exc:
                handle.in_flight = False
                self._note_crash(handle)
                # reap blocks (terminate + join); keep it off the event loop
                await loop.run_in_executor(self._executor, handle.reap)
                if not any(h.alive for h in self._handles) and not self.supervised:
                    # poison the queue so waiters parked in get() wake up
                    # and observe the total death instead of hanging
                    self._checkout.put_nowait(handle)
                    raise WorkerCrashed(
                        f"all {self.workers} serving worker processes have "
                        f"died (last: {exc})"
                    ) from exc
                continue  # retry the batch on a live sibling (or a respawn)
            except BaseException:
                handle.in_flight = False
                self._check_in(handle)
                raise
            handle.in_flight = False
            self._check_in(handle)
            return result
