"""Process-backed worker pool: true multi-core serving over shared weights.

Thread replicas (PR 4) only scale while NumPy holds the GIL-released GEMMs
long enough to hide the Python glue around them; on small models the glue
dominates and K threads flatline near 1x.  This backend runs each replica
in its **own process**:

* At ``start`` the pool moves every ``Parameter`` value into one
  :class:`~repro.nn.shm.SharedParameterArena` segment and spawns K workers.
  Each worker receives a pickled engine whose shared parameters serialize
  as ``(segment, offset, shape)`` descriptors — kilobytes, not weights —
  and reconstructs a zero-copy replica over the very same storage
  (unpickling an engine *is* ``replicate()`` across the process boundary).
* Per batch, arrays cross the boundary through a per-worker shared-memory
  :class:`~repro.serving.workers.ring.BatchRing` (the default
  ``transport="ring"``): the parent stages request rows straight into a
  ring slot, the pipe carries only a ``("ring", seq, token, slot)``
  doorbell, and the worker reads the batch as a zero-copy view and writes
  the result arrays into the slot's response region.  Anything that does
  not fit — an oversized payload, exhausted slots, an over-long response —
  transparently falls back to the legacy pickle pipe
  (``("predict", seq, token, payloads)`` / ``("ok", out)``), which is also
  the whole protocol under ``transport="pipe"``.  Either way the channel
  carries inputs and probabilities only, never model state.
* **Staleness:** weight mutations in the parent (optimizer steps,
  ``assign``, quantization) write straight into the shared segment, so
  workers always *read* current bytes; the ``weights_token`` riding on
  each request tells a worker when the weights changed so it re-syncs its
  local version counters from the arena and drops its activation caches —
  the same ``weights_version`` rule that keeps in-process caches honest.
  Updates are not transactional against in-flight batches: quiesce
  submissions around an update if a batch must never mix old and new
  weights.
* **Crashes:** a worker that dies (OOM killer, segfault, ``kill -9``)
  fails pipe I/O in the parent; its in-flight batch is retried on a live
  sibling (each worker has its own ring, so a batch staged into a dead
  worker's slot is simply re-staged into the sibling's), the dead
  worker's ring segment is unlinked with it, and the death is surfaced
  via ``worker_crashes`` (the ``WorkerCrashed`` error reaches callers
  only when no worker is left).

Workers are spawned (not forked): forking a process that already runs an
asyncio loop plus BLAS threads is unsound, and spawn keeps the backend
portable.  Startup therefore costs a Python interpreter + import per
worker — amortised over a serving lifetime, irrelevant per request.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import threading
import time
from dataclasses import dataclass

import numpy as np

from ...nn.shm import ArenaManifest, SharedParameterArena
from ...uncertainty.metrics import UncertaintyResult
from .base import (
    BatchOutput,
    WorkerCrashed,
    WorkerPool,
    assemble_results,
    compute_batch,
    compute_batch_array,
    engine_num_classes,
    engine_parameters,
)
from .ring import BatchRing, RingManifest

__all__ = ["ProcessWorkerPool"]

#: how often a parent thread waiting on a worker re-checks its liveness
_POLL_INTERVAL_S = 0.2

#: response modes on the ring acknowledgement
_MODE_MC = 0  # one array: sample_probs (S, N, classes)
_MODE_EARLY_EXIT = 1  # two arrays: probs (N, classes), exit_indices (N,)


class _WorkerDied(Exception):
    """Internal: the worker process behind a handle is gone."""


@dataclass
class _WorkerConfig:
    """Everything a worker needs, pickled once at spawn."""

    engine: object  # InferenceEngine | NetworkEngine, shm-backed parameters
    num_samples: int | None
    early_exit_threshold: float | None
    manifest: ArenaManifest


def _batch_output_arrays(out: BatchOutput) -> tuple[int, list[np.ndarray]]:
    """(ring mode, arrays in slot order) for one batch result."""
    if out.sample_probs is not None:
        return _MODE_MC, [out.sample_probs]
    return _MODE_EARLY_EXIT, [out.probs, out.exit_indices]


def _worker_main(
    conn, config: _WorkerConfig, ring_manifest: RingManifest | None
) -> None:
    """Worker process entry point: serve batches until told to stop."""
    engine = config.engine
    arena = SharedParameterArena.attached(
        config.manifest, list(engine_parameters(engine))
    )
    arena.refresh()
    ring = BatchRing.attached(ring_manifest) if ring_manifest is not None else None
    seen_token = None
    try:
        conn.send(("ready", os.getpid()))
        while True:
            msg = conn.recv()
            kind = msg[0]
            if kind == "stop":
                break
            _, seq, token, payload = msg
            try:
                if token != seen_token:
                    # weights changed in the parent: sync version counters
                    # from the arena and drop activation caches keyed on
                    # the stale token (the shared bytes are already current)
                    arena.refresh()
                    engine.invalidate_cache()
                    seen_token = token
                if kind == "ring":
                    out = compute_batch_array(
                        engine,
                        seq,
                        ring.read_request(payload),
                        config.num_samples,
                        config.early_exit_threshold,
                    )
                else:
                    out = compute_batch(
                        engine,
                        seq,
                        payload,
                        config.num_samples,
                        config.early_exit_threshold,
                    )
            except Exception as exc:  # compute failed; the worker lives on
                conn.send(("error", f"{type(exc).__name__}: {exc}"))
            else:
                if kind == "ring":
                    mode, arrays = _batch_output_arrays(out)
                    if ring.write_response(payload, arrays):
                        conn.send(("ok_ring", payload, mode))
                    else:  # response outgrew the slot: pickle it instead
                        conn.send(("ok", out))
                else:
                    conn.send(("ok", out))
    except (EOFError, OSError, KeyboardInterrupt):
        pass  # parent went away (or interactive interrupt): just exit
    finally:
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass


class _WorkerHandle:
    """Parent-side endpoint of one worker process."""

    def __init__(self, index: int, process, conn, ring: BatchRing | None) -> None:
        self.index = index
        self.process = process
        self.conn = conn
        self.ring = ring
        self.alive = True
        #: transport breakdown for this worker's batches, summed by the pool
        self.ring_batches = 0
        self.pipe_batches = 0
        self._free_slots = list(range(ring.slots)) if ring is not None else []
        # execute() is called from pool-executor threads; the lock keeps a
        # send/recv exchange atomic per worker even if a cancelled batch's
        # thread is still draining its response
        self._lock = threading.Lock()

    def _stage(self, payloads: list) -> tuple[int | None, np.ndarray | None]:
        """Claim a slot and stage the batch into it; (None, None) = pipe."""
        if self.ring is None or not self._free_slots:
            return None, None
        shape = payloads[0].shape
        if any(
            not isinstance(p, np.ndarray) or p.shape != shape or p.dtype != np.float64
            for p in payloads
        ):
            return None, None
        slot = self._free_slots.pop()
        dest = self.ring.stage_request(slot, (len(payloads),) + tuple(shape))
        if dest is None:  # oversized payload: recycle the slot, use the pipe
            self._free_slots.append(slot)
            return None, None
        for i, payload in enumerate(payloads):
            dest[i] = payload
        return slot, dest

    def execute(self, seq: int, token: int, payloads: list) -> list[UncertaintyResult]:
        """Blocking request/response exchange; runs on an executor thread."""
        with self._lock:
            slot = None
            try:
                slot, _ = self._stage(payloads)
                if slot is not None:
                    self.conn.send(("ring", seq, token, slot))
                    self.ring_batches += 1
                else:
                    self.conn.send(("predict", seq, token, payloads))
                    self.pipe_batches += 1
                while not self.conn.poll(_POLL_INTERVAL_S):
                    if not self.process.is_alive():
                        raise _WorkerDied(
                            f"worker {self.index} died "
                            f"(exitcode {self.process.exitcode})"
                        )
                reply = self.conn.recv()
                if reply[0] == "ok_ring":
                    # assemble while the slot is still owned: MC assembly
                    # derives fresh arrays from the view immediately;
                    # early-exit results retain per-row views, so those
                    # arrays are copied out before the slot is recycled
                    _, rslot, mode = reply
                    arrays = self.ring.read_response(rslot)
                    if mode == _MODE_MC:
                        out = BatchOutput(sample_probs=arrays[0])
                    else:
                        out = BatchOutput(
                            probs=arrays[0].copy(), exit_indices=arrays[1].copy()
                        )
                    return assemble_results(out)
            except (OSError, EOFError) as exc:
                # OSError covers BrokenPipeError/ConnectionResetError and
                # also "handle is closed": teardown may close the pipe while
                # a cancelled batch's executor thread still drains it here
                raise _WorkerDied(f"worker {self.index}: {exc!r}") from None
            finally:
                if slot is not None:
                    self._free_slots.append(slot)
        status, value = reply
        if status == "error":
            raise RuntimeError(f"serving worker {self.index} failed: {value}")
        return assemble_results(value)

    def _release_ring(self) -> None:
        if self.ring is not None:
            self.ring.release()

    def reap(self) -> None:
        """Mark dead and reclaim OS resources (idempotent)."""
        self.alive = False
        try:
            self.conn.close()
        except OSError:  # pragma: no cover
            pass
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=5.0)
        self._release_ring()

    def shutdown(self, timeout: float = 5.0) -> None:
        """Ask the worker to exit, escalating to terminate."""
        if not self.alive:
            return
        self.alive = False
        # serialize the stop frame with any executor thread still inside
        # execute() (a cancelled batch's thread keeps draining the pipe) —
        # two concurrent send()s would interleave bytes on the channel.
        # Bounded wait: a wedged exchange falls through to terminate below.
        locked = self._lock.acquire(timeout=timeout)
        try:
            if locked and self.process.is_alive():
                try:
                    self.conn.send(("stop",))
                except OSError:
                    pass
        finally:
            if locked:
                self._lock.release()
        self.process.join(timeout)
        if self.process.is_alive():  # pragma: no cover - stuck worker
            self.process.terminate()
            self.process.join(timeout)
        try:
            self.conn.close()
        except OSError:  # pragma: no cover
            pass
        self._release_ring()


class ProcessWorkerPool(WorkerPool):
    """K spawned worker processes over one shared-memory parameter arena."""

    def __init__(
        self,
        engine,
        workers,
        num_samples,
        early_exit_threshold,
        mp_context: str = "spawn",
        start_timeout: float = 120.0,
        *,
        transport: str = "ring",
        ring_slots: int = 2,
        ring_request_bytes: int | None = None,
        ring_response_bytes: int | None = None,
        max_batch_size: int | None = None,
        input_shape: tuple[int, ...] | None = None,
    ) -> None:
        super().__init__(
            engine,
            workers,
            num_samples,
            early_exit_threshold,
            max_batch_size=max_batch_size,
            input_shape=input_shape,
        )
        if transport not in ("ring", "pipe"):
            raise ValueError(f"transport must be 'ring' or 'pipe', got {transport!r}")
        if ring_slots <= 0:
            raise ValueError("ring_slots must be positive")
        self.transport = transport
        self._ring_slots = int(ring_slots)
        self._ring_request_bytes = ring_request_bytes
        self._ring_response_bytes = ring_response_bytes
        self._mp_context = mp_context
        self._start_timeout = start_timeout
        self._arena: SharedParameterArena | None = None
        self._handles: list[_WorkerHandle] = []
        self._checkout: asyncio.Queue | None = None
        self._executor = None
        self._published_token: int | None = None

    # ------------------------------------------------------------------ #
    # transport stats
    # ------------------------------------------------------------------ #
    @property
    def ring_batches(self) -> int:  # type: ignore[override]
        return sum(h.ring_batches for h in self._handles)

    @property
    def pipe_batches(self) -> int:  # type: ignore[override]
        return sum(h.pipe_batches for h in self._handles)

    # ------------------------------------------------------------------ #
    # ring sizing
    # ------------------------------------------------------------------ #
    def _ring_geometry(self) -> tuple[int, int] | None:
        """Per-slot (request_bytes, response_bytes), or ``None`` = no ring.

        Sizing is best-effort: an underestimate only costs a fallback to
        the pipe (stage/write refuse, the batch ships pickled), never a
        wrong answer.
        """
        if self.transport != "ring":
            return None
        if (
            self._ring_request_bytes is not None
            and self._ring_response_bytes is not None
        ):
            return self._ring_request_bytes, self._ring_response_bytes
        if self.max_batch_size is None or self.input_shape is None:
            return None
        classes = engine_num_classes(self.engine)
        if classes is None:
            return None
        example = int(np.prod(self.input_shape, dtype=np.int64))
        request_bytes = 8 * self.max_batch_size * example
        if self.num_samples is not None:
            samples = self.num_samples
        else:
            model = getattr(self.engine, "model", None)
            samples = model.config.default_mc_samples if model is not None else 1
        # MC: (S, N, classes) float64; early-exit: (N, classes) + (N,) int64.
        # Sized for the larger of the two so one geometry serves both modes.
        response_bytes = 8 * self.max_batch_size * (max(samples, 1) * classes + 1)
        return (
            self._ring_request_bytes or request_bytes,
            self._ring_response_bytes or response_bytes,
        )

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self, executor) -> None:
        if self._checkout is not None:
            return
        self._executor = executor
        loop = asyncio.get_running_loop()
        # spawning + the ready handshake block on process startup; keep the
        # event loop responsive meanwhile
        await loop.run_in_executor(executor, self._start_sync)
        self._checkout = asyncio.Queue()
        for handle in self._handles:
            self._checkout.put_nowait(handle)

    def _start_sync(self) -> None:
        params = list(engine_parameters(self.engine))
        arena = SharedParameterArena.create(params)
        ctx = multiprocessing.get_context(self._mp_context)
        config = _WorkerConfig(
            engine=self.engine,
            num_samples=self.num_samples,
            early_exit_threshold=self.early_exit_threshold,
            manifest=arena.manifest,
        )
        geometry = self._ring_geometry()
        handles: list[_WorkerHandle] = []
        try:
            for i in range(self.workers):
                ring = (
                    BatchRing.create(self._ring_slots, *geometry)
                    if geometry is not None
                    else None
                )
                parent_conn, child_conn = ctx.Pipe()
                process = ctx.Process(
                    target=_worker_main,
                    args=(
                        child_conn,
                        config,
                        ring.manifest if ring is not None else None,
                    ),
                    daemon=True,
                    name=f"repro-serving-worker-{i}",
                )
                process.start()
                child_conn.close()
                handles.append(_WorkerHandle(i, process, parent_conn, ring))
            deadline = time.monotonic() + self._start_timeout
            for handle in handles:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not handle.conn.poll(remaining):
                    raise RuntimeError(
                        f"serving worker {handle.index} did not become ready "
                        f"within {self._start_timeout}s"
                    )
                msg = handle.conn.recv()  # EOFError if it died during import
                if msg[0] != "ready":  # pragma: no cover - protocol violation
                    raise RuntimeError(f"unexpected handshake from worker: {msg!r}")
        except BaseException:
            for handle in handles:
                handle.shutdown(timeout=1.0)
            arena.release()
            raise
        self._arena = arena
        self._published_token = self.engine.weights_token()
        self._handles = handles

    async def stop(self) -> None:
        if self._checkout is None and not self._handles:
            return
        self._checkout = None
        loop = asyncio.get_running_loop()
        executor, self._executor = self._executor, None
        await loop.run_in_executor(executor, self._stop_sync)

    def _stop_sync(self) -> None:
        for handle in self._handles:
            handle.shutdown()
        self._handles = []
        if self._arena is not None:
            # detaches the parent's parameters back into private arrays and
            # unlinks the segment — the model stays fully usable afterwards
            self._arena.release()
            self._arena = None

    # ------------------------------------------------------------------ #
    # serving
    # ------------------------------------------------------------------ #
    async def run(self, seq: int, payloads: list) -> list[UncertaintyResult]:
        assert self._checkout is not None, "pool is not started"
        loop = asyncio.get_running_loop()
        token = self.engine.weights_token()
        if token != self._published_token:
            self._arena.publish()
            self._published_token = token
        while True:
            # fail fast once the whole pool is gone — without this check a
            # batch would park on the (then permanently empty) checkout
            # queue forever, wedging drain-on-stop along with it
            if not any(h.alive for h in self._handles):
                raise WorkerCrashed(
                    f"all {self.workers} serving worker processes have died"
                )
            handle = await self._checkout.get()
            if not handle.alive:
                # a poison token from a total-pool death: pass the wake-up
                # on to any other parked waiter, then raise at the loop top
                self._checkout.put_nowait(handle)
                continue
            try:
                result = await loop.run_in_executor(
                    self._executor, handle.execute, seq, token, payloads
                )
            except _WorkerDied as exc:
                self.worker_crashes += 1
                # reap blocks (terminate + join); keep it off the event loop
                await loop.run_in_executor(self._executor, handle.reap)
                if not any(h.alive for h in self._handles):
                    # poison the queue so waiters parked in get() wake up
                    # and observe the total death instead of hanging
                    self._checkout.put_nowait(handle)
                    raise WorkerCrashed(
                        f"all {self.workers} serving worker processes have "
                        f"died (last: {exc})"
                    ) from exc
                continue  # retry the batch on a live sibling
            except BaseException:
                self._checkout.put_nowait(handle)
                raise
            self._checkout.put_nowait(handle)
            return result
