"""Self-healing, elastically scaled worker fleet for the serving tier.

PRs 5–6 gave the serving engine process workers over a shared-memory
arena and a zero-copy ring transport — but a *static, fragile* fleet: a
crashed worker was reaped and never replaced, K was fixed at
construction, and any model change meant stop/start.  This module closes
that gap with two small control-loop components that a
:class:`~repro.serving.engine.ServingEngine` runs alongside its batcher:

* :class:`WorkerSupervisor` — a liveness loop over the worker pool.  It
  periodically calls :meth:`~repro.serving.workers.base.WorkerPool
  .ensure_healthy`, which reaps workers that died since the last check
  (including *silent* deaths: a worker killed while idle never fails a
  pipe exchange, so only a liveness scan finds it), unlinks their ring
  segments, and respawns replacements attached to the **current** arena
  generation.  While a supervisor is attached, a transiently empty fleet
  makes batches *wait* for the respawn instead of failing with
  :class:`~repro.serving.workers.base.WorkerCrashed` — crash recovery
  becomes invisible to callers, because the per-batch spawn-key rule
  already makes a retried/respawned batch bit-identical to the original.
* :class:`Autoscaler` — a closed-loop sizing policy between
  ``min_workers`` and ``max_workers`` driven by signals the system
  already exports: submission-queue depth, shed and deadline-miss
  deltas, and recent per-request latency.  Decisions are made by the
  pure function :meth:`Autoscaler.decide` over a :class:`FleetSignals`
  snapshot (unit-testable without clocks or sleeps); the loop applies
  them via :meth:`~repro.serving.workers.base.WorkerPool.scale_to`,
  which drains a retiring replica's in-flight batch before releasing it.

Both loops are deliberately *policy over mechanism*: the pool owns the
mechanics (spawn, drain, retire, re-attach), the fleet owns only when to
invoke them.  Zero-downtime model swaps — including **shape** changes,
e.g. a DSE rescaling picking a new width — ride the same mechanics: see
``ServingEngine.swap_model`` and the arena-generation protocol in
:mod:`repro.nn.shm`.

Deterministic fault injection
-----------------------------
Crash paths are impossible to test reliably by killing processes at the
right wall-clock moment, so the process pool accepts a test-only
:class:`FaultPlan`: a list of ``(batch seq, lifecycle point)`` pairs.
The parent consumes a matching injection exactly once as the batch is
handed to a worker and either kills the victim itself (``pre_doorbell``)
or poisons the message so the worker traps and dies at the requested
point (``mid_compute``, ``post_response``).  Keying on the batch
sequence number — the same value that seeds the batch's RNG context —
makes every chaos run reproducible: no sleeps, no races, no flaky kills.
"""

from __future__ import annotations

import asyncio
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .workers.base import WorkerPool

__all__ = [
    "FAULT_POINTS",
    "Autoscaler",
    "FaultInjection",
    "FaultPlan",
    "FleetConfig",
    "FleetSignals",
    "WorkerSupervisor",
]

#: lifecycle points a :class:`FaultPlan` can kill a worker at
FAULT_POINTS = ("pre_doorbell", "mid_compute", "post_response")


@dataclass(frozen=True)
class FaultInjection:
    """Kill the worker serving batch ``seq`` at ``point`` (exactly once).

    ``pre_doorbell``
        The parent kills the worker *after* staging the batch into its
        ring slot but *before* sending the doorbell — the crash-retry
        path must release the slot and re-stage on a sibling.
    ``mid_compute``
        The doorbell carries a poison marker; the worker reads the
        request (so it holds the slot semantics of a real mid-compute
        death) and dies before producing a response — the parent sees a
        broken channel mid-wait.
    ``post_response``
        The worker answers normally, then dies before the parent
        releases the slot — a *silent* death only a liveness scan finds.
    """

    seq: int
    point: str

    def __post_init__(self) -> None:
        if self.point not in FAULT_POINTS:
            raise ValueError(
                f"fault point must be one of {FAULT_POINTS}, got {self.point!r}"
            )
        if self.seq < 0:
            raise ValueError("fault seq must be a non-negative batch number")


class FaultPlan:
    """Deterministic, consume-once schedule of worker kills (test-only).

    Accepted by ``ProcessWorkerPool``/``ServingEngine`` (default off).
    Each injection fires for exactly one delivery attempt: a batch whose
    first attempt was killed retries on a sibling, and that retry only
    dies too if the plan lists a *second* injection for the same seq —
    which is precisely how the retry-on-sibling crash edges are pinned
    in the chaos suite.

    ``take`` is called from pool-executor threads; the lock keeps the
    consume-once guarantee under concurrent batch dispatch.
    """

    def __init__(
        self, injections: Iterable[FaultInjection | tuple[int, str]] = ()
    ) -> None:
        self._pending: list[FaultInjection] = [
            spec if isinstance(spec, FaultInjection) else FaultInjection(*spec)
            for spec in injections
        ]
        self._fired: list[FaultInjection] = []
        self._lock = threading.Lock()

    def take(self, seq: int) -> str | None:
        """Consume and return the next fault point scheduled for ``seq``."""
        with self._lock:
            for i, spec in enumerate(self._pending):
                if spec.seq == seq:
                    self._fired.append(self._pending.pop(i))
                    return spec.point
        return None

    @property
    def pending(self) -> tuple[FaultInjection, ...]:
        """Injections not yet fired (chaos tests assert this drains)."""
        with self._lock:
            return tuple(self._pending)

    @property
    def fired(self) -> tuple[FaultInjection, ...]:
        """Injections already consumed, in firing order."""
        with self._lock:
            return tuple(self._fired)

    def __len__(self) -> int:
        with self._lock:
            return len(self._pending)


@dataclass
class FleetConfig:
    """Knobs for the supervisor/autoscaler pair of one serving engine.

    Passing a ``FleetConfig`` to ``ServingEngine(fleet=...)`` turns on
    supervision (unless ``supervise=False``) and — when ``min_workers``
    and ``max_workers`` describe a real range — autoscaling.

    Attributes
    ----------
    supervise:
        Run a :class:`WorkerSupervisor`: dead workers are respawned and
        re-attached to the current arena generation, and a transiently
        empty fleet parks batches until a respawn lands instead of
        failing them.
    health_interval:
        Seconds between liveness scans.  Bounds how long a *silent*
        death (a worker killed while idle) can go unnoticed; crashes
        that break an in-flight exchange are detected immediately.
    respawn_wait:
        With every worker dead, how long a batch waits for the
        supervisor to deliver a respawn before failing with
        ``WorkerCrashed``.  Also the per-worker spawn deadline.
    min_workers / max_workers:
        Inclusive autoscaling range.  ``None`` pins the respective bound
        to the engine's initial ``workers`` — so the default config
        supervises without scaling.
    scale_interval:
        Seconds between autoscaler evaluations.
    scale_up_backlog:
        Grow when queued requests per live worker exceed this.
    scale_up_on_shed:
        Grow (regardless of backlog) when any request was shed or missed
        its deadline since the last evaluation — shed traffic is the
        strongest "too small" signal the batcher produces.
    scale_down_idle_evals:
        Shrink after this many consecutive evaluations with an empty
        queue and no completions-in-progress pressure.
    """

    supervise: bool = True
    health_interval: float = 0.05
    respawn_wait: float = 60.0
    min_workers: int | None = None
    max_workers: int | None = None
    scale_interval: float = 0.25
    scale_up_backlog: float = 4.0
    scale_up_on_shed: bool = True
    scale_down_idle_evals: int = 4

    def resolve_bounds(self, workers: int) -> tuple[int, int]:
        """The concrete (min, max) range given the engine's initial K."""
        lo = self.min_workers if self.min_workers is not None else workers
        hi = self.max_workers if self.max_workers is not None else workers
        if lo <= 0 or hi < lo:
            raise ValueError(
                f"fleet bounds must satisfy 1 <= min <= max, got ({lo}, {hi})"
            )
        return lo, hi

    @property
    def autoscaling(self) -> bool:
        """Whether the config describes a real scaling range."""
        lo = self.min_workers
        hi = self.max_workers
        return lo is not None or hi is not None


@dataclass
class FleetSignals:
    """One autoscaler evaluation's snapshot of live load signals.

    Everything here is already exported by the batcher/engine stats; the
    snapshot exists so :meth:`Autoscaler.decide` is a pure function that
    unit tests can drive without traffic or clocks.
    """

    #: requests parked in the submission queue right now
    queue_depth: int
    #: replicas currently able to take a batch
    current_workers: int
    #: requests shed (``DeadlineExceeded``) since the last evaluation
    shed_delta: int = 0
    #: requests completed since the last evaluation
    completed_delta: int = 0
    #: recent p95 end-to-end latency, seconds (0.0 when unknown)
    latency_p95_s: float = 0.0


class Autoscaler:
    """Hysteresis policy: grow fast on pressure, shrink slowly when idle.

    Growth is triggered by backlog (queued requests per worker above
    ``scale_up_backlog``) or by shed/missed-deadline traffic; shrink only
    after ``scale_down_idle_evals`` consecutive idle evaluations, one
    worker at a time.  The asymmetry is deliberate: under-provisioning
    sheds user traffic immediately, over-provisioning merely idles a
    process for a few intervals.
    """

    def __init__(self, config: FleetConfig, workers: int) -> None:
        self.config = config
        self.min_workers, self.max_workers = config.resolve_bounds(workers)
        self._idle_evals = 0

    def decide(self, signals: FleetSignals) -> int:
        """Target worker count for this snapshot (pure; no side effects
        beyond the idle-streak counter)."""
        current = signals.current_workers
        pressured = signals.queue_depth > self.config.scale_up_backlog * max(
            current, 1
        ) or (self.config.scale_up_on_shed and signals.shed_delta > 0)
        if pressured:
            self._idle_evals = 0
            return min(current + 1, self.max_workers)
        idle = signals.queue_depth == 0
        if idle:
            self._idle_evals += 1
            if self._idle_evals >= self.config.scale_down_idle_evals:
                self._idle_evals = 0
                return max(current - 1, self.min_workers)
        else:
            self._idle_evals = 0
        return max(min(current, self.max_workers), self.min_workers)


class WorkerSupervisor:
    """Owns the periodic health/scale loops of one serving engine's pool.

    The supervisor is mechanically simple — it is an asyncio task calling
    two pool methods on a timer — because all the hard state transitions
    (reap, unlink, spawn, re-attach, drain, retire) live in the pool
    itself, where they are also exercised by the synchronous crash-retry
    path.  Splitting policy from mechanism keeps a supervisor crash from
    ever corrupting fleet state: the worst a dead supervisor can do is
    stop healing.

    Lifecycle per worker, as the supervisor sees it::

        spawned ── ready ──► serving ◄──────────────┐
                               │                    │ checkout
           (crash / kill / silent death)            │
                               ▼                    │
                    reaped (ring unlinked)          │
                               │ respawn to target  │
                               ▼                    │
            fresh worker, attached to the           │
            *current* arena generation ─────────────┘

    and on scale-down / generation swap::

        serving ──► retiring (no new checkouts) ──► drained ──► shutdown
    """

    def __init__(
        self,
        pool: "WorkerPool",
        config: FleetConfig,
        signal_source=None,
        on_scale=None,
    ) -> None:
        self.pool = pool
        self.config = config
        #: zero-arg callable returning a :class:`FleetSignals` snapshot
        #: (wired by the serving engine); ``None`` disables autoscaling
        self._signal_source = signal_source
        #: optional callback fired after a scale transition with the new
        #: target (the engine uses it to widen the batcher's pipeline)
        self._on_scale = on_scale
        self.autoscaler = (
            Autoscaler(config, pool.target_workers)
            if config.autoscaling and signal_source is not None
            else None
        )
        self._health_task: asyncio.Task | None = None
        self._scale_task: asyncio.Task | None = None

    @property
    def running(self) -> bool:
        return any(
            task is not None and not task.done()
            for task in (self._health_task, self._scale_task)
        )

    async def start(self) -> None:
        """Attach to the pool and start the health/scale loops (idempotent)."""
        if self.running:
            return
        if self.config.supervise:
            self.pool.supervised = True
            self._health_task = asyncio.ensure_future(self._health_loop())
        if self.autoscaler is not None:
            self._scale_task = asyncio.ensure_future(self._scale_loop())

    async def stop(self) -> None:
        """Detach from the pool and cancel the loops (idempotent)."""
        self.pool.supervised = False
        for task in (self._health_task, self._scale_task):
            if task is not None:
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
        self._health_task = None
        self._scale_task = None

    async def _health_loop(self) -> None:
        while True:
            try:
                await self.pool.ensure_healthy()
            except asyncio.CancelledError:
                raise
            except Exception:
                # a failed spawn attempt must not kill the loop — the
                # next tick retries; persistent failure surfaces to
                # callers through the pool's respawn_wait timeout
                pass
            await asyncio.sleep(self.config.health_interval)

    async def _scale_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.scale_interval)
            signals = self._signal_source()
            target = self.autoscaler.decide(signals)
            if target != self.pool.target_workers:
                try:
                    await self.pool.scale_to(target)
                except asyncio.CancelledError:
                    raise
                except Exception:
                    continue  # e.g. a spawn failed mid-grow; re-evaluate
                if self._on_scale is not None:
                    self._on_scale(target)
