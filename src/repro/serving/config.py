"""Serializable serving configuration: one object instead of 15 kwargs.

``ServingEngine`` grew one knob per PR until its constructor carried a
15-parameter sprawl threaded verbatim through every test, benchmark and
example.  That was tolerable for an in-process API; a *network* boundary
(:mod:`repro.serving.server`) is not negotiable about it — a server has
to describe its serving policy in one serializable value that can be
logged, diffed, shipped in a request, or rebuilt on the other side of a
wire.  This module is that value:

* :class:`BatcherConfig` — the batch-assembly and backpressure knobs of
  one :class:`~repro.serving.batcher.DynamicBatcher` (size/latency
  triggers, queue bound, reject-vs-await policy, shed timeout).
* :class:`ServingConfig` — everything a :class:`~repro.serving.engine
  .ServingEngine` needs beyond the model itself: inference mode
  (``num_samples`` / ``early_exit_threshold``), a nested
  :class:`BatcherConfig`, the worker fleet (count, backend, transport),
  an optional :class:`~repro.serving.fleet.FleetConfig`, and the
  test-only :class:`~repro.serving.fleet.FaultPlan`.

Both are frozen dataclasses validated eagerly at construction — a config
object that exists is a config object that can serve — and round-trip
through plain dicts (:meth:`ServingConfig.to_dict` /
:meth:`ServingConfig.from_dict`) so the wire boundary can carry them as
JSON.  ``ServingEngine(model, config=ServingConfig(...))`` is the
primary constructor; the historical flat kwargs keep working through a
deprecation shim built on :meth:`ServingConfig.from_kwargs`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field, fields
from typing import Any, Mapping

from .fleet import FaultInjection, FaultPlan, FleetConfig

__all__ = ["BatcherConfig", "ServingConfig"]

#: executable values for ``ServingConfig.worker_backend``
WORKER_BACKENDS = ("thread", "process")
#: executable values for ``ServingConfig.worker_transport``
WORKER_TRANSPORTS = ("ring", "pipe")


@dataclass(frozen=True)
class BatcherConfig:
    """Batch assembly + backpressure policy of one ``DynamicBatcher``.

    Attributes
    ----------
    max_batch_size:
        Dispatch a batch as soon as it holds this many requests.
    max_batch_latency:
        Dispatch a *partial* batch this many seconds after its oldest
        request arrived, so a trickle of traffic is never stalled.
    max_queue_size:
        Bound of the submission queue — the backpressure knob.
    reject_on_full:
        ``False`` (default): submitters await queue capacity.  ``True``:
        a full queue fails fast with
        :class:`~repro.serving.batcher.ServerOverloaded`.
    admission_timeout:
        ``None`` (default): deadlines only order the backlog.  A positive
        number of seconds opts into shed-on-missed-deadline: a request
        that waited past ``min(deadline, admission_timeout)`` fails with
        :class:`~repro.serving.batcher.DeadlineExceeded` at assembly.
    """

    max_batch_size: int = 32
    max_batch_latency: float = 0.002
    max_queue_size: int = 128
    reject_on_full: bool = False
    admission_timeout: float | None = None

    def __post_init__(self) -> None:
        if self.max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        if self.max_batch_latency <= 0:
            raise ValueError("max_batch_latency must be positive")
        if self.max_queue_size <= 0:
            raise ValueError("max_queue_size must be positive")
        if self.admission_timeout is not None and self.admission_timeout <= 0:
            raise ValueError("admission_timeout must be positive seconds")

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form, JSON-ready."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "BatcherConfig":
        """Rebuild from :meth:`to_dict` output (unknown keys rejected)."""
        return cls(**_known_fields(cls, payload))


@dataclass(frozen=True)
class ServingConfig:
    """Everything one ``ServingEngine`` needs beyond the model itself.

    Attributes
    ----------
    num_samples:
        MC samples per prediction in sampling mode (``None`` = the
        model's default).
    early_exit_threshold:
        When set, serve the active-set early-exit path instead of MC
        sampling (multi-exit models only; validated against the model by
        the engine, since the config cannot see it).
    batcher:
        Nested :class:`BatcherConfig` — batching and backpressure.
    workers:
        Engine replicas serving batches concurrently.
    worker_backend:
        ``"thread"`` (in-process replicas) or ``"process"`` (worker
        processes over a shared-memory parameter arena).
    worker_transport:
        Process backend only: ``"ring"`` (shared-memory ring slots,
        default) or ``"pipe"`` (legacy pickled channel).
    fleet:
        Optional :class:`~repro.serving.fleet.FleetConfig` turning the
        static pool into a supervised / autoscaled fleet.
    fault_plan:
        Test-only :class:`~repro.serving.fleet.FaultPlan` of
        deterministic worker kills (process backend only).  Note a plan
        is consume-once *state*, not pure configuration: two engines
        must not share one instance.
    """

    num_samples: int | None = None
    early_exit_threshold: float | None = None
    batcher: BatcherConfig = field(default_factory=BatcherConfig)
    workers: int = 1
    worker_backend: str = "thread"
    worker_transport: str = "ring"
    fleet: FleetConfig | None = None
    fault_plan: FaultPlan | None = None

    def __post_init__(self) -> None:
        if self.num_samples is not None and self.num_samples <= 0:
            raise ValueError("num_samples must be positive")
        if self.early_exit_threshold is not None and not (
            0.0 < self.early_exit_threshold < 1.0
        ):
            raise ValueError("early_exit_threshold must be in (0, 1)")
        if not isinstance(self.batcher, BatcherConfig):
            raise TypeError(
                f"batcher must be a BatcherConfig, got {type(self.batcher).__name__}"
            )
        if self.workers <= 0:
            raise ValueError("workers must be positive")
        if self.worker_backend not in WORKER_BACKENDS:
            raise ValueError(
                f"worker_backend must be one of {sorted(WORKER_BACKENDS)}, "
                f"got {self.worker_backend!r}"
            )
        if self.worker_transport not in WORKER_TRANSPORTS:
            raise ValueError(
                f"worker_transport must be 'ring' or 'pipe', "
                f"got {self.worker_transport!r}"
            )
        if self.fault_plan is not None and self.worker_backend != "process":
            raise ValueError(
                "fault_plan injects worker-process deaths and requires "
                "worker_backend='process'"
            )
        if self.fleet is not None:
            # surfaces inconsistent bounds at config time, not serve time
            self.fleet.resolve_bounds(self.workers)

    # ------------------------------------------------------------------ #
    # flat-kwarg adapter (the legacy ServingEngine surface)
    # ------------------------------------------------------------------ #
    @classmethod
    def from_kwargs(cls, **kwargs: Any) -> "ServingConfig":
        """Build a config from the historical flat ``ServingEngine`` kwargs.

        Splits the flat namespace into the nested form: batcher knobs
        (``max_batch_size``, ``max_batch_latency``, ``max_queue_size``,
        ``reject_on_full``, ``admission_timeout``) go into the nested
        :class:`BatcherConfig`; everything else is a top-level field.
        Unknown names raise ``TypeError`` like any wrong kwarg would.
        """
        batcher_names = {f.name for f in fields(BatcherConfig)}
        batcher_kwargs = {
            name: kwargs.pop(name) for name in list(kwargs) if name in batcher_names
        }
        unknown = set(kwargs) - {f.name for f in fields(cls)} - {"batcher"}
        if unknown:
            raise TypeError(
                f"unknown serving configuration fields: {sorted(unknown)}"
            )
        if batcher_kwargs and "batcher" in kwargs:
            raise TypeError(
                "pass either a BatcherConfig or flat batcher kwargs, not both"
            )
        if batcher_kwargs:
            kwargs["batcher"] = BatcherConfig(**batcher_kwargs)
        return cls(**kwargs)

    # ------------------------------------------------------------------ #
    # wire form
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form, JSON-ready (nested configs become dicts).

        The consume-once :class:`FaultPlan` state is serialized as its
        *pending* injections — rebuilding the dict yields a fresh plan
        with the same schedule.
        """
        payload: dict[str, Any] = {
            "num_samples": self.num_samples,
            "early_exit_threshold": self.early_exit_threshold,
            "batcher": self.batcher.to_dict(),
            "workers": self.workers,
            "worker_backend": self.worker_backend,
            "worker_transport": self.worker_transport,
            "fleet": (
                dataclasses.asdict(self.fleet) if self.fleet is not None else None
            ),
            "fault_plan": (
                [
                    {"seq": spec.seq, "point": spec.point}
                    for spec in self.fault_plan.pending
                ]
                if self.fault_plan is not None
                else None
            ),
        }
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ServingConfig":
        """Rebuild a validated config from :meth:`to_dict` output."""
        kwargs = _known_fields(cls, payload)
        batcher = kwargs.get("batcher")
        if isinstance(batcher, Mapping):
            kwargs["batcher"] = BatcherConfig.from_dict(batcher)
        fleet = kwargs.get("fleet")
        if isinstance(fleet, Mapping):
            kwargs["fleet"] = FleetConfig(**_known_fields(FleetConfig, fleet))
        plan = kwargs.get("fault_plan")
        if isinstance(plan, (list, tuple)):
            kwargs["fault_plan"] = FaultPlan(
                FaultInjection(int(spec["seq"]), str(spec["point"])) for spec in plan
            )
        return cls(**kwargs)


def _known_fields(cls, payload: Mapping[str, Any]) -> dict[str, Any]:
    """Keep only ``cls``'s dataclass fields; reject anything unknown."""
    names = {f.name for f in fields(cls)}
    unknown = set(payload) - names
    if unknown:
        raise ValueError(
            f"unknown {cls.__name__} fields: {sorted(unknown)}"
        )
    return {name: payload[name] for name in names if name in payload}
