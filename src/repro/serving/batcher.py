"""Dynamic request batching with bounded-queue backpressure.

:class:`DynamicBatcher` is the transport half of the serving layer: it
collects individually-submitted requests into microbatches so that the
folded inference hot path (:mod:`repro.inference`) amortises its per-pass
cost over many concurrent requests — the serving analogue of the paper's
spatial MC-engine mapping, where cost is amortised over samples instead.

Batch assembly follows the two standard knobs of request-driven serving
harnesses:

* ``max_batch_size`` — a batch is dispatched as soon as it is full;
* ``max_batch_latency`` — a *partial* batch is dispatched once this many
  seconds have passed since its first request, so a trickle of traffic is
  never stalled waiting for a batch that will not fill.

Backpressure comes from the bounded submission queue (``max_queue_size``):
with the default ``reject_on_full=False`` an overloaded server makes
``submit`` *await* until capacity frees up (cooperative backpressure, load
is shed to the callers' own queues); with ``reject_on_full=True`` it fails
fast with :class:`ServerOverloaded` so the caller can retry elsewhere.

Two scheduling extensions sit on top of the queue:

* **Earliest-deadline-first.** ``submit(payload, deadline=...)`` attaches a
  per-request latency budget; requests waiting for assembly are ordered in
  a heap keyed by their absolute deadline, so under backlog the tightest
  budgets are served first (the paper's latency story, applied to serving).
  Requests without a deadline keep strict arrival order behind every
  deadlined request — with no deadlines at all, behaviour is plain FIFO,
  identical to the historical batcher.
* **Shed-on-missed-deadline** (opt-in via ``admission_timeout``).  EDF
  alone only *orders* the backlog: a request that already missed its
  deadline still occupies a batch slot computing an answer nobody can use.
  With ``admission_timeout=T``, a request is dropped at batch-assembly
  time — failing fast with :class:`DeadlineExceeded` — once it has waited
  past ``min(deadline, T)``; deadline-less requests shed after ``T``.
  This closes the SLO loop: under sustained overload the server spends its
  cycles exclusively on requests that can still meet their budgets, and
  shed callers learn immediately instead of after a useless wait.
* **Pipelined dispatch.** With ``max_concurrent_batches=K > 1``, up to
  ``K`` batches run in flight at once and the collector keeps *assembling*
  batch ``N+1`` while batch ``N`` computes — free throughput once the
  engines are reentrant (one engine replica per worker).  The default of
  1 keeps the historical strictly-serial behaviour: one batch at a time,
  assembly starting only after the previous batch completed.

The batcher is payload-agnostic: it moves opaque payloads to an async
``dispatch`` callable that maps a list of payloads to one result per
payload.  :class:`repro.serving.ServingEngine` supplies the dispatch that
stacks payloads into a NumPy batch and runs a folded engine replica in a
worker executor.
"""

from __future__ import annotations

import asyncio
import heapq
import math
from dataclasses import dataclass
from typing import Any, Awaitable, Callable, Sequence

import numpy as np

__all__ = [
    "BatchStager",
    "DynamicBatcher",
    "BatcherStats",
    "ServerOverloaded",
    "DeadlineExceeded",
    "payloads_conform",
]


def payloads_conform(
    payloads: Sequence[Any], example_shape: tuple[int, ...]
) -> bool:
    """Whether every payload is a float64 array of exactly ``example_shape``.

    The conformance test shared by every staged transport — the pinned
    :class:`BatchStager` buffers, the process backend's ring slots and its
    pipe-side staging fallback.  Anything non-conforming takes the
    allocating ``np.stack`` path instead; the answer is identical either
    way.
    """
    return all(
        isinstance(p, np.ndarray) and p.shape == example_shape and p.dtype == np.float64
        for p in payloads
    )


class ServerOverloaded(RuntimeError):
    """Raised by ``submit`` when the queue is full and rejection is enabled."""


class DeadlineExceeded(RuntimeError):
    """A request expired before dispatch under the shed policy.

    Raised to the submitting caller when ``admission_timeout`` is
    configured and the request's shed deadline (its explicit ``deadline``,
    capped by the admission timeout) passed while it waited for batch
    assembly.  The request never reached the dispatch callable.
    """


@dataclass
class BatcherStats:
    """Running counters of one :class:`DynamicBatcher`.

    Attributes
    ----------
    submitted:
        Requests accepted into the queue.
    completed:
        Requests whose future received a result.
    rejected:
        Requests refused with :class:`ServerOverloaded` (never enqueued).
    cancelled:
        Requests whose future was cancelled before a result was delivered.
    shed:
        Requests failed with :class:`DeadlineExceeded` because they
        expired before dispatch (only with ``admission_timeout`` set).
    batches:
        Batches dispatched (including partial and single-request batches).
    batched_requests:
        Total requests across all dispatched batches.
    queue_peak:
        High-water mark of the submission queue.
    """

    submitted: int = 0
    completed: int = 0
    rejected: int = 0
    cancelled: int = 0
    shed: int = 0
    batches: int = 0
    batched_requests: int = 0
    queue_peak: int = 0

    @property
    def mean_batch_size(self) -> float:
        """Average dispatched batch size (0.0 before the first batch)."""
        return self.batched_requests / self.batches if self.batches else 0.0


class BatchStager:
    """Pre-pinned microbatch assembly buffer: stack without allocating.

    The historical hot path re-allocated a fresh ``np.stack`` per
    microbatch just to hand the workers one contiguous array.  A stager
    owns one ``(max_batch_size, *example_shape)`` float64 buffer and
    assembles each batch by writing request rows into its head — the
    only per-batch cost is the row copies that ``np.stack`` also paid.

    :meth:`stage` returns a view over the buffer head whose layout is
    exactly what ``np.stack`` would produce (C-contiguous, same
    shape/strides), which keeps staged and stacked batches bit-identical
    through BLAS.  Downstream activation caches are content-keyed, so a
    staged buffer is indistinguishable from a fresh stack to them: same
    bytes, same key — repeated inputs hit the cache even though the buffer
    object is reused.

    One stager per worker replica — the view is invalidated by the next
    ``stage`` call on the same stager, so a replica must be done with a
    batch (results assembled into fresh arrays) before its next checkout,
    which the serving tier's one-batch-per-replica checkout guarantees.
    """

    def __init__(self, max_batch_size: int, example_shape: Sequence[int]) -> None:
        if max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        self.example_shape = tuple(int(d) for d in example_shape)
        self._buffer = np.empty(
            (int(max_batch_size),) + self.example_shape, dtype=np.float64
        )

    def stage(self, payloads: Sequence[np.ndarray]) -> np.ndarray | None:
        """Assemble ``payloads`` into the pinned buffer; ``None`` = no fit.

        ``None`` (batch too large, or a payload of a different shape or
        kind) tells the caller to fall back to ``np.stack`` — staging is
        an optimisation, not a constraint.
        """
        n = len(payloads)
        if not 0 < n <= self._buffer.shape[0]:
            return None
        if not payloads_conform(payloads, self.example_shape):
            return None
        batch = self._buffer[:n]
        for i, payload in enumerate(payloads):
            batch[i] = payload
        return batch


class _Request:
    __slots__ = ("payload", "future", "enqueued_at", "deadline_at", "shed_at", "seq")

    def __init__(
        self,
        payload: Any,
        future: asyncio.Future,
        enqueued_at: float,
        deadline_at: float,
        shed_at: float,
        seq: int,
    ) -> None:
        self.payload = payload
        self.future = future
        #: event-loop clock time of submission; the max_batch_latency
        #: deadline counts from here, so time spent queued behind an
        #: in-flight batch is not waited again during assembly
        self.enqueued_at = enqueued_at
        #: absolute event-loop time the caller wants a response by
        #: (``inf`` when no deadline was given) — the EDF heap key
        self.deadline_at = deadline_at
        #: absolute event-loop time after which the shed policy fails the
        #: request instead of batching it (``inf`` when shedding is off)
        self.shed_at = shed_at
        #: submission counter; orders equal-deadline requests by arrival
        self.seq = seq

    @property
    def heap_key(self) -> tuple[float, int]:
        return (self.deadline_at, self.seq)


class DynamicBatcher:
    """Collect single-payload submissions into dispatched microbatches.

    Parameters
    ----------
    dispatch:
        Async callable mapping a list of payloads to a sequence with exactly
        one result per payload, in order.  Exceptions it raises are
        propagated to every request of the failing batch (the batcher itself
        keeps running).
    max_batch_size:
        Dispatch a batch as soon as it holds this many requests.
    max_batch_latency:
        Dispatch a partial batch this many seconds after its first request
        arrived.
    max_queue_size:
        Bound of the submission queue — the backpressure knob.
    reject_on_full:
        ``False`` (default): ``submit`` awaits for queue capacity.
        ``True``: ``submit`` raises :class:`ServerOverloaded` immediately.
    admission_timeout:
        ``None`` (default): deadlines only *order* the backlog — the
        historical behaviour.  A positive number of seconds opts into the
        shed policy: at batch-assembly time a request that has waited past
        ``min(its deadline, admission_timeout)`` fails with
        :class:`DeadlineExceeded` instead of occupying a batch slot.
    max_concurrent_batches:
        How many dispatched batches may be in flight at once.  ``1``
        (default) is the historical strictly-serial behaviour; ``K > 1``
        pipelines assembly with compute and requires a ``dispatch`` that is
        safe to run ``K``-way concurrently (e.g. one engine replica per
        worker, as :class:`repro.serving.ServingEngine` arranges).

    Notes
    -----
    While the in-flight limit is reached, new requests accumulate in the
    queue and form the next batch — so batch size adapts to load
    (single-request batches when idle, full batches under bursts) without
    any explicit tuning.
    """

    def __init__(
        self,
        dispatch: Callable[[list[Any]], Awaitable[Sequence[Any]]],
        max_batch_size: int = 32,
        max_batch_latency: float = 0.002,
        max_queue_size: int = 128,
        reject_on_full: bool = False,
        admission_timeout: float | None = None,
        max_concurrent_batches: int = 1,
    ) -> None:
        if max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        if max_batch_latency <= 0:
            raise ValueError("max_batch_latency must be positive")
        if max_queue_size <= 0:
            raise ValueError("max_queue_size must be positive")
        if max_concurrent_batches <= 0:
            raise ValueError("max_concurrent_batches must be positive")
        if admission_timeout is not None and admission_timeout <= 0:
            raise ValueError("admission_timeout must be positive seconds")
        self._dispatch = dispatch
        self.max_batch_size = int(max_batch_size)
        self.max_batch_latency = float(max_batch_latency)
        self.max_queue_size = int(max_queue_size)
        self.reject_on_full = bool(reject_on_full)
        self.admission_timeout = (
            float(admission_timeout) if admission_timeout is not None else None
        )
        self.max_concurrent_batches = int(max_concurrent_batches)
        self.stats = BatcherStats()
        self._queue: asyncio.Queue | None = None
        self._collector: asyncio.Task | None = None
        self._inflight: set[asyncio.Task] = set()
        self._seq = 0
        #: requests sitting in the collector's EDF heap (see queue_depth)
        self._heap_backlog = 0

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def running(self) -> bool:
        return self._collector is not None and not self._collector.done()

    @property
    def queue_depth(self) -> int:
        """Requests accepted but not yet dispatched (0 when stopped).

        A live backlog signal for the autoscaler: the submission queue
        plus the collector's EDF heap (where queued requests are moved
        eagerly, so ``qsize`` alone would read ~0 under heavy backlog).
        """
        queue = self._queue
        return (queue.qsize() if queue is not None else 0) + self._heap_backlog

    async def start(self) -> None:
        """Start the background collector (idempotent)."""
        if self.running:
            return
        self._queue = asyncio.Queue(maxsize=self.max_queue_size)
        # hand the queue over directly: a stop() racing the task's first step
        # nulls self._queue before the collector ever reads it
        self._collector = asyncio.ensure_future(self._collect(self._queue))

    async def stop(self, drain: bool = True) -> None:
        """Stop the collector.

        With ``drain=True`` (default) every already-queued request is batched
        and answered first; with ``drain=False`` the collector is cancelled
        and pending requests fail with :class:`asyncio.CancelledError`.
        """
        if self._queue is None or self._collector is None:
            return
        queue, collector = self._queue, self._collector
        self._queue = None  # reject new submissions immediately
        if drain:
            await queue.put(None)  # sentinel: drain, then exit
            await collector
        else:
            collector.cancel()
            try:
                await collector
            except asyncio.CancelledError:
                pass
            # fail the batches that were computing when we were cancelled
            for task in list(self._inflight):
                task.cancel()
            if self._inflight:
                await asyncio.gather(*self._inflight, return_exceptions=True)
            # sweep until stable: each get_nowait may wake a submitter that
            # was parked in `await queue.put(...)` (backpressure), and its
            # request lands in the queue one loop step later — a single
            # drain pass would strand those submitters forever
            while True:
                drained = False
                while not queue.empty():
                    drained = True
                    req = queue.get_nowait()
                    if req is not None and not req.future.done():
                        req.future.cancel()
                await asyncio.sleep(0)
                if not drained and queue.empty():
                    break
        self._collector = None

    async def __aenter__(self) -> "DynamicBatcher":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop(drain=True)

    # ------------------------------------------------------------------ #
    # submission
    # ------------------------------------------------------------------ #
    async def submit(self, payload: Any, deadline: float | None = None) -> Any:
        """Enqueue one payload and await its result.

        Parameters
        ----------
        payload:
            Opaque request payload, handed to ``dispatch`` as part of a batch.
        deadline:
            Optional latency budget in seconds from now.  Requests waiting
            for batch assembly are scheduled earliest-deadline-first;
            ``None`` (default) schedules in arrival order behind every
            deadlined request.  Without ``admission_timeout`` the deadline
            only orders work; with it, a request that misses its deadline
            before dispatch is shed (see below).

        Raises
        ------
        RuntimeError
            If the batcher is not running.
        ServerOverloaded
            If the queue is full and ``reject_on_full`` is set.
        DeadlineExceeded
            If ``admission_timeout`` is configured and the request waited
            past ``min(deadline, admission_timeout)`` before it could be
            batched (shed-on-missed-deadline policy).
        """
        if deadline is not None and deadline < 0:
            raise ValueError("deadline must be non-negative seconds from now")
        queue = self._queue
        if queue is None or not self.running:
            raise RuntimeError("batcher is not running (call start() first)")
        loop = asyncio.get_running_loop()
        now = loop.time()
        deadline_at = math.inf if deadline is None else now + deadline
        if self.admission_timeout is None:
            shed_at = math.inf
        else:
            shed_at = min(deadline_at, now + self.admission_timeout)
        self._seq += 1
        req = _Request(
            payload, loop.create_future(), now, deadline_at, shed_at, self._seq
        )
        if self.reject_on_full:
            try:
                queue.put_nowait(req)
            except asyncio.QueueFull:
                self.stats.rejected += 1
                raise ServerOverloaded(
                    f"submission queue full ({self.max_queue_size} pending requests)"
                ) from None
        else:
            try:
                queue.put_nowait(req)  # fast path: capacity available
            except asyncio.QueueFull:
                await queue.put(req)  # cooperative backpressure: await capacity
        self.stats.submitted += 1
        self.stats.queue_peak = max(self.stats.queue_peak, queue.qsize())
        try:
            return await req.future
        except asyncio.CancelledError:
            self.stats.cancelled += 1
            raise

    # ------------------------------------------------------------------ #
    # batch assembly / dispatch
    # ------------------------------------------------------------------ #
    def _admit(self, req: _Request, loop) -> bool:
        """Whether a heap-popped request may join the batch being assembled.

        Cancelled requests are skipped silently (historical behaviour);
        expired ones — under the opt-in shed policy — fail fast with
        :class:`DeadlineExceeded` and are counted in ``stats.shed``.
        """
        if req.future.done():
            return False
        now = loop.time()
        if req.shed_at < now:
            self.stats.shed += 1
            req.future.set_exception(
                DeadlineExceeded(
                    f"request shed after waiting {now - req.enqueued_at:.3f}s "
                    "(missed its deadline before dispatch)"
                )
            )
            return False
        return True

    async def _collect(self, queue: asyncio.Queue) -> None:
        loop = asyncio.get_running_loop()
        # Requests move queue -> EDF heap -> batch.  The heap holds requests
        # that have been taken off the queue but not yet dispatched; with no
        # deadlines its (inf, seq) keys degrade to pure arrival order.
        heap: list[tuple[tuple[float, int], _Request]] = []
        # One queue.get may be left in flight when a deadline fires; it is
        # carried over to the next round instead of being cancelled.  (A
        # plain asyncio.wait_for(queue.get(), ...) can lose a dequeued item
        # when the timeout and the item race on Python <= 3.11; awaiting a
        # persistent getter task through asyncio.wait cannot.)
        pending_get: asyncio.Future | None = None

        def drain_queue_into_heap() -> bool:
            """Move already-queued requests into the heap; True if sentinel seen."""
            try:
                while True:
                    try:
                        item = queue.get_nowait()
                    except asyncio.QueueEmpty:
                        return False
                    if item is None:
                        return True
                    heapq.heappush(heap, (item.heap_key, item))
            finally:
                self._heap_backlog = len(heap)

        # the batch currently being assembled/launched; visible to `finally`
        # so a cancellation mid-launch cannot strand its requests
        batch: list[_Request] = []
        try:
            draining = False
            while not draining:
                if not heap:
                    if pending_get is None:
                        pending_get = asyncio.ensure_future(queue.get())
                    first = await pending_get
                    pending_get = None
                    if first is None:
                        break  # sentinel with nothing pending: done
                    heapq.heappush(heap, (first.heap_key, first))
                draining = drain_queue_into_heap()

                # assemble one batch, earliest deadline first
                seed = heapq.heappop(heap)[1]
                batch = [seed] if self._admit(seed, loop) else []
                # the latency budget counts from submission, so time already
                # spent queued behind an in-flight batch is not re-waited
                flush_at = seed.enqueued_at + self.max_batch_latency
                while len(batch) < self.max_batch_size:
                    if heap:
                        req = heapq.heappop(heap)[1]
                        if self._admit(req, loop):  # skip cancelled/expired
                            batch.append(req)
                        continue
                    if draining:
                        break  # sentinel seen: no further arrivals, flush now
                    remaining = flush_at - loop.time()
                    if remaining <= 0:
                        break
                    if pending_get is None:
                        pending_get = asyncio.ensure_future(queue.get())
                    done, _ = await asyncio.wait({pending_get}, timeout=remaining)
                    if pending_get not in done:
                        break  # deadline fired; the get stays in flight
                    item = pending_get.result()
                    pending_get = None
                    if item is None:
                        draining = True  # dispatch this last batch, then exit
                        continue
                    heapq.heappush(heap, (item.heap_key, item))
                    draining = drain_queue_into_heap()
                if batch:
                    self._heap_backlog = len(heap)
                    await self._launch_batch(batch)
                    batch = []

            # sentinel seen: flush whatever is still parked in the heap
            while heap:
                batch = []
                while heap and len(batch) < self.max_batch_size:
                    req = heapq.heappop(heap)[1]
                    if self._admit(req, loop):
                        batch.append(req)
                if batch:
                    await self._launch_batch(batch)
                    batch = []
            if self._inflight:
                await asyncio.gather(*list(self._inflight), return_exceptions=True)
        finally:
            if pending_get is not None:
                if pending_get.done() and not pending_get.cancelled():
                    # the get completed just as the collector was cancelled:
                    # don't strand the request it retrieved
                    req = pending_get.result()
                    if req is not None and not req.future.done():
                        req.future.cancel()
                else:
                    pending_get.cancel()
            # requests already moved off the queue die with the collector,
            # including an assembled batch whose launch was cancelled
            for req in batch:
                if not req.future.done():
                    req.future.cancel()
            for _, req in heap:
                if not req.future.done():
                    req.future.cancel()
            self._heap_backlog = 0

    async def _launch_batch(self, batch: list[_Request]) -> None:
        """Run a batch — inline when serial, as a bounded task when pipelined."""
        if self.max_concurrent_batches == 1:
            await self._run_batch(batch)
            return
        while len(self._inflight) >= self.max_concurrent_batches:
            await asyncio.wait(
                set(self._inflight), return_when=asyncio.FIRST_COMPLETED
            )
        task = asyncio.ensure_future(self._run_batch(batch))
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    async def _run_batch(self, batch: list[_Request]) -> None:
        self.stats.batches += 1
        self.stats.batched_requests += len(batch)
        try:
            results = await self._dispatch([req.payload for req in batch])
        except asyncio.CancelledError:
            for req in batch:
                if not req.future.done():
                    req.future.cancel()
            raise
        except Exception as exc:
            for req in batch:
                if not req.future.done():
                    req.future.set_exception(exc)
            return
        if len(results) != len(batch):
            exc = RuntimeError(
                f"dispatch returned {len(results)} results for {len(batch)} requests"
            )
            for req in batch:
                if not req.future.done():
                    req.future.set_exception(exc)
            return
        for req, result in zip(batch, results):
            if not req.future.done():  # request may have been cancelled mid-flight
                req.future.set_result(result)
                self.stats.completed += 1
