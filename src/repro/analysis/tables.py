"""Plain-text table rendering for benchmark and example output."""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_rows"]


def _format_cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str | None = None,
) -> str:
    """Render a list of rows as an aligned plain-text table."""
    str_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but the table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)


def format_rows(
    rows: Sequence[dict], columns: Sequence[str], title: str | None = None
) -> str:
    """Render a list of dict rows, selecting and ordering ``columns``."""
    table_rows = [[row.get(col, "") for col in columns] for row in rows]
    return format_table(columns, table_rows, title=title)
