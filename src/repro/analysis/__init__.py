"""Experiment runners and table formatting (DESIGN.md §3.7)."""

from .experiments import (
    Table1Settings,
    build_bayes_lenet_accelerator,
    default_small_architectures,
    run_figure5_latency,
    run_figure5_resources,
    run_flops_reduction,
    run_table1,
    run_table2,
    run_table3,
)
from .tables import format_rows, format_table

__all__ = [
    "Table1Settings",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_figure5_resources",
    "run_figure5_latency",
    "run_flops_reduction",
    "build_bayes_lenet_accelerator",
    "default_small_architectures",
    "format_table",
    "format_rows",
]
