"""Experiment runners: one function per paper table / figure.

Every runner returns plain data structures (lists of dict rows) so that the
benchmarks under ``benchmarks/``, the examples, and ``EXPERIMENTS.md`` all
consume the same code path.  Runner arguments default to laptop-scale
settings (small synthetic datasets, scaled-down channel counts, few epochs);
the trends they produce — not absolute numbers — are what reproduce the
paper's results (see DESIGN.md §4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..core.bayesnn import MultiExitBayesNet, MultiExitConfig, single_exit_bayesnet
from ..core.flops import network_flops, reduction_rate
from ..datasets.synthetic import SyntheticImageDataset, cifar100_like
from ..hw.accelerator import AcceleratorConfig, AcceleratorModel
from ..hw.baselines import PUBLISHED_BASELINES
from ..hw.hls.report import SynthesisReport
from ..hw.mapping import spatial_mapping, temporal_mapping
from ..inference.engine import NetworkEngine
from ..nn.architectures import lenet5_spec, resnet_spec, vgg_spec
from ..nn.architectures.common import BackboneSpec
from ..nn.losses import CrossEntropyLoss
from ..nn.optimizers import SGD
from ..nn.training import DistillationTrainer, Trainer
from ..uncertainty.calibration import expected_calibration_error
from ..uncertainty.metrics import accuracy as accuracy_metric

__all__ = [
    "Table1Settings",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_figure5_resources",
    "run_figure5_latency",
    "run_flops_reduction",
    "build_bayes_lenet_accelerator",
    "default_small_architectures",
]


# --------------------------------------------------------------------------- #
# shared small-model factories
# --------------------------------------------------------------------------- #
def default_small_architectures() -> dict[str, Callable[..., BackboneSpec]]:
    """Scaled-down ResNet-18 / VGG-19 factories used by the Table I study."""

    def resnet18_small(
        width_multiplier: float = 1.0, num_classes: int = 10
    ) -> BackboneSpec:
        return resnet_spec(
            "resnet18",
            input_shape=(3, 16, 16),
            num_classes=num_classes,
            width_multiplier=0.25 * width_multiplier,
            max_stages=3,
        )

    def vgg19_small(
        width_multiplier: float = 1.0, num_classes: int = 10
    ) -> BackboneSpec:
        return vgg_spec(
            "vgg19",
            input_shape=(3, 16, 16),
            num_classes=num_classes,
            width_multiplier=0.25 * width_multiplier,
            max_stages=3,
        )

    return {"resnet18": resnet18_small, "vgg19": vgg19_small}


# --------------------------------------------------------------------------- #
# Table I — SE vs MCD vs ME vs MCD+ME
# --------------------------------------------------------------------------- #
@dataclass
class Table1Settings:
    """Scale knobs of the Table I experiment."""

    train_size: int = 256
    test_size: int = 160
    num_classes: int = 10
    image_size: int = 16
    epochs: int = 3
    batch_size: int = 32
    lr: float = 0.05
    num_mc_samples: int = 4
    dropout_rates: Sequence[float] = (0.25,)
    confidence_thresholds: Sequence[float] = (0.5, 0.8, 0.95)
    exit_conv_channels: int = 16
    noise_level: float = 1.5
    seed: int = 0
    architectures: dict[str, Callable[..., BackboneSpec]] = field(
        default_factory=default_small_architectures
    )


def _metric_entry(
    config: str, probs: np.ndarray, labels: np.ndarray, relative_flops: float
) -> dict:
    return {
        "config": config,
        "accuracy": accuracy_metric(probs, labels),
        "ece": expected_calibration_error(probs, labels),
        "relative_flops": relative_flops,
    }


def _best_entries(entries: list[dict]) -> dict:
    """Pick the accuracy-optimal and ECE-optimal configuration."""
    acc_opt = max(entries, key=lambda e: e["accuracy"])
    ece_opt = min(entries, key=lambda e: e["ece"])
    return {"acc_opt": acc_opt, "ece_opt": ece_opt, "all": entries}


def _train_multi_exit(
    model: MultiExitBayesNet,
    dataset: SyntheticImageDataset,
    settings: Table1Settings,
    distill_weight: float = 0.5,
) -> None:
    optimizer = SGD(model.parameters(), lr=settings.lr, momentum=0.9, weight_decay=5e-4)
    trainer = DistillationTrainer(
        model,
        optimizer,
        distill_weight=distill_weight,
        batch_size=settings.batch_size,
        seed=settings.seed,
    )
    trainer.fit(dataset.train.x, dataset.train.y, epochs=settings.epochs)


def run_table1(settings: Table1Settings | None = None) -> dict:
    """Reproduce Table I: four model families on a CIFAR-100-like task.

    Returns ``{architecture: {variant: {"acc_opt": row, "ece_opt": row}}}``
    plus the dataset description under ``"_meta"``.
    """
    settings = settings or Table1Settings()
    dataset = cifar100_like(
        train_size=settings.train_size,
        test_size=settings.test_size,
        num_classes=settings.num_classes,
        image_size=settings.image_size,
        noise_level=settings.noise_level,
        seed=settings.seed,
    )
    labels = dataset.test.y
    results: dict = {
        "_meta": {
            "dataset": dataset.describe(),
            "settings": {
                "epochs": settings.epochs,
                "num_mc_samples": settings.num_mc_samples,
                "dropout_rates": list(settings.dropout_rates),
                "confidence_thresholds": list(settings.confidence_thresholds),
            },
        }
    }

    for arch_name, factory in settings.architectures.items():

        def spec_factory(width_multiplier: float = 1.0, _factory=factory):
            """Instantiate a fresh spec, passing num_classes when supported."""
            try:
                return _factory(
                    width_multiplier=width_multiplier, num_classes=settings.num_classes
                )
            except TypeError:
                return _factory(width_multiplier=width_multiplier)

        arch_results: dict = {}

        # ---------------- SE: single exit, no MCD -------------------------- #
        se_spec = spec_factory()
        se_net = se_spec.single_exit_network(seed=settings.seed)
        se_flops = float(network_flops(se_net))
        trainer = Trainer(
            se_net,
            SGD(se_net.parameters(), lr=settings.lr, momentum=0.9, weight_decay=5e-4),
            CrossEntropyLoss(),
            batch_size=settings.batch_size,
            seed=settings.seed,
        )
        trainer.fit(dataset.train.x, dataset.train.y, epochs=settings.epochs)
        se_probs = NetworkEngine(se_net).predict_proba(dataset.test.x)
        arch_results["SE"] = _best_entries(
            [_metric_entry("single-exit", se_probs, labels, 1.0)]
        )

        # ---------------- MCD: single exit with MC dropout ----------------- #
        mcd_entries = []
        for rate in settings.dropout_rates:
            model = MultiExitBayesNet(
                spec_factory(),
                MultiExitConfig(
                    num_exits=1,
                    mcd_layers_per_exit=1,
                    dropout_rate=rate,
                    default_mc_samples=settings.num_mc_samples,
                    seed=settings.seed,
                ),
            )
            _train_multi_exit(model, dataset, settings, distill_weight=0.0)
            probs = model.predict_mc(dataset.test.x, settings.num_mc_samples).mean_probs
            per_pass = model.flop_breakdown().single_pass_flops() / se_flops
            mcd_entries.append(_metric_entry(f"mcd p={rate}", probs, labels, per_pass))
        arch_results["MCD"] = _best_entries(mcd_entries)

        # ---------------- ME: multi-exit, no MCD --------------------------- #
        me_entries = []
        me_spec = spec_factory()
        me_model = MultiExitBayesNet(
            me_spec,
            MultiExitConfig(
                num_exits=me_spec.num_blocks,
                mcd_layers_per_exit=0,
                dropout_rate=0.0,
                default_mc_samples=settings.num_mc_samples,
                exit_conv_channels=settings.exit_conv_channels,
                seed=settings.seed,
            ),
        )
        _train_multi_exit(me_model, dataset, settings)
        me_entries.extend(
            _evaluate_exit_configurations(
                me_model, dataset, se_flops, settings, prefix="me"
            )
        )
        arch_results["ME"] = _best_entries(me_entries)

        # ---------------- MCD+ME: the paper's approach --------------------- #
        ours_entries = []
        for rate in settings.dropout_rates:
            ours_spec = spec_factory()
            ours = MultiExitBayesNet(
                ours_spec,
                MultiExitConfig(
                    num_exits=ours_spec.num_blocks,
                    mcd_layers_per_exit=1,
                    dropout_rate=rate,
                    default_mc_samples=settings.num_mc_samples,
                    exit_conv_channels=settings.exit_conv_channels,
                    seed=settings.seed,
                ),
            )
            _train_multi_exit(ours, dataset, settings)
            ours_entries.extend(
                _evaluate_exit_configurations(
                    ours,
                    dataset,
                    se_flops,
                    settings,
                    prefix=f"mcd+me p={rate}",
                    mc_samples=settings.num_mc_samples,
                )
            )
        arch_results["MCD+ME"] = _best_entries(ours_entries)

        results[arch_name] = arch_results
    return results


def _evaluate_exit_configurations(
    model: MultiExitBayesNet,
    dataset: SyntheticImageDataset,
    se_flops: float,
    settings: Table1Settings,
    prefix: str,
    mc_samples: int | None = None,
) -> list[dict]:
    """Evaluate the per-exit, full-ensemble and confidence-exiting configurations.

    Mirrors the paper's grid (Section V-B): predictions are taken "at each
    exit or the largest possible ensemble at each exit", plus confidence-based
    early exiting over the chosen thresholds.
    """
    labels = dataset.test.y
    entries = []
    stochastic = model.config.is_bayesian
    passes = 1
    if mc_samples is not None and stochastic:
        passes = max(1, -(-mc_samples // model.num_exits))

    # MC-averaged per-exit predictions through the sample-folded engine: the
    # backbone runs once and each head's stochastic suffix runs a single
    # folded (passes·N) batch instead of `passes` sequential passes.
    engine = model.engine
    if stochastic:
        per_exit = engine.exit_mc_probabilities(dataset.test.x, passes)
    else:
        per_exit = engine.exit_probabilities(dataset.test.x, stochastic=False)

    breakdown = model.flop_breakdown()
    # individual exits: backbone up to that exit plus that exit's head
    cumulative = np.asarray(model.cumulative_exit_flops()) / se_flops
    for i, probs in enumerate(per_exit):
        entries.append(
            _metric_entry(f"{prefix} exit{i}", probs, labels, float(cumulative[i]))
        )

    # the largest possible ensemble (all exits, equally weighted)
    ensemble = np.mean(per_exit, axis=0)
    full_flops = breakdown.single_pass_flops() / se_flops
    entries.append(_metric_entry(f"{prefix} ensemble", ensemble, labels, full_flops))

    # confidence-based early exiting over the chosen thresholds
    for threshold in settings.confidence_thresholds:
        result = model.early_exit_predict(dataset.test.x, threshold)
        entries.append(
            _metric_entry(
                f"{prefix} conf={threshold}",
                result.probs,
                labels,
                result.expected_flops(cumulative),
            )
        )
    return entries


# --------------------------------------------------------------------------- #
# Table II / Table III — hardware comparison and power breakdown
# --------------------------------------------------------------------------- #
def build_bayes_lenet_accelerator(
    num_mc_samples: int = 3,
    num_mcd_layers: int = 1,
    bitwidth: int = 8,
    reuse_factor: int = 64,
    device: str = "XCKU115",
    clock_mhz: float = 181.0,
    dropout_rate: float = 0.25,
    width_multiplier: float = 1.0,
    use_spatial_mapping: bool = True,
    seed: int = 0,
) -> AcceleratorModel:
    """The paper's final design: Bayes-LeNet5 on the XCKU115 with 3 MC samples."""
    spec = lenet5_spec(width_multiplier=width_multiplier)
    net = single_exit_bayesnet(
        spec, num_mcd_layers=num_mcd_layers, dropout_rate=dropout_rate, seed=seed
    )
    mapping = (
        spatial_mapping(num_mc_samples)
        if use_spatial_mapping
        else temporal_mapping(num_mc_samples)
    )
    config = AcceleratorConfig(
        device=device,
        clock_mhz=clock_mhz,
        weight_bitwidth=bitwidth,
        reuse_factor=reuse_factor,
        num_mc_samples=num_mc_samples,
        mapping=mapping,
    )
    return AcceleratorModel(net, config, name="bayes_lenet5_xcku115")


def run_table2(accelerator: AcceleratorModel | None = None) -> list[dict]:
    """Reproduce Table II: our FPGA design vs CPU, GPU and prior FPGA work.

    Returns one row per platform with frequency, technology, power, latency
    and energy efficiency (J/image).  Baseline rows are the published numbers
    the paper quotes; the "Our Work" row comes from the analytical model.
    """
    accelerator = accelerator or build_bayes_lenet_accelerator()
    rows = [result.as_row() for result in PUBLISHED_BASELINES.values()]

    power = accelerator.power()
    latency = accelerator.latency_ms()
    rows.append(
        {
            "name": "Our Work",
            "platform": accelerator.device.name,
            "frequency_mhz": accelerator.config.clock_mhz,
            "technology_nm": accelerator.device.technology_nm,
            "power_w": power.total,
            "latency_ms": latency,
            "energy_per_image_j": power.energy_per_image_j(latency),
        }
    )
    return rows


def run_table3(accelerator: AcceleratorModel | None = None) -> dict:
    """Reproduce Table III: power breakdown of our FPGA accelerator."""
    accelerator = accelerator or build_bayes_lenet_accelerator()
    breakdown = accelerator.power()
    return {
        "watts": breakdown.as_dict(),
        "percentages": breakdown.percentages(),
        "report": SynthesisReport.from_accelerator(accelerator).as_dict(),
    }


# --------------------------------------------------------------------------- #
# Figure 5 — cost of being Bayesian
# --------------------------------------------------------------------------- #
def _figure5_model_specs(
    width_multiplier: float,
) -> dict[str, Callable[[], BackboneSpec]]:
    return {
        "bayes_lenet5": lambda: lenet5_spec(width_multiplier=1.0),
        "bayes_resnet18": lambda: resnet_spec(
            "resnet18",
            input_shape=(3, 32, 32),
            width_multiplier=0.25 * width_multiplier,
        ),
        "bayes_vgg11": lambda: vgg_spec(
            "vgg11", input_shape=(3, 32, 32), width_multiplier=0.25 * width_multiplier
        ),
    }


def run_figure5_resources(
    mcd_layer_counts: Sequence[int] = (1, 3, 5, 7),
    bitwidth: int = 8,
    reuse_factor: int = 64,
    device: str = "XCKU115",
    width_multiplier: float = 1.0,
    models: Sequence[str] = ("bayes_lenet5", "bayes_resnet18", "bayes_vgg11"),
    seed: int = 0,
) -> list[dict]:
    """Reproduce Figure 5 (left): resources vs number of MCD layers.

    Designs use temporal mapping (a single shared MC engine), as in the
    paper's resource study.  Returns one row per (model, #MCD layers).
    """
    spec_factories = _figure5_model_specs(width_multiplier)
    rows = []
    for model_name in models:
        if model_name not in spec_factories:
            raise KeyError(f"unknown Figure 5 model {model_name!r}")
        for n_mcd in mcd_layer_counts:
            net = single_exit_bayesnet(
                spec_factories[model_name](), num_mcd_layers=n_mcd, seed=seed
            )
            accel = AcceleratorModel(
                net,
                AcceleratorConfig(
                    device=device,
                    weight_bitwidth=bitwidth,
                    reuse_factor=reuse_factor,
                    num_mc_samples=3,
                    mapping=temporal_mapping(3),
                ),
                name=f"{model_name}_mcd{n_mcd}",
            )
            usage = accel.resources()
            rows.append(
                {
                    "model": model_name,
                    "num_mcd_layers": accel.num_mcd_layers,
                    "bram_18k": usage.bram_18k,
                    "dsp": usage.dsp,
                    "ff": usage.ff,
                    "lut": usage.lut,
                }
            )
    return rows


def run_figure5_latency(
    mc_sample_counts: Sequence[int] = (1, 2, 3, 4, 5),
    bitwidth: int = 8,
    reuse_factor: int = 64,
    device: str = "XCKU115",
    width_multiplier: float = 1.0,
    models: Sequence[str] = ("bayes_lenet5", "bayes_resnet18", "bayes_vgg11"),
    seed: int = 0,
) -> list[dict]:
    """Reproduce Figure 5 (right): latency vs MC samples, with/without spatial mapping.

    Each design has one MCD layer.  The "unoptimized" series shares a single
    MC engine (temporal mapping); the "spatial" series replicates the engine
    per sample.
    """
    spec_factories = _figure5_model_specs(width_multiplier)
    rows = []
    for model_name in models:
        if model_name not in spec_factories:
            raise KeyError(f"unknown Figure 5 model {model_name!r}")
        net = single_exit_bayesnet(
            spec_factories[model_name](), num_mcd_layers=1, seed=seed
        )
        for num_samples in mc_sample_counts:
            for strategy, mapping in (
                ("unoptimized", temporal_mapping(num_samples)),
                ("spatial", spatial_mapping(num_samples)),
            ):
                accel = AcceleratorModel(
                    net,
                    AcceleratorConfig(
                        device=device,
                        weight_bitwidth=bitwidth,
                        reuse_factor=reuse_factor,
                        num_mc_samples=num_samples,
                        mapping=mapping,
                    ),
                    name=f"{model_name}_{strategy}_{num_samples}",
                )
                rows.append(
                    {
                        "model": model_name,
                        "mapping": strategy,
                        "num_mc_samples": num_samples,
                        "latency_ms": accel.latency_ms(),
                    }
                )
    return rows


# --------------------------------------------------------------------------- #
# Equations 1–3 — analytic FLOP reduction sweep
# --------------------------------------------------------------------------- #
def run_flops_reduction(
    alphas: Sequence[float] = (0.01, 0.05, 0.1, 0.25),
    sample_counts: Sequence[int] = (1, 2, 4, 8, 16),
    exit_counts: Sequence[int] = (1, 2, 4),
) -> list[dict]:
    """Sweep the Eq. 3 reduction rate over alpha, samples and exits."""
    rows = []
    for alpha in alphas:
        for num_samples in sample_counts:
            for num_exits in exit_counts:
                if num_exits > num_samples:
                    continue
                rows.append(
                    {
                        "alpha": alpha,
                        "num_samples": num_samples,
                        "num_exits": num_exits,
                        "reduction_rate": reduction_rate(alpha, num_samples, num_exits),
                    }
                )
    return rows
