"""repro — multi-exit Monte-Carlo-Dropout Bayesian neural networks on (simulated) FPGA.

A from-scratch reproduction of "When Monte-Carlo Dropout Meets Multi-Exit:
Optimizing Bayesian Neural Networks on FPGA" (DAC 2023).  See ``README.md``
for a quickstart and ``DESIGN.md`` for the system inventory.

Subpackages
-----------
``repro.nn``
    NumPy neural-network substrate (layers, models, optimizers, trainers,
    LeNet/VGG/ResNet backbones).
``repro.core``
    Multi-exit MCD BayesNNs, Monte-Carlo sampling, FLOP cost model, Phase-1
    optimization, and the four-phase transformation framework.
``repro.inference``
    Sample-folded inference engine: cached backbone segments shared across
    exits and MC samples, folded stochastic suffixes, active-set early
    exiting, and microbatched streaming.
``repro.serving``
    Asyncio serving layer: dynamic request batching with bounded-queue
    backpressure over the folded engines, per-request uncertainty results
    and throughput/latency stats.
``repro.uncertainty``
    Calibration (ECE) and uncertainty metrics, deep-ensemble baseline.
``repro.quantization``
    Fixed-point formats and post-training quantization.
``repro.datasets``
    Synthetic stand-ins for MNIST / CIFAR-10 / CIFAR-100 / SVHN.
``repro.hw``
    FPGA substrate: devices, resource/latency/power models, MC-engine
    mapping, co-exploration, and HLS code generation.
``repro.analysis``
    Experiment runners reproducing every table and figure of the paper.
"""

from . import (
    analysis,
    core,
    datasets,
    hw,
    inference,
    nn,
    quantization,
    serving,
    uncertainty,
)

__version__ = "1.2.0"

__all__ = [
    "analysis",
    "core",
    "datasets",
    "hw",
    "inference",
    "nn",
    "quantization",
    "serving",
    "uncertainty",
    "__version__",
]
