"""Microbatching helpers for high-volume inference workloads.

:func:`iter_microbatches` normalises the two input forms the streaming API
accepts — a pre-assembled batch array, or an iterable of single examples —
into a stream of ``(batch_size, …)`` arrays, so the engines can run each
microbatch through the folded hot path and keep peak memory bounded by
``batch_size · num_samples`` activations instead of the full workload.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

__all__ = ["iter_microbatches"]


def iter_microbatches(
    inputs: np.ndarray | Iterable[np.ndarray],
    batch_size: int,
) -> Iterator[np.ndarray]:
    """Yield ``(<=batch_size, …)`` batches from an array or example stream.

    Parameters
    ----------
    inputs:
        Either a batch array of shape ``(N, …)`` (sliced into views, no
        copies) or an iterable of per-example arrays of shape ``(…)`` which
        are stacked into fresh batches as they arrive.
    batch_size:
        Maximum rows per yielded batch; the final batch may be smaller.
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    if isinstance(inputs, np.ndarray):
        for start in range(0, inputs.shape[0], batch_size):
            yield inputs[start : start + batch_size]
        return

    buffer: list[np.ndarray] = []
    for example in inputs:
        buffer.append(np.asarray(example))
        if len(buffer) == batch_size:
            yield np.stack(buffer)
            buffer = []
    if buffer:
        yield np.stack(buffer)
