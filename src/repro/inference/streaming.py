"""Microbatching helpers for high-volume inference workloads.

:func:`iter_microbatches` normalises the two input forms the synchronous
streaming API accepts — a pre-assembled batch array, or an iterable of
single examples — into a stream of ``(batch_size, …)`` arrays, so the
engines can run each microbatch through the folded hot path and keep peak
memory bounded by ``batch_size · num_samples`` activations instead of the
full workload.

:func:`aiter_microbatches` is the async-aware counterpart used by the
serving layer (:mod:`repro.serving`) and the engines' ``apredict_stream``
hooks: it additionally accepts *asynchronous* example streams and supports a
``max_latency`` deadline, flushing a partial microbatch when the stream goes
quiet instead of stalling the first request of a trickle workload until a
full batch arrives.
"""

from __future__ import annotations

import asyncio
from typing import AsyncIterable, AsyncIterator, Iterable, Iterator

import numpy as np

__all__ = ["iter_microbatches", "aiter_microbatches"]


def iter_microbatches(
    inputs: np.ndarray | Iterable[np.ndarray],
    batch_size: int,
) -> Iterator[np.ndarray]:
    """Yield ``(<=batch_size, …)`` batches from an array or example stream.

    Parameters
    ----------
    inputs:
        Either a batch array of shape ``(N, …)`` (sliced into views, no
        copies) or an iterable of per-example arrays of shape ``(…)`` which
        are stacked into fresh batches as they arrive.
    batch_size:
        Maximum rows per yielded batch; the final batch may be smaller.
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    if isinstance(inputs, np.ndarray):
        for start in range(0, inputs.shape[0], batch_size):
            yield inputs[start : start + batch_size]
        return

    buffer: list[np.ndarray] = []
    for example in inputs:
        buffer.append(np.asarray(example))
        if len(buffer) == batch_size:
            yield np.stack(buffer)
            buffer = []
    if buffer:
        yield np.stack(buffer)


async def aiter_microbatches(
    inputs: np.ndarray | Iterable[np.ndarray] | AsyncIterable[np.ndarray],
    batch_size: int,
    max_latency: float | None = None,
) -> AsyncIterator[np.ndarray]:
    """Async microbatching over synchronous *or* asynchronous example streams.

    Synchronous inputs (a batch array or a plain iterable) behave exactly
    like :func:`iter_microbatches`.  An :class:`~typing.AsyncIterable` of
    per-example arrays is assembled into batches as examples arrive; with
    ``max_latency`` set, a partially-filled batch is flushed once that many
    seconds have passed since its first example, bounding per-request
    latency under trickle traffic.

    Parameters
    ----------
    inputs:
        Batch array ``(N, …)``, iterable of per-example arrays, or async
        iterable of per-example arrays.
    batch_size:
        Maximum rows per yielded batch; the final batch may be smaller.
    max_latency:
        Optional deadline (seconds) before a partial batch is flushed.
        Ignored for synchronous inputs, which never have to wait.

    Notes
    -----
    The source is drained by a background pump task into a bounded queue
    (the deadline wait happens on ``queue.get``, which is cancellation-safe,
    so no example is ever lost to a timeout — cancelling ``__anext__`` on an
    arbitrary async generator would not give that guarantee).  The queue is
    bounded at ``batch_size`` items, so a slow consumer back-pressures the
    producer instead of buffering the whole stream.
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    if max_latency is not None and max_latency <= 0:
        raise ValueError("max_latency must be positive when given")

    if not isinstance(inputs, AsyncIterable):
        for batch in iter_microbatches(inputs, batch_size):
            yield batch
        return

    loop = asyncio.get_running_loop()
    queue: asyncio.Queue = asyncio.Queue(maxsize=batch_size)
    end_of_stream = object()

    async def pump() -> None:
        try:
            async for example in inputs:
                await queue.put(np.asarray(example))
        finally:
            await queue.put(end_of_stream)

    pump_task = asyncio.ensure_future(pump())
    # A deadline flush leaves one queue.get in flight; it is carried to the
    # next round instead of being cancelled.  (asyncio.wait_for(queue.get(),
    # timeout) can lose a dequeued item when the timeout and the item race
    # on Python <= 3.11; a persistent getter awaited via asyncio.wait
    # cannot.)
    pending_get: asyncio.Future | None = None
    try:
        buffer: list[np.ndarray] = []
        deadline = 0.0
        exhausted = False
        while not exhausted:
            if pending_get is None:
                pending_get = asyncio.ensure_future(queue.get())
            if not buffer or max_latency is None:
                item = await pending_get
                pending_get = None
            else:
                remaining = deadline - loop.time()
                if remaining > 0:
                    done, _ = await asyncio.wait({pending_get}, timeout=remaining)
                else:
                    done = set()
                if pending_get in done:
                    item = pending_get.result()
                    pending_get = None
                else:
                    # deadline fired: flush, keeping the get in flight
                    yield np.stack(buffer)
                    buffer = []
                    continue
            if item is end_of_stream:
                exhausted = True
                continue
            if not buffer and max_latency is not None:
                deadline = loop.time() + max_latency
            buffer.append(item)
            if len(buffer) == batch_size:
                yield np.stack(buffer)
                buffer = []
        if buffer:
            yield np.stack(buffer)
    finally:
        if pending_get is not None:
            pending_get.cancel()
        pump_task.cancel()
        try:
            await pump_task  # surfaces source-stream exceptions to the caller
        except asyncio.CancelledError:
            pass
