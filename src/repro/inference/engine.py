"""Sample-folded inference engines.

Two engines share the folded hot path of :mod:`repro.inference.folding`:

* :class:`NetworkEngine` wraps a flat :class:`~repro.nn.model.Network` (the
  single-exit Bayes-LeNet/-VGG/-ResNet construction): the deterministic
  prefix is evaluated once, tiled ``S`` times into the batch axis, and the
  stochastic suffix runs in a single folded pass.
* :class:`InferenceEngine` wraps a
  :class:`~repro.core.bayesnn.MultiExitBayesNet`: per-segment backbone
  activations are computed once, cached, and shared across *all* exits and
  *all* Monte-Carlo samples; each exit head is split at its first stochastic
  layer so only the stochastic head suffix is folded and re-evaluated.

Both engines reproduce the legacy per-sample loops bit-for-bit (see
:mod:`repro.inference.legacy`), add microbatched ``predict_stream`` /
``apredict_stream`` APIs for high-volume (sync and async) workloads, and
:class:`InferenceEngine` additionally implements confidence-based early
exiting with *active-set masking*: a whole batch streams through the exits
and only still-undecided examples are propagated through later backbone
segments — reusing the engine's memoised per-segment activations when the
batch is already cached.  The request/response serving layer in
:mod:`repro.serving` sits directly on top of these engines.
"""

from __future__ import annotations

import asyncio
import hashlib
import math
from collections import OrderedDict
from concurrent.futures import Executor
from typing import TYPE_CHECKING, AsyncIterable, AsyncIterator, Iterable, Iterator

import numpy as np

from ..core.mcd import MCPrediction, deterministic_forward
from ..core.multi_exit import EarlyExitResult, exit_ensemble
from ..nn.context import ForwardContext
from ..nn.layers import MCDropout
from ..nn.layers.activations import softmax
from ..nn.model import Network
from .folding import fold_batch, folded_forward_range, unfold_samples
from .streaming import aiter_microbatches, iter_microbatches

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.bayesnn import MultiExitBayesNet

__all__ = ["NetworkEngine", "InferenceEngine"]


class _ActivationCache:
    """Content-keyed LRU memo of activations for repeated inputs.

    Keys are ``(weights token, shape, dtype, blake2b(bytes))`` — the cheap
    content digest the ISSUE-9 serving path needs: staged batches and ring
    views are *fresh array objects* every time, so the historical
    identity-keyed cache could never hit under serving.  Content keying
    gives replicas hot-path hits for repeated inputs regardless of which
    buffer the bytes arrive in, and makes in-place mutation of a cached
    *input* safe by construction (the digest changes with the bytes).

    Every key embeds a *weights-version token* (see
    :attr:`Network.weights_version`, derived from the per-parameter
    mutation counters): entries stored under an older token are pruned on
    the next store, so optimizer steps, ``Parameter.assign``,
    ``set_weights`` and post-training quantization all invalidate the
    cache without having to know about it.  Only a raw
    ``param.value[...]`` write without a following ``param.bump_version()``
    goes unnoticed — such code must call ``engine.invalidate_cache()``
    itself.  Non-C-contiguous inputs bypass the cache (hashing them would
    need a materialising copy); ``hits``/``misses`` count every lookup and
    feed ``ServingStats``.
    """

    def __init__(self, maxsize: int) -> None:
        self.maxsize = int(maxsize)
        self._entries: OrderedDict[tuple, object] = OrderedDict()
        self.hits = 0
        self.misses = 0
        # the key of the last get() miss, so the put() that follows a cold
        # lookup does not hash the same bytes twice (id() is stable here:
        # the caller holds x alive between its get and put)
        self._miss_key: tuple | None = None

    @staticmethod
    def _key(x: np.ndarray, token: object) -> tuple | None:
        if not x.flags.c_contiguous:
            return None
        digest = hashlib.blake2b(x, digest_size=16).digest()
        return (token, x.shape, x.dtype.str, digest)

    def get(self, x: np.ndarray, token: object):
        if self.maxsize <= 0:
            return None
        key = self._key(x, token)
        if key is None:
            self.misses += 1
            return None
        value = self._entries.get(key)
        if value is None:
            self.misses += 1
            self._miss_key = (id(x), token, key)
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def put(self, x: np.ndarray, token: object, value: object) -> None:
        if self.maxsize <= 0:
            return
        miss_key, self._miss_key = self._miss_key, None
        if miss_key is not None and miss_key[0] == id(x) and miss_key[1] == token:
            key = miss_key[2]
        else:
            key = self._key(x, token)
        if key is None:
            return
        # a weights bump invalidates everything stored under older tokens
        stale = [k for k in self._entries if k[0] != token]
        for k in stale:
            del self._entries[k]
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()
        self._miss_key = None


def _engine_getstate(engine) -> dict:
    """Shared pickling rule of both engines: per-process state stays home.

    The private :class:`ForwardContext` and the content-keyed activation cache
    are process-local by design; what crosses the boundary is the model
    (pickle-light when its parameters are shared-memory backed — see
    :class:`repro.nn.shm.SharedParameterArena`) plus the engine's
    configuration.  Unpickling therefore *is* ``replicate()`` across a
    process boundary: same parameter storage, fresh context and cache.
    """
    state = engine.__dict__.copy()
    del state["ctx"]
    state["_cache"] = engine._cache.maxsize
    return state


def _engine_setstate(engine, state: dict) -> None:
    engine.__dict__.update(state)
    engine._cache = _ActivationCache(state["_cache"])
    engine.ctx = ForwardContext()


class NetworkEngine:
    """Folded Monte-Carlo inference over a flat network with MCD layers.

    The engine splits the network at its first stochastic layer, evaluates
    the deterministic prefix once, folds the cached activation ``S`` times
    into the batch axis and runs the stochastic suffix in a single pass —
    the software analogue of the accelerator's spatial MC-engine mapping.

    Parameters
    ----------
    network:
        A built :class:`~repro.nn.model.Network`.
    seed:
        When given, reseeds every MCD layer (as ``MCSampler`` does).
    exact:
        Keep the folded pass bit-identical to the legacy per-sample loop
        (default).  ``False`` runs every layer on the flat fold instead,
        which is fastest but only ULP-level equivalent.
    cache_size:
        Number of recent inputs whose prefix activation is memoised
        (0 disables caching; see :class:`_ActivationCache` for invalidation
        caveats).

    Notes
    -----
    Each engine owns a private :class:`~repro.nn.context.ForwardContext`
    (:attr:`ctx`) holding its dropout streams and layer caches, so several
    engines over the *same* network — see :meth:`replicate` — can run
    concurrently on shared ``Parameter`` storage.  One engine instance is
    still a single logical caller: don't share it between threads; pass an
    explicit per-call ``ctx`` or use a replica per worker instead.
    """

    def __init__(
        self,
        network: Network,
        seed: int | None = None,
        exact: bool = True,
        cache_size: int = 0,
    ) -> None:
        if not network.built:
            raise ValueError("network must be built before sampling")
        self.network = network
        self.exact = bool(exact)
        self._cache = _ActivationCache(cache_size)
        #: the engine's private forward context (streams + layer caches)
        self.ctx = ForwardContext()
        if seed is not None:
            self.reseed(seed)

    # ------------------------------------------------------------------ #
    def reseed(self, seed: int) -> None:
        """Reseed every MCD layer for reproducible sample sequences.

        Model-wide: the layers' seeds are updated, so every context (this
        engine's, other replicas', the ctx-less default) re-derives its
        streams from the new seeds on its next draw.
        """
        for offset, idx in enumerate(self.network.stochastic_layer_indices()):
            layer = self.network.layers[idx]
            if isinstance(layer, MCDropout):
                layer.reseed(seed + offset)

    def replicate(self) -> "NetworkEngine":
        """A new engine over the *same* network (zero-copy parameter sharing).

        The replica has its own :class:`~repro.nn.context.ForwardContext`
        and activation cache, so it can run concurrently with this engine —
        this is the building block of the multi-worker serving pool.
        """
        return NetworkEngine(
            self.network, exact=self.exact, cache_size=self._cache.maxsize
        )

    def __getstate__(self) -> dict:
        return _engine_getstate(self)

    def __setstate__(self, state: dict) -> None:
        _engine_setstate(self, state)

    def invalidate_cache(self) -> None:
        self._cache.clear()

    def cache_stats(self) -> tuple[int, int]:
        """``(hits, misses)`` of the content-keyed activation cache so far."""
        return self._cache.hits, self._cache.misses

    def weights_token(self) -> int:
        """Current weights-version token the activation cache is keyed on."""
        return self.network.weights_version

    @property
    def split_index(self) -> int:
        return self.network.first_stochastic_index()

    @property
    def has_stochastic_layers(self) -> bool:
        return self.split_index < len(self.network.layers)

    # ------------------------------------------------------------------ #
    def _prefix(self, x: np.ndarray, split: int, ctx: ForwardContext) -> np.ndarray:
        token = (self.network.weights_version, split)
        cached = self._cache.get(x, token)
        if cached is None:
            cached = self.network.forward_range(x, 0, split, training=False, ctx=ctx)
            self._cache.put(x, token, cached)
        return cached

    def sample(
        self,
        x: np.ndarray,
        num_samples: int = 3,
        ctx: ForwardContext | None = None,
    ) -> MCPrediction:
        """Draw ``num_samples`` MC predictive samples in one folded pass.

        ``ctx`` overrides the engine's own context for this call — that is
        how the serving pool gives every batch a deterministic, scheduling-
        independent stream; leave it ``None`` for the (bit-identical to
        pre-context) persistent engine streams.
        """
        if num_samples <= 0:
            raise ValueError("num_samples must be positive")
        ctx = self.ctx if ctx is None else ctx
        split = self.split_index
        n_layers = len(self.network.layers)
        cached = self._prefix(x, split, ctx)

        if split >= n_layers:
            # deterministic network: one pass, replicate the sample
            probs = softmax(cached, axis=-1)
            sample_probs = np.stack([probs] * num_samples)
        else:
            folded = fold_batch(cached, num_samples)
            logits = folded_forward_range(
                self.network,
                folded,
                num_samples,
                split,
                n_layers,
                exact=self.exact,
                ctx=ctx,
            )
            sample_probs = unfold_samples(softmax(logits, axis=-1), num_samples)
        return MCPrediction(
            mean_probs=sample_probs.mean(axis=0), sample_probs=sample_probs
        )

    def predict_proba(
        self,
        x: np.ndarray,
        num_samples: int | None = None,
        ctx: ForwardContext | None = None,
    ) -> np.ndarray:
        """Predictive distribution: MC mean when ``num_samples`` is given,
        otherwise one (stochastic, if MCD) forward pass."""
        if num_samples is not None:
            return self.sample(x, num_samples, ctx=ctx).mean_probs
        ctx = self.ctx if ctx is None else ctx
        return softmax(self.network.forward(x, training=False, ctx=ctx), axis=-1)

    def predict_stream(
        self,
        inputs: np.ndarray | Iterable[np.ndarray],
        batch_size: int = 64,
        num_samples: int | None = None,
    ) -> Iterator[np.ndarray]:
        """Microbatched predictive distributions for high-volume workloads.

        Yields one ``(<=batch_size, classes)`` probability array per
        microbatch; peak memory stays bounded by the microbatch fold.
        """
        for batch in iter_microbatches(inputs, batch_size):
            yield self.predict_proba(batch, num_samples)

    async def apredict_stream(
        self,
        inputs: np.ndarray | Iterable[np.ndarray] | AsyncIterable[np.ndarray],
        batch_size: int = 64,
        num_samples: int | None = None,
        max_latency: float | None = None,
        executor: Executor | None = None,
    ) -> AsyncIterator[np.ndarray]:
        """Async counterpart of :meth:`predict_stream`.

        Accepts asynchronous example streams in addition to the synchronous
        input forms, and runs every folded NumPy pass in ``executor`` (the
        event loop's default thread pool when ``None``) so the loop stays
        responsive while a microbatch computes.

        Parameters
        ----------
        inputs:
            Batch array, iterable of examples, or async iterable of examples.
        batch_size:
            Maximum examples per folded pass.
        num_samples:
            MC samples per prediction (``None`` = one stochastic pass).
        max_latency:
            Flush deadline (seconds) for partially-filled microbatches of an
            async stream; see :func:`repro.inference.aiter_microbatches`.
        executor:
            Where the NumPy work runs.  The engine is not thread-safe, so a
            multi-worker executor must not be shared with other callers of
            this engine.
        """
        loop = asyncio.get_running_loop()
        async for batch in aiter_microbatches(inputs, batch_size, max_latency):
            yield await loop.run_in_executor(
                executor, self.predict_proba, batch, num_samples
            )


class InferenceEngine:
    """Vectorised inference over a multi-exit MCD BayesNN.

    The engine is the software analogue of the paper's cached-tensor +
    MC-engine design: per-segment backbone activations are computed once and
    shared across all exits and all samples, and the ``ceil(S / E)``
    stochastic head passes are folded into the batch axis so every exit head
    runs exactly once per prediction.

    All public methods keep the semantics (and, for ``predict_mc``, the bit
    pattern) of the legacy loops in :mod:`repro.inference.legacy`.

    Like :class:`NetworkEngine`, each instance owns a private
    :class:`~repro.nn.context.ForwardContext` and activation cache;
    :meth:`replicate` builds additional engines over the same model
    (parameters shared zero-copy) that can run concurrently — one replica
    per serving worker.
    """

    def __init__(
        self,
        model: "MultiExitBayesNet",
        exact: bool = True,
        cache_size: int = 4,
    ) -> None:
        self.model = model
        self.exact = bool(exact)
        self._cache = _ActivationCache(cache_size)
        #: the engine's private forward context (streams + layer caches)
        self.ctx = ForwardContext()

    # ------------------------------------------------------------------ #
    def replicate(self) -> "InferenceEngine":
        """A new engine over the *same* model (zero-copy parameter sharing).

        The replica has its own :class:`~repro.nn.context.ForwardContext`
        and activation cache, so it can run concurrently with this engine.
        """
        return InferenceEngine(
            self.model, exact=self.exact, cache_size=self._cache.maxsize
        )

    def __getstate__(self) -> dict:
        return _engine_getstate(self)

    def __setstate__(self, state: dict) -> None:
        _engine_setstate(self, state)

    def invalidate_cache(self) -> None:
        """Drop cached backbone activations (call after mutating weights)."""
        self._cache.clear()

    def cache_stats(self) -> tuple[int, int]:
        """``(hits, misses)`` of the content-keyed activation cache so far."""
        return self._cache.hits, self._cache.misses

    def weights_token(self) -> int:
        """Current weights-version token the activation cache is keyed on."""
        return self.model.backbone.weights_version

    def _weights_token(self) -> object:
        return self.weights_token()

    def backbone_activations(
        self, x: np.ndarray, ctx: ForwardContext | None = None
    ) -> list[np.ndarray]:
        """Backbone activation at each exit point, computed once and cached."""
        token = self._weights_token()
        acts = self._cache.get(x, token)
        if acts is None:
            acts = self.model.backbone_activations(
                x, training=False, ctx=self.ctx if ctx is None else ctx
            )
            self._cache.put(x, token, acts)
        return acts

    # ------------------------------------------------------------------ #
    # Monte-Carlo prediction (folded)
    # ------------------------------------------------------------------ #
    def _head_mc_probs(
        self, head: Network, act: np.ndarray, num_passes: int, ctx: ForwardContext
    ) -> np.ndarray:
        """``num_passes`` MC samples of one head, shape ``(P, N, classes)``.

        The head is split at its first stochastic layer: the deterministic
        head prefix runs once on the ``(N, …)`` activation and only the
        stochastic suffix is folded ``P`` times.
        """
        split = head.first_stochastic_index()
        prefix = head.forward_range(act, 0, split, training=False, ctx=ctx)
        if split >= len(head.layers):
            probs = softmax(prefix, axis=-1)
            return np.stack([probs] * num_passes)
        folded = fold_batch(prefix, num_passes)
        logits = folded_forward_range(
            head,
            folded,
            num_passes,
            split,
            len(head.layers),
            exact=self.exact,
            ctx=ctx,
        )
        return unfold_samples(softmax(logits, axis=-1), num_passes)

    def predict_mc(
        self,
        x: np.ndarray,
        num_samples: int | None = None,
        ctx: ForwardContext | None = None,
    ) -> MCPrediction:
        """Monte-Carlo prediction with cached backbone and folded heads.

        Bit-identical to the legacy per-pass loop: samples are interleaved
        round-robin across exits (``e0p0, e1p0, …, e0p1, …``) and truncated
        to exactly ``num_samples``.  ``ctx`` overrides the engine's own
        context for this call (see :meth:`NetworkEngine.sample`).
        """
        model = self.model
        if num_samples is None:
            num_samples = model.config.default_mc_samples
        if num_samples <= 0:
            raise ValueError("num_samples must be positive")
        ctx = self.ctx if ctx is None else ctx

        activations = self.backbone_activations(x, ctx=ctx)
        passes = math.ceil(num_samples / model.num_exits)

        per_head = [
            self._head_mc_probs(head, act, passes, ctx)
            for head, act in zip(model.exits, activations)
        ]
        # (E, P, N, C) -> (P, E, N, C) -> flat sample index k = p*E + e
        stacked = np.stack(per_head)
        flat = stacked.transpose(1, 0, 2, 3).reshape(
            (passes * model.num_exits,) + stacked.shape[2:]
        )
        sample_probs = np.ascontiguousarray(flat[:num_samples])
        return MCPrediction(
            mean_probs=sample_probs.mean(axis=0), sample_probs=sample_probs
        )

    # ------------------------------------------------------------------ #
    # per-exit predictions
    # ------------------------------------------------------------------ #
    def exit_probabilities(
        self,
        x: np.ndarray,
        stochastic: bool | None = None,
        ctx: ForwardContext | None = None,
    ) -> list[np.ndarray]:
        """Per-exit predictive distributions for one forward pass."""
        if stochastic is None:
            stochastic = self.model.config.is_bayesian
        ctx = self.ctx if ctx is None else ctx
        activations = self.backbone_activations(x, ctx=ctx)
        probs = []
        for head, act in zip(self.model.exits, activations):
            if stochastic:
                logits = head.forward(act, training=False, ctx=ctx)
            else:
                logits = deterministic_forward(head, act, ctx=ctx)
            probs.append(softmax(logits, axis=-1))
        return probs

    def exit_mc_probabilities(
        self, x: np.ndarray, num_passes: int, ctx: ForwardContext | None = None
    ) -> list[np.ndarray]:
        """Per-exit MC-mean distributions over ``num_passes`` folded passes.

        Replaces the accumulate-over-passes loops of the Table I evaluation:
        each head's stochastic suffix runs once on a ``(P·N, …)`` fold
        instead of ``P`` times on ``(N, …)``.
        """
        if num_passes <= 0:
            raise ValueError("num_passes must be positive")
        ctx = self.ctx if ctx is None else ctx
        activations = self.backbone_activations(x, ctx=ctx)
        return [
            self._head_mc_probs(head, act, num_passes, ctx).mean(axis=0)
            for head, act in zip(self.model.exits, activations)
        ]

    def predict_deterministic(
        self, x: np.ndarray, ctx: ForwardContext | None = None
    ) -> np.ndarray:
        """Ensemble prediction with MCD replaced by its expectation."""
        return exit_ensemble(self.exit_probabilities(x, stochastic=False, ctx=ctx))

    def predict_proba(
        self,
        x: np.ndarray,
        num_samples: int | None = None,
        ctx: ForwardContext | None = None,
    ) -> np.ndarray:
        """Mean predictive distribution (MC if Bayesian, deterministic otherwise)."""
        if self.model.config.is_bayesian:
            return self.predict_mc(x, num_samples, ctx=ctx).mean_probs
        return self.predict_deterministic(x, ctx=ctx)

    def predict(self, x: np.ndarray, num_samples: int | None = None) -> np.ndarray:
        """Predicted class labels."""
        return self.predict_proba(x, num_samples).argmax(axis=1)

    # ------------------------------------------------------------------ #
    # batched early exiting (active-set masking)
    # ------------------------------------------------------------------ #
    def early_exit_predict(
        self,
        x: np.ndarray,
        threshold: float,
        use_ensemble: bool = True,
        stochastic: bool | None = None,
        ctx: ForwardContext | None = None,
    ) -> EarlyExitResult:
        """Confidence-based early exiting with per-example termination.

        Unlike the eager legacy path (compute every exit, then select), the
        batch streams through the exits: after each exit, examples whose
        confidence reaches ``threshold`` are retired and only the active set
        is propagated through later backbone segments and heads — so a
        mostly-easy batch never pays for the deep exits.

        When the batch's backbone activations are already memoised (a prior
        :meth:`predict_mc` / :meth:`backbone_activations` call on a batch
        with *identical bytes* under the current weights — the cache is
        content-keyed, so staged buffers and ring views hit like the
        original array), the backbone is not re-run at all:
        each exit reads the still-active rows straight out of the cached
        per-segment activations.  Cache hits may differ from the cold path
        by a few ULPs (GEMMs over a row subset are not bit-stable against
        GEMMs over the full batch); the retire/exit decisions and result
        semantics are identical.
        """
        if not 0.0 < threshold < 1.0:
            raise ValueError("threshold must be in (0, 1)")
        model = self.model
        if stochastic is None:
            stochastic = model.config.is_bayesian
        ctx = self.ctx if ctx is None else ctx
        bounds = model._segment_bounds()
        n = x.shape[0]
        num_exits = model.num_exits

        # reuse memoised per-segment activations for this exact batch, if any
        cached_acts = self._cache.get(x, self._weights_token())

        chosen = np.zeros((n, model.num_classes))
        exit_indices = np.full(n, num_exits - 1, dtype=np.int64)
        active = np.arange(n)
        out = x
        running: np.ndarray | None = None

        for i, ((start, stop), head) in enumerate(zip(bounds, model.exits)):
            if cached_acts is not None:
                act = cached_acts[i]
                out = act if active.shape[0] == n else act[active]
            else:
                out = model.backbone.forward_range(
                    out, start, stop, training=False, ctx=ctx
                )
            if stochastic:
                logits = head.forward(out, training=False, ctx=ctx)
            else:
                logits = deterministic_forward(head, out, ctx=ctx)
            probs = softmax(logits, axis=-1)
            if use_ensemble:
                running = probs if running is None else running + probs
                candidate = running / (i + 1)
            else:
                candidate = probs

            is_last = i == num_exits - 1
            if is_last:
                retire = np.ones(candidate.shape[0], dtype=bool)
            else:
                retire = candidate.max(axis=1) >= threshold
            retired = active[retire]
            chosen[retired] = candidate[retire]
            exit_indices[retired] = i
            if is_last:
                break

            keep = ~retire
            if not keep.any():
                break
            active = active[keep]
            if cached_acts is None:
                out = out[keep]
            if use_ensemble:
                running = running[keep]

        distribution = np.bincount(exit_indices, minlength=num_exits) / n
        return EarlyExitResult(
            probs=chosen,
            exit_indices=exit_indices,
            threshold=float(threshold),
            exit_distribution=distribution,
        )

    # ------------------------------------------------------------------ #
    # streaming
    # ------------------------------------------------------------------ #
    def predict_stream(
        self,
        inputs: np.ndarray | Iterable[np.ndarray],
        batch_size: int = 64,
        num_samples: int | None = None,
        early_exit_threshold: float | None = None,
    ) -> Iterator[np.ndarray]:
        """Microbatched mean predictive distributions for high-volume workloads.

        Yields one ``(<=batch_size, classes)`` probability array per
        microbatch.  With ``early_exit_threshold`` set, each microbatch runs
        through the active-set early-exit path instead of full MC sampling.
        """
        for batch in iter_microbatches(inputs, batch_size):
            if early_exit_threshold is not None:
                yield self.early_exit_predict(batch, early_exit_threshold).probs
            else:
                yield self.predict_proba(batch, num_samples)

    async def apredict_stream(
        self,
        inputs: np.ndarray | Iterable[np.ndarray] | AsyncIterable[np.ndarray],
        batch_size: int = 64,
        num_samples: int | None = None,
        early_exit_threshold: float | None = None,
        max_latency: float | None = None,
        executor: Executor | None = None,
    ) -> AsyncIterator[np.ndarray]:
        """Async counterpart of :meth:`predict_stream`.

        Accepts asynchronous example streams in addition to the synchronous
        input forms, and runs every folded NumPy pass in ``executor`` (the
        event loop's default thread pool when ``None``) so the event loop is
        never blocked by a microbatch.  This is the low-level hook the
        serving layer (:mod:`repro.serving`) builds on; use
        :class:`repro.serving.ServingEngine` when you need per-request
        futures, backpressure and stats rather than an ordered batch stream.

        Parameters
        ----------
        inputs:
            Batch array, iterable of examples, or async iterable of examples.
        batch_size:
            Maximum examples per folded pass.
        num_samples:
            MC samples per prediction (ignored in early-exit mode).
        early_exit_threshold:
            When set, each microbatch runs the active-set early-exit path.
        max_latency:
            Flush deadline (seconds) for partially-filled microbatches of an
            async stream; see :func:`repro.inference.aiter_microbatches`.
        executor:
            Where the NumPy work runs.  The engine is not thread-safe, so a
            multi-worker executor must not be shared with other callers of
            this engine.
        """
        loop = asyncio.get_running_loop()

        def compute(batch: np.ndarray) -> np.ndarray:
            if early_exit_threshold is not None:
                return self.early_exit_predict(batch, early_exit_threshold).probs
            return self.predict_proba(batch, num_samples)

        async for batch in aiter_microbatches(inputs, batch_size, max_latency):
            yield await loop.run_in_executor(executor, compute, batch)
