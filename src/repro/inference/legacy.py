"""Reference (pre-folding) inference loops, kept for regression and benchmarks.

These are verbatim ports of the per-sample Python loops that
:class:`~repro.core.mcd.MCSampler` and
:class:`~repro.core.bayesnn.MultiExitBayesNet` used before the sample-folded
:mod:`repro.inference` engine replaced them.  They define the behaviour the
folded hot path must reproduce **bit-for-bit** (same seeds ⇒ identical
``sample_probs``), which the regression tests in
``tests/inference/test_folded_equivalence.py`` enforce, and they serve as the
baseline of the looped-vs-folded microbenchmark in
``benchmarks/test_inference_engine.py``.

These loops deliberately run ctx-less: they use the process-wide default
:class:`~repro.nn.context.ForwardContext`, whose streams seed from the
layers' seeds exactly like the engines' private contexts do — which is
what keeps twin-model folded-vs-legacy comparisons bit-identical after the
reentrancy refactor.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

import numpy as np

from ..nn.layers.activations import softmax
from ..nn.model import Network

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.bayesnn import MultiExitBayesNet
    from ..core.mcd import MCPrediction
    from ..core.multi_exit import EarlyExitResult

__all__ = ["looped_mc_sample", "looped_predict_mc", "eager_early_exit"]


def looped_mc_sample(
    network: Network, x: np.ndarray, num_samples: int
) -> "MCPrediction":
    """Legacy ``MCSampler.sample``: one stochastic suffix pass per sample."""
    from ..core.mcd import MCPrediction

    if num_samples <= 0:
        raise ValueError("num_samples must be positive")
    split_index = network.first_stochastic_index()
    n_layers = len(network.layers)
    cached = network.forward_range(x, 0, split_index, training=False)

    samples = []
    for _ in range(num_samples):
        logits = network.forward_range(cached, split_index, n_layers, training=False)
        samples.append(softmax(logits, axis=-1))
        if split_index >= n_layers:
            # deterministic network: all samples identical, stop early
            samples = samples * num_samples
            break
    sample_probs = np.stack(samples[:num_samples])
    return MCPrediction(mean_probs=sample_probs.mean(axis=0), sample_probs=sample_probs)


def looped_predict_mc(
    model: "MultiExitBayesNet", x: np.ndarray, num_samples: int | None = None
) -> "MCPrediction":
    """Legacy ``MultiExitBayesNet.predict_mc``: re-run every head per pass."""
    from ..core.mcd import MCPrediction

    if num_samples is None:
        num_samples = model.config.default_mc_samples
    if num_samples <= 0:
        raise ValueError("num_samples must be positive")

    activations = model.backbone_activations(x, training=False)
    passes = math.ceil(num_samples / model.num_exits)

    per_pass_exit_probs: list[list[np.ndarray]] = []
    for _ in range(passes):
        pass_probs = [
            softmax(head.forward(act, training=False), axis=-1)
            for head, act in zip(model.exits, activations)
        ]
        per_pass_exit_probs.append(pass_probs)

    # round-robin over exits within each pass: e0p0, e1p0, ..., e0p1, ...
    flat: list[np.ndarray] = []
    for pass_probs in per_pass_exit_probs:
        flat.extend(pass_probs)
    sample_probs = np.stack(flat[:num_samples])
    return MCPrediction(mean_probs=sample_probs.mean(axis=0), sample_probs=sample_probs)


def eager_early_exit(
    model: "MultiExitBayesNet",
    x: np.ndarray,
    threshold: float,
    use_ensemble: bool = True,
) -> "EarlyExitResult":
    """Legacy ``early_exit_predict``: evaluate *every* exit, then select.

    The folded engine's active-set version only propagates still-undecided
    examples through later backbone segments; this eager version is the
    semantics it is checked against.  It deliberately bypasses the engine
    (no activation cache, no folding) so the regression tests compare two
    independent implementations.
    """
    from ..core.mcd import deterministic_forward
    from ..core.multi_exit import confidence_early_exit

    stochastic = model.config.is_bayesian
    activations = model.backbone_activations(x, training=False)
    probs = []
    for head, act in zip(model.exits, activations):
        if stochastic:
            logits = head.forward(act, training=False)
        else:
            logits = deterministic_forward(head, act)
        probs.append(softmax(logits, axis=-1))
    return confidence_early_exit(probs, threshold, use_ensemble=use_ensemble)
