"""Sample-folded inference engine (DESIGN.md §3.2, Figure 4 analogue).

The paper's accelerator caches the deterministic backbone activation once
and evaluates the ``S`` Monte-Carlo samples spatially, in parallel MC
engines.  This subpackage is the software counterpart: Monte-Carlo samples
are folded into the batch axis and the stochastic suffix runs once, with
per-segment backbone activations cached and shared across all exits and all
samples.

Public surface
--------------
:class:`InferenceEngine`
    Folded MC prediction, per-exit distributions, active-set early exiting
    and microbatched streaming over a multi-exit MCD BayesNN.
:class:`NetworkEngine`
    The same folded hot path for flat single-exit networks.
:mod:`repro.inference.folding`
    ``fold_batch`` / ``unfold_samples`` / ``folded_forward_range`` primitives
    with a documented bit-exactness contract.
:mod:`repro.inference.legacy`
    The pre-folding per-sample loops, kept as the regression/benchmark
    reference.
:func:`iter_microbatches` / :func:`aiter_microbatches`
    Synchronous and async-aware microbatching primitives; the latter (with
    its ``max_latency`` partial-batch flush) is the building block of the
    engines' ``apredict_stream`` hooks and of :mod:`repro.serving`.
"""

from .engine import InferenceEngine, NetworkEngine
from .folding import fold_batch, folded_forward_range, unfold_samples
from .legacy import eager_early_exit, looped_mc_sample, looped_predict_mc
from .streaming import aiter_microbatches, iter_microbatches

__all__ = [
    "InferenceEngine",
    "NetworkEngine",
    "fold_batch",
    "unfold_samples",
    "folded_forward_range",
    "iter_microbatches",
    "aiter_microbatches",
    "looped_mc_sample",
    "looped_predict_mc",
    "eager_early_exit",
]
