"""Sample-folding primitives: run S Monte-Carlo samples as one wide batch.

The accelerator evaluates ``S`` Monte-Carlo samples *spatially* — the cached
deterministic activation is cloned into ``S`` parallel MC engines and the
stochastic suffix is evaluated once (Figure 4 of the paper).  The software
analogue implemented here folds the sample axis into the batch axis: the
cached activation of shape ``(N, …)`` is tiled to ``(S·N, …)`` and the
stochastic suffix is evaluated in a single pass, with every
:class:`~repro.nn.layers.MCDropout` layer drawing one *independent* mask row
per (sample, example) pair.

Bit-exactness contract
----------------------
The folded pass is required to be **bit-identical** to the legacy
one-pass-per-sample loop (see :mod:`repro.inference.legacy`) so that the
refactor is observationally invisible.  Three facts make that possible:

* ``np.random.Generator.random`` fills arrays from the bit stream in row-major
  order, so one draw of shape ``(S·N, …)`` consumes the per-layer RNG stream
  in exactly the same order as ``S`` sequential draws of shape ``(N, …)``.
  Tiling the batch sample-major therefore reproduces the legacy masks.
* Row-wise layers (activations, pooling, dropout masking, reshapes,
  inference-mode batch norm) compute each batch row independently, so they
  are bit-stable under batch tiling.
* GEMM-backed layers are **not** bit-stable under batch tiling (BLAS picks
  different kernels/blocking for different M), so they are evaluated as
  *stacked* per-sample GEMMs with the legacy shapes, dispatched in C:
  :class:`Dense` as a ``(S, N, F) @ (F, U)`` matmul, :class:`Conv2D` via
  :meth:`~repro.nn.layers.conv.Conv2D.forward_folded` (the folded im2col
  column matrix reshaped to ``(S, N·oh·ow, C·kh·kw)`` — im2col is a pure
  gather, so the fold is exactly the per-slice column matrices stacked),
  and :class:`ResidualBlock` by folding each constituent convolution the
  same way.  Any remaining parameterised layer (custom layers) falls back
  to a per-slice loop.
* An :class:`MCDropout` directly feeding a :class:`Dense` runs as a **fused
  stochastic-suffix kernel**: the scaled keep-mask is drawn once (same RNG
  consumption as the standalone layer) and folded into the GEMM operand one
  sample block at a time, so the masked ``(S·N, F)`` intermediate is never
  materialised.  Every element still sees the identical multiply and the
  identical per-sample GEMM shape, so the fusion stays inside the bit-
  exactness contract (see :meth:`~repro.nn.layers.dense.Dense.forward_folded`).

Passing ``exact=False`` trades the guarantee for speed: every layer then runs
directly on the flat ``(S·N, …)`` fold (results still agree to within a few
ULPs).
"""

from __future__ import annotations

import numpy as np

from ..nn.context import ForwardContext, resolve_context
from ..nn.layers import (
    AvgPool2D,
    BatchNorm,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    GlobalAvgPool2D,
    MaxPool2D,
    MCDropout,
    ReLU,
    ResidualBlock,
    Softmax,
)
from ..nn.layers.base import Layer
from ..nn.model import Network

__all__ = [
    "ROWWISE_LAYERS",
    "fold_batch",
    "unfold_samples",
    "folded_forward_range",
]

#: Layers whose forward pass treats every batch row independently with
#: identical per-row arithmetic — safe to evaluate on the flat fold.
#: ``MCDropout`` belongs here by construction: its mask draw on the folded
#: batch consumes the per-layer RNG stream exactly like S sequential draws.
ROWWISE_LAYERS: tuple[type[Layer], ...] = (
    ReLU,
    Softmax,
    Flatten,
    MaxPool2D,
    AvgPool2D,
    GlobalAvgPool2D,
    BatchNorm,
    Dropout,
    MCDropout,
)


def fold_batch(x: np.ndarray, num_samples: int) -> np.ndarray:
    """Tile a batch ``(N, …)`` sample-major into ``(S·N, …)``.

    Row ``s·N + n`` of the result is example ``n`` of Monte-Carlo sample
    ``s`` — the clone step of the accelerator's spatial mapping.
    """
    if num_samples <= 0:
        raise ValueError("num_samples must be positive")
    return np.tile(x, (num_samples,) + (1,) * (x.ndim - 1))


def unfold_samples(y: np.ndarray, num_samples: int) -> np.ndarray:
    """Inverse of :func:`fold_batch` on the output: ``(S·N, …) -> (S, N, …)``."""
    if num_samples <= 0:
        raise ValueError("num_samples must be positive")
    if y.shape[0] % num_samples:
        raise ValueError(
            f"folded batch of {y.shape[0]} rows is not divisible by "
            f"num_samples={num_samples}"
        )
    return y.reshape((num_samples, y.shape[0] // num_samples) + y.shape[1:])


def _dense_folded(layer: Dense, x: np.ndarray, num_samples: int) -> np.ndarray:
    """Evaluate a Dense layer on the fold as a stacked per-sample GEMM."""
    return layer.forward_folded(x, num_samples)


def _sliced_forward(
    layer: Layer, x: np.ndarray, num_samples: int, ctx: ForwardContext
) -> np.ndarray:
    """Evaluate a layer one sample-slice at a time (always bit-exact)."""
    n = x.shape[0] // num_samples
    return np.concatenate(
        [
            layer.forward(x[s * n : (s + 1) * n], training=False, ctx=ctx)
            for s in range(num_samples)
        ],
        axis=0,
    )


def folded_forward_range(
    network: Network,
    x: np.ndarray,
    num_samples: int,
    start: int,
    stop: int,
    exact: bool = True,
    ctx: ForwardContext | None = None,
) -> np.ndarray:
    """Run layers ``[start, stop)`` of ``network`` on a sample-folded batch.

    ``x`` must already be folded to ``(S·N, …)`` (see :func:`fold_batch`).
    With ``exact=True`` (default) the result is bit-identical to evaluating
    the range once per sample on the ``(N, …)`` batch; with ``exact=False``
    every layer runs on the flat fold (fastest, agreement to a few ULPs).
    ``ctx`` supplies the MCD mask streams (and receives the layer caches);
    concurrent callers over the same network must each pass their own.
    """
    if not network.built:
        raise RuntimeError("network must be built before folded evaluation")
    if not 0 <= start <= stop <= len(network.layers):
        raise IndexError(
            f"invalid layer range [{start}, {stop}) for {len(network.layers)} layers"
        )
    if x.shape[0] % num_samples:
        raise ValueError(
            f"folded batch of {x.shape[0]} rows is not divisible by "
            f"num_samples={num_samples}"
        )
    ctx = resolve_context(ctx)
    layers = network.layers
    out = x
    i = start
    while i < stop:
        layer = layers[i]
        # Fused stochastic suffix: an MCDropout feeding a Dense folds its
        # scaled mask straight into the GEMM operand — the (S·N, F) masked
        # intermediate is never materialised.  The mask draw and every
        # arithmetic step match the unfused pair bit for bit (see
        # Dense.forward_folded), so the fusion is observationally invisible.
        if (
            exact
            and isinstance(layer, MCDropout)
            and layer.rate > 0.0
            and i + 1 < stop
            and isinstance(layers[i + 1], Dense)
            and out.ndim == 2
        ):
            scaled = layer.folded_scaled_mask(out, ctx)
            out = layers[i + 1].forward_folded(out, num_samples, scaled_mask=scaled)
            i += 2
            continue
        if not exact or isinstance(layer, ROWWISE_LAYERS):
            out = layer.forward(out, training=False, ctx=ctx)
        elif isinstance(layer, Dense):
            out = layer.forward_folded(out, num_samples)
        elif isinstance(layer, Conv2D):
            out = layer.forward_folded(out, num_samples)
        elif isinstance(layer, ResidualBlock):
            out = layer.forward_folded(out, num_samples, ctx=ctx)
        else:
            out = _sliced_forward(layer, out, num_samples, ctx)
        i += 1
    return out
