"""ResNet backbones (ResNet-18 for the CIFAR experiments of Table I).

The CIFAR-style ResNet-18 keeps the 3x3 stem (no initial max pooling) and has
four stages of two basic residual blocks each.  Each stage is a semantic
block of the paper's exit-placement scheme, giving four exit points.
"""

from __future__ import annotations

from ..layers import BatchNorm, Conv2D, Dense, GlobalAvgPool2D, ReLU, ResidualBlock
from ..model import Network
from .common import BackboneSpec, scale_channels

__all__ = ["resnet_spec", "resnet18_spec", "RESNET_CONFIGS"]

#: (channels, number of residual blocks, first-block stride) per stage.
RESNET_CONFIGS: dict[str, list[tuple[int, int, int]]] = {
    "resnet10": [(64, 1, 1), (128, 1, 2), (256, 1, 2), (512, 1, 2)],
    "resnet18": [(64, 2, 1), (128, 2, 2), (256, 2, 2), (512, 2, 2)],
    "resnet34": [(64, 3, 1), (128, 4, 2), (256, 6, 2), (512, 3, 2)],
}


def resnet_spec(
    variant: str = "resnet18",
    input_shape: tuple[int, int, int] = (3, 32, 32),
    num_classes: int = 10,
    width_multiplier: float = 1.0,
    use_batchnorm: bool = True,
    max_stages: int | None = None,
) -> BackboneSpec:
    """Build a ResNet backbone specification."""
    if variant not in RESNET_CONFIGS:
        raise ValueError(
            f"unknown ResNet variant {variant!r}; choose from {sorted(RESNET_CONFIGS)}"
        )
    config = RESNET_CONFIGS[variant]
    if max_stages is not None:
        if max_stages <= 0:
            raise ValueError("max_stages must be positive")
        config = config[:max_stages]

    stem_channels = scale_channels(64, width_multiplier)
    backbone = Network(name=f"{variant}_backbone")
    backbone.add(
        Conv2D(
            stem_channels, 3, padding=1, use_bias=not use_batchnorm, name="stem_conv"
        )
    )
    if use_batchnorm:
        backbone.add(BatchNorm(name="stem_bn"))
    backbone.add(ReLU(name="stem_relu"))

    exit_points: list[int] = []
    for stage, (channels, n_blocks, first_stride) in enumerate(config):
        c = scale_channels(channels, width_multiplier)
        for block in range(n_blocks):
            stride = first_stride if block == 0 else 1
            backbone.add(
                ResidualBlock(
                    c,
                    stride=stride,
                    use_batchnorm=use_batchnorm,
                    name=f"stage{stage}_block{block}",
                )
            )
        exit_points.append(len(backbone.layers))

    final_channels = scale_channels(config[-1][0], width_multiplier)

    def final_head():
        return [
            GlobalAvgPool2D(name="global_pool"),
            Dense(num_classes, name="classifier"),
        ]

    return BackboneSpec(
        name=variant,
        backbone=backbone,
        exit_points=exit_points,
        input_shape=tuple(input_shape),
        num_classes=num_classes,
        final_head_factory=final_head,
        metadata={
            "width_multiplier": width_multiplier,
            "use_batchnorm": use_batchnorm,
            "stages": len(config),
            "final_channels": final_channels,
        },
    )


def resnet18_spec(**kwargs) -> BackboneSpec:
    """ResNet-18 backbone (Table I / Figure 5 CIFAR model)."""
    return resnet_spec("resnet18", **kwargs)
