"""Shared representation of backbone architectures.

A :class:`BackboneSpec` describes a convolutional backbone together with the
*exit points* where intermediate classifiers may be attached.  Following the
paper (Section III), exit points are chosen by semantic grouping: the network
is split into "blocks" separated by pooling layers (or, for ResNet, stages of
residual blocks), and one exit can be attached after each block.

The spec deliberately keeps the backbone *unbuilt* so that downstream code —
the multi-exit constructor, the FLOP analyzer, and the hardware design-space
exploration (which rescales channel counts) — can all instantiate it lazily.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..layers.base import Layer
from ..model import Network

__all__ = ["BackboneSpec", "scale_channels"]


def scale_channels(channels: int, multiplier: float, minimum: int = 4) -> int:
    """Scale a channel count, keeping it a positive integer.

    Used both to shrink models for the laptop-scale experiments and by the
    algorithm–hardware co-exploration, which searches channel counts in
    ``{C, C/2, C/4, C/8}``.
    """
    if channels <= 0:
        raise ValueError("channels must be positive")
    if multiplier <= 0:
        raise ValueError("multiplier must be positive")
    return max(minimum, int(round(channels * multiplier)))


@dataclass
class BackboneSpec:
    """A backbone network plus the metadata needed to attach exits.

    Attributes
    ----------
    name:
        Human-readable architecture name (e.g. ``"resnet18"``).
    backbone:
        Unbuilt :class:`~repro.nn.model.Network` containing the feature
        extractor (no classifier head).
    exit_points:
        Layer indices ``p`` such that ``backbone.forward_range(x, 0, p)`` is
        the activation fed to exit ``i``.  The last entry always equals
        ``len(backbone.layers)`` (the final exit uses the full backbone).
    input_shape:
        Per-sample input shape ``(C, H, W)``.
    num_classes:
        Number of output classes.
    final_head_factory:
        Zero-argument callable returning the (unbuilt) list of layers for the
        architecture's original classifier head.
    """

    name: str
    backbone: Network
    exit_points: list[int]
    input_shape: tuple[int, int, int]
    num_classes: int
    final_head_factory: Callable[[], list[Layer]]
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.exit_points:
            raise ValueError("exit_points must not be empty")
        if sorted(self.exit_points) != list(self.exit_points):
            raise ValueError("exit_points must be increasing")
        if self.exit_points[-1] != len(self.backbone.layers):
            raise ValueError(
                "the last exit point must be the end of the backbone "
                f"({len(self.backbone.layers)}), got {self.exit_points[-1]}"
            )

    @property
    def num_blocks(self) -> int:
        """Number of semantic blocks (= maximum number of exits)."""
        return len(self.exit_points)

    # ------------------------------------------------------------------ #
    # pickling
    # ------------------------------------------------------------------ #
    def __getstate__(self) -> dict:
        # The head factory is a construction-time closure (not picklable and
        # not needed after exits are built).  Dropping it keeps whole models
        # picklable, which is how the process-pool serving workers receive
        # their engine replicas.
        state = self.__dict__.copy()
        state["final_head_factory"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    def _require_factory(self) -> Callable[[], list[Layer]]:
        if self.final_head_factory is None:
            raise RuntimeError(
                f"spec {self.name!r} lost its final_head_factory in pickling; "
                "rebuild the spec (e.g. lenet5_spec(...)) to construct new "
                "models from it"
            )
        return self.final_head_factory

    def single_exit_network(self, seed: int = 0, name: str | None = None) -> Network:
        """Compose backbone + original classifier into a built single-exit network.

        This is the non-Bayesian, single-exit baseline ("SE" in Table I) and
        is also the network handed to the hardware back-end for the
        Bayes-LeNet / Bayes-VGG / Bayes-ResNet accelerator experiments.
        """
        net = Network(name=name or f"{self.name}_se")
        for layer in self.backbone.layers:
            net.add(layer)
        for layer in self._require_factory()():
            net.add(layer)
        net.build(self.input_shape, seed=seed)
        return net
