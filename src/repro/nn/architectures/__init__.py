"""Backbone architecture factories (LeNet-5, VGG, ResNet)."""

from .common import BackboneSpec, scale_channels
from .lenet import lenet5_spec
from .resnet import RESNET_CONFIGS, resnet18_spec, resnet_spec
from .vgg import VGG_CONFIGS, vgg11_spec, vgg19_spec, vgg_spec

__all__ = [
    "BackboneSpec",
    "scale_channels",
    "lenet5_spec",
    "resnet_spec",
    "resnet18_spec",
    "RESNET_CONFIGS",
    "vgg_spec",
    "vgg11_spec",
    "vgg19_spec",
    "VGG_CONFIGS",
]


def get_architecture(name: str, **kwargs) -> BackboneSpec:
    """Look up an architecture factory by name.

    Accepted names: ``"lenet5"``, any key of :data:`RESNET_CONFIGS`, and any
    key of :data:`VGG_CONFIGS`.
    """
    if name == "lenet5":
        return lenet5_spec(**kwargs)
    if name in RESNET_CONFIGS:
        return resnet_spec(name, **kwargs)
    if name in VGG_CONFIGS:
        return vgg_spec(name, **kwargs)
    raise ValueError(
        f"unknown architecture {name!r}; available: "
        f"['lenet5'] + {sorted(RESNET_CONFIGS)} + {sorted(VGG_CONFIGS)}"
    )
