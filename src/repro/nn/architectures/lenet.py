"""LeNet-5 backbone (used for the MNIST / Bayes-LeNet hardware experiments)."""

from __future__ import annotations

from ..layers import Conv2D, Dense, Flatten, MaxPool2D, ReLU
from ..model import Network
from .common import BackboneSpec, scale_channels

__all__ = ["lenet5_spec"]


def lenet5_spec(
    input_shape: tuple[int, int, int] = (1, 28, 28),
    num_classes: int = 10,
    width_multiplier: float = 1.0,
) -> BackboneSpec:
    """Build a LeNet-5 backbone specification.

    The classic LeNet-5 topology (conv 6 → pool → conv 16 → pool) with the
    two fully-connected layers (120 → 84 → classes) as the classifier head.
    Blocks are separated by the pooling layers, giving two exit points.

    Note: a :class:`BackboneSpec` instance should be consumed by exactly one
    model (single-exit or multi-exit); call this factory again if another
    model of the same architecture is needed.
    """
    c1 = scale_channels(6, width_multiplier)
    c2 = scale_channels(16, width_multiplier)
    f1 = scale_channels(120, width_multiplier)
    f2 = scale_channels(84, width_multiplier)

    backbone = Network(name="lenet5_backbone")
    backbone.add(Conv2D(c1, kernel_size=5, padding=2, name="conv1"))
    backbone.add(ReLU(name="relu1"))
    backbone.add(MaxPool2D(2, name="pool1"))
    # ---- end of block 1
    backbone.add(Conv2D(c2, kernel_size=5, padding=0, name="conv2"))
    backbone.add(ReLU(name="relu2"))
    backbone.add(MaxPool2D(2, name="pool2"))
    # ---- end of block 2

    exit_points = [3, 6]

    def final_head():
        return [
            Flatten(name="flatten"),
            Dense(f1, name="fc1"),
            ReLU(name="fc1_relu"),
            Dense(f2, name="fc2"),
            ReLU(name="fc2_relu"),
            Dense(num_classes, name="classifier"),
        ]

    return BackboneSpec(
        name="lenet5",
        backbone=backbone,
        exit_points=exit_points,
        input_shape=tuple(input_shape),
        num_classes=num_classes,
        final_head_factory=final_head,
        metadata={"width_multiplier": width_multiplier},
    )
