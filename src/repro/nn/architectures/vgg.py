"""VGG backbones (VGG-11 for the SVHN hardware study, VGG-19 for Table I).

The standard VGG configurations are described by a list of stage channel
counts and per-stage convolution counts; each stage ends with a max-pooling
layer, which is exactly the "semantic grouping" the paper uses to place exit
branches.
"""

from __future__ import annotations

from ..layers import BatchNorm, Conv2D, Dense, Flatten, MaxPool2D, ReLU
from ..model import Network
from .common import BackboneSpec, scale_channels

__all__ = ["vgg_spec", "vgg11_spec", "vgg19_spec", "VGG_CONFIGS"]

#: (channels, number of conv layers) per stage for the standard VGG variants.
VGG_CONFIGS: dict[str, list[tuple[int, int]]] = {
    "vgg11": [(64, 1), (128, 1), (256, 2), (512, 2), (512, 2)],
    "vgg13": [(64, 2), (128, 2), (256, 2), (512, 2), (512, 2)],
    "vgg16": [(64, 2), (128, 2), (256, 3), (512, 3), (512, 3)],
    "vgg19": [(64, 2), (128, 2), (256, 4), (512, 4), (512, 4)],
}


def vgg_spec(
    variant: str = "vgg11",
    input_shape: tuple[int, int, int] = (3, 32, 32),
    num_classes: int = 10,
    width_multiplier: float = 1.0,
    use_batchnorm: bool = True,
    max_stages: int | None = None,
) -> BackboneSpec:
    """Build a VGG backbone specification.

    Parameters
    ----------
    variant:
        One of ``"vgg11"``, ``"vgg13"``, ``"vgg16"``, ``"vgg19"``.
    width_multiplier:
        Scales every channel count (used by co-exploration and by the
        scaled-down laptop experiments).
    max_stages:
        Optionally truncate the network to its first ``max_stages`` stages;
        useful when the input resolution is small.
    """
    if variant not in VGG_CONFIGS:
        raise ValueError(
            f"unknown VGG variant {variant!r}; choose from {sorted(VGG_CONFIGS)}"
        )
    config = VGG_CONFIGS[variant]
    if max_stages is not None:
        if max_stages <= 0:
            raise ValueError("max_stages must be positive")
        config = config[:max_stages]

    # ensure the spatial size never collapses below 1x1 after pooling
    min_spatial = min(input_shape[1], input_shape[2])
    feasible_stages = 0
    size = min_spatial
    for _ in config:
        if size < 2:
            break
        size //= 2
        feasible_stages += 1
    config = config[:feasible_stages]
    if not config:
        raise ValueError(f"input shape {input_shape} is too small for {variant}")

    backbone = Network(name=f"{variant}_backbone")
    exit_points: list[int] = []
    for stage, (channels, n_convs) in enumerate(config):
        c = scale_channels(channels, width_multiplier)
        for i in range(n_convs):
            backbone.add(
                Conv2D(
                    c,
                    3,
                    padding=1,
                    use_bias=not use_batchnorm,
                    name=f"stage{stage}_conv{i}",
                )
            )
            if use_batchnorm:
                backbone.add(BatchNorm(name=f"stage{stage}_bn{i}"))
            backbone.add(ReLU(name=f"stage{stage}_relu{i}"))
        backbone.add(MaxPool2D(2, name=f"stage{stage}_pool"))
        exit_points.append(len(backbone.layers))

    hidden = scale_channels(512, width_multiplier)

    def final_head():
        return [
            Flatten(name="flatten"),
            Dense(hidden, name="fc1"),
            ReLU(name="fc1_relu"),
            Dense(num_classes, name="classifier"),
        ]

    return BackboneSpec(
        name=variant,
        backbone=backbone,
        exit_points=exit_points,
        input_shape=tuple(input_shape),
        num_classes=num_classes,
        final_head_factory=final_head,
        metadata={
            "width_multiplier": width_multiplier,
            "use_batchnorm": use_batchnorm,
            "stages": len(config),
        },
    )


def vgg11_spec(**kwargs) -> BackboneSpec:
    """VGG-11 backbone (the Bayes-VGG11 / SVHN model of Figure 5)."""
    return vgg_spec("vgg11", **kwargs)


def vgg19_spec(**kwargs) -> BackboneSpec:
    """VGG-19 backbone (the CIFAR-100 model of Table I)."""
    return vgg_spec("vgg19", **kwargs)
