"""Layer zoo for the NumPy neural-network substrate."""

from .activations import ReLU, Softmax, log_softmax, softmax
from .base import Layer, Parameter
from .batchnorm import BatchNorm
from .conv import Conv2D
from .dense import Dense
from .dropout import Dropout, MCDropout
from .pooling import AvgPool2D, GlobalAvgPool2D, MaxPool2D
from .reshape import Flatten
from .residual import ResidualBlock

__all__ = [
    "Layer",
    "Parameter",
    "ReLU",
    "Softmax",
    "softmax",
    "log_softmax",
    "BatchNorm",
    "Conv2D",
    "Dense",
    "Dropout",
    "MCDropout",
    "AvgPool2D",
    "GlobalAvgPool2D",
    "MaxPool2D",
    "Flatten",
    "ResidualBlock",
]
