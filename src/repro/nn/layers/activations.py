"""Activation layers and the softmax output head."""

from __future__ import annotations

import numpy as np

from ..context import ForwardContext
from .base import Layer

__all__ = ["ReLU", "Softmax", "softmax", "log_softmax"]


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically-stable softmax."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically-stable log-softmax."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=axis, keepdims=True))


class ReLU(Layer):
    """Rectified linear activation."""

    def forward(
        self,
        x: np.ndarray,
        training: bool = False,
        ctx: ForwardContext | None = None,
    ) -> np.ndarray:
        mask = x > 0
        self._ctx(ctx).save(self, mask)
        return x * mask

    def backward(
        self, grad_output: np.ndarray, ctx: ForwardContext | None = None
    ) -> np.ndarray:
        return grad_output * self._ctx(ctx).saved(self)


class Softmax(Layer):
    """Softmax activation over the last axis.

    The backward pass implements the full softmax Jacobian so the layer can
    be used standalone; in practice the cross-entropy loss in
    :mod:`repro.nn.losses` works on logits and folds the softmax derivative
    into the loss gradient for numerical stability.
    """

    def forward(
        self,
        x: np.ndarray,
        training: bool = False,
        ctx: ForwardContext | None = None,
    ) -> np.ndarray:
        out = softmax(x, axis=-1)
        self._ctx(ctx).save(self, out)
        return out

    def backward(
        self, grad_output: np.ndarray, ctx: ForwardContext | None = None
    ) -> np.ndarray:
        s = self._ctx(ctx).saved(self)
        dot = (grad_output * s).sum(axis=-1, keepdims=True)
        return s * (grad_output - dot)
