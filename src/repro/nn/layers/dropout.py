"""Dropout layers: standard (training-only) and Monte-Carlo dropout.

The paper implements Monte-Carlo dropout (MCD) as a *filter-wise* Bernoulli
mask applied to the output feature maps of a layer (Section II-A): for a
layer with :math:`F_i` filters, the mask :math:`M_i` has one Bernoulli draw
per filter.  Unlike conventional dropout, the MCD layer stays stochastic at
inference time — that is exactly what produces distinct Monte-Carlo samples.

Both layers use *inverted* dropout scaling (surviving activations are scaled
by ``1 / keep_prob``) so that the expected activation magnitude is preserved
and no rescaling is needed at evaluation time.  The generated HLS code in
:mod:`repro.hw.hls` instead follows the paper's Algorithm 1 verbatim.

The layers themselves are stateless per call: masks are stored in the
:class:`~repro.nn.context.ForwardContext` and the Bernoulli draws come from
the *context-owned* RNG stream for this layer (see :meth:`ForwardContext.rng`
for the seeding/spawn rule).  The layer only carries the ``seed`` the streams
derive from, which is what lets several engine replicas run the same layer
concurrently with independent streams.
"""

from __future__ import annotations

import numpy as np

from ..context import ForwardContext, resolve_context
from .base import Layer

__all__ = ["Dropout", "MCDropout"]


class _DropoutBase(Layer):
    """Shared mask-generation logic for dropout variants."""

    def __init__(
        self,
        rate: float = 0.5,
        filter_wise: bool = True,
        seed: int | None = None,
        name: str | None = None,
    ) -> None:
        super().__init__(name=name)
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = float(rate)
        self.filter_wise = bool(filter_wise)
        #: seed every context derives its mask stream for this layer from
        self.seed = seed
        #: bumped by :meth:`reseed`; contexts compare it to re-derive streams
        self.seed_epoch = 0

    def reseed(self, seed: int) -> None:
        """Reset the mask stream(s), making subsequent masks reproducible.

        This is a *model-wide* operation: the new seed is recorded on the
        layer and the ``seed_epoch`` bump makes **every**
        :class:`~repro.nn.context.ForwardContext` — the process-wide default
        and each engine replica's private one — re-derive its stream for
        this layer from the new seed on its next draw.  Two ``reseed(s)``
        calls with the same ``s`` therefore replay the same mask sequence in
        whichever context draws next, exactly as when the layer owned its
        stream directly.
        """
        self.seed = int(seed)
        self.seed_epoch += 1

    @property
    def keep_prob(self) -> float:
        return 1.0 - self.rate

    def _sample_mask(
        self, x: np.ndarray, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        """Sample a Bernoulli keep-mask broadcastable to ``x``.

        Filter-wise masking (Section II-A) draws **one Bernoulli per
        filter**: on convolutional ``(N, C, H, W)`` activations the mask has
        shape ``(N, C, 1, 1)`` and drops whole feature maps.  On dense
        ``(N, F)`` activations every feature *is* a single-element filter,
        so the filter-wise mask is the full ``(N, F)`` shape and coincides
        with element-wise masking — there is deliberately no separate code
        path for it.  Either way the mask consumes ``rows(x)``-proportional
        RNG stream, which is what lets the sample-folded engine
        (:mod:`repro.inference.folding`) draw all S per-sample masks in one
        call without changing the stream.

        ``rng`` defaults to the process-wide default context's stream for
        this layer.
        """
        if rng is None:
            rng = resolve_context(None).rng(self)
        if self.filter_wise and x.ndim == 4:
            shape: tuple[int, ...] = (x.shape[0], x.shape[1], 1, 1)
        else:
            shape = x.shape
        return (rng.random(shape) < self.keep_prob).astype(x.dtype)

    def _apply(self, x: np.ndarray, ctx: ForwardContext) -> np.ndarray:
        if self.rate == 0.0:
            ctx.save(self, np.ones((1,) * x.ndim, dtype=x.dtype))
            return x
        mask = self._sample_mask(x, ctx.rng(self))
        scaled = mask / self.keep_prob
        ctx.save(self, scaled)
        return x * scaled

    def folded_scaled_mask(self, x: np.ndarray, ctx: ForwardContext) -> np.ndarray | None:
        """Draw the scaled keep-mask for ``x`` without applying it.

        The fused stochastic-suffix kernel (see
        :func:`repro.inference.folding.folded_forward_range`) folds the mask
        into the following GEMM's operand instead of materialising
        ``x * scaled`` as a separate full-width pass.  The draw consumes the
        layer's RNG stream exactly like :meth:`_apply` — one ``rng.random``
        call of the same shape — but skips two of its full-width
        temporaries: the uniform draw is scaled *in place*, and the scalar
        division is replaced by a multiply with the reciprocal.  Both are
        bit-exact because the mask holds only 0.0 and 1.0:
        ``0.0 * inv == 0.0 / keep`` and ``1.0 * inv == inv == 1.0 / keep``
        (``inv = 1.0 / keep_prob`` is itself the correctly-rounded quotient).
        The mask is saved in ``ctx`` exactly as :meth:`_apply` would.

        Returns ``None`` when ``rate == 0`` (identity layer: nothing to
        fold, and no stream is consumed — matching :meth:`_apply`).
        """
        if self.rate == 0.0:
            ctx.save(self, np.ones((1,) * x.ndim, dtype=x.dtype))
            return None
        rng = ctx.rng(self)
        if self.filter_wise and x.ndim == 4:
            shape: tuple[int, ...] = (x.shape[0], x.shape[1], 1, 1)
        else:
            shape = x.shape
        if x.dtype == np.float64:
            u = rng.random(shape)
            scaled = np.multiply(u < self.keep_prob, 1.0 / self.keep_prob, out=u)
        else:
            scaled = self._sample_mask(x, rng)
            np.divide(scaled, self.keep_prob, out=scaled)
        ctx.save(self, scaled)
        return scaled

    def backward(
        self, grad_output: np.ndarray, ctx: ForwardContext | None = None
    ) -> np.ndarray:
        return grad_output * self._ctx(ctx).saved(self)

    def describe(self) -> dict:
        info = super().describe()
        info.update(
            {
                "rate": self.rate,
                "filter_wise": self.filter_wise,
                "stochastic_at_inference": self.stochastic,
            }
        )
        return info


class Dropout(_DropoutBase):
    """Conventional dropout: active during training, identity at inference."""

    def forward(
        self,
        x: np.ndarray,
        training: bool = False,
        ctx: ForwardContext | None = None,
    ) -> np.ndarray:
        ctx = self._ctx(ctx)
        if not training:
            ctx.save(self, np.ones((1,) * x.ndim, dtype=x.dtype))
            return x
        return self._apply(x, ctx)


class MCDropout(_DropoutBase):
    """Monte-Carlo dropout: stochastic during both training and inference.

    Running the same input through a network containing ``MCDropout`` layers
    multiple times yields distinct samples from the approximate posterior
    predictive distribution (Gal & Ghahramani, 2016).
    """

    stochastic = True

    def forward(
        self,
        x: np.ndarray,
        training: bool = False,
        ctx: ForwardContext | None = None,
    ) -> np.ndarray:
        return self._apply(x, self._ctx(ctx))

    def deterministic_forward(
        self, x: np.ndarray, ctx: ForwardContext | None = None
    ) -> np.ndarray:
        """Forward pass with dropout disabled (expected-value approximation).

        Used when a single deterministic prediction is required, e.g. when
        comparing against the non-Bayesian baseline.
        """
        self._ctx(ctx).save(self, np.ones((1,) * x.ndim, dtype=x.dtype))
        return x
