"""Dropout layers: standard (training-only) and Monte-Carlo dropout.

The paper implements Monte-Carlo dropout (MCD) as a *filter-wise* Bernoulli
mask applied to the output feature maps of a layer (Section II-A): for a
layer with :math:`F_i` filters, the mask :math:`M_i` has one Bernoulli draw
per filter.  Unlike conventional dropout, the MCD layer stays stochastic at
inference time — that is exactly what produces distinct Monte-Carlo samples.

Both layers use *inverted* dropout scaling (surviving activations are scaled
by ``1 / keep_prob``) so that the expected activation magnitude is preserved
and no rescaling is needed at evaluation time.  The generated HLS code in
:mod:`repro.hw.hls` instead follows the paper's Algorithm 1 verbatim.
"""

from __future__ import annotations

import numpy as np

from .base import Layer

__all__ = ["Dropout", "MCDropout"]


class _DropoutBase(Layer):
    """Shared mask-generation logic for dropout variants."""

    def __init__(
        self,
        rate: float = 0.5,
        filter_wise: bool = True,
        seed: int | None = None,
        name: str | None = None,
    ) -> None:
        super().__init__(name=name)
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = float(rate)
        self.filter_wise = bool(filter_wise)
        self._rng = np.random.default_rng(seed)

    def reseed(self, seed: int) -> None:
        """Reset the mask RNG, making subsequent masks reproducible."""
        self._rng = np.random.default_rng(seed)

    @property
    def keep_prob(self) -> float:
        return 1.0 - self.rate

    def _sample_mask(self, x: np.ndarray) -> np.ndarray:
        """Sample a Bernoulli keep-mask broadcastable to ``x``.

        Filter-wise masking (Section II-A) draws **one Bernoulli per
        filter**: on convolutional ``(N, C, H, W)`` activations the mask has
        shape ``(N, C, 1, 1)`` and drops whole feature maps.  On dense
        ``(N, F)`` activations every feature *is* a single-element filter,
        so the filter-wise mask is the full ``(N, F)`` shape and coincides
        with element-wise masking — there is deliberately no separate code
        path for it.  Either way the mask consumes ``rows(x)``-proportional
        RNG stream, which is what lets the sample-folded engine
        (:mod:`repro.inference.folding`) draw all S per-sample masks in one
        call without changing the stream.
        """
        if self.filter_wise and x.ndim == 4:
            shape: tuple[int, ...] = (x.shape[0], x.shape[1], 1, 1)
        else:
            shape = x.shape
        return (self._rng.random(shape) < self.keep_prob).astype(x.dtype)

    def _apply(self, x: np.ndarray) -> np.ndarray:
        if self.rate == 0.0:
            self._mask = np.ones((1,) * x.ndim, dtype=x.dtype)
            return x
        mask = self._sample_mask(x)
        self._mask = mask / self.keep_prob
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output * self._mask

    def describe(self) -> dict:
        info = super().describe()
        info.update(
            {
                "rate": self.rate,
                "filter_wise": self.filter_wise,
                "stochastic_at_inference": self.stochastic,
            }
        )
        return info


class Dropout(_DropoutBase):
    """Conventional dropout: active during training, identity at inference."""

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training:
            self._mask = np.ones((1,) * x.ndim, dtype=x.dtype)
            return x
        return self._apply(x)


class MCDropout(_DropoutBase):
    """Monte-Carlo dropout: stochastic during both training and inference.

    Running the same input through a network containing ``MCDropout`` layers
    multiple times yields distinct samples from the approximate posterior
    predictive distribution (Gal & Ghahramani, 2016).
    """

    stochastic = True

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return self._apply(x)

    def deterministic_forward(self, x: np.ndarray) -> np.ndarray:
        """Forward pass with dropout disabled (expected-value approximation).

        Used when a single deterministic prediction is required, e.g. when
        comparing against the non-Bayesian baseline.
        """
        self._mask = np.ones((1,) * x.ndim, dtype=x.dtype)
        return x
