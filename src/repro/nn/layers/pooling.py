"""Pooling layers: max, average, and global average pooling."""

from __future__ import annotations

import numpy as np

from ..context import ForwardContext
from ..tensor import col2im, conv_output_size, im2col
from .base import Layer

__all__ = ["MaxPool2D", "AvgPool2D", "GlobalAvgPool2D"]


class _Pool2D(Layer):
    """Shared machinery for spatial pooling over NCHW inputs."""

    def __init__(
        self, pool_size: int = 2, stride: int | None = None, name: str | None = None
    ) -> None:
        super().__init__(name=name)
        if pool_size <= 0:
            raise ValueError("pool_size must be positive")
        self.pool_size = int(pool_size)
        self.stride = int(stride) if stride is not None else int(pool_size)

    def compute_output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        if len(input_shape) != 3:
            raise ValueError(f"pooling expects (C, H, W) input, got {input_shape}")
        c, h, w = input_shape
        out_h = conv_output_size(h, self.pool_size, self.stride, 0)
        out_w = conv_output_size(w, self.pool_size, self.stride, 0)
        return (c, out_h, out_w)

    def _to_cols(self, x: np.ndarray) -> np.ndarray:
        n, c, _, _ = x.shape
        _, out_h, out_w = self.output_shape
        cols = im2col(x, self.pool_size, self.pool_size, self.stride, 0)
        return cols.reshape(n * out_h * out_w, c, self.pool_size * self.pool_size)

    def describe(self) -> dict:
        info = super().describe()
        info.update({"pool_size": self.pool_size, "stride": self.stride})
        return info


class MaxPool2D(_Pool2D):
    """Max pooling over non-overlapping (or strided) windows."""

    def forward(
        self,
        x: np.ndarray,
        training: bool = False,
        ctx: ForwardContext | None = None,
    ) -> np.ndarray:
        n, c, _, _ = x.shape
        _, out_h, out_w = self.output_shape
        cols = self._to_cols(x)
        argmax = cols.argmax(axis=2)
        out = cols.max(axis=2)
        self._ctx(ctx).save(self, (x.shape, argmax))
        return out.reshape(n, out_h, out_w, c).transpose(0, 3, 1, 2)

    def backward(
        self, grad_output: np.ndarray, ctx: ForwardContext | None = None
    ) -> np.ndarray:
        x_shape, argmax = self._ctx(ctx).saved(self)
        n, c, _, _ = x_shape
        _, out_h, out_w = self.output_shape
        window = self.pool_size * self.pool_size

        grad_cols = np.zeros((n * out_h * out_w, c, window), dtype=grad_output.dtype)
        flat_grad = grad_output.transpose(0, 2, 3, 1).reshape(n * out_h * out_w, c)
        rows = np.arange(grad_cols.shape[0])[:, None]
        channels = np.arange(c)[None, :]
        grad_cols[rows, channels, argmax] = flat_grad

        grad_cols = grad_cols.reshape(n * out_h * out_w, c * window)
        return col2im(
            grad_cols, x_shape, self.pool_size, self.pool_size, self.stride, 0
        )


class AvgPool2D(_Pool2D):
    """Average pooling over spatial windows."""

    def forward(
        self,
        x: np.ndarray,
        training: bool = False,
        ctx: ForwardContext | None = None,
    ) -> np.ndarray:
        n, c, _, _ = x.shape
        _, out_h, out_w = self.output_shape
        cols = self._to_cols(x)
        out = cols.mean(axis=2)
        self._ctx(ctx).save(self, x.shape)
        return out.reshape(n, out_h, out_w, c).transpose(0, 3, 1, 2)

    def backward(
        self, grad_output: np.ndarray, ctx: ForwardContext | None = None
    ) -> np.ndarray:
        x_shape = self._ctx(ctx).saved(self)
        n, c, _, _ = x_shape
        _, out_h, out_w = self.output_shape
        window = self.pool_size * self.pool_size

        flat_grad = grad_output.transpose(0, 2, 3, 1).reshape(n * out_h * out_w, c)
        grad_cols = np.repeat(flat_grad[:, :, None] / window, window, axis=2)
        grad_cols = grad_cols.reshape(n * out_h * out_w, c * window)
        return col2im(
            grad_cols, x_shape, self.pool_size, self.pool_size, self.stride, 0
        )


class GlobalAvgPool2D(Layer):
    """Global average pooling; collapses (C, H, W) to (C,)."""

    def compute_output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        if len(input_shape) != 3:
            raise ValueError(
                f"GlobalAvgPool2D expects (C, H, W) input, got {input_shape}"
            )
        return (input_shape[0],)

    def forward(
        self,
        x: np.ndarray,
        training: bool = False,
        ctx: ForwardContext | None = None,
    ) -> np.ndarray:
        self._ctx(ctx).save(self, x.shape)
        return x.mean(axis=(2, 3))

    def backward(
        self, grad_output: np.ndarray, ctx: ForwardContext | None = None
    ) -> np.ndarray:
        n, c, h, w = self._ctx(ctx).saved(self)
        grad = grad_output[:, :, None, None] / (h * w)
        return np.broadcast_to(grad, (n, c, h, w)).copy()
