"""Batch normalization for convolutional (NCHW) and dense (NF) inputs."""

from __future__ import annotations

import numpy as np

from ..context import ForwardContext
from .base import Layer

__all__ = ["BatchNorm"]


class BatchNorm(Layer):
    """Batch normalization with running statistics.

    Works on both ``(N, C, H, W)`` tensors (normalising per channel) and
    ``(N, F)`` tensors (normalising per feature).

    The running mean/variance live on the layer, not in the
    :class:`~repro.nn.context.ForwardContext`: they are learned model state
    (like parameters, shared by all contexts) and are only mutated by
    *training-mode* forward passes, which — like all gradient work — remain
    a single-context affair.  Inference-mode forwards only read them and
    are fully reentrant.
    """

    def __init__(
        self,
        momentum: float = 0.9,
        epsilon: float = 1e-5,
        name: str | None = None,
    ) -> None:
        super().__init__(name=name)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = float(momentum)
        self.epsilon = float(epsilon)

    def build(self, input_shape: tuple[int, ...], rng: np.random.Generator) -> None:
        super().build(input_shape, rng)
        channels = input_shape[0]
        self.gamma = self.add_parameter("gamma", np.ones(channels))
        self.beta = self.add_parameter("beta", np.zeros(channels))
        self.running_mean = np.zeros(channels)
        self.running_var = np.ones(channels)

    # ------------------------------------------------------------------ #
    def _reshape_stats(self, stat: np.ndarray, ndim: int) -> np.ndarray:
        if ndim == 4:
            return stat[None, :, None, None]
        return stat[None, :]

    def forward(
        self,
        x: np.ndarray,
        training: bool = False,
        ctx: ForwardContext | None = None,
    ) -> np.ndarray:
        axes = (0, 2, 3) if x.ndim == 4 else (0,)

        if training:
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            self.running_mean = (
                self.momentum * self.running_mean + (1 - self.momentum) * mean
            )
            self.running_var = (
                self.momentum * self.running_var + (1 - self.momentum) * var
            )
        else:
            mean = self.running_mean
            var = self.running_var

        mean_b = self._reshape_stats(mean, x.ndim)
        var_b = self._reshape_stats(var, x.ndim)
        inv_std = 1.0 / np.sqrt(var_b + self.epsilon)
        x_hat = (x - mean_b) * inv_std

        gamma_b = self._reshape_stats(self.gamma.value, x.ndim)
        beta_b = self._reshape_stats(self.beta.value, x.ndim)
        out = gamma_b * x_hat + beta_b

        self._ctx(ctx).save(self, (x_hat, inv_std, axes, x.ndim))
        return out

    def backward(
        self, grad_output: np.ndarray, ctx: ForwardContext | None = None
    ) -> np.ndarray:
        x_hat, inv_std, axes, ndim = self._ctx(ctx).saved(self)
        m = float(np.prod([grad_output.shape[a] for a in axes]))

        self.gamma.grad += (grad_output * x_hat).sum(axis=axes)
        self.beta.grad += grad_output.sum(axis=axes)

        gamma_b = self._reshape_stats(self.gamma.value, ndim)
        grad_xhat = grad_output * gamma_b

        sum_grad = grad_xhat.sum(axis=axes, keepdims=True)
        sum_grad_xhat = (grad_xhat * x_hat).sum(axis=axes, keepdims=True)
        return inv_std * (grad_xhat - sum_grad / m - x_hat * sum_grad_xhat / m)

    def describe(self) -> dict:
        info = super().describe()
        info.update({"momentum": self.momentum, "epsilon": self.epsilon})
        return info
