"""Shape-manipulation layers."""

from __future__ import annotations

import numpy as np

from ..context import ForwardContext
from .base import Layer

__all__ = ["Flatten"]


class Flatten(Layer):
    """Flatten all per-sample dimensions into a single feature axis."""

    def compute_output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return (int(np.prod(input_shape)),)

    def forward(
        self,
        x: np.ndarray,
        training: bool = False,
        ctx: ForwardContext | None = None,
    ) -> np.ndarray:
        self._ctx(ctx).save(self, x.shape)
        return x.reshape(x.shape[0], -1)

    def backward(
        self, grad_output: np.ndarray, ctx: ForwardContext | None = None
    ) -> np.ndarray:
        return grad_output.reshape(self._ctx(ctx).saved(self))
