"""2-D convolution layer implemented via im2col lowering."""

from __future__ import annotations

import numpy as np

from ..context import ForwardContext
from ..initializers import Initializer, Zeros, get_initializer
from ..tensor import col2im, conv_output_size, im2col
from .base import Layer

__all__ = ["Conv2D"]


class Conv2D(Layer):
    """2-D convolution over NCHW inputs.

    Parameters
    ----------
    filters:
        Number of output channels.
    kernel_size:
        Square kernel size.
    stride:
        Convolution stride (same along both spatial dimensions).
    padding:
        Symmetric zero padding, or ``"same"`` to preserve spatial size when
        ``stride == 1``.
    use_bias:
        Whether to add a per-channel bias.
    """

    def __init__(
        self,
        filters: int,
        kernel_size: int = 3,
        stride: int = 1,
        padding: int | str = "same",
        use_bias: bool = True,
        weight_initializer: str | Initializer = "he_normal",
        name: str | None = None,
    ) -> None:
        super().__init__(name=name)
        if filters <= 0:
            raise ValueError("filters must be positive")
        if kernel_size <= 0:
            raise ValueError("kernel_size must be positive")
        self.filters = int(filters)
        self.kernel_size = int(kernel_size)
        self.stride = int(stride)
        self.use_bias = use_bias
        self.weight_initializer = get_initializer(weight_initializer)
        self._bias_initializer = Zeros()
        if padding == "same":
            if kernel_size % 2 == 0:
                raise ValueError("'same' padding requires an odd kernel size")
            self.padding = (kernel_size - 1) // 2
        else:
            self.padding = int(padding)
            if self.padding < 0:
                raise ValueError("padding must be non-negative")

    # ------------------------------------------------------------------ #
    def compute_output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        if len(input_shape) != 3:
            raise ValueError(f"Conv2D expects (C, H, W) input, got {input_shape}")
        _, h, w = input_shape
        out_h = conv_output_size(h, self.kernel_size, self.stride, self.padding)
        out_w = conv_output_size(w, self.kernel_size, self.stride, self.padding)
        return (self.filters, out_h, out_w)

    def build(self, input_shape: tuple[int, ...], rng: np.random.Generator) -> None:
        super().build(input_shape, rng)
        in_channels = input_shape[0]
        w_shape = (self.filters, in_channels, self.kernel_size, self.kernel_size)
        self.weight = self.add_parameter(
            "weight", self.weight_initializer(w_shape, rng)
        )
        if self.use_bias:
            self.bias = self.add_parameter(
                "bias", self._bias_initializer((self.filters,), rng)
            )

    # ------------------------------------------------------------------ #
    def forward(
        self,
        x: np.ndarray,
        training: bool = False,
        ctx: ForwardContext | None = None,
    ) -> np.ndarray:
        n = x.shape[0]
        out_c, out_h, out_w = self.output_shape
        cols = im2col(x, self.kernel_size, self.kernel_size, self.stride, self.padding)
        w_mat = self.weight.value.reshape(self.filters, -1).T
        out = cols @ w_mat
        if self.use_bias:
            out += self.bias.value
        out = out.reshape(n, out_h, out_w, out_c).transpose(0, 3, 1, 2)

        self._ctx(ctx).save(self, (x.shape, cols))
        return out

    def backward(
        self, grad_output: np.ndarray, ctx: ForwardContext | None = None
    ) -> np.ndarray:
        x_shape, cols = self._ctx(ctx).saved(self)
        n = grad_output.shape[0]
        grad_mat = grad_output.transpose(0, 2, 3, 1).reshape(-1, self.filters)

        self.weight.grad += (cols.T @ grad_mat).T.reshape(self.weight.value.shape)
        if self.use_bias:
            self.bias.grad += grad_mat.sum(axis=0)

        grad_cols = grad_mat @ self.weight.value.reshape(self.filters, -1)
        grad_input = col2im(
            grad_cols,
            x_shape,
            self.kernel_size,
            self.kernel_size,
            self.stride,
            self.padding,
        )
        return grad_input

    # ------------------------------------------------------------------ #
    def describe(self) -> dict:
        info = super().describe()
        info.update(
            {
                "filters": self.filters,
                "kernel_size": self.kernel_size,
                "stride": self.stride,
                "padding": self.padding,
                "use_bias": self.use_bias,
            }
        )
        return info
