"""2-D convolution layer implemented via im2col lowering."""

from __future__ import annotations

import numpy as np

from ..context import ForwardContext
from ..initializers import Initializer, Zeros, get_initializer
from ..tensor import col2im, conv_output_size, im2col, im2col_patches
from .base import Layer

__all__ = ["Conv2D"]


class Conv2D(Layer):
    """2-D convolution over NCHW inputs.

    Parameters
    ----------
    filters:
        Number of output channels.
    kernel_size:
        Square kernel size.
    stride:
        Convolution stride (same along both spatial dimensions).
    padding:
        Symmetric zero padding, or ``"same"`` to preserve spatial size when
        ``stride == 1``.
    use_bias:
        Whether to add a per-channel bias.
    """

    def __init__(
        self,
        filters: int,
        kernel_size: int = 3,
        stride: int = 1,
        padding: int | str = "same",
        use_bias: bool = True,
        weight_initializer: str | Initializer = "he_normal",
        name: str | None = None,
    ) -> None:
        super().__init__(name=name)
        if filters <= 0:
            raise ValueError("filters must be positive")
        if kernel_size <= 0:
            raise ValueError("kernel_size must be positive")
        self.filters = int(filters)
        self.kernel_size = int(kernel_size)
        self.stride = int(stride)
        self.use_bias = use_bias
        self.weight_initializer = get_initializer(weight_initializer)
        self._bias_initializer = Zeros()
        if padding == "same":
            if kernel_size % 2 == 0:
                raise ValueError("'same' padding requires an odd kernel size")
            self.padding = (kernel_size - 1) // 2
        else:
            self.padding = int(padding)
            if self.padding < 0:
                raise ValueError("padding must be non-negative")

    # ------------------------------------------------------------------ #
    def compute_output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        if len(input_shape) != 3:
            raise ValueError(f"Conv2D expects (C, H, W) input, got {input_shape}")
        _, h, w = input_shape
        out_h = conv_output_size(h, self.kernel_size, self.stride, self.padding)
        out_w = conv_output_size(w, self.kernel_size, self.stride, self.padding)
        return (self.filters, out_h, out_w)

    def build(self, input_shape: tuple[int, ...], rng: np.random.Generator) -> None:
        super().build(input_shape, rng)
        in_channels = input_shape[0]
        w_shape = (self.filters, in_channels, self.kernel_size, self.kernel_size)
        self.weight = self.add_parameter(
            "weight", self.weight_initializer(w_shape, rng)
        )
        if self.use_bias:
            self.bias = self.add_parameter(
                "bias", self._bias_initializer((self.filters,), rng)
            )

    # ------------------------------------------------------------------ #
    def forward(
        self,
        x: np.ndarray,
        training: bool = False,
        ctx: ForwardContext | None = None,
    ) -> np.ndarray:
        n = x.shape[0]
        out_c, out_h, out_w = self.output_shape
        cols = im2col(x, self.kernel_size, self.kernel_size, self.stride, self.padding)
        w_mat = self.weight.value.reshape(self.filters, -1).T
        out = cols @ w_mat
        if self.use_bias:
            out += self.bias.value
        out = out.reshape(n, out_h, out_w, out_c).transpose(0, 3, 1, 2)

        self._ctx(ctx).save(self, (x.shape, cols))
        return out

    def forward_folded(self, x: np.ndarray, num_samples: int) -> np.ndarray:
        """Inference-only forward on a sample-folded ``(S·N, C, H, W)`` batch.

        Bit-identical to running :meth:`forward` once per ``(N, …)`` sample
        slice and concatenating, by the same argument that makes the Dense
        flat-fold exact: ``im2col`` is a pure gather (no arithmetic), and
        the fold is sample-major, so the folded column matrix is exactly
        the per-slice column matrices stacked along the row axis.  Reshaping
        it to ``(S, N·oh·ow, C·kh·kw)`` and using the stacked ``np.matmul``
        then dispatches one GEMM per sample *with the legacy shapes and
        memory order* — BLAS never sees a different M or a different
        packing path, so kernel selection cannot change a bit.  The bias
        add and the NHWC→NCHW untangling are row-wise and fold-stable.

        The one wrinkle is ``N == 1``: there ``im2col``'s trailing reshape
        merges without copying and hands BLAS an F-ordered *view*, which
        takes the transposed-A GEMM path — feeding it the C-ordered fold
        would change the result's bits.  Single-example slices therefore
        run the 6-D patch gather once over the whole fold and carve a
        per-sample column matrix out of it as a view with exactly the
        legacy strides ``(itemsize, oh·ow·itemsize)``, so each GEMM sees
        the legacy operand layout while the gather stays amortised.

        No backward cache is saved: the folded path exists for the
        inference hot path only (see :mod:`repro.inference.folding`).
        """
        sn = x.shape[0]
        if sn % num_samples:
            raise ValueError(
                f"folded batch of {sn} rows is not divisible by "
                f"num_samples={num_samples}"
            )
        n = sn // num_samples
        out_c, out_h, out_w = self.output_shape
        w_mat = self.weight.value.reshape(self.filters, -1).T
        if n == 1:
            patches = im2col_patches(
                x, self.kernel_size, self.kernel_size, self.stride, self.padding
            )
            out = np.concatenate(
                [
                    patches[s].transpose(3, 4, 0, 1, 2).reshape(out_h * out_w, -1)
                    @ w_mat
                    for s in range(num_samples)
                ],
                axis=0,
            )
        else:
            cols = im2col(
                x, self.kernel_size, self.kernel_size, self.stride, self.padding
            )
            stacked = cols.reshape(num_samples, n * out_h * out_w, -1)
            out = np.matmul(stacked, w_mat).reshape(sn * out_h * out_w, -1)
        if self.use_bias:
            out += self.bias.value
        return out.reshape(sn, out_h, out_w, out_c).transpose(0, 3, 1, 2)

    def backward(
        self, grad_output: np.ndarray, ctx: ForwardContext | None = None
    ) -> np.ndarray:
        x_shape, cols = self._ctx(ctx).saved(self)
        n = grad_output.shape[0]
        grad_mat = grad_output.transpose(0, 2, 3, 1).reshape(-1, self.filters)

        self.weight.grad += (cols.T @ grad_mat).T.reshape(self.weight.value.shape)
        if self.use_bias:
            self.bias.grad += grad_mat.sum(axis=0)

        grad_cols = grad_mat @ self.weight.value.reshape(self.filters, -1)
        grad_input = col2im(
            grad_cols,
            x_shape,
            self.kernel_size,
            self.kernel_size,
            self.stride,
            self.padding,
        )
        return grad_input

    # ------------------------------------------------------------------ #
    def describe(self) -> dict:
        info = super().describe()
        info.update(
            {
                "filters": self.filters,
                "kernel_size": self.kernel_size,
                "stride": self.stride,
                "padding": self.padding,
                "use_bias": self.use_bias,
            }
        )
        return info
