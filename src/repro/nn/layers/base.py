"""Base class shared by every layer in the NumPy substrate.

A :class:`Layer` carries *persistent* state only — parameters, shapes,
configuration.  All *per-call* state (backward caches, dropout masks, RNG
streams) lives in an explicit :class:`~repro.nn.context.ForwardContext`
threaded through ``forward`` / ``backward``, which is what makes the layers
reentrant: the same layer object can be mid-forward in several threads at
once as long as each caller uses its own context.  When ``ctx`` is omitted,
a process-wide default context is used, so single-threaded code reads
exactly as before.

Shapes exclude the batch dimension: ``input_shape`` and ``output_shape`` are
per-sample shapes such as ``(C, H, W)`` or ``(features,)``.  Layers must be
``build()``-able from their input shape so that architectures can be described
symbolically (channel counts, kernel sizes) and instantiated lazily; this is
what lets the hardware back-end reason about the same architecture without
allocating weights.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..context import ForwardContext, resolve_context

__all__ = ["Layer", "Parameter"]


class Parameter:
    """A trainable tensor together with its gradient accumulator.

    Every value mutation must be recorded in :attr:`version` so that
    activation caches keyed on :attr:`repro.nn.model.Network.weights_version`
    (which sums the versions of all parameters) can detect stale entries.
    Use :meth:`assign` to write new values — it bumps the version for you.
    Code that writes ``param.value[...]`` directly must call
    :meth:`bump_version` afterwards; a raw in-place write is invisible to
    NumPy and therefore to every cache.

    A parameter's storage can be moved into a shared-memory segment
    (:meth:`share_memory_`, orchestrated by
    :class:`repro.nn.shm.SharedParameterArena`) so worker processes serve
    over the very same bytes the owner mutates.  While shared, pickling is
    *light*: the value serializes as a ``(segment, offset, shape)``
    descriptor and unpickling re-attaches to the live segment — the two
    ends then **alias** one storage, which is exactly what the process-pool
    serving tier wants.  Call :meth:`unshare_` (or
    ``SharedParameterArena.release``) to return to private storage before
    pickling for durable snapshots.
    """

    def __init__(self, value: np.ndarray, name: str = "param") -> None:
        self.name = name
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)
        #: mutation counter; monotonically increasing, never reset.
        self.version = 0
        #: ``(segment_name, byte_offset, shape)`` while shared, else None
        self._shm_spec: tuple[str, int, tuple[int, ...]] | None = None

    @property
    def is_shared(self) -> bool:
        """Whether :attr:`value` currently lives in a shared-memory segment."""
        return self._shm_spec is not None

    def share_memory_(
        self, view: np.ndarray, spec: tuple[str, int, tuple[int, ...]]
    ) -> None:
        """Rebind :attr:`value` to a shared-memory view (same contents).

        ``view`` must be a float64 ndarray over the segment described by
        ``spec``.  The current values are copied in, so observable state is
        unchanged — but the *storage* moves: later in-place writes through
        ``self.value`` land in shared memory.  Gradients stay private.
        """
        if view.shape != self.value.shape:
            raise ValueError(
                f"shared view shape {view.shape} != parameter shape "
                f"{self.value.shape}"
            )
        view[...] = self.value
        self.value = view
        self._shm_spec = spec

    def unshare_(self) -> None:
        """Copy the value back into private memory (no-op when not shared)."""
        if self._shm_spec is None:
            return
        self.value = np.array(self.value, dtype=np.float64, copy=True)
        self._shm_spec = None

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        # gradients are transient scratch state — never ship them
        state["grad"] = None
        if self._shm_spec is not None:
            # pickle-light: descriptor instead of data; __setstate__
            # re-attaches to the live segment
            state["value"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        if self.value is None:
            from ..shm import attach_view  # deferred: avoids an import cycle

            self.value = attach_view(self._shm_spec)
        self.grad = np.zeros_like(self.value)

    @property
    def shape(self) -> tuple[int, ...]:
        return self.value.shape

    @property
    def size(self) -> int:
        return int(self.value.size)

    def assign(self, value: np.ndarray) -> None:
        """Write new values in place and record the mutation.

        The assignment follows NumPy broadcasting rules against the existing
        shape (so a scalar or a full array both work) and keeps the storage
        and dtype of :attr:`value` — references held by optimizers and caches
        stay valid.
        """
        self.value[...] = value
        self.bump_version()

    def bump_version(self) -> None:
        """Record an in-place mutation of :attr:`value` done without :meth:`assign`."""
        self.version += 1

    def zero_grad(self) -> None:
        self.grad[...] = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Parameter(name={self.name!r}, shape={self.shape})"


class Layer:
    """Common interface for all layers.

    Subclasses implement :meth:`build`, :meth:`forward` and :meth:`backward`.
    ``forward`` must stash whatever it needs for ``backward`` in the
    :class:`~repro.nn.context.ForwardContext` (``ctx.save(self, ...)``),
    never on ``self`` — per-call state on the layer would break reentrancy.
    ``backward`` reads it back with ``ctx.saved(self)``; the two must be
    called with the same context (both default to the process-wide one).
    """

    #: whether the layer behaves stochastically at inference time
    #: (only Monte-Carlo dropout layers set this to True).
    stochastic: bool = False

    def __init__(self, name: str | None = None) -> None:
        self.name = name or self.__class__.__name__.lower()
        self.built = False
        self.input_shape: tuple[int, ...] | None = None
        self.output_shape: tuple[int, ...] | None = None
        self._params: dict[str, Parameter] = {}

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def build(self, input_shape: tuple[int, ...], rng: np.random.Generator) -> None:
        """Allocate parameters for the given per-sample input shape."""
        self.input_shape = tuple(input_shape)
        self.output_shape = self.compute_output_shape(self.input_shape)
        self.built = True

    def compute_output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        """Return the per-sample output shape without allocating parameters."""
        return tuple(input_shape)

    def add_parameter(self, name: str, value: np.ndarray) -> Parameter:
        param = Parameter(value, name=f"{self.name}.{name}")
        self._params[name] = param
        return param

    # ------------------------------------------------------------------ #
    # computation
    # ------------------------------------------------------------------ #
    @staticmethod
    def _ctx(ctx: ForwardContext | None) -> ForwardContext:
        """Resolve an optional context to a concrete one (default if None)."""
        return resolve_context(ctx)

    def forward(
        self,
        x: np.ndarray,
        training: bool = False,
        ctx: ForwardContext | None = None,
    ) -> np.ndarray:
        raise NotImplementedError

    def backward(
        self, grad_output: np.ndarray, ctx: ForwardContext | None = None
    ) -> np.ndarray:
        raise NotImplementedError

    def __call__(
        self,
        x: np.ndarray,
        training: bool = False,
        ctx: ForwardContext | None = None,
    ) -> np.ndarray:
        if not self.built:
            raise RuntimeError(
                f"layer {self.name!r} must be built before it is called"
            )
        return self.forward(x, training=training, ctx=ctx)

    # ------------------------------------------------------------------ #
    # parameter access
    # ------------------------------------------------------------------ #
    def parameters(self) -> Iterator[Parameter]:
        """Iterate over the layer's trainable parameters."""
        yield from self._params.values()

    def get_parameter(self, name: str) -> Parameter:
        return self._params[name]

    @property
    def num_parameters(self) -> int:
        return sum(p.size for p in self._params.values())

    def zero_grad(self) -> None:
        for p in self._params.values():
            p.zero_grad()

    # ------------------------------------------------------------------ #
    # description (used by FLOP counting and the hardware back-end)
    # ------------------------------------------------------------------ #
    def describe(self) -> dict:
        """Return a JSON-serialisable description of the layer."""
        return {
            "type": self.__class__.__name__,
            "name": self.name,
            "input_shape": list(self.input_shape) if self.input_shape else None,
            "output_shape": list(self.output_shape) if self.output_shape else None,
            "parameters": self.num_parameters,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"{self.__class__.__name__}(name={self.name!r}, "
            f"in={self.input_shape}, out={self.output_shape})"
        )
