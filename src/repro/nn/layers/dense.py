"""Fully-connected (dense) layer."""

from __future__ import annotations

import numpy as np

from ..context import ForwardContext
from ..initializers import Initializer, Zeros, get_initializer
from .base import Layer

__all__ = ["Dense"]


class Dense(Layer):
    """Affine transform ``y = x W + b`` over 2-D ``(N, features)`` inputs."""

    def __init__(
        self,
        units: int,
        use_bias: bool = True,
        weight_initializer: str | Initializer = "he_normal",
        name: str | None = None,
    ) -> None:
        super().__init__(name=name)
        if units <= 0:
            raise ValueError("units must be positive")
        self.units = int(units)
        self.use_bias = use_bias
        self.weight_initializer = get_initializer(weight_initializer)
        self._bias_initializer = Zeros()

    def compute_output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        if len(input_shape) != 1:
            raise ValueError(
                f"Dense expects a flat (features,) input, got {input_shape}; "
                "insert a Flatten layer first"
            )
        return (self.units,)

    def build(self, input_shape: tuple[int, ...], rng: np.random.Generator) -> None:
        super().build(input_shape, rng)
        in_features = input_shape[0]
        self.weight = self.add_parameter(
            "weight", self.weight_initializer((in_features, self.units), rng)
        )
        if self.use_bias:
            self.bias = self.add_parameter(
                "bias", self._bias_initializer((self.units,), rng)
            )

    def forward(
        self,
        x: np.ndarray,
        training: bool = False,
        ctx: ForwardContext | None = None,
    ) -> np.ndarray:
        self._ctx(ctx).save(self, x)
        out = x @ self.weight.value
        if self.use_bias:
            out = out + self.bias.value
        return out

    def backward(
        self, grad_output: np.ndarray, ctx: ForwardContext | None = None
    ) -> np.ndarray:
        x = self._ctx(ctx).saved(self)
        self.weight.grad += x.T @ grad_output
        if self.use_bias:
            self.bias.grad += grad_output.sum(axis=0)
        return grad_output @ self.weight.value.T

    def describe(self) -> dict:
        info = super().describe()
        info.update({"units": self.units, "use_bias": self.use_bias})
        return info
