"""Fully-connected (dense) layer."""

from __future__ import annotations

import numpy as np

from ..context import ForwardContext
from ..initializers import Initializer, Zeros, get_initializer
from .base import Layer

__all__ = ["Dense"]


class Dense(Layer):
    """Affine transform ``y = x W + b`` over 2-D ``(N, features)`` inputs."""

    def __init__(
        self,
        units: int,
        use_bias: bool = True,
        weight_initializer: str | Initializer = "he_normal",
        name: str | None = None,
    ) -> None:
        super().__init__(name=name)
        if units <= 0:
            raise ValueError("units must be positive")
        self.units = int(units)
        self.use_bias = use_bias
        self.weight_initializer = get_initializer(weight_initializer)
        self._bias_initializer = Zeros()

    def compute_output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        if len(input_shape) != 1:
            raise ValueError(
                f"Dense expects a flat (features,) input, got {input_shape}; "
                "insert a Flatten layer first"
            )
        return (self.units,)

    def build(self, input_shape: tuple[int, ...], rng: np.random.Generator) -> None:
        super().build(input_shape, rng)
        in_features = input_shape[0]
        self.weight = self.add_parameter(
            "weight", self.weight_initializer((in_features, self.units), rng)
        )
        if self.use_bias:
            self.bias = self.add_parameter(
                "bias", self._bias_initializer((self.units,), rng)
            )

    def forward(
        self,
        x: np.ndarray,
        training: bool = False,
        ctx: ForwardContext | None = None,
    ) -> np.ndarray:
        self._ctx(ctx).save(self, x)
        out = x @ self.weight.value
        if self.use_bias:
            out = out + self.bias.value
        return out

    def forward_folded(
        self,
        x: np.ndarray,
        num_samples: int,
        scaled_mask: np.ndarray | None = None,
    ) -> np.ndarray:
        """Evaluate on a sample-folded ``(S·N, F)`` batch as stacked GEMMs.

        BLAS kernels are not bit-stable across different M, so the fold is
        dispatched as ``S`` GEMMs with the legacy ``(N, F)`` operand shape —
        via one stacked ``(S, N, F) @ (F, U)`` matmul when no mask is fused.

        With ``scaled_mask`` (the preceding MC-dropout layer's scaled
        keep-mask, same shape as ``x``), the mask is folded into the GEMM
        operand block by block: each sample block is masked into one
        reusable ``(N, F)`` scratch and multiplied immediately, so the full
        ``(S·N, F)`` masked intermediate is never materialised.  The
        per-block elementwise product and the per-block GEMM see exactly the
        values and operand layout of the unfused path, keeping the fused
        kernel bit-identical to ``dropout.forward`` + ``forward_folded``.
        """
        if x.shape[0] % num_samples:
            raise ValueError(
                f"folded batch of {x.shape[0]} rows is not divisible by "
                f"num_samples={num_samples}"
            )
        n = x.shape[0] // num_samples
        w = self.weight.value
        if scaled_mask is None:
            stacked = x.reshape(num_samples, n, x.shape[1])
            out = np.matmul(stacked, w)
        else:
            out = np.empty((num_samples, n, self.units), dtype=np.result_type(x, w))
            buf = np.empty((n, x.shape[1]), dtype=out.dtype)
            for s in range(num_samples):
                block = slice(s * n, (s + 1) * n)
                np.multiply(x[block], scaled_mask[block], out=buf)
                np.matmul(buf, w, out=out[s])
        if self.use_bias:
            out = out + self.bias.value
        return out.reshape(num_samples * n, self.units)

    def backward(
        self, grad_output: np.ndarray, ctx: ForwardContext | None = None
    ) -> np.ndarray:
        x = self._ctx(ctx).saved(self)
        self.weight.grad += x.T @ grad_output
        if self.use_bias:
            self.bias.grad += grad_output.sum(axis=0)
        return grad_output @ self.weight.value.T

    def describe(self) -> dict:
        info = super().describe()
        info.update({"units": self.units, "use_bias": self.use_bias})
        return info
