"""Residual block used by the ResNet-18 backbone.

The block is implemented as a composite layer so that the surrounding
:class:`repro.nn.model.Network` can stay a simple sequential container —
which in turn keeps exit placement (one exit per semantic block) and the
hardware lowering straightforward.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..context import ForwardContext
from .activations import ReLU
from .base import Layer, Parameter
from .batchnorm import BatchNorm
from .conv import Conv2D

__all__ = ["ResidualBlock"]


class ResidualBlock(Layer):
    """Basic (two-convolution) residual block.

    ``out = ReLU( BN(Conv(ReLU(BN(Conv(x))))) + shortcut(x) )``

    When ``stride != 1`` or the channel count changes, the shortcut is a
    1x1 strided convolution followed by batch normalization (the standard
    ResNet "option B" projection shortcut).
    """

    def __init__(
        self,
        filters: int,
        stride: int = 1,
        use_batchnorm: bool = True,
        name: str | None = None,
    ) -> None:
        super().__init__(name=name)
        if filters <= 0:
            raise ValueError("filters must be positive")
        self.filters = int(filters)
        self.stride = int(stride)
        self.use_batchnorm = bool(use_batchnorm)

        prefix = self.name
        self.conv1 = Conv2D(
            filters,
            3,
            stride=stride,
            padding=1,
            use_bias=not use_batchnorm,
            name=f"{prefix}_conv1",
        )
        self.conv2 = Conv2D(
            filters,
            3,
            stride=1,
            padding=1,
            use_bias=not use_batchnorm,
            name=f"{prefix}_conv2",
        )
        self.bn1 = BatchNorm(name=f"{prefix}_bn1") if use_batchnorm else None
        self.bn2 = BatchNorm(name=f"{prefix}_bn2") if use_batchnorm else None
        self.relu1 = ReLU(name=f"{prefix}_relu1")
        self.relu2 = ReLU(name=f"{prefix}_relu2")

        # populated at build time if a projection shortcut is required
        self.shortcut_conv: Conv2D | None = None
        self.shortcut_bn: BatchNorm | None = None

    # ------------------------------------------------------------------ #
    def compute_output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return self.conv1.compute_output_shape(input_shape)

    def build(self, input_shape: tuple[int, ...], rng: np.random.Generator) -> None:
        Layer.build(self, input_shape, rng)
        in_channels = input_shape[0]

        self.conv1.build(input_shape, rng)
        mid_shape = self.conv1.output_shape
        if self.bn1 is not None:
            self.bn1.build(mid_shape, rng)
        self.relu1.build(mid_shape, rng)
        self.conv2.build(mid_shape, rng)
        if self.bn2 is not None:
            self.bn2.build(self.conv2.output_shape, rng)

        needs_projection = self.stride != 1 or in_channels != self.filters
        if needs_projection:
            self.shortcut_conv = Conv2D(
                self.filters,
                1,
                stride=self.stride,
                padding=0,
                use_bias=not self.use_batchnorm,
                name=f"{self.name}_proj",
            )
            self.shortcut_conv.build(input_shape, rng)
            if self.use_batchnorm:
                self.shortcut_bn = BatchNorm(name=f"{self.name}_proj_bn")
                self.shortcut_bn.build(self.shortcut_conv.output_shape, rng)
        self.relu2.build(self.output_shape, rng)

    # ------------------------------------------------------------------ #
    def sublayers(self) -> list[Layer]:
        """All constituent layers, in execution order (shortcut last)."""
        layers: list[Layer] = [self.conv1]
        if self.bn1 is not None:
            layers.append(self.bn1)
        layers.append(self.relu1)
        layers.append(self.conv2)
        if self.bn2 is not None:
            layers.append(self.bn2)
        if self.shortcut_conv is not None:
            layers.append(self.shortcut_conv)
        if self.shortcut_bn is not None:
            layers.append(self.shortcut_bn)
        layers.append(self.relu2)
        return layers

    def parameters(self) -> Iterator[Parameter]:
        for layer in self.sublayers():
            yield from layer.parameters()

    @property
    def num_parameters(self) -> int:
        return sum(layer.num_parameters for layer in self.sublayers())

    def zero_grad(self) -> None:
        for layer in self.sublayers():
            layer.zero_grad()

    # ------------------------------------------------------------------ #
    def forward(
        self,
        x: np.ndarray,
        training: bool = False,
        ctx: ForwardContext | None = None,
    ) -> np.ndarray:
        ctx = self._ctx(ctx)
        out = self.conv1.forward(x, training, ctx=ctx)
        if self.bn1 is not None:
            out = self.bn1.forward(out, training, ctx=ctx)
        out = self.relu1.forward(out, training, ctx=ctx)
        out = self.conv2.forward(out, training, ctx=ctx)
        if self.bn2 is not None:
            out = self.bn2.forward(out, training, ctx=ctx)

        if self.shortcut_conv is not None:
            shortcut = self.shortcut_conv.forward(x, training, ctx=ctx)
            if self.shortcut_bn is not None:
                shortcut = self.shortcut_bn.forward(shortcut, training, ctx=ctx)
        else:
            shortcut = x

        return self.relu2.forward(out + shortcut, training, ctx=ctx)

    def forward_folded(
        self,
        x: np.ndarray,
        num_samples: int,
        ctx: ForwardContext | None = None,
    ) -> np.ndarray:
        """Inference-only forward on a sample-folded ``(S·N, C, H, W)`` batch.

        Bit-identical to running :meth:`forward` once per sample slice: the
        convolutions take :meth:`Conv2D.forward_folded` (stacked per-sample
        GEMMs with the legacy shapes), inference-mode batch norm and ReLU
        are row-wise and therefore fold-stable, and the residual sum is an
        element-wise add.  The block contains no stochastic layers, so no
        RNG stream is consumed; ``ctx`` only receives the row-wise layers'
        (unused) forward caches.
        """
        ctx = self._ctx(ctx)
        out = self.conv1.forward_folded(x, num_samples)
        if self.bn1 is not None:
            out = self.bn1.forward(out, training=False, ctx=ctx)
        out = self.relu1.forward(out, training=False, ctx=ctx)
        out = self.conv2.forward_folded(out, num_samples)
        if self.bn2 is not None:
            out = self.bn2.forward(out, training=False, ctx=ctx)

        if self.shortcut_conv is not None:
            shortcut = self.shortcut_conv.forward_folded(x, num_samples)
            if self.shortcut_bn is not None:
                shortcut = self.shortcut_bn.forward(shortcut, training=False, ctx=ctx)
        else:
            shortcut = x

        return self.relu2.forward(out + shortcut, training=False, ctx=ctx)

    def backward(
        self, grad_output: np.ndarray, ctx: ForwardContext | None = None
    ) -> np.ndarray:
        ctx = self._ctx(ctx)
        grad_sum = self.relu2.backward(grad_output, ctx=ctx)

        # main branch
        grad = grad_sum
        if self.bn2 is not None:
            grad = self.bn2.backward(grad, ctx=ctx)
        grad = self.conv2.backward(grad, ctx=ctx)
        grad = self.relu1.backward(grad, ctx=ctx)
        if self.bn1 is not None:
            grad = self.bn1.backward(grad, ctx=ctx)
        grad_main = self.conv1.backward(grad, ctx=ctx)

        # shortcut branch
        if self.shortcut_conv is not None:
            grad_short = grad_sum
            if self.shortcut_bn is not None:
                grad_short = self.shortcut_bn.backward(grad_short, ctx=ctx)
            grad_short = self.shortcut_conv.backward(grad_short, ctx=ctx)
        else:
            grad_short = grad_sum

        return grad_main + grad_short

    # ------------------------------------------------------------------ #
    def describe(self) -> dict:
        info = super().describe()
        info.update(
            {
                "filters": self.filters,
                "stride": self.stride,
                "use_batchnorm": self.use_batchnorm,
                "projection_shortcut": self.shortcut_conv is not None,
                "sublayers": [layer.describe() for layer in self.sublayers()],
            }
        )
        return info
