"""Weight initializers for the NumPy neural-network substrate.

Each initializer is a small callable object so that layers can be
constructed reproducibly from a seeded :class:`numpy.random.Generator`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "Initializer",
    "HeNormal",
    "XavierUniform",
    "Zeros",
    "Ones",
    "Constant",
    "get_initializer",
]


class Initializer:
    """Base class for weight initializers."""

    def __call__(self, shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        raise NotImplementedError

    @staticmethod
    def _fan_in_out(shape: tuple[int, ...]) -> tuple[int, int]:
        """Compute fan-in / fan-out for dense and convolutional shapes."""
        if len(shape) == 2:  # (in, out) dense weight
            return shape[0], shape[1]
        if len(shape) == 4:  # (out_c, in_c, kh, kw) conv weight
            receptive = shape[2] * shape[3]
            return shape[1] * receptive, shape[0] * receptive
        size = int(np.prod(shape))
        return size, size


@dataclass
class HeNormal(Initializer):
    """He-normal initialization, appropriate for ReLU networks."""

    gain: float = 1.0

    def __call__(self, shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        fan_in, _ = self._fan_in_out(shape)
        std = self.gain * np.sqrt(2.0 / max(fan_in, 1))
        return rng.normal(0.0, std, size=shape)


@dataclass
class XavierUniform(Initializer):
    """Xavier / Glorot uniform initialization."""

    gain: float = 1.0

    def __call__(self, shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        fan_in, fan_out = self._fan_in_out(shape)
        limit = self.gain * np.sqrt(6.0 / max(fan_in + fan_out, 1))
        return rng.uniform(-limit, limit, size=shape)


class Zeros(Initializer):
    """All-zeros initialization (biases, batch-norm shift)."""

    def __call__(self, shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        return np.zeros(shape, dtype=np.float64)


class Ones(Initializer):
    """All-ones initialization (batch-norm scale)."""

    def __call__(self, shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        return np.ones(shape, dtype=np.float64)


@dataclass
class Constant(Initializer):
    """Constant-value initialization."""

    value: float = 0.0

    def __call__(self, shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        return np.full(shape, self.value, dtype=np.float64)


_REGISTRY = {
    "he_normal": HeNormal,
    "xavier_uniform": XavierUniform,
    "zeros": Zeros,
    "ones": Ones,
}


def get_initializer(name: str | Initializer) -> Initializer:
    """Resolve an initializer by name or pass through an instance."""
    if isinstance(name, Initializer):
        return name
    try:
        return _REGISTRY[name]()
    except KeyError as exc:
        raise ValueError(
            f"unknown initializer {name!r}; available: {sorted(_REGISTRY)}"
        ) from exc
