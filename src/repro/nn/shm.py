"""Shared-memory parameter storage for multi-process serving.

A :class:`SharedParameterArena` places the values of a set of
:class:`~repro.nn.layers.base.Parameter` objects into **one**
:mod:`multiprocessing.shared_memory` segment so that worker *processes* can
run inference over the exact same storage the parent trains and serves —
zero-copy, no per-request weight shipping.

Segment layout (all offsets in bytes, 8-byte aligned)::

    ┌──────────────────────────┬──────────────┬──────────────┬───────┐
    │ versions: (n,) int64     │ param 0 data │ param 1 data │  ...  │
    │ one slot per parameter   │   float64    │   float64    │       │
    └──────────────────────────┴──────────────┴──────────────┴───────┘

* **Parameter data** — ``Parameter.value`` is *rebound* to an ndarray view
  of the segment (:meth:`Parameter.share_memory_`), so every subsequent
  in-place mutation — optimizer steps, :meth:`Parameter.assign`,
  quantization — writes straight into memory every attached process maps.
  Gradients stay process-private: workers never train.
* **Version slots** — a copy of each :attr:`Parameter.version` mutation
  counter, written by :meth:`publish` in the owning process and read back
  by :meth:`refresh` in workers.  The serving tier sends the current
  :attr:`~repro.nn.model.Network.weights_version` token with every batch;
  a worker that sees a token it has not seen before refreshes its local
  ``Parameter.version`` counters from the slots and drops its activation
  caches — the same staleness rule (and the same tokens) that keep the
  in-process caches honest.

The arena is created (and eventually unlinked) by exactly one *owner*
process; children attach via pickling — a shared :class:`Parameter`
serializes as a ``(segment, offset, shape)`` descriptor instead of its
data, so sending a whole model to a spawned worker costs kilobytes, not
megabytes (see :meth:`Parameter.__getstate__`).  Attached processes must
call :func:`attach_view` (done by ``Parameter.__setstate__``); the segment
handle is cached per process so one worker opens each segment exactly
once.  Workers must be spawned ``multiprocessing`` children of the owner —
they then share the owner's resource-tracker process, which keeps
"attach" registrations idempotent and leaves unlinking to the owner (see
``_open_attached`` for the tracker subtleties; CPython gh-82300 describes
what goes wrong with *independent* attachers).
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import TYPE_CHECKING, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .layers.base import Parameter

__all__ = [
    "SharedParameterArena",
    "ArenaManifest",
    "attach_view",
    "destroy_segment",
    "open_attached_segment",
]

_VERSION_DTYPE = np.int64
_VALUE_DTYPE = np.float64

#: per-process cache of attached (non-owned) segments, keyed by name.  One
#: worker attaches dozens of parameter views into the same segment; the
#: handle must outlive all of them and must be opened exactly once.
_ATTACHED_SEGMENTS: dict[str, shared_memory.SharedMemory] = {}


def _open_attached(name: str) -> shared_memory.SharedMemory:
    seg = _ATTACHED_SEGMENTS.get(name)
    if seg is None:
        # NOTE on the resource tracker: attaching registers the name with
        # the tracker on CPython <= 3.12, but our workers are spawned
        # multiprocessing children and therefore *share* the owner's
        # tracker process (its fd rides along in the spawn preparation
        # data), where registration is an idempotent set-add.  Do NOT
        # "helpfully" unregister here — the shared cache holds one entry
        # per name, so unregistering from a worker would erase the owner's
        # registration and later make the owner's unlink double-unregister.
        seg = shared_memory.SharedMemory(name=name)
        _ATTACHED_SEGMENTS[name] = seg
    return seg


def open_attached_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment through the per-process handle cache.

    Public entry point for other shared-memory consumers (the serving
    tier's ring-buffer transport attaches its per-worker segments through
    the same cache, inheriting the resource-tracker discipline documented
    on ``_open_attached``).
    """
    return _open_attached(name)


def attach_view(spec: tuple[str, int, tuple[int, ...]]) -> np.ndarray:
    """Return the float64 ndarray view described by a shared-value spec.

    ``spec`` is the ``(segment_name, byte_offset, shape)`` descriptor a
    shared :class:`Parameter` pickles in place of its data.  Raises
    ``FileNotFoundError`` when the segment no longer exists (the owner
    released the arena).
    """
    name, offset, shape = spec
    seg = _open_attached(name)
    return np.ndarray(tuple(shape), dtype=_VALUE_DTYPE, buffer=seg.buf, offset=offset)


@dataclass(frozen=True)
class ArenaManifest:
    """Picklable description of an arena, sent to workers once at startup."""

    segment_name: str
    num_parameters: int
    size_bytes: int
    #: rollout generation of this arena (see ``SharedParameterArena``):
    #: each published generation is a *new* segment, so a weight-or-shape
    #: swap never mutates storage a live worker is still computing over
    generation: int = 0


class SharedParameterArena:
    """Owns one shared-memory segment holding many parameters' storage.

    Create with :meth:`create` in the owner process (rebinds every
    ``Parameter.value`` into the segment), hand the :attr:`manifest` plus
    the (now pickle-light) parameters to workers, and call :meth:`release`
    when serving stops — it copies values back into process-private arrays
    and unlinks the segment.  Workers wrap the same parameters with
    :meth:`attached` to get :meth:`refresh`.
    """

    def __init__(
        self,
        segment: shared_memory.SharedMemory,
        params: Sequence["Parameter"],
        owner: bool,
        generation: int = 0,
    ) -> None:
        self._segment = segment
        self._params = list(params)
        self._owner = owner
        self._released = False
        #: which rollout generation this arena carries.  Generations are
        #: how the serving fleet does zero-downtime model swaps: a weight
        #: *or shape* update builds a whole new arena at ``generation + 1``
        #: (fresh segment, fresh offsets — shapes may differ), workers are
        #: drained and re-attached to it one at a time, and the old
        #: generation's segment is released only once no worker reads it.
        #: Mutating a live segment in place could tear a reader mid-GEMM;
        #: a new segment per generation makes the swap atomic per worker.
        self.generation = int(generation)
        self._versions = np.ndarray(
            (len(self._params),), dtype=_VERSION_DTYPE, buffer=segment.buf
        )
        if owner:
            # last-resort cleanup: destroy the segment if release() is never
            # called, so crashed tests don't leak /dev/shm segments.  The
            # mapping itself stays valid for any live views.
            self._finalizer = weakref.finalize(self, _destroy_segment, segment)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def create(
        cls, params: Sequence["Parameter"], generation: int = 0
    ) -> "SharedParameterArena":
        """Allocate a segment and move every parameter's storage into it.

        ``generation`` stamps the arena for rolling model swaps — pass the
        successor of the currently-published generation when building the
        arena a drained worker fleet will re-attach to.
        """
        params = list(params)
        if not params:
            raise ValueError("cannot build an arena over zero parameters")
        header = len(params) * _VERSION_DTYPE().itemsize
        offsets: list[int] = []
        cursor = header
        for p in params:
            offsets.append(cursor)
            cursor += p.value.nbytes
        segment = shared_memory.SharedMemory(create=True, size=max(cursor, 1))
        arena = cls(segment, params, owner=True, generation=generation)
        for p, offset in zip(params, offsets):
            view = np.ndarray(
                p.value.shape, dtype=_VALUE_DTYPE, buffer=segment.buf, offset=offset
            )
            p.share_memory_(view, (segment.name, offset, p.value.shape))
        arena.publish()
        return arena

    @classmethod
    def attached(
        cls, manifest: ArenaManifest, params: Sequence["Parameter"]
    ) -> "SharedParameterArena":
        """Wrap already-attached parameters (worker side) for :meth:`refresh`."""
        params = list(params)
        if len(params) != manifest.num_parameters:
            raise ValueError(
                f"manifest describes {manifest.num_parameters} parameters, "
                f"got {len(params)}"
            )
        return cls(
            _open_attached(manifest.segment_name),
            params,
            owner=False,
            generation=manifest.generation,
        )

    @property
    def manifest(self) -> ArenaManifest:
        return ArenaManifest(
            segment_name=self._segment.name,
            num_parameters=len(self._params),
            size_bytes=self._segment.size,
            generation=self.generation,
        )

    # ------------------------------------------------------------------ #
    # version propagation
    # ------------------------------------------------------------------ #
    def publish(self) -> None:
        """Owner: copy every ``Parameter.version`` into its segment slot."""
        for i, p in enumerate(self._params):
            self._versions[i] = p.version

    def refresh(self) -> bool:
        """Worker: pull segment version slots into the local parameters.

        Returns ``True`` when any counter changed — the caller must then
        drop every activation cache keyed on the derived
        ``weights_version`` token.
        """
        changed = False
        for i, p in enumerate(self._params):
            v = int(self._versions[i])
            if p.version != v:
                p.version = v
                changed = True
        return changed

    # ------------------------------------------------------------------ #
    # teardown
    # ------------------------------------------------------------------ #
    def release(self) -> None:
        """Owner: detach every parameter and destroy the segment.

        Values are copied back into ordinary process-private arrays first,
        so the model remains fully usable (training included) after the
        serving tier shuts down.  Idempotent.
        """
        if self._released:
            return
        self._released = True
        if not self._owner:
            return
        for p in self._params:
            spec = getattr(p, "_shm_spec", None)
            if spec is not None and spec[0] != self._segment.name:
                # the parameter was rebound into a successor arena (same
                # model rolled into a new generation): that binding is the
                # successor's to manage — detaching it here would silently
                # disconnect the owner from the live segment
                continue
            p.unshare_()
        self._versions = None  # drop our own view of the buffer
        self._finalizer()  # close + unlink, exactly once


def _destroy_segment(segment: shared_memory.SharedMemory) -> None:
    try:
        segment.close()
    except BufferError:  # pragma: no cover - a stray view still exports
        pass
    try:
        segment.unlink()  # also unregisters from the resource tracker
    except FileNotFoundError:  # pragma: no cover - raced another unlink
        pass


def destroy_segment(segment: shared_memory.SharedMemory) -> None:
    """Close and unlink an owned segment, tolerating stray views and races."""
    _destroy_segment(segment)
