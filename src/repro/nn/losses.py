"""Loss functions used for training and distillation.

All classification losses operate on *logits* (pre-softmax scores): folding
the softmax into the loss keeps the gradients numerically stable.
"""

from __future__ import annotations

import numpy as np

from .layers.activations import log_softmax, softmax
from .tensor import one_hot

__all__ = [
    "CrossEntropyLoss",
    "DistillationLoss",
    "MSELoss",
    "cross_entropy",
    "kl_divergence",
]


def cross_entropy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Mean cross-entropy of integer labels under softmax(logits)."""
    logp = log_softmax(logits, axis=-1)
    n = logits.shape[0]
    return float(-logp[np.arange(n), labels].mean())


def kl_divergence(p: np.ndarray, q: np.ndarray, epsilon: float = 1e-12) -> float:
    """Mean KL(p || q) between rows of two probability matrices."""
    p = np.clip(p, epsilon, 1.0)
    q = np.clip(q, epsilon, 1.0)
    return float((p * (np.log(p) - np.log(q))).sum(axis=-1).mean())


class CrossEntropyLoss:
    """Softmax cross-entropy with integer targets."""

    def __call__(self, logits: np.ndarray, labels: np.ndarray) -> float:
        return self.forward(logits, labels)

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> float:
        self._probs = softmax(logits, axis=-1)
        self._labels = np.asarray(labels)
        return cross_entropy(logits, self._labels)

    def backward(self) -> np.ndarray:
        """Gradient of the mean loss with respect to the logits."""
        n, num_classes = self._probs.shape
        grad = self._probs - one_hot(self._labels, num_classes)
        return grad / n


class DistillationLoss:
    """Soft-target distillation loss used for exit-ensemble training.

    The loss is the KL divergence between the student's softened predictions
    and a teacher probability distribution, scaled by ``temperature ** 2`` as
    in Hinton et al.  It is combined with the hard-label cross-entropy by
    :class:`repro.nn.training.DistillationTrainer`.
    """

    def __init__(self, temperature: float = 3.0) -> None:
        if temperature <= 0:
            raise ValueError("temperature must be positive")
        self.temperature = float(temperature)

    def __call__(self, logits: np.ndarray, teacher_probs: np.ndarray) -> float:
        return self.forward(logits, teacher_probs)

    def forward(self, logits: np.ndarray, teacher_probs: np.ndarray) -> float:
        t = self.temperature
        self._student = softmax(logits / t, axis=-1)
        self._teacher = np.asarray(teacher_probs)
        return kl_divergence(self._teacher, self._student) * t * t

    def backward(self) -> np.ndarray:
        """Gradient with respect to the student logits."""
        n = self._student.shape[0]
        # d/dlogits of T^2 * KL(teacher || softmax(logits/T)) = T*(student - teacher)
        return self.temperature * (self._student - self._teacher) / n


class MSELoss:
    """Mean squared error (used in a few regression-style tests)."""

    def __call__(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        return self.forward(predictions, targets)

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        self._diff = predictions - targets
        return float(np.mean(self._diff**2))

    def backward(self) -> np.ndarray:
        return 2.0 * self._diff / self._diff.size
