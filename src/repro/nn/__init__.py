"""NumPy neural-network substrate.

This subpackage is a self-contained, from-scratch deep-learning stack (layers,
models, losses, optimizers, trainers, reference architectures) that replaces
the PyTorch/Keras dependency of the original paper.  See ``DESIGN.md`` §3.1.
"""

from . import architectures, layers
from .context import ForwardContext, default_context, resolve_context
from .losses import CrossEntropyLoss, DistillationLoss, MSELoss
from .model import Network
from .optimizers import SGD, Adam, CosineLR, StepLR
from .training import (
    DistillationTrainer,
    Trainer,
    TrainingHistory,
    evaluate_classifier,
    iterate_minibatches,
)

__all__ = [
    "architectures",
    "layers",
    "ForwardContext",
    "default_context",
    "resolve_context",
    "Network",
    "CrossEntropyLoss",
    "DistillationLoss",
    "MSELoss",
    "SGD",
    "Adam",
    "StepLR",
    "CosineLR",
    "Trainer",
    "DistillationTrainer",
    "TrainingHistory",
    "evaluate_classifier",
    "iterate_minibatches",
]
