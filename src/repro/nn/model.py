"""Sequential network container.

:class:`Network` is a simple ordered list of layers with utilities that the
rest of the repository relies on:

* **partial forward passes** (``forward_range``) so that the multi-exit
  Bayesian model can cache the deterministic backbone activation and re-run
  only the stochastic exit heads for each Monte-Carlo sample;
* **named layers** and structural ``describe()`` output consumed by the FLOP
  analyzer and the FPGA hardware back-end;
* **parameter snapshots** (``get_weights`` / ``set_weights``) used by the
  quantizer, the deep-ensemble baseline, and the tests.

Per-call state (layer backward caches, dropout masks, RNG streams) lives in
an explicit :class:`~repro.nn.context.ForwardContext` threaded through every
``forward`` / ``backward`` entry point.  Passing a private context per
logical caller makes the same ``Network`` object reentrant — several
threads can run inference over shared :class:`Parameter` storage at once.
With ``ctx=None`` the process-wide default context is used and behaviour
(and single-threadedness) is exactly as before the context refactor; a
``forward``/``backward`` pair must use the same context.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from .context import ForwardContext, resolve_context
from .layers.base import Layer, Parameter

__all__ = ["Network"]


class Network:
    """An ordered container of layers forming a feed-forward network."""

    def __init__(
        self, layers: Sequence[Layer] | None = None, name: str = "network"
    ) -> None:
        self.name = name
        self.layers: list[Layer] = list(layers) if layers else []
        self.built = False
        self.input_shape: tuple[int, ...] | None = None
        self._weights_version_base = 0

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add(self, layer: Layer) -> "Network":
        """Append a layer; returns self for chaining."""
        if self.built:
            raise RuntimeError("cannot add layers after the network is built")
        self.layers.append(layer)
        return self

    def build(self, input_shape: tuple[int, ...], seed: int = 0) -> "Network":
        """Build every layer for the given per-sample input shape."""
        rng = np.random.default_rng(seed)
        shape = tuple(input_shape)
        self.input_shape = shape
        self._ensure_unique_names()
        for layer in self.layers:
            layer.build(shape, rng)
            shape = layer.output_shape
        self.built = True
        return self

    def _ensure_unique_names(self) -> None:
        seen: dict[str, int] = {}
        for layer in self.layers:
            base = layer.name
            if base in seen:
                seen[base] += 1
                layer.name = f"{base}_{seen[base]}"
            else:
                seen[base] = 0

    @property
    def output_shape(self) -> tuple[int, ...]:
        if not self.built:
            raise RuntimeError("network is not built")
        return self.layers[-1].output_shape if self.layers else self.input_shape

    # ------------------------------------------------------------------ #
    # computation
    # ------------------------------------------------------------------ #
    def forward(
        self,
        x: np.ndarray,
        training: bool = False,
        ctx: ForwardContext | None = None,
    ) -> np.ndarray:
        """Run the full network."""
        return self.forward_range(x, 0, len(self.layers), training=training, ctx=ctx)

    def forward_range(
        self,
        x: np.ndarray,
        start: int,
        stop: int,
        training: bool = False,
        ctx: ForwardContext | None = None,
    ) -> np.ndarray:
        """Run layers ``[start, stop)`` on ``x``.

        This is the primitive behind cached-backbone Monte-Carlo sampling:
        the deterministic prefix is evaluated once, and only the stochastic
        suffix is re-evaluated per sample.  ``ctx`` receives the per-layer
        backward caches and supplies the dropout streams; concurrent callers
        must each pass their own context.
        """
        if not self.built:
            raise RuntimeError("network must be built before calling forward")
        if not 0 <= start <= stop <= len(self.layers):
            raise IndexError(
                f"invalid layer range [{start}, {stop}) for {len(self.layers)} layers"
            )
        ctx = resolve_context(ctx)
        out = x
        for layer in self.layers[start:stop]:
            out = layer.forward(out, training=training, ctx=ctx)
        return out

    def backward(
        self, grad_output: np.ndarray, ctx: ForwardContext | None = None
    ) -> np.ndarray:
        """Back-propagate through the full network (after a forward pass)."""
        return self.backward_range(grad_output, 0, len(self.layers), ctx=ctx)

    def backward_range(
        self,
        grad_output: np.ndarray,
        start: int,
        stop: int,
        ctx: ForwardContext | None = None,
    ) -> np.ndarray:
        """Back-propagate through layers ``[start, stop)`` in reverse order.

        Must be called with the context of the matching forward pass (both
        default to the process-wide one).
        """
        ctx = resolve_context(ctx)
        grad = grad_output
        for layer in reversed(self.layers[start:stop]):
            grad = layer.backward(grad, ctx=ctx)
        return grad

    def predict(self, x: np.ndarray, ctx: ForwardContext | None = None) -> np.ndarray:
        """Inference-mode forward pass (no dropout except MC dropout)."""
        return self.forward(x, training=False, ctx=ctx)

    def __call__(
        self,
        x: np.ndarray,
        training: bool = False,
        ctx: ForwardContext | None = None,
    ) -> np.ndarray:
        return self.forward(x, training=training, ctx=ctx)

    # ------------------------------------------------------------------ #
    # parameters
    # ------------------------------------------------------------------ #
    def parameters(self) -> Iterator[Parameter]:
        for layer in self.layers:
            yield from layer.parameters()

    @property
    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        for layer in self.layers:
            layer.zero_grad()

    @property
    def weights_version(self) -> int:
        """Monotonic token that changes whenever parameter values change.

        Activation caches (the sample-folded inference engines, the serving
        layer) key their entries on this value to detect stale activations.
        The token is derived from the per-parameter mutation counters
        (:attr:`Parameter.version`), so *any* documented mutation path —
        optimizer steps, ``Parameter.assign``, ``set_weights``, post-training
        quantization — invalidates caches automatically.  Only a raw
        ``param.value[...] = ...`` write without a following
        ``param.bump_version()`` (or :meth:`bump_weights_version` on the
        network) can go unnoticed.
        """
        return self._weights_version_base + sum(p.version for p in self.parameters())

    def bump_weights_version(self) -> None:
        """Record a parameter mutation done outside the ``Parameter`` API.

        Prefer :meth:`Parameter.assign` (or ``param.bump_version()``) for new
        code; this network-level escape hatch remains for call sites that
        mutate many parameters at once and for backward compatibility.
        """
        self._weights_version_base += 1

    def get_weights(self) -> list[np.ndarray]:
        """Return copies of every parameter value, in deterministic order."""
        return [p.value.copy() for p in self.parameters()]

    def set_weights(self, weights: Sequence[np.ndarray]) -> None:
        """Load parameter values previously obtained from :meth:`get_weights`."""
        params = list(self.parameters())
        if len(params) != len(weights):
            raise ValueError(
                f"weight count mismatch: network has {len(params)} parameters, "
                f"got {len(weights)}"
            )
        for param, value in zip(params, weights):
            value = np.asarray(value, dtype=np.float64)
            if param.value.shape != value.shape:
                raise ValueError(
                    f"shape mismatch for {param.name}: "
                    f"{param.value.shape} vs {value.shape}"
                )
            param.assign(value)

    # ------------------------------------------------------------------ #
    # structure / introspection
    # ------------------------------------------------------------------ #
    def layer_index(self, name: str) -> int:
        """Return the index of the layer with the given name."""
        for i, layer in enumerate(self.layers):
            if layer.name == name:
                return i
        raise KeyError(f"no layer named {name!r}")

    def get_layer(self, name: str) -> Layer:
        return self.layers[self.layer_index(name)]

    def stochastic_layer_indices(self) -> list[int]:
        """Indices of layers that are stochastic at inference time (MCD)."""
        return [i for i, layer in enumerate(self.layers) if layer.stochastic]

    def first_stochastic_index(self) -> int:
        """Index of the first MC-dropout layer, or ``len(layers)`` if none.

        Everything before this index is deterministic at inference time and
        can therefore be cached across Monte-Carlo samples.
        """
        indices = self.stochastic_layer_indices()
        return indices[0] if indices else len(self.layers)

    def describe(self) -> dict:
        """Structural description used by FLOP counting and HW lowering."""
        return {
            "name": self.name,
            "input_shape": list(self.input_shape) if self.input_shape else None,
            "num_parameters": self.num_parameters if self.built else None,
            "layers": [layer.describe() for layer in self.layers],
        }

    def summary(self) -> str:
        """Human-readable table of layers, shapes and parameter counts."""
        if not self.built:
            raise RuntimeError("build the network before calling summary()")
        lines = [f"Network: {self.name}  (input {self.input_shape})"]
        header = f"{'#':>3}  {'layer':<28} {'type':<16} {'output shape':<18} {'params':>10}"
        lines.append(header)
        lines.append("-" * len(header))
        for i, layer in enumerate(self.layers):
            lines.append(
                f"{i:>3}  {layer.name:<28} {layer.__class__.__name__:<16} "
                f"{str(layer.output_shape):<18} {layer.num_parameters:>10}"
            )
        lines.append("-" * len(header))
        lines.append(f"total parameters: {self.num_parameters}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.layers)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Network(name={self.name!r}, layers={len(self.layers)})"
