"""Optimizers and learning-rate schedules.

The paper trains with SGD, momentum 0.9, weight decay 5e-4 and an initial
learning rate of 0.1 — :class:`SGD` implements exactly that configuration.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .layers.base import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "StepLR", "CosineLR"]


class Optimizer:
    """Base optimizer over a fixed list of parameters."""

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = float(lr)

    def step(self) -> None:
        raise NotImplementedError

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()


class SGD(Optimizer):
    """Stochastic gradient descent with momentum and decoupled weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.1,
        momentum: float = 0.9,
        weight_decay: float = 5e-4,
    ) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        if weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity = [np.zeros_like(p.value) for p in self.parameters]

    def step(self) -> None:
        for p, v in zip(self.parameters, self._velocity):
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.value
            v *= self.momentum
            v += grad
            p.value -= self.lr * v
            p.bump_version()


class Adam(Optimizer):
    """Adam optimizer (used by some tests and ablation studies)."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.epsilon = float(epsilon)
        self.weight_decay = float(weight_decay)
        self._m = [np.zeros_like(p.value) for p in self.parameters]
        self._v = [np.zeros_like(p.value) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for p, m, v in zip(self.parameters, self._m, self._v):
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.value
            m *= self.beta1
            m += (1 - self.beta1) * grad
            v *= self.beta2
            v += (1 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            p.value -= self.lr * m_hat / (np.sqrt(v_hat) + self.epsilon)
            p.bump_version()


class StepLR:
    """Step decay schedule: multiply the LR by ``gamma`` every ``step_size`` epochs."""

    def __init__(
        self, optimizer: Optimizer, step_size: int, gamma: float = 0.1
    ) -> None:
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.optimizer = optimizer
        self.step_size = int(step_size)
        self.gamma = float(gamma)
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> float:
        """Advance one epoch and return the new learning rate."""
        self.epoch += 1
        self.optimizer.lr = self.base_lr * self.gamma ** (self.epoch // self.step_size)
        return self.optimizer.lr


class CosineLR:
    """Cosine-annealing schedule from the base LR down to ``min_lr``."""

    def __init__(
        self, optimizer: Optimizer, total_epochs: int, min_lr: float = 0.0
    ) -> None:
        if total_epochs <= 0:
            raise ValueError("total_epochs must be positive")
        self.optimizer = optimizer
        self.total_epochs = int(total_epochs)
        self.min_lr = float(min_lr)
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> float:
        self.epoch = min(self.epoch + 1, self.total_epochs)
        cos = 0.5 * (1 + np.cos(np.pi * self.epoch / self.total_epochs))
        self.optimizer.lr = self.min_lr + (self.base_lr - self.min_lr) * cos
        return self.optimizer.lr
