"""Tensor manipulation helpers for the NumPy neural-network substrate.

All convolution layers in :mod:`repro.nn` use the ``NCHW`` layout
(batch, channels, height, width).  The helpers in this module implement the
im2col / col2im lowering used by :class:`repro.nn.layers.conv.Conv2D` so that
convolutions reduce to a single matrix multiplication, which keeps the pure
NumPy implementation fast enough for the scaled-down experiments in this
repository.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "pad_input",
    "conv_output_size",
    "im2col",
    "im2col_patches",
    "col2im",
    "one_hot",
]


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Return the spatial output size of a convolution / pooling window.

    Parameters
    ----------
    size:
        Input spatial size (height or width).
    kernel:
        Kernel size along the same dimension.
    stride:
        Stride along the same dimension.
    padding:
        Zero padding applied symmetrically to both sides.
    """
    if size <= 0:
        raise ValueError(f"input size must be positive, got {size}")
    if kernel <= 0 or stride <= 0:
        raise ValueError("kernel and stride must be positive")
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"convolution produces non-positive output size "
            f"(size={size}, kernel={kernel}, stride={stride}, padding={padding})"
        )
    return out


def pad_input(x: np.ndarray, padding: int) -> np.ndarray:
    """Zero-pad the spatial dimensions of an NCHW tensor."""
    if padding == 0:
        return x
    if padding < 0:
        raise ValueError("padding must be non-negative")
    return np.pad(
        x,
        ((0, 0), (0, 0), (padding, padding), (padding, padding)),
        mode="constant",
    )


def im2col(
    x: np.ndarray,
    kernel_h: int,
    kernel_w: int,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Rearrange image patches into columns.

    Parameters
    ----------
    x:
        Input of shape ``(N, C, H, W)``.
    kernel_h, kernel_w:
        Kernel height and width.
    stride:
        Convolution stride.
    padding:
        Symmetric zero padding.

    Returns
    -------
    np.ndarray
        Matrix of shape ``(N * out_h * out_w, C * kernel_h * kernel_w)``.
    """
    n = x.shape[0]
    cols = im2col_patches(x, kernel_h, kernel_w, stride, padding)
    out_h, out_w = cols.shape[4], cols.shape[5]
    return cols.transpose(0, 4, 5, 1, 2, 3).reshape(n * out_h * out_w, -1)


def im2col_patches(
    x: np.ndarray,
    kernel_h: int,
    kernel_w: int,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Gather convolution patches into a 6-D tensor.

    Returns the ``(N, C, kernel_h, kernel_w, out_h, out_w)`` patch tensor;
    :func:`im2col` is its NHW-major flattening.  Exposed separately so the
    sample-folded convolution path can run the gather once over a folded
    batch and carve per-sample column matrices out of it as views (see
    :meth:`repro.nn.layers.conv.Conv2D.forward_folded`).
    """
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel_h, stride, padding)
    out_w = conv_output_size(w, kernel_w, stride, padding)

    img = pad_input(x, padding)
    cols = np.zeros((n, c, kernel_h, kernel_w, out_h, out_w), dtype=x.dtype)

    for ky in range(kernel_h):
        y_max = ky + stride * out_h
        for kx in range(kernel_w):
            x_max = kx + stride * out_w
            cols[:, :, ky, kx, :, :] = img[:, :, ky:y_max:stride, kx:x_max:stride]

    return cols


def col2im(
    cols: np.ndarray,
    input_shape: tuple[int, int, int, int],
    kernel_h: int,
    kernel_w: int,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Inverse of :func:`im2col`, accumulating overlapping patches.

    Parameters
    ----------
    cols:
        Matrix of shape ``(N * out_h * out_w, C * kernel_h * kernel_w)``.
    input_shape:
        The original ``(N, C, H, W)`` input shape.

    Returns
    -------
    np.ndarray
        Gradient image of shape ``(N, C, H, W)``.
    """
    n, c, h, w = input_shape
    out_h = conv_output_size(h, kernel_h, stride, padding)
    out_w = conv_output_size(w, kernel_w, stride, padding)

    cols = cols.reshape(n, out_h, out_w, c, kernel_h, kernel_w).transpose(
        0, 3, 4, 5, 1, 2
    )
    img = np.zeros(
        (n, c, h + 2 * padding + stride - 1, w + 2 * padding + stride - 1),
        dtype=cols.dtype,
    )
    for ky in range(kernel_h):
        y_max = ky + stride * out_h
        for kx in range(kernel_w):
            x_max = kx + stride * out_w
            img[:, :, ky:y_max:stride, kx:x_max:stride] += cols[:, :, ky, kx, :, :]

    return img[:, :, padding : h + padding, padding : w + padding]


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Convert integer class labels to one-hot rows.

    Parameters
    ----------
    labels:
        Integer array of shape ``(N,)``.
    num_classes:
        Total number of classes; every label must be in ``[0, num_classes)``.
    """
    labels = np.asarray(labels)
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ValueError("labels out of range for the given num_classes")
    out = np.zeros((labels.shape[0], num_classes), dtype=np.float64)
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out
