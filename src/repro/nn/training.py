"""Training loops.

Two trainers are provided:

* :class:`Trainer` — plain supervised training of a single-exit
  :class:`repro.nn.model.Network` with cross-entropy.
* :class:`DistillationTrainer` — exit-ensemble *bidirectional* distillation
  (Lee & Lee, 2021) used by the paper to train multi-exit networks: every
  exit is supervised with the hard labels **and** distilled towards the
  equally-weighted ensemble of all exits, so that shallow exits learn from
  deep ones and vice versa.  It operates on any object implementing the
  :class:`MultiExitModel` protocol (``forward_exits`` / ``backward_exits`` /
  ``parameters``), which :class:`repro.core.bayesnn.MultiExitBayesNet`
  satisfies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Protocol, Sequence

import numpy as np

from .layers.activations import softmax
from .layers.base import Parameter
from .losses import CrossEntropyLoss, DistillationLoss
from .model import Network
from .optimizers import Optimizer

__all__ = [
    "TrainingHistory",
    "Trainer",
    "DistillationTrainer",
    "MultiExitModel",
    "evaluate_classifier",
    "iterate_minibatches",
]


@dataclass
class TrainingHistory:
    """Per-epoch training metrics."""

    loss: list[float] = field(default_factory=list)
    accuracy: list[float] = field(default_factory=list)
    val_loss: list[float] = field(default_factory=list)
    val_accuracy: list[float] = field(default_factory=list)

    def record(
        self,
        loss: float,
        accuracy: float,
        val_loss: float | None = None,
        val_accuracy: float | None = None,
    ) -> None:
        self.loss.append(float(loss))
        self.accuracy.append(float(accuracy))
        if val_loss is not None:
            self.val_loss.append(float(val_loss))
        if val_accuracy is not None:
            self.val_accuracy.append(float(val_accuracy))

    @property
    def epochs(self) -> int:
        return len(self.loss)


def iterate_minibatches(
    x: np.ndarray,
    y: np.ndarray,
    batch_size: int,
    rng: np.random.Generator | None = None,
    shuffle: bool = True,
) -> Iterable[tuple[np.ndarray, np.ndarray]]:
    """Yield (inputs, labels) mini-batches, optionally shuffled."""
    if len(x) != len(y):
        raise ValueError("inputs and labels must have the same length")
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    indices = np.arange(len(x))
    if shuffle:
        rng = rng or np.random.default_rng()
        rng.shuffle(indices)
    for start in range(0, len(x), batch_size):
        batch = indices[start : start + batch_size]
        yield x[batch], y[batch]


def evaluate_classifier(
    model: Network, x: np.ndarray, y: np.ndarray, batch_size: int = 128
) -> tuple[float, float]:
    """Return (mean cross-entropy loss, accuracy) of a network on a dataset."""
    loss_fn = CrossEntropyLoss()
    total_loss = 0.0
    correct = 0
    for xb, yb in iterate_minibatches(x, y, batch_size, shuffle=False):
        logits = model.predict(xb)
        total_loss += loss_fn(logits, yb) * len(xb)
        correct += int((logits.argmax(axis=1) == yb).sum())
    n = len(x)
    return total_loss / n, correct / n


class Trainer:
    """Mini-batch SGD training of a single-exit network."""

    def __init__(
        self,
        model: Network,
        optimizer: Optimizer,
        loss: CrossEntropyLoss | None = None,
        batch_size: int = 64,
        seed: int = 0,
    ) -> None:
        self.model = model
        self.optimizer = optimizer
        self.loss = loss or CrossEntropyLoss()
        self.batch_size = int(batch_size)
        self.rng = np.random.default_rng(seed)
        self.history = TrainingHistory()

    def train_on_batch(self, x: np.ndarray, y: np.ndarray) -> tuple[float, float]:
        """One optimization step; returns (loss, accuracy) on the batch."""
        self.optimizer.zero_grad()
        logits = self.model.forward(x, training=True)
        loss = self.loss(logits, y)
        self.model.backward(self.loss.backward())
        self.optimizer.step()
        accuracy = float((logits.argmax(axis=1) == y).mean())
        return loss, accuracy

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        epochs: int = 1,
        validation_data: tuple[np.ndarray, np.ndarray] | None = None,
        scheduler=None,
        verbose: bool = False,
    ) -> TrainingHistory:
        """Train for a number of epochs over (x, y)."""
        for epoch in range(epochs):
            losses: list[float] = []
            accs: list[float] = []
            for xb, yb in iterate_minibatches(x, y, self.batch_size, self.rng):
                loss, acc = self.train_on_batch(xb, yb)
                losses.append(loss)
                accs.append(acc)
            val_loss = val_acc = None
            if validation_data is not None:
                val_loss, val_acc = evaluate_classifier(
                    self.model, *validation_data, batch_size=self.batch_size
                )
            self.history.record(np.mean(losses), np.mean(accs), val_loss, val_acc)
            if scheduler is not None:
                scheduler.step()
            if verbose:  # pragma: no cover - console output
                msg = (
                    f"epoch {epoch + 1}/{epochs}: "
                    f"loss={self.history.loss[-1]:.4f} acc={self.history.accuracy[-1]:.4f}"
                )
                if val_acc is not None:
                    msg += f" val_acc={val_acc:.4f}"
                print(msg)
        return self.history


class MultiExitModel(Protocol):
    """Protocol a model must satisfy to be trained with exit distillation."""

    def forward_exits(self, x: np.ndarray, training: bool = False) -> list[np.ndarray]:
        """Return the logits of every exit for the given batch."""

    def backward_exits(self, grads: Sequence[np.ndarray]) -> None:
        """Back-propagate one gradient per exit through the shared backbone."""

    def parameters(self) -> Iterable[Parameter]:
        """All trainable parameters of backbone and exits."""

    def zero_grad(self) -> None:
        """Reset accumulated gradients."""


class DistillationTrainer:
    """Bidirectional exit-ensemble distillation for multi-exit models.

    Each exit ``e`` minimises::

        L_e = CE(logits_e, y) + distill_weight * T^2 * KL(ensemble || softmax(logits_e / T))

    where ``ensemble`` is the equally-weighted average of the softened
    predictions of *all* exits (treated as a constant teacher for the
    gradient computation, as in exit-ensemble distillation).
    """

    def __init__(
        self,
        model: MultiExitModel,
        optimizer: Optimizer,
        distill_weight: float = 0.5,
        temperature: float = 3.0,
        batch_size: int = 64,
        seed: int = 0,
    ) -> None:
        if distill_weight < 0:
            raise ValueError("distill_weight must be non-negative")
        self.model = model
        self.optimizer = optimizer
        self.distill_weight = float(distill_weight)
        self.temperature = float(temperature)
        self.batch_size = int(batch_size)
        self.rng = np.random.default_rng(seed)
        self.history = TrainingHistory()

    def train_on_batch(self, x: np.ndarray, y: np.ndarray) -> tuple[float, float]:
        """One optimization step over every exit; returns (loss, ensemble accuracy)."""
        self.optimizer.zero_grad()
        exit_logits = self.model.forward_exits(x, training=True)

        t = self.temperature
        soft_preds = [softmax(logits / t, axis=-1) for logits in exit_logits]
        teacher = np.mean(soft_preds, axis=0)

        # Deep-supervision weighting: the final exit keeps the full loss weight
        # (so it trains exactly as fast as the single-exit baseline) while the
        # auxiliary exits are down-weighted by 1/num_exits, which keeps the
        # total gradient magnitude on the shared backbone bounded regardless
        # of how many exits are attached.
        num_exits = len(exit_logits)
        weights = [1.0 / num_exits] * (num_exits - 1) + [1.0]
        total_loss = 0.0
        grads: list[np.ndarray] = []
        for logits, weight in zip(exit_logits, weights):
            ce = CrossEntropyLoss()
            total_loss += ce(logits, y)
            grad = ce.backward()
            if self.distill_weight > 0:
                distill = DistillationLoss(temperature=t)
                total_loss += self.distill_weight * distill(logits, teacher)
                grad = grad + self.distill_weight * distill.backward()
            grads.append(grad * weight)

        self.model.backward_exits(grads)
        self.optimizer.step()

        ensemble = np.mean([softmax(lg, axis=-1) for lg in exit_logits], axis=0)
        accuracy = float((ensemble.argmax(axis=1) == y).mean())
        return total_loss / len(exit_logits), accuracy

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        epochs: int = 1,
        scheduler=None,
        verbose: bool = False,
    ) -> TrainingHistory:
        """Train the multi-exit model for a number of epochs."""
        for epoch in range(epochs):
            losses: list[float] = []
            accs: list[float] = []
            for xb, yb in iterate_minibatches(x, y, self.batch_size, self.rng):
                loss, acc = self.train_on_batch(xb, yb)
                losses.append(loss)
                accs.append(acc)
            self.history.record(np.mean(losses), np.mean(accs))
            if scheduler is not None:
                scheduler.step()
            if verbose:  # pragma: no cover - console output
                print(
                    f"epoch {epoch + 1}/{epochs}: "
                    f"loss={self.history.loss[-1]:.4f} acc={self.history.accuracy[-1]:.4f}"
                )
        return self.history
