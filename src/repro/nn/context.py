"""Explicit per-call forward state: the :class:`ForwardContext`.

Historically every layer stashed its backward cache (``self._cache``) and
its dropout mask (``self._mask``) on ``self``, and every stochastic layer
owned a private mutable RNG stream.  That made the whole stack reentrant
only per *layer object*: two concurrent forward passes through the same
network silently corrupted each other, which pinned the serving tier to a
single worker thread.

A :class:`ForwardContext` moves all of that per-call state off the layers:

* **backward caches** — ``forward`` writes whatever ``backward`` needs via
  :meth:`save`, keyed by the layer object; ``backward`` reads it back with
  :meth:`saved`.  Two contexts never see each other's caches, so the same
  layer can be mid-forward in two threads at once.
* **RNG streams** — stochastic layers draw masks from :meth:`rng`, a
  context-owned stream derived from the layer's ``seed`` attribute.  A
  plain context (``spawn_key=None``) seeds the stream exactly like the
  pre-context code seeded the layer's private stream
  (``np.random.default_rng(layer.seed)``), so a single-context run is
  **bit-identical** to the historical behaviour.  A context constructed
  with ``spawn_key=k`` instead *spawns* the stream from the layer seed
  (``SeedSequence(layer.seed, spawn_key=(k,))``), giving every context an
  independent, deterministic stream family — this is how the multi-worker
  serving pool makes results independent of which worker computes a batch.

What does **not** live in a context: parameters (shared zero-copy across
all contexts — that is the point), layer shapes, and BatchNorm running
statistics (learned model state, only mutated in training mode, which
remains a single-context affair like all gradient work).

Layers resolve ``ctx=None`` to a process-wide default context via
:func:`resolve_context`, so ctx-less code — training loops, quick scripts,
the legacy reference loops — behaves exactly as before (and is exactly as
non-reentrant as before).  Reentrancy is opt-in: pass an explicit context
per logical caller.

Reseeding: :meth:`repro.nn.layers.dropout._DropoutBase.reseed` bumps the
layer's ``seed_epoch``; every context re-derives its stream for that layer
from the new seed on the next draw.  Reseeding is therefore a *model-wide*
operation visible to all contexts, which keeps the historical
"reseed ⇒ subsequent masks reproducible" contract.
"""

from __future__ import annotations

import weakref
from typing import TYPE_CHECKING, Any

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .layers.base import Layer

    #: layer -> (seed_epoch at stream creation, stream)
    RngMap = weakref.WeakKeyDictionary[Layer, tuple[int, np.random.Generator]]

__all__ = ["ForwardContext", "default_context", "resolve_context"]


class ForwardContext:
    """Holds the per-call state of forward/backward passes.

    Parameters
    ----------
    spawn_key:
        ``None`` (default): RNG streams are seeded exactly like the
        historical per-layer streams (``np.random.default_rng(layer.seed)``)
        — bit-identical single-context behaviour.  An integer ``k``: streams
        are spawned as ``SeedSequence(layer.seed, spawn_key=(k,))``, giving
        this context a deterministic stream family independent of every
        other spawn key (and of the plain ``None`` family).

    Notes
    -----
    A context is *not* thread-safe; it represents one logical call chain.
    Reentrancy comes from using one context per concurrent caller, not from
    sharing one context between callers.  Both internal maps are weak-keyed
    on the layer objects, so a context never keeps dead layers (or their
    cached activations) alive.
    """

    def __init__(self, spawn_key: int | None = None) -> None:
        if spawn_key is not None and spawn_key < 0:
            raise ValueError("spawn_key must be a non-negative integer")
        self.spawn_key = spawn_key
        self._saved: "weakref.WeakKeyDictionary[Layer, Any]" = (
            weakref.WeakKeyDictionary()
        )
        self._rngs: RngMap = weakref.WeakKeyDictionary()

    # ------------------------------------------------------------------ #
    # backward caches
    # ------------------------------------------------------------------ #
    def save(self, layer: "Layer", value: Any) -> None:
        """Store ``layer``'s forward-pass cache for the matching backward."""
        self._saved[layer] = value

    def saved(self, layer: "Layer") -> Any:
        """Return the cache stored by the last ``forward`` in this context."""
        try:
            return self._saved[layer]
        except KeyError:
            raise RuntimeError(
                f"no forward cache for layer {layer.name!r} in this context; "
                "backward() must be preceded by forward() with the same ctx"
            ) from None

    # ------------------------------------------------------------------ #
    # RNG streams
    # ------------------------------------------------------------------ #
    def rng(self, layer: "Layer") -> np.random.Generator:
        """The context-owned RNG stream for a stochastic layer.

        Created lazily from ``layer.seed`` (see class docstring for the
        spawn rule) and persistent across calls, so consecutive draws in
        one context consume a single stream — exactly like the historical
        layer-owned generator.  A layer ``reseed`` bumps ``layer.seed_epoch``
        and makes every context re-derive its stream on the next draw.
        """
        epoch = getattr(layer, "seed_epoch", 0)
        entry = self._rngs.get(layer)
        if entry is None or entry[0] != epoch:
            entry = (epoch, self._make_rng(getattr(layer, "seed", None)))
            self._rngs[layer] = entry
        return entry[1]

    def _make_rng(self, seed: int | None) -> np.random.Generator:
        if self.spawn_key is None:
            return np.random.default_rng(seed)
        seq = np.random.SeedSequence(seed, spawn_key=(self.spawn_key,))
        return np.random.Generator(np.random.PCG64(seq))

    # ------------------------------------------------------------------ #
    def clear(self) -> None:
        """Drop all caches and streams (streams re-derive from layer seeds)."""
        self._saved.clear()
        self._rngs.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"ForwardContext(spawn_key={self.spawn_key!r}, "
            f"cached_layers={len(self._saved)})"
        )


#: Process-wide fallback used whenever ``ctx=None`` — keeps ctx-less code
#: (training loops, scripts, the legacy loops) behaving exactly as before
#: the refactor, including its single-threadedness.
_DEFAULT_CONTEXT = ForwardContext()


def default_context() -> ForwardContext:
    """The process-wide context used by ctx-less calls (not thread-safe)."""
    return _DEFAULT_CONTEXT


def resolve_context(ctx: ForwardContext | None) -> ForwardContext:
    """Return ``ctx`` unchanged, or the process-wide default when ``None``."""
    return _DEFAULT_CONTEXT if ctx is None else ctx
