"""Deep-ensemble baseline.

The paper motivates multi-exit MCD BayesNNs as a cheaper alternative to deep
ensembles (independent networks trained from different initializations whose
predictions are averaged).  This module provides that baseline so its
calibration and FLOP cost can be compared against the multi-exit approach.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..nn.layers.activations import softmax
from ..nn.losses import CrossEntropyLoss
from ..nn.model import Network
from ..nn.optimizers import SGD
from ..nn.training import Trainer

__all__ = ["DeepEnsemble"]


class DeepEnsemble:
    """An equally-weighted ensemble of independently initialized networks.

    Parameters
    ----------
    model_factory:
        Zero-argument callable returning an *unbuilt* :class:`Network`; it is
        called once per ensemble member.
    input_shape:
        Per-sample input shape used to build each member.
    num_members:
        Ensemble size.
    seed:
        Base seed; member ``i`` is built with ``seed + i`` so that members
        differ only in their initialization (and data order during training).
    """

    def __init__(
        self,
        model_factory: Callable[[], Network],
        input_shape: Sequence[int],
        num_members: int = 3,
        seed: int = 0,
    ) -> None:
        if num_members <= 0:
            raise ValueError("num_members must be positive")
        self.input_shape = tuple(input_shape)
        self.seed = int(seed)
        self.members: list[Network] = []
        for i in range(num_members):
            member = model_factory()
            member.name = f"{member.name}_member{i}"
            member.build(self.input_shape, seed=self.seed + i)
            self.members.append(member)

    @property
    def num_members(self) -> int:
        return len(self.members)

    # ------------------------------------------------------------------ #
    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        epochs: int = 1,
        lr: float = 0.05,
        batch_size: int = 64,
        weight_decay: float = 5e-4,
    ) -> list[float]:
        """Train every member independently; returns final training accuracy per member."""
        final_acc: list[float] = []
        for i, member in enumerate(self.members):
            optimizer = SGD(member.parameters(), lr=lr, weight_decay=weight_decay)
            trainer = Trainer(
                member, optimizer, CrossEntropyLoss(),
                batch_size=batch_size, seed=self.seed + 100 + i,
            )
            history = trainer.fit(x, y, epochs=epochs)
            final_acc.append(history.accuracy[-1])
        return final_acc

    # ------------------------------------------------------------------ #
    def member_probabilities(self, x: np.ndarray) -> np.ndarray:
        """Per-member predictive distributions, shape ``(M, N, classes)``."""
        return np.stack([softmax(m.predict(x), axis=-1) for m in self.members])

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Equally-weighted ensemble predictive distribution ``(N, classes)``."""
        return self.member_probabilities(x).mean(axis=0)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predicted class labels."""
        return self.predict_proba(x).argmax(axis=1)

    def total_parameters(self) -> int:
        """Total parameter count across all members (the ensemble's memory cost)."""
        return sum(m.num_parameters for m in self.members)
