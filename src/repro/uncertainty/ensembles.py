"""Deep-ensemble baseline.

The paper motivates multi-exit MCD BayesNNs as a cheaper alternative to deep
ensembles (independent networks trained from different initializations whose
predictions are averaged).  This module provides that baseline so its
calibration and FLOP cost can be compared against the multi-exit approach.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Sequence

import numpy as np

from ..inference.engine import NetworkEngine
from ..nn.losses import CrossEntropyLoss
from ..nn.model import Network
from ..nn.optimizers import SGD
from ..nn.training import Trainer

__all__ = ["DeepEnsemble"]


class DeepEnsemble:
    """An equally-weighted ensemble of independently initialized networks.

    Parameters
    ----------
    model_factory:
        Zero-argument callable returning an *unbuilt* :class:`Network`; it is
        called once per ensemble member.
    input_shape:
        Per-sample input shape used to build each member.
    num_members:
        Ensemble size.
    seed:
        Base seed; member ``i`` is built with ``seed + i`` so that members
        differ only in their initialization (and data order during training).
    """

    def __init__(
        self,
        model_factory: Callable[[], Network],
        input_shape: Sequence[int],
        num_members: int = 3,
        seed: int = 0,
    ) -> None:
        if num_members <= 0:
            raise ValueError("num_members must be positive")
        self.input_shape = tuple(input_shape)
        self.seed = int(seed)
        self.members: list[Network] = []
        for i in range(num_members):
            member = model_factory()
            member.name = f"{member.name}_member{i}"
            member.build(self.input_shape, seed=self.seed + i)
            self.members.append(member)
        self._engines: list[NetworkEngine] | None = None

    @property
    def num_members(self) -> int:
        return len(self.members)

    @property
    def engines(self) -> list[NetworkEngine]:
        """One sample-folded :class:`NetworkEngine` per member (lazily built)."""
        if self._engines is None:
            self._engines = [NetworkEngine(member) for member in self.members]
        return self._engines

    # ------------------------------------------------------------------ #
    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        epochs: int = 1,
        lr: float = 0.05,
        batch_size: int = 64,
        weight_decay: float = 5e-4,
    ) -> list[float]:
        """Train every member independently; returns final training accuracy per member."""
        final_acc: list[float] = []
        for i, member in enumerate(self.members):
            optimizer = SGD(member.parameters(), lr=lr, weight_decay=weight_decay)
            trainer = Trainer(
                member,
                optimizer,
                CrossEntropyLoss(),
                batch_size=batch_size,
                seed=self.seed + 100 + i,
            )
            history = trainer.fit(x, y, epochs=epochs)
            final_acc.append(history.accuracy[-1])
        self._engines = None  # weights changed: rebuild engines (and caches)
        return final_acc

    # ------------------------------------------------------------------ #
    def member_probabilities(
        self, x: np.ndarray, num_samples: int | None = None
    ) -> np.ndarray:
        """Per-member predictive distributions, shape ``(M, N, classes)``.

        Each member runs through its sample-folded
        :class:`repro.inference.NetworkEngine`.  When ``num_samples`` is
        given, members containing MC-dropout layers return the mean over
        that many folded Monte-Carlo samples instead of a single stochastic
        pass.
        """
        return np.stack(
            [engine.predict_proba(x, num_samples) for engine in self.engines]
        )

    def predict_proba(
        self, x: np.ndarray, num_samples: int | None = None
    ) -> np.ndarray:
        """Equally-weighted ensemble predictive distribution ``(N, classes)``."""
        return self.member_probabilities(x, num_samples).mean(axis=0)

    def predict(self, x: np.ndarray, num_samples: int | None = None) -> np.ndarray:
        """Predicted class labels."""
        return self.predict_proba(x, num_samples).argmax(axis=1)

    def predict_stream(
        self,
        inputs: np.ndarray | Iterable[np.ndarray],
        batch_size: int = 64,
        num_samples: int | None = None,
    ) -> Iterator[np.ndarray]:
        """Microbatched ensemble predictive distributions.

        Yields one ``(<=batch_size, classes)`` array per microbatch; every
        member evaluates the same microbatch before the next one is formed,
        so peak memory is one microbatch of activations per member.
        """
        from ..inference.streaming import iter_microbatches

        for batch in iter_microbatches(inputs, batch_size):
            yield self.member_probabilities(batch, num_samples).mean(axis=0)

    def total_parameters(self) -> int:
        """Total parameter count across all members (the ensemble's memory cost)."""
        return sum(m.num_parameters for m in self.members)
