"""Calibration metrics: expected / maximum calibration error, reliability bins.

The paper reports calibration with the expected calibration error (ECE):
predictions are grouped into equal-width confidence bins, and ECE is the
weighted average absolute gap between the mean confidence and the empirical
accuracy of each bin.  A low ECE denotes better calibration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "ReliabilityBin",
    "reliability_bins",
    "expected_calibration_error",
    "maximum_calibration_error",
]


@dataclass
class ReliabilityBin:
    """Statistics of one confidence bin of a reliability diagram."""

    lower: float
    upper: float
    count: int
    mean_confidence: float
    accuracy: float

    @property
    def gap(self) -> float:
        """Absolute confidence/accuracy gap (0 for empty bins)."""
        if self.count == 0:
            return 0.0
        return abs(self.mean_confidence - self.accuracy)


def _validate_probs(
    probs: np.ndarray, labels: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    probs = np.asarray(probs, dtype=np.float64)
    labels = np.asarray(labels)
    if probs.ndim != 2:
        raise ValueError(f"probs must be (N, classes), got shape {probs.shape}")
    if labels.shape != (probs.shape[0],):
        raise ValueError("labels must be a 1-D array matching probs' first dimension")
    if probs.shape[0] == 0:
        raise ValueError("cannot compute calibration of an empty prediction set")
    if np.any(probs < -1e-9) or np.any(probs > 1 + 1e-9):
        raise ValueError("probs must lie in [0, 1]")
    return probs, labels


def reliability_bins(
    probs: np.ndarray, labels: np.ndarray, num_bins: int = 15
) -> list[ReliabilityBin]:
    """Compute reliability-diagram bins from predicted probabilities.

    Parameters
    ----------
    probs:
        Predicted class probabilities of shape ``(N, num_classes)``.
    labels:
        Integer ground-truth labels of shape ``(N,)``.
    num_bins:
        Number of equal-width confidence bins over ``[0, 1]``.
    """
    if num_bins <= 0:
        raise ValueError("num_bins must be positive")
    probs, labels = _validate_probs(probs, labels)

    confidences = probs.max(axis=1)
    predictions = probs.argmax(axis=1)
    correct = (predictions == labels).astype(np.float64)

    edges = np.linspace(0.0, 1.0, num_bins + 1)
    bins: list[ReliabilityBin] = []
    for b in range(num_bins):
        lower, upper = edges[b], edges[b + 1]
        if b == 0:
            mask = (confidences >= lower) & (confidences <= upper)
        else:
            mask = (confidences > lower) & (confidences <= upper)
        count = int(mask.sum())
        if count:
            bins.append(
                ReliabilityBin(
                    lower=float(lower),
                    upper=float(upper),
                    count=count,
                    mean_confidence=float(confidences[mask].mean()),
                    accuracy=float(correct[mask].mean()),
                )
            )
        else:
            bins.append(
                ReliabilityBin(
                    lower=float(lower),
                    upper=float(upper),
                    count=0,
                    mean_confidence=0.0,
                    accuracy=0.0,
                )
            )
    return bins


def expected_calibration_error(
    probs: np.ndarray, labels: np.ndarray, num_bins: int = 15
) -> float:
    """Expected calibration error (ECE); lower is better."""
    bins = reliability_bins(probs, labels, num_bins)
    total = sum(b.count for b in bins)
    return float(sum(b.count / total * b.gap for b in bins))


def maximum_calibration_error(
    probs: np.ndarray, labels: np.ndarray, num_bins: int = 15
) -> float:
    """Maximum calibration error (MCE): largest per-bin confidence/accuracy gap."""
    bins = reliability_bins(probs, labels, num_bins)
    occupied = [b.gap for b in bins if b.count > 0]
    return float(max(occupied)) if occupied else 0.0
