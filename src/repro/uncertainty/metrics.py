"""Predictive-uncertainty metrics.

These metrics operate either on a single predictive distribution
(``probs`` of shape ``(N, classes)``) or on a stack of Monte-Carlo samples
(``sample_probs`` of shape ``(S, N, classes)``), in which case the epistemic
part of the uncertainty (mutual information) becomes available.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "accuracy",
    "negative_log_likelihood",
    "brier_score",
    "predictive_entropy",
    "expected_entropy",
    "mutual_information",
    "UncertaintyReport",
    "UncertaintyResult",
    "evaluate_predictions",
    "mc_uncertainty_results",
]

_EPS = 1e-12


def accuracy(probs: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy of a predictive distribution."""
    probs = np.asarray(probs)
    labels = np.asarray(labels)
    return float((probs.argmax(axis=-1) == labels).mean())


def negative_log_likelihood(probs: np.ndarray, labels: np.ndarray) -> float:
    """Mean negative log-likelihood of the true labels."""
    probs = np.clip(np.asarray(probs, dtype=np.float64), _EPS, 1.0)
    labels = np.asarray(labels)
    n = probs.shape[0]
    return float(-np.log(probs[np.arange(n), labels]).mean())


def brier_score(probs: np.ndarray, labels: np.ndarray) -> float:
    """Mean multi-class Brier score (squared error against one-hot labels)."""
    probs = np.asarray(probs, dtype=np.float64)
    labels = np.asarray(labels)
    onehot = np.zeros_like(probs)
    onehot[np.arange(probs.shape[0]), labels] = 1.0
    return float(((probs - onehot) ** 2).sum(axis=1).mean())


def predictive_entropy(probs: np.ndarray) -> np.ndarray:
    """Entropy of the (mean) predictive distribution, per sample."""
    probs = np.clip(np.asarray(probs, dtype=np.float64), _EPS, 1.0)
    return -(probs * np.log(probs)).sum(axis=-1)


def expected_entropy(sample_probs: np.ndarray) -> np.ndarray:
    """Mean entropy of the individual MC-sample distributions, per data point."""
    sample_probs = np.asarray(sample_probs, dtype=np.float64)
    if sample_probs.ndim != 3:
        raise ValueError("sample_probs must have shape (S, N, classes)")
    return predictive_entropy(sample_probs).mean(axis=0)


def mutual_information(sample_probs: np.ndarray) -> np.ndarray:
    """Epistemic uncertainty (BALD): H[mean p] - mean H[p], per data point."""
    sample_probs = np.asarray(sample_probs, dtype=np.float64)
    if sample_probs.ndim != 3:
        raise ValueError("sample_probs must have shape (S, N, classes)")
    mean_probs = sample_probs.mean(axis=0)
    return predictive_entropy(mean_probs) - expected_entropy(sample_probs)


@dataclass
class UncertaintyResult:
    """Prediction + uncertainty bundle for a *single* example.

    This is the per-request response type of the serving layer
    (:meth:`repro.serving.ServingEngine.submit`), but it is equally usable
    for batch workflows via :func:`mc_uncertainty_results`.

    Attributes
    ----------
    probs:
        Predictive distribution over classes, shape ``(classes,)`` — the MC
        mean in sampling mode, the selected (ensembled) exit distribution in
        early-exit mode.
    label:
        ``argmax`` of :attr:`probs`.
    confidence:
        ``max`` of :attr:`probs`.
    entropy:
        Predictive entropy of :attr:`probs` (total uncertainty).
    mutual_information:
        Epistemic part of the uncertainty (BALD); ``None`` when no MC
        samples were drawn (deterministic or early-exit predictions).
    exit_index:
        Exit that produced the prediction in early-exit mode, else ``None``.
    num_samples:
        MC samples behind the prediction, ``None`` for single-pass modes.
    latency_s:
        End-to-end request latency stamped by the serving layer (submit to
        response, including queueing); ``None`` outside serving.
    """

    probs: np.ndarray
    label: int
    confidence: float
    entropy: float
    mutual_information: float | None = None
    exit_index: int | None = None
    num_samples: int | None = None
    latency_s: float | None = None


def mc_uncertainty_results(
    sample_probs: np.ndarray, num_samples: int | None = None
) -> list[UncertaintyResult]:
    """Per-example :class:`UncertaintyResult` list from MC sample stacks.

    Parameters
    ----------
    sample_probs:
        Monte-Carlo predictive samples of shape ``(S, N, classes)`` (e.g.
        ``MCPrediction.sample_probs`` from the folded engines).
    num_samples:
        Recorded on each result; defaults to ``S``.
    """
    sample_probs = np.asarray(sample_probs, dtype=np.float64)
    if sample_probs.ndim != 3:
        raise ValueError("sample_probs must have shape (S, N, classes)")
    if num_samples is None:
        num_samples = int(sample_probs.shape[0])
    mean_probs = sample_probs.mean(axis=0)
    entropy = predictive_entropy(mean_probs)
    mi = mutual_information(sample_probs)
    labels = mean_probs.argmax(axis=1)
    confidence = mean_probs.max(axis=1)
    return [
        UncertaintyResult(
            probs=mean_probs[i],
            label=int(labels[i]),
            confidence=float(confidence[i]),
            entropy=float(entropy[i]),
            mutual_information=float(mi[i]),
            num_samples=num_samples,
        )
        for i in range(mean_probs.shape[0])
    ]


@dataclass
class UncertaintyReport:
    """Bundle of classification and uncertainty metrics for one model/dataset."""

    accuracy: float
    nll: float
    brier: float
    ece: float
    mean_entropy: float
    mean_mutual_information: float | None = None

    def as_dict(self) -> dict:
        out = {
            "accuracy": self.accuracy,
            "nll": self.nll,
            "brier": self.brier,
            "ece": self.ece,
            "mean_entropy": self.mean_entropy,
        }
        if self.mean_mutual_information is not None:
            out["mean_mutual_information"] = self.mean_mutual_information
        return out


def evaluate_predictions(
    probs: np.ndarray,
    labels: np.ndarray,
    sample_probs: np.ndarray | None = None,
    num_bins: int = 15,
) -> UncertaintyReport:
    """Compute the full metric bundle for a set of predictions.

    Parameters
    ----------
    probs:
        Mean predictive distribution of shape ``(N, classes)``.
    labels:
        Ground-truth labels of shape ``(N,)``.
    sample_probs:
        Optional per-MC-sample distributions ``(S, N, classes)``; enables the
        mutual-information (epistemic) component.
    """
    from .calibration import expected_calibration_error

    mi = None
    if sample_probs is not None:
        mi = float(mutual_information(sample_probs).mean())
    return UncertaintyReport(
        accuracy=accuracy(probs, labels),
        nll=negative_log_likelihood(probs, labels),
        brier=brier_score(probs, labels),
        ece=expected_calibration_error(probs, labels, num_bins=num_bins),
        mean_entropy=float(predictive_entropy(probs).mean()),
        mean_mutual_information=mi,
    )
