"""Uncertainty-quantification and calibration metrics (DESIGN.md §3.3)."""

from .calibration import (
    ReliabilityBin,
    expected_calibration_error,
    maximum_calibration_error,
    reliability_bins,
)
from .ensembles import DeepEnsemble
from .metrics import (
    UncertaintyReport,
    UncertaintyResult,
    accuracy,
    brier_score,
    evaluate_predictions,
    expected_entropy,
    mc_uncertainty_results,
    mutual_information,
    negative_log_likelihood,
    predictive_entropy,
)

__all__ = [
    "ReliabilityBin",
    "reliability_bins",
    "expected_calibration_error",
    "maximum_calibration_error",
    "DeepEnsemble",
    "UncertaintyReport",
    "UncertaintyResult",
    "mc_uncertainty_results",
    "accuracy",
    "brier_score",
    "negative_log_likelihood",
    "predictive_entropy",
    "expected_entropy",
    "mutual_information",
    "evaluate_predictions",
]
