"""Synthetic image-classification datasets.

The original paper evaluates on MNIST, CIFAR-10, CIFAR-100 and SVHN.  Those
datasets are not available in this offline environment, so this module
provides deterministic synthetic stand-ins with the same shapes and class
counts.  Each class is defined by a smooth random "prototype" image; samples
are prototypes plus structured low-frequency noise and pixel noise.  The
resulting tasks are learnable by small CNNs but not trivially separable,
which preserves the *relative* comparisons the paper makes (accuracy and
calibration of SE vs MCD vs ME vs MCD+ME) even though absolute numbers
differ from the real datasets.

A distribution-shift variant (:meth:`SyntheticImageDataset.shifted_test_set`)
is included for uncertainty-under-shift experiments: it adds extra noise and
a global intensity shift, which degrades accuracy while calibrated models
should show increased predictive uncertainty.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "DatasetSplit",
    "SyntheticImageDataset",
    "mnist_like",
    "cifar10_like",
    "cifar100_like",
    "svhn_like",
]


@dataclass
class DatasetSplit:
    """A pair of inputs and integer labels."""

    x: np.ndarray
    y: np.ndarray

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError("inputs and labels must have the same length")

    def __len__(self) -> int:
        return len(self.x)

    def subset(self, n: int) -> "DatasetSplit":
        """First ``n`` samples (splits are already shuffled at generation)."""
        if n <= 0:
            raise ValueError("subset size must be positive")
        return DatasetSplit(self.x[:n], self.y[:n])


def _smooth_noise(
    rng: np.random.Generator,
    shape: tuple[int, int, int],
    smoothness: int,
) -> np.ndarray:
    """Low-frequency noise obtained by upsampling a coarse random grid."""
    c, h, w = shape
    coarse_h = max(2, h // smoothness)
    coarse_w = max(2, w // smoothness)
    coarse = rng.normal(size=(c, coarse_h, coarse_w))
    # bilinear-ish upsampling via repeated nearest + box blur
    up = np.repeat(
        np.repeat(coarse, int(np.ceil(h / coarse_h)), axis=1),
        int(np.ceil(w / coarse_w)),
        axis=2,
    )[:, :h, :w]
    kernel = np.ones((3, 3)) / 9.0
    blurred = np.empty_like(up)
    padded = np.pad(up, ((0, 0), (1, 1), (1, 1)), mode="edge")
    for ci in range(c):
        acc = np.zeros((h, w))
        for dy in range(3):
            for dx in range(3):
                acc += kernel[dy, dx] * padded[ci, dy : dy + h, dx : dx + w]
        blurred[ci] = acc
    return blurred


class SyntheticImageDataset:
    """Class-prototype synthetic image classification dataset.

    Parameters
    ----------
    name:
        Dataset name (used in reports).
    input_shape:
        Per-sample shape ``(C, H, W)``.
    num_classes:
        Number of classes.
    train_size, test_size:
        Number of generated samples per split.
    noise_level:
        Standard deviation of the per-pixel noise added to prototypes.
        Larger values make the task harder and predictions less confident.
    seed:
        Seed controlling prototypes and sampling; the same seed always yields
        the same dataset.
    """

    def __init__(
        self,
        name: str,
        input_shape: tuple[int, int, int],
        num_classes: int,
        train_size: int = 512,
        test_size: int = 256,
        noise_level: float = 0.6,
        prototype_scale: float = 1.0,
        seed: int = 0,
    ) -> None:
        if num_classes < 2:
            raise ValueError("num_classes must be at least 2")
        if train_size <= 0 or test_size <= 0:
            raise ValueError("split sizes must be positive")
        self.name = name
        self.input_shape = tuple(input_shape)
        self.num_classes = int(num_classes)
        self.train_size = int(train_size)
        self.test_size = int(test_size)
        self.noise_level = float(noise_level)
        self.prototype_scale = float(prototype_scale)
        self.seed = int(seed)

        rng = np.random.default_rng(seed)
        self._prototypes = np.stack(
            [
                self.prototype_scale
                * _smooth_noise(rng, self.input_shape, smoothness=4)
                for _ in range(num_classes)
            ]
        )
        self.train = self._generate_split(
            self.train_size, np.random.default_rng(seed + 1)
        )
        self.test = self._generate_split(
            self.test_size, np.random.default_rng(seed + 2)
        )

    # ------------------------------------------------------------------ #
    def _generate_split(self, size: int, rng: np.random.Generator) -> DatasetSplit:
        labels = rng.integers(0, self.num_classes, size=size)
        images = np.empty((size, *self.input_shape), dtype=np.float64)
        for i, label in enumerate(labels):
            structured = _smooth_noise(rng, self.input_shape, smoothness=2)
            pixel = rng.normal(scale=self.noise_level, size=self.input_shape)
            images[i] = self._prototypes[label] + 0.5 * structured + pixel
        # normalise to roughly zero mean / unit variance
        images = (images - images.mean()) / (images.std() + 1e-8)
        return DatasetSplit(images, labels.astype(np.int64))

    def shifted_test_set(
        self,
        noise_multiplier: float = 2.0,
        intensity_shift: float = 0.5,
        seed: int | None = None,
    ) -> DatasetSplit:
        """Return a distribution-shifted copy of the test split.

        The shift adds extra pixel noise and a constant intensity offset;
        well-calibrated Bayesian models should respond with higher predictive
        uncertainty on this split.
        """
        rng = np.random.default_rng(self.seed + 1000 if seed is None else seed)
        extra = rng.normal(
            scale=self.noise_level * (noise_multiplier - 1.0),
            size=self.test.x.shape,
        )
        shifted = self.test.x + extra + intensity_shift
        return DatasetSplit(shifted, self.test.y.copy())

    def describe(self) -> dict:
        """Dataset metadata for reports."""
        return {
            "name": self.name,
            "input_shape": list(self.input_shape),
            "num_classes": self.num_classes,
            "train_size": self.train_size,
            "test_size": self.test_size,
            "noise_level": self.noise_level,
            "seed": self.seed,
        }


def mnist_like(
    train_size: int = 512, test_size: int = 256, seed: int = 0, image_size: int = 28
) -> SyntheticImageDataset:
    """Synthetic stand-in for MNIST: 1-channel images, 10 classes."""
    return SyntheticImageDataset(
        "mnist_like",
        (1, image_size, image_size),
        10,
        train_size=train_size,
        test_size=test_size,
        noise_level=0.5,
        seed=seed,
    )


def cifar10_like(
    train_size: int = 512, test_size: int = 256, seed: int = 0, image_size: int = 32
) -> SyntheticImageDataset:
    """Synthetic stand-in for CIFAR-10: 3-channel images, 10 classes."""
    return SyntheticImageDataset(
        "cifar10_like",
        (3, image_size, image_size),
        10,
        train_size=train_size,
        test_size=test_size,
        noise_level=0.7,
        seed=seed,
    )


def cifar100_like(
    train_size: int = 1024,
    test_size: int = 512,
    seed: int = 0,
    image_size: int = 32,
    num_classes: int = 100,
    noise_level: float = 0.8,
) -> SyntheticImageDataset:
    """Synthetic stand-in for CIFAR-100: 3-channel images, 100 classes.

    ``num_classes`` can be reduced (e.g. to 20) and ``noise_level`` raised for
    the laptop-scale experiments, which keeps the task structure while
    shrinking runtime and keeping the task hard enough that calibration
    differences are visible.
    """
    return SyntheticImageDataset(
        "cifar100_like",
        (3, image_size, image_size),
        num_classes,
        train_size=train_size,
        test_size=test_size,
        noise_level=noise_level,
        seed=seed,
    )


def svhn_like(
    train_size: int = 512, test_size: int = 256, seed: int = 0, image_size: int = 32
) -> SyntheticImageDataset:
    """Synthetic stand-in for SVHN: 3-channel digit images, 10 classes."""
    return SyntheticImageDataset(
        "svhn_like",
        (3, image_size, image_size),
        10,
        train_size=train_size,
        test_size=test_size,
        noise_level=0.9,
        seed=seed,
    )
