"""Synthetic dataset generators and loaders (DESIGN.md §3.5)."""

from .loaders import DataLoader
from .synthetic import (
    DatasetSplit,
    SyntheticImageDataset,
    cifar100_like,
    cifar10_like,
    mnist_like,
    svhn_like,
)

__all__ = [
    "DataLoader",
    "DatasetSplit",
    "SyntheticImageDataset",
    "mnist_like",
    "cifar10_like",
    "cifar100_like",
    "svhn_like",
]
