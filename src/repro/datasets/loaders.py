"""Mini-batch loader over in-memory datasets."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .synthetic import DatasetSplit

__all__ = ["DataLoader"]


class DataLoader:
    """Iterate over a :class:`DatasetSplit` in mini-batches.

    The loader is re-iterable; with ``shuffle=True`` each epoch uses a fresh
    permutation drawn from an internal seeded generator, so full training
    runs remain reproducible.
    """

    def __init__(
        self,
        split: DatasetSplit,
        batch_size: int = 64,
        shuffle: bool = True,
        drop_last: bool = False,
        seed: int = 0,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.split = split
        self.batch_size = int(batch_size)
        self.shuffle = bool(shuffle)
        self.drop_last = bool(drop_last)
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        n = len(self.split)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        n = len(self.split)
        indices = np.arange(n)
        if self.shuffle:
            self._rng.shuffle(indices)
        stop = (n // self.batch_size) * self.batch_size if self.drop_last else n
        for start in range(0, stop, self.batch_size):
            batch = indices[start : start + self.batch_size]
            if self.drop_last and len(batch) < self.batch_size:
                break
            yield self.split.x[batch], self.split.y[batch]
