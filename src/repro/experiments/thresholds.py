"""Data-derived CI benchmark gates, keyed on a runner fingerprint.

The CI matrix benchmark job ran ``continue-on-error: true`` for five PRs
because nobody could say what "too slow" meant on a shared runner.  This
module derives that answer from data: accumulated ``BENCH_serving.json``
artifacts (and grid-store metrics rows) are grouped by **runner
fingerprint** — ``{os}-{machine}-cpu{count}``, the facts that actually
move the numbers — and each directional metric gets a bound with slack:

* *higher-is-better* metrics (throughput, speedups, achieved rates)
  gate at ``min(observed) * (1 - margin)``;
* *lower-is-better* metrics (latency percentiles, per-batch glue,
  kernel timings) gate at ``max(observed) * (1 + margin)``.

Counters, labels and anything without a clear direction are never
gated.  The result is ``bench_thresholds.json``::

    {
      "_meta": {"margin": 0.25, "runs": 3, ...},
      "linux-x86_64-cpu4": {
        "parallel_serving": {"speedup_k4_vs_k1": {"min": 1.44}},
        "open_loop_steady": {"latency_p99_s": {"max": 0.0185}}
      }
    }

``benchmarks/conftest.py`` loads the checked-in file after every
benchmark run and enforces the bounds for the *current* fingerprint as a
hard gate — :func:`check_metrics` is the comparison.  A fingerprint with
no recorded history (a contributor's laptop, a fork's CI) falls back to
advisory-only: the numbers print, nothing fails.  Regenerate the file
with ``python -m repro.experiments thresholds`` as artifacts accumulate.
"""

from __future__ import annotations

import glob as _glob
import json
import os
import platform
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Mapping

__all__ = [
    "Violation",
    "check_metrics",
    "derive_thresholds",
    "load_bench_payloads",
    "runner_fingerprint",
]

#: metric-name fragments gated as higher-is-better
HIGHER_FRAGMENTS = ("throughput", "speedup", "rps", "achieved_rate")
#: metric-name fragments gated as lower-is-better
LOWER_FRAGMENTS = ("latency", "_p50", "_p95", "_p99", "glue", "gap")
#: lower-is-better *suffixes* (raw timings)
LOWER_SUFFIXES = ("_s", "_ms", "_us")
#: fragments never gated even when a direction rule matches (constants,
#: wall-clock bookkeeping, identifiers)
UNGATED_FRAGMENTS = ("offered", "duration", "generated", "recorded")

DEFAULT_MARGIN = 0.25


def runner_fingerprint() -> str:
    """``{os}-{machine}-cpu{count}`` — what a perf number was measured on."""
    return (
        f"{platform.system().lower()}-{platform.machine().lower()}"
        f"-cpu{os.cpu_count()}"
    )


def fingerprint_from_meta(meta: Mapping[str, Any]) -> str | None:
    """Recover a fingerprint from a ``BENCH_serving.json`` ``_meta`` section.

    Newer files carry ``runner_fingerprint`` directly; older ones are
    reconstructed best-effort from ``platform`` + ``cpu_count`` (the
    platform string is ``platform.platform()`` output, e.g.
    ``Linux-6.5.0-...-x86_64-with-glibc2.39``).
    """
    fingerprint = meta.get("runner_fingerprint")
    if isinstance(fingerprint, str) and fingerprint:
        return fingerprint
    plat, cpus = meta.get("platform"), meta.get("cpu_count")
    if not isinstance(plat, str) or not isinstance(cpus, int):
        return None
    system = plat.split("-", 1)[0].lower()
    machine = "unknown"
    for candidate in ("x86_64", "amd64", "aarch64", "arm64"):
        if candidate in plat.lower():
            machine = candidate
            break
    return f"{system}-{machine}-cpu{cpus}"


def metric_direction(name: str) -> str | None:
    """``"higher"`` / ``"lower"`` / ``None`` (= never gate) for one metric."""
    key = name.lower()
    if any(fragment in key for fragment in UNGATED_FRAGMENTS):
        return None
    if any(fragment in key for fragment in HIGHER_FRAGMENTS):
        return "higher"
    if any(fragment in key for fragment in LOWER_FRAGMENTS) or key.endswith(
        LOWER_SUFFIXES
    ):
        return "lower"
    return None


# ---------------------------------------------------------------------- #
# gathering run history
# ---------------------------------------------------------------------- #
def load_bench_payloads(patterns: Iterable[str | Path]) -> list[dict[str, Any]]:
    """Load ``BENCH_serving.json``-shaped files from paths and/or globs.

    Unreadable or non-dict files are skipped — threshold derivation is a
    best-effort sweep over whatever artifacts survived.
    """
    payloads: list[dict[str, Any]] = []
    for pattern in patterns:
        paths = sorted(_glob.glob(str(pattern))) or [str(pattern)]
        for path in paths:
            try:
                payload = json.loads(Path(path).read_text(encoding="utf-8"))
            except (OSError, ValueError):
                continue
            if isinstance(payload, dict):
                payloads.append(payload)
    return payloads


def store_payloads(store) -> list[dict[str, Any]]:
    """``BENCH``-shaped payloads from a grid store's metrics rows.

    Each recorded execution becomes one payload whose single section is
    named ``grid:<scenario>``, so grid observations feed the same
    derivation pipeline as benchmark artifacts.
    """
    from .grid import Cell

    payloads = []
    for row in store.results():
        cell = Cell(key=row["cell_key"], seed=row["seed"], params=row["params"])
        payloads.append(
            {
                "_meta": {"runner_fingerprint": row["runner_fingerprint"]},
                f"grid:{cell.scenario}": row["metrics"],
            }
        )
    return payloads


# ---------------------------------------------------------------------- #
# derivation
# ---------------------------------------------------------------------- #
def derive_thresholds(
    payloads: Iterable[Mapping[str, Any]],
    margin: float = DEFAULT_MARGIN,
) -> dict[str, Any]:
    """Per-fingerprint bounds from accumulated run payloads.

    ``margin`` is the slack around the observed envelope: 0.25 means a
    throughput may drop 25% below the *worst* recorded run before the
    gate fires (and a latency may exceed the worst by 25%).  Derived
    from min/max rather than the mean so a single lucky run can never
    produce a bound the same machine cannot ordinarily meet.
    """
    if not 0.0 <= margin < 1.0:
        raise ValueError("margin must be in [0, 1)")
    observed: dict[tuple[str, str, str], list[float]] = {}
    runs = 0
    for payload in payloads:
        meta = payload.get("_meta")
        fingerprint = (
            fingerprint_from_meta(meta) if isinstance(meta, Mapping) else None
        )
        if fingerprint is None:
            continue
        runs += 1
        for section, metrics in payload.items():
            if section == "_meta" or not isinstance(metrics, Mapping):
                continue
            for name, value in metrics.items():
                if not isinstance(value, (int, float)) or isinstance(value, bool):
                    continue
                if not (value == value and abs(value) != float("inf")):
                    continue  # NaN / inf never become bounds
                if metric_direction(name) is None:
                    continue
                observed.setdefault((fingerprint, section, name), []).append(
                    float(value)
                )
    thresholds: dict[str, Any] = {
        "_meta": {
            "margin": margin,
            "runs": runs,
            "generated_by": "python -m repro.experiments thresholds",
        }
    }
    for (fingerprint, section, name), values in sorted(observed.items()):
        bound: dict[str, float] = {"runs": len(values)}
        if metric_direction(name) == "higher":
            bound["min"] = min(values) * (1.0 - margin)
        else:
            bound["max"] = max(values) * (1.0 + margin)
        thresholds.setdefault(fingerprint, {}).setdefault(section, {})[name] = bound
    return thresholds


# ---------------------------------------------------------------------- #
# enforcement (the conftest gate)
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class Violation:
    """One metric outside its derived bound."""

    section: str
    metric: str
    value: float
    bound_kind: str  #: ``"min"`` or ``"max"``
    bound: float

    def __str__(self) -> str:
        op = "<" if self.bound_kind == "min" else ">"
        return (
            f"{self.section}.{self.metric} = {self.value:.6g} "
            f"{op} {self.bound_kind} bound {self.bound:.6g}"
        )


def check_metrics(
    results: Mapping[str, Mapping[str, Any]],
    thresholds: Mapping[str, Any],
    fingerprint: str | None = None,
) -> tuple[list[Violation], bool]:
    """Compare one run's recorded metrics against derived bounds.

    Returns ``(violations, enforced)``.  ``enforced`` is False when the
    fingerprint has no recorded history — the advisory-only fallback
    that keeps forks and unusual machines green — in which case
    ``violations`` is always empty.  Only sections present in
    ``results`` are checked: a benchmark subset run gates only what it
    measured.
    """
    fingerprint = fingerprint or runner_fingerprint()
    bounds = thresholds.get(fingerprint)
    if not isinstance(bounds, Mapping):
        return [], False
    violations: list[Violation] = []
    for section, metrics in results.items():
        section_bounds = bounds.get(section)
        if not isinstance(section_bounds, Mapping) or not isinstance(
            metrics, Mapping
        ):
            continue
        for name, bound in section_bounds.items():
            value = metrics.get(name)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                continue
            if not isinstance(bound, Mapping):
                continue
            if "min" in bound and value < float(bound["min"]):
                violations.append(
                    Violation(section, name, float(value), "min", float(bound["min"]))
                )
            if "max" in bound and value > float(bound["max"]):
                violations.append(
                    Violation(section, name, float(value), "max", float(bound["max"]))
                )
    return violations, True
