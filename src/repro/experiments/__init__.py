"""Scenario-grid experiment harness with a persistent results store.

The paper's claims span a grid of operating points — architecture x MC
samples x exit policy x batcher geometry x worker backend x traffic
shape — but the benchmarks under ``benchmarks/`` are single-point spot
checks.  This package turns "handles many scenarios" into a queryable
artifact, PyExperimenter-style:

* :class:`GridSpec` (:mod:`repro.experiments.grid`) declares the
  cartesian product of scenario axes, with per-cell seeds and
  replicates; it expands to a deterministic list of *cells*.
* :class:`ResultsStore` (:mod:`repro.experiments.store`) persists the
  cells in a sqlite database with a status column
  (``pending``/``running``/``done``/``failed``).  Runners *claim*
  pending cells transactionally, so several runner processes can chew
  on one grid concurrently, and a grid interrupted mid-run (SIGKILL
  included) resumes where it stopped instead of recomputing ``done``
  cells.
* :class:`ExperimentRunner` (:mod:`repro.experiments.runner`) executes
  each claimed cell through the real serving stack —
  :class:`~repro.serving.ServingEngine`, the dynamic batcher, the
  thread/process worker pools — under the cell's traffic schedule, and
  writes one metrics row (throughput, p50/p95/p99, shed/crash/cache
  counters, a bit-identity hash) back to the store.
* :mod:`repro.experiments.report` exports pandas-free markdown / CSV
  percentile tables from the store.
* :mod:`repro.experiments.thresholds` derives per-runner-fingerprint
  regression bounds from accumulated ``BENCH_serving.json`` artifacts
  (and grid stores) and emits the ``bench_thresholds.json`` that
  ``benchmarks/conftest.py`` enforces as hard CI gates.

``python -m repro.experiments`` is the CLI over all of it (``init`` /
``run`` / ``status`` / ``report`` / ``thresholds`` — the ``make grid``
entry point).
"""

from .grid import GRIDS, Cell, GridSpec, smoke_grid
from .report import csv_table, markdown_table, summary_table
from .runner import ExperimentRunner, RunSummary
from .store import CellRow, ResultsStore
from .thresholds import (
    check_metrics,
    derive_thresholds,
    runner_fingerprint,
)

__all__ = [
    "Cell",
    "CellRow",
    "ExperimentRunner",
    "GRIDS",
    "GridSpec",
    "ResultsStore",
    "RunSummary",
    "check_metrics",
    "csv_table",
    "derive_thresholds",
    "markdown_table",
    "runner_fingerprint",
    "smoke_grid",
    "summary_table",
]
