"""Execute claimed grid cells through the real serving stack.

:class:`ExperimentRunner` is the worker side of the harness: it pulls
pending cells from a :class:`~repro.experiments.store.ResultsStore`,
builds the cell's model and :class:`~repro.serving.ServingConfig`, and
drives a :class:`~repro.serving.ServingEngine` — dynamic batcher, thread
or process workers, ring or pipe transport — under the cell's traffic
schedule.  One metrics row per execution goes back to the store:

* ``throughput_rps`` and the nearest-rank ``latency_p50/p95/p99_s``
  tail, measured by the runner's own clock over the load phase;
* the engine's counters — batches, mean batch size, shed, crashes,
  respawns and activation-cache hits/misses;
* ``bit_hash``: a blake2b digest over the probabilities of a small
  *sequential probe* submitted before the load phase.  One-at-a-time
  submission pins the batch boundaries, and batch sequence numbers seed
  the MC contexts, so the probe is bit-identical across worker counts,
  backends and transports — the cross-cell invariant that catches a
  numerics regression no throughput number would.

Traffic shapes (the ``traffic`` cell axis):

* ``sequential`` — ``num_requests`` examples submitted one at a time
  (closed loop; deterministic batching, so replicates of a cell agree
  bit-for-bit);
* ``poisson`` / ``burst`` — the seeded open-loop arrival schedules of
  :mod:`repro.serving.loadgen`, fired at the engine directly (no HTTP)
  with a bounded in-flight budget that *drops* rather than queues.

A cell that raises is marked ``failed`` with its traceback; the runner
moves on to the next cell, so one broken scenario cannot wedge a grid.
"""

from __future__ import annotations

import asyncio
import hashlib
import math
import os
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

import numpy as np

from ..core.bayesnn import MultiExitBayesNet, MultiExitConfig
from ..nn.architectures import get_architecture
from ..serving.config import BatcherConfig, ServingConfig
from ..serving.engine import ServingEngine
from ..serving.loadgen import burst_schedule, poisson_schedule
from .store import CellRow, ResultsStore
from .thresholds import runner_fingerprint

__all__ = ["ExperimentRunner", "RunSummary", "build_model", "build_serving_config"]

#: examples in the deterministic bit-identity probe (see module docstring)
PROBE_REQUESTS = 4


def build_model(arch: Mapping[str, Any], seed: int) -> MultiExitBayesNet:
    """Build the cell's multi-exit model from its ``arch`` parameters."""
    spec = get_architecture(
        arch["name"],
        input_shape=tuple(arch["input_shape"]),
        num_classes=int(arch["num_classes"]),
        width_multiplier=float(arch["width_multiplier"]),
    )
    config = MultiExitConfig(
        num_exits=int(arch["num_exits"]),
        mcd_layers_per_exit=int(arch["mcd_layers_per_exit"]),
        dropout_rate=float(arch["dropout_rate"]),
        seed=seed,
    )
    return MultiExitBayesNet(spec, config)


def build_serving_config(params: Mapping[str, Any]) -> ServingConfig:
    """Build the cell's :class:`ServingConfig` from its parameters."""
    return ServingConfig(
        num_samples=int(params["num_samples"]),
        early_exit_threshold=params["exit_policy"],
        batcher=BatcherConfig(**params["batcher"]),
        workers=int(params["workers"]),
        worker_backend=params["worker_backend"],
        worker_transport=params["worker_transport"],
    )


def _percentile(sorted_values: list[float], pct: float) -> float:
    """Nearest-rank percentile over an already-sorted sample."""
    if not sorted_values:
        return float("nan")
    rank = max(0, math.ceil(pct / 100.0 * len(sorted_values)) - 1)
    return sorted_values[rank]


@dataclass
class RunSummary:
    """What one :meth:`ExperimentRunner.run` invocation did."""

    runner_id: str
    claimed: int = 0
    done: int = 0
    failed: int = 0
    #: scenario label -> status, in execution order
    cells: list[tuple[str, str]] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "runner_id": self.runner_id,
            "claimed": self.claimed,
            "done": self.done,
            "failed": self.failed,
            "cells": [list(item) for item in self.cells],
        }


class ExperimentRunner:
    """Claim-execute-record loop over one results store.

    Parameters
    ----------
    store:
        The shared :class:`ResultsStore` (several runners may point at
        one file).
    runner_id:
        Identity written into claims (defaults to ``host:pid``).
    execute:
        Override of the per-cell execution function (``(params, seed) ->
        metrics dict``) — the seam the store/runner tests use to run a
        grid without paying for real serving engines.
    """

    def __init__(
        self,
        store: ResultsStore,
        runner_id: str | None = None,
        execute: Callable[[Mapping[str, Any], int], Mapping[str, Any]]
        | None = None,
    ) -> None:
        self.store = store
        self.runner_id = runner_id or f"{os.uname().nodename}:{os.getpid()}"
        self._execute = execute or run_cell

    def run(
        self,
        max_cells: int | None = None,
        progress: Callable[[str], None] | None = None,
    ) -> RunSummary:
        """Claim and execute pending cells until drained (or ``max_cells``)."""
        summary = RunSummary(runner_id=self.runner_id)
        while max_cells is None or summary.claimed < max_cells:
            row = self.store.claim(self.runner_id)
            if row is None:
                break
            summary.claimed += 1
            label = _scenario_label(row)
            if progress is not None:
                progress(f"running {label}")
            try:
                metrics = dict(self._execute(row.params, row.seed))
            except Exception:
                self.store.mark_failed(row.id, traceback.format_exc())
                summary.failed += 1
                summary.cells.append((label, "failed"))
            else:
                self.store.mark_done(row.id, metrics, runner_fingerprint())
                summary.done += 1
                summary.cells.append((label, "done"))
        return summary


def _scenario_label(row: CellRow) -> str:
    from .grid import Cell

    return Cell(key=row.key, seed=row.seed, params=row.params).scenario


# ---------------------------------------------------------------------- #
# one cell, for real
# ---------------------------------------------------------------------- #
def run_cell(params: Mapping[str, Any], seed: int) -> dict[str, Any]:
    """Execute one cell through a real serving engine; returns its metrics."""
    return asyncio.run(_run_cell_async(params, seed))


async def _run_cell_async(params: Mapping[str, Any], seed: int) -> dict[str, Any]:
    model = build_model(params["arch"], seed)
    config = build_serving_config(params)
    rng = np.random.default_rng(seed)
    examples = rng.normal(size=(16, *params["arch"]["input_shape"]))
    traffic = params["traffic"]

    engine = ServingEngine(model, config)
    async with engine:
        # --- deterministic probe: one request per batch, fixed batch seqs
        digest = hashlib.blake2b(digest_size=8)
        for i in range(PROBE_REQUESTS):
            result = await engine.submit(examples[i % len(examples)])
            digest.update(
                np.ascontiguousarray(result.probs, dtype=np.float64).tobytes()
            )
        bit_hash = digest.hexdigest()

        # --- load phase under the cell's traffic shape
        latencies: list[float] = []
        dropped = failed = 0
        t0 = time.perf_counter()
        if traffic["process"] == "sequential":
            for i in range(int(traffic["num_requests"])):
                result = await engine.submit(examples[i % len(examples)])
                latencies.append(result.latency_s)
            scheduled = sent = int(traffic["num_requests"])
        else:
            rate = float(traffic["rate"])
            duration = float(traffic["duration"])
            if traffic["process"] == "poisson":
                offsets = poisson_schedule(rate, duration, seed)
            else:
                offsets = burst_schedule(rate, duration, int(traffic["burst_size"]))
            scheduled = len(offsets)
            sem = asyncio.Semaphore(int(traffic["max_outstanding"]))
            tasks: list[asyncio.Task] = []
            loop = asyncio.get_running_loop()

            async def fire(x: np.ndarray) -> None:
                nonlocal failed
                t_sub = loop.time()
                try:
                    await engine.submit(x)
                except Exception:
                    failed += 1
                else:
                    latencies.append(loop.time() - t_sub)
                finally:
                    sem.release()

            start = loop.time()
            for i, offset in enumerate(offsets):
                delay = start + offset - loop.time()
                if delay > 0:
                    await asyncio.sleep(delay)
                if sem.locked():
                    # budget exhausted: open-loop semantics drop, never queue
                    dropped += 1
                    continue
                await sem.acquire()
                tasks.append(
                    asyncio.ensure_future(fire(examples[i % len(examples)]))
                )
            if tasks:
                await asyncio.gather(*tasks)
            sent = len(tasks)
        wall = time.perf_counter() - t0
        stats = engine.stats()

    lat = sorted(latencies)
    ok = len(latencies)
    return {
        "scheduled": scheduled,
        "sent": sent,
        "ok": ok,
        "dropped": dropped,
        "failed": failed,
        "duration_s": wall,
        "throughput_rps": ok / wall if wall > 0 else 0.0,
        "latency_p50_s": _percentile(lat, 50),
        "latency_p95_s": _percentile(lat, 95),
        "latency_p99_s": _percentile(lat, 99),
        "num_batches": stats.num_batches,
        "mean_batch_size": stats.mean_batch_size,
        "requests_shed": stats.requests_shed,
        "worker_crashes": stats.worker_crashes,
        "workers_respawned": stats.workers_respawned,
        "cache_hits": stats.cache_hits,
        "cache_misses": stats.cache_misses,
        "transport": stats.transport,
        "bit_hash": bit_hash,
    }
