"""Sqlite-backed results store with transactional cell claiming.

The store is the coordination point of the grid harness, in the
PyExperimenter mould: the grid's cells live in a ``cells`` table with a
``status`` column (``pending`` → ``running`` → ``done``/``failed``), and
any number of runner processes — on one machine or several sharing a
filesystem — pull work by *claiming* pending cells inside an immediate
transaction.  A claim is a compare-and-swap (``UPDATE … WHERE status =
'pending'``), so two concurrent runners can never execute the same cell,
and a runner that dies mid-cell (SIGKILL included) leaves an inert
``running`` row that :meth:`ResultsStore.reset_running` returns to the
pool — ``done`` work is never recomputed.

Metrics land in a separate append-only ``metrics`` table (one JSON row
per completed execution, stamped with the runner fingerprint), so
re-running a reset cell keeps the old observation for threshold
derivation while the cell's *status* reflects only the latest attempt.

Every public method opens its own short-lived connection: the store
object itself holds no file handle, which makes it trivially safe to
share across threads, fork boundaries and crash/restart cycles.
"""

from __future__ import annotations

import json
import sqlite3
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Mapping

from .grid import Cell

__all__ = ["CellRow", "ResultsStore", "STATUSES"]

STATUSES = ("pending", "running", "done", "failed")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS cells (
    id          INTEGER PRIMARY KEY,
    cell_key    TEXT NOT NULL UNIQUE,
    seed        INTEGER NOT NULL,
    params      TEXT NOT NULL,
    status      TEXT NOT NULL DEFAULT 'pending'
                CHECK (status IN ('pending', 'running', 'done', 'failed')),
    claimed_by  TEXT,
    claimed_at  REAL,
    finished_at REAL,
    error       TEXT
);
CREATE INDEX IF NOT EXISTS idx_cells_status ON cells (status);
CREATE TABLE IF NOT EXISTS metrics (
    id                 INTEGER PRIMARY KEY,
    cell_id            INTEGER NOT NULL REFERENCES cells (id),
    recorded_at        REAL NOT NULL,
    runner_fingerprint TEXT NOT NULL,
    metrics            TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_metrics_cell ON metrics (cell_id);
"""


@dataclass(frozen=True)
class CellRow:
    """One ``cells`` row as Python values (``params`` decoded)."""

    id: int
    key: str
    seed: int
    params: dict[str, Any]
    status: str
    claimed_by: str | None = None
    error: str | None = None


def _row_to_cell(row: sqlite3.Row) -> CellRow:
    return CellRow(
        id=int(row["id"]),
        key=row["cell_key"],
        seed=int(row["seed"]),
        params=json.loads(row["params"]),
        status=row["status"],
        claimed_by=row["claimed_by"],
        error=row["error"],
    )


class ResultsStore:
    """Persistent grid state in one sqlite file (see module docstring)."""

    def __init__(self, path: str | Path, timeout: float = 30.0) -> None:
        self.path = Path(path)
        self.timeout = float(timeout)
        with self._connect() as conn:
            conn.executescript(_SCHEMA)

    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(self.path, timeout=self.timeout)
        conn.row_factory = sqlite3.Row
        # WAL lets readers (status/report) proceed under a writer; the
        # pragma is a no-op where unsupported (e.g. some network mounts)
        conn.execute("PRAGMA journal_mode=WAL")
        return conn

    # ------------------------------------------------------------------ #
    # grid initialisation
    # ------------------------------------------------------------------ #
    def ensure_cells(self, cells: Iterable[Cell]) -> int:
        """Insert cells that are not in the store yet; returns how many.

        Idempotent by ``cell_key``: re-initialising from the same spec
        adds nothing, extending the grid adds only the new points, and
        existing rows keep their status — an ``init`` over a half-done
        store never resets work.
        """
        added = 0
        with self._connect() as conn:
            for cell in cells:
                cursor = conn.execute(
                    "INSERT OR IGNORE INTO cells (cell_key, seed, params) "
                    "VALUES (?, ?, ?)",
                    (cell.key, cell.seed, json.dumps(cell.params, sort_keys=True)),
                )
                added += cursor.rowcount
        return added

    # ------------------------------------------------------------------ #
    # the claim protocol
    # ------------------------------------------------------------------ #
    def claim(self, runner_id: str) -> CellRow | None:
        """Atomically claim the oldest pending cell (``None`` when drained).

        ``BEGIN IMMEDIATE`` takes the write lock before the SELECT, so
        two runners cannot pick the same row; the UPDATE re-checks
        ``status = 'pending'`` anyway, making the claim a true
        compare-and-swap even if the transaction mode ever changes.
        """
        conn = self._connect()
        try:
            conn.isolation_level = None
            conn.execute("BEGIN IMMEDIATE")
            row = conn.execute(
                "SELECT * FROM cells WHERE status = 'pending' "
                "ORDER BY id LIMIT 1"
            ).fetchone()
            if row is None:
                conn.execute("ROLLBACK")
                return None
            updated = conn.execute(
                "UPDATE cells SET status = 'running', claimed_by = ?, "
                "claimed_at = ?, error = NULL "
                "WHERE id = ? AND status = 'pending'",
                (runner_id, time.time(), row["id"]),
            ).rowcount
            conn.execute("COMMIT")
            if not updated:  # pragma: no cover - CAS lost under BEGIN IMMEDIATE
                return None
            return _row_to_cell(row)
        finally:
            conn.close()

    def mark_done(
        self,
        cell_id: int,
        metrics: Mapping[str, Any],
        runner_fingerprint: str,
    ) -> None:
        """Record a metrics row and flip the cell to ``done``."""
        with self._connect() as conn:
            conn.execute(
                "INSERT INTO metrics "
                "(cell_id, recorded_at, runner_fingerprint, metrics) "
                "VALUES (?, ?, ?, ?)",
                (
                    cell_id,
                    time.time(),
                    runner_fingerprint,
                    json.dumps(dict(metrics), sort_keys=True),
                ),
            )
            conn.execute(
                "UPDATE cells SET status = 'done', finished_at = ?, "
                "error = NULL WHERE id = ?",
                (time.time(), cell_id),
            )

    def mark_failed(self, cell_id: int, error: str) -> None:
        """Flip a cell to ``failed``, keeping the error for post-mortems."""
        with self._connect() as conn:
            conn.execute(
                "UPDATE cells SET status = 'failed', finished_at = ?, "
                "error = ? WHERE id = ?",
                (time.time(), str(error)[:4000], cell_id),
            )

    # ------------------------------------------------------------------ #
    # recovery
    # ------------------------------------------------------------------ #
    def reset_running(
        self, older_than: float = 0.0, claimed_by: str | None = None
    ) -> int:
        """Return ``running`` cells to ``pending``; returns how many.

        A runner that was SIGKILLed leaves its claims ``running``
        forever; a re-invocation calls this before pulling work.
        ``older_than`` (seconds since the claim) confines the reset to
        stale claims so live sibling runners keep theirs;
        ``claimed_by`` confines it to one runner id.
        """
        query = "UPDATE cells SET status = 'pending', claimed_by = NULL, \
claimed_at = NULL WHERE status = 'running' AND claimed_at <= ?"
        args: list[Any] = [time.time() - older_than]
        if claimed_by is not None:
            query += " AND claimed_by = ?"
            args.append(claimed_by)
        with self._connect() as conn:
            return conn.execute(query, args).rowcount

    def reset_failed(self) -> int:
        """Return every ``failed`` cell to ``pending``; returns how many."""
        with self._connect() as conn:
            return conn.execute(
                "UPDATE cells SET status = 'pending', claimed_by = NULL, "
                "claimed_at = NULL, error = NULL WHERE status = 'failed'"
            ).rowcount

    # ------------------------------------------------------------------ #
    # queries (status / reporting)
    # ------------------------------------------------------------------ #
    def counts(self) -> dict[str, int]:
        """Cells per status (all four statuses always present)."""
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT status, COUNT(*) AS n FROM cells GROUP BY status"
            ).fetchall()
        out = {status: 0 for status in STATUSES}
        out.update({row["status"]: int(row["n"]) for row in rows})
        return out

    def cells(self, status: str | None = None) -> list[CellRow]:
        """All cells, optionally filtered by status, in id order."""
        query = "SELECT * FROM cells"
        args: tuple[Any, ...] = ()
        if status is not None:
            if status not in STATUSES:
                raise ValueError(f"unknown status {status!r}")
            query += " WHERE status = ?"
            args = (status,)
        with self._connect() as conn:
            return [_row_to_cell(row) for row in conn.execute(query + " ORDER BY id", args)]

    def results(self) -> list[dict[str, Any]]:
        """One dict per metrics row, joined with its cell's parameters.

        Every recorded execution is returned (a reset-and-rerun cell
        contributes one row per attempt), newest last — the raw material
        for the report tables and threshold derivation.
        """
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT c.cell_key, c.seed, c.params, c.status, "
                "m.recorded_at, m.runner_fingerprint, m.metrics "
                "FROM metrics m JOIN cells c ON c.id = m.cell_id "
                "ORDER BY m.id"
            ).fetchall()
        out = []
        for row in rows:
            out.append(
                {
                    "cell_key": row["cell_key"],
                    "seed": int(row["seed"]),
                    "params": json.loads(row["params"]),
                    "status": row["status"],
                    "recorded_at": float(row["recorded_at"]),
                    "runner_fingerprint": row["runner_fingerprint"],
                    "metrics": json.loads(row["metrics"]),
                }
            )
        return out
