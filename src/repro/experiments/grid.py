"""Declarative scenario grids: axes in, deterministic cells out.

A :class:`GridSpec` is the experiment analogue of
:class:`~repro.serving.ServingConfig`: a frozen, validated, JSON
round-trippable description of *what to measure* — the cartesian product
of scenario axes, how many replicates of each point to run, and the base
seed the per-cell seeds derive from.  Expanding a spec yields
:class:`Cell` objects whose parameters are plain JSON dicts (they live
in a sqlite row) and whose identity is a content digest of those
parameters, so re-initialising a store from the same spec is idempotent
and extending a grid only adds the new points.

Axes
----
``architectures``
    Model construction: ``{"name", "input_shape", "num_classes",
    "width_multiplier", "num_exits", "mcd_layers_per_exit"}`` — anything
    :func:`repro.nn.architectures.get_architecture` +
    :class:`~repro.core.MultiExitConfig` understand.
``num_samples``
    MC samples per prediction (the paper's S).
``exit_policies``
    ``None`` = full MC sampling; a float in (0, 1) = early-exit
    confidence threshold.
``batchers``
    :class:`~repro.serving.BatcherConfig` field overrides.
``workers`` / ``worker_backends`` / ``worker_transports``
    The fleet axes of :class:`~repro.serving.ServingConfig`.
``traffic``
    The load shape: ``{"process": "sequential" | "poisson" | "burst",
    ...}``.  ``sequential`` submits ``num_requests`` examples one at a
    time (closed loop, deterministic batching — the bit-identity
    shape); ``poisson``/``burst`` replay the seeded open-loop arrival
    schedules of :mod:`repro.serving.loadgen`.

Every cell's seed is derived from the spec's ``base_seed`` and the
digest of the cell's **model axes only** (architecture, ``num_samples``,
exit policy), so two runners expanding the same spec agree on every
seed without coordination, replicates of one grid point repeat the
identical seeded workload, and cells that differ only in *execution*
axes (batcher geometry, workers, backend, transport, traffic) serve
the same seeded model.  The runner's sequential bit-identity probe must
therefore hash identically across that whole execution slice — turning
``bit_hash`` into a grid-wide numerics invariant, not just a label.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from ..serving.config import WORKER_BACKENDS, WORKER_TRANSPORTS, BatcherConfig

__all__ = ["Cell", "GridSpec", "GRIDS", "smoke_grid", "paper_grid"]

TRAFFIC_PROCESSES = ("sequential", "poisson", "burst")

#: architecture-axis defaults; each grid entry overrides what it cares about
_ARCH_DEFAULTS: dict[str, Any] = {
    "name": "lenet5",
    "input_shape": (1, 12, 12),
    "num_classes": 5,
    "width_multiplier": 0.5,
    "num_exits": 2,
    "mcd_layers_per_exit": 1,
    "dropout_rate": 0.25,
}

#: traffic-axis defaults (see module docstring for the processes)
_TRAFFIC_DEFAULTS: dict[str, Any] = {
    "process": "sequential",
    "num_requests": 24,
    "rate": 50.0,
    "duration": 1.0,
    "burst_size": 8,
    "max_outstanding": 64,
}


def _canonical(value: Any) -> Any:
    """Normalise params for hashing/storage: tuples->lists, sorted keys."""
    if isinstance(value, Mapping):
        return {key: _canonical(value[key]) for key in sorted(value)}
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    return value


def cell_digest(params: Mapping[str, Any]) -> str:
    """Stable content digest of one cell's parameters (its identity)."""
    blob = json.dumps(_canonical(params), sort_keys=True).encode("utf-8")
    return hashlib.blake2b(blob, digest_size=16).hexdigest()


@dataclass(frozen=True)
class Cell:
    """One grid point x replicate, ready to be stored and executed.

    ``params`` is a plain JSON-ready dict (``arch``, ``num_samples``,
    ``exit_policy``, ``batcher``, ``workers``, ``worker_backend``,
    ``worker_transport``, ``traffic``, ``replicate``); ``key`` is its
    content digest and ``seed`` the derived per-cell seed.
    """

    key: str
    seed: int
    params: dict[str, Any]

    @property
    def scenario(self) -> str:
        """Compact human-readable label for tables and logs."""
        p = self.params
        arch = p["arch"]
        policy = (
            "mc" if p["exit_policy"] is None else f"ee{p['exit_policy']:g}"
        )
        return (
            f"{arch['name']}-S{p['num_samples']}-{policy}"
            f"-b{p['batcher'].get('max_batch_size', 32)}"
            f"-{p['worker_backend']}{p['workers']}"
            f"-{p['traffic']['process']}"
            f"-r{p['replicate']}"
        )


@dataclass(frozen=True)
class GridSpec:
    """Cartesian product of scenario axes + replicates and seeding."""

    architectures: tuple[Mapping[str, Any], ...] = (dict(_ARCH_DEFAULTS),)
    num_samples: tuple[int, ...] = (8,)
    exit_policies: tuple[float | None, ...] = (None,)
    batchers: tuple[Mapping[str, Any], ...] = ({},)
    workers: tuple[int, ...] = (1,)
    worker_backends: tuple[str, ...] = ("thread",)
    worker_transports: tuple[str, ...] = ("ring",)
    traffic: tuple[Mapping[str, Any], ...] = (dict(_TRAFFIC_DEFAULTS),)
    replicates: int = 1
    base_seed: int = 0

    def __post_init__(self) -> None:
        for axis in (
            "architectures",
            "num_samples",
            "exit_policies",
            "batchers",
            "workers",
            "worker_backends",
            "worker_transports",
            "traffic",
        ):
            if not getattr(self, axis):
                raise ValueError(f"axis {axis!r} must not be empty")
        if self.replicates <= 0:
            raise ValueError("replicates must be positive")
        for s in self.num_samples:
            if s <= 0:
                raise ValueError("num_samples entries must be positive")
        for policy in self.exit_policies:
            if policy is not None and not (0.0 < policy < 1.0):
                raise ValueError("exit policies must be None or in (0, 1)")
        for overrides in self.batchers:
            BatcherConfig(**{**dict(overrides)})  # validates eagerly
        for k in self.workers:
            if k <= 0:
                raise ValueError("workers entries must be positive")
        for backend in self.worker_backends:
            if backend not in WORKER_BACKENDS:
                raise ValueError(
                    f"worker backend must be one of {sorted(WORKER_BACKENDS)}, "
                    f"got {backend!r}"
                )
        for transport in self.worker_transports:
            if transport not in WORKER_TRANSPORTS:
                raise ValueError(
                    f"worker transport must be one of "
                    f"{sorted(WORKER_TRANSPORTS)}, got {transport!r}"
                )
        for shape in self.traffic:
            process = shape.get("process", "sequential")
            if process not in TRAFFIC_PROCESSES:
                raise ValueError(
                    f"traffic process must be one of "
                    f"{sorted(TRAFFIC_PROCESSES)}, got {process!r}"
                )

    # ------------------------------------------------------------------ #
    # expansion
    # ------------------------------------------------------------------ #
    def cells(self) -> list[Cell]:
        """Expand to one :class:`Cell` per (grid point x replicate)."""
        out: list[Cell] = []
        for arch, s, policy, batcher, k, backend, transport, shape in (
            itertools.product(
                self.architectures,
                self.num_samples,
                self.exit_policies,
                self.batchers,
                self.workers,
                self.worker_backends,
                self.worker_transports,
                self.traffic,
            )
        ):
            point = _canonical(
                {
                    "arch": {**_ARCH_DEFAULTS, **dict(arch)},
                    "num_samples": s,
                    "exit_policy": policy,
                    "batcher": dict(batcher),
                    "workers": k,
                    "worker_backend": backend,
                    "worker_transport": transport,
                    "traffic": {**_TRAFFIC_DEFAULTS, **dict(shape)},
                }
            )
            model_axes = {
                key: point[key] for key in ("arch", "num_samples", "exit_policy")
            }
            seed = self.cell_seed(cell_digest(model_axes))
            for replicate in range(self.replicates):
                params = dict(point, replicate=replicate)
                out.append(Cell(key=cell_digest(params), seed=seed, params=params))
        return out

    def cell_seed(self, key: str) -> int:
        """Derive a cell's seed from the base seed and a model-axes digest.

        The digest covers only architecture, ``num_samples`` and exit
        policy — not execution axes or the replicate index — so every
        cell serving the same model shares a seed (see module
        docstring: this is what makes ``bit_hash`` comparable across
        backends, worker counts and batcher geometries).
        """
        blob = f"{self.base_seed}:{key}".encode("utf-8")
        return int.from_bytes(
            hashlib.blake2b(blob, digest_size=4).digest(), "big"
        )

    # ------------------------------------------------------------------ #
    # JSON round trip (grid files for the CLI)
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, Any]:
        return _canonical(dataclasses.asdict(self))

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "GridSpec":
        names = {f.name for f in dataclasses.fields(cls)}
        unknown = set(payload) - names
        if unknown:
            raise ValueError(f"unknown GridSpec fields: {sorted(unknown)}")
        kwargs: dict[str, Any] = {}
        for f in dataclasses.fields(cls):
            if f.name not in payload:
                continue
            value = payload[f.name]
            if f.name in ("replicates", "base_seed"):
                kwargs[f.name] = int(value)
            else:
                kwargs[f.name] = tuple(value)
        return cls(**kwargs)


def _tiny_arch(**overrides: Any) -> dict[str, Any]:
    arch = dict(_ARCH_DEFAULTS)
    arch.update(overrides)
    return arch


def smoke_grid() -> GridSpec:
    """The CI smoke grid: 2x2 (S x batch size), sequential traffic.

    Deliberately small and thread-backed — four cells a 1-core runner
    finishes in seconds — it exists to prove the claim/resume machinery
    end to end, not to measure anything.
    """
    return GridSpec(
        architectures=(_tiny_arch(),),
        num_samples=(4, 8),
        batchers=({"max_batch_size": 8}, {"max_batch_size": 32}),
        traffic=({"process": "sequential", "num_requests": 16},),
    )


def paper_grid() -> GridSpec:
    """A paper-shaped sweep: arch x S x exit policy x backend x traffic."""
    return GridSpec(
        architectures=(
            _tiny_arch(),
            _tiny_arch(name="resnet10", width_multiplier=0.125),
        ),
        num_samples=(4, 10),
        exit_policies=(None, 0.7),
        batchers=({"max_batch_size": 16}, {"max_batch_size": 32}),
        workers=(1, 2),
        worker_backends=("thread", "process"),
        traffic=(
            {"process": "poisson", "rate": 40.0, "duration": 2.0},
            {"process": "burst", "rate": 40.0, "duration": 2.0},
        ),
        replicates=2,
    )


#: named grids the CLI accepts via ``--grid <name>``
GRIDS: dict[str, Any] = {"smoke": smoke_grid, "paper": paper_grid}
