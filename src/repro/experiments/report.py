"""Pandas-free tables over a grid store: markdown and CSV exports.

The store answers "what happened"; this module renders it the way
huggingbench's ``ExperimentRunner`` renders its percentile tables — one
row per observation with the scenario label and the headline columns
(throughput, p50/p95/p99, shed/crash/cache counters, bit hash), plus an
aggregate view that folds replicates of the same grid point into
mean/min/max summaries.  Everything is plain ``str.format`` over dicts:
the exports must work on the bare CI image, which has numpy but not
pandas, and the numbers are small enough that a dataframe would be
ceremony anyway.
"""

from __future__ import annotations

import csv
import io
from typing import Any, Mapping, Sequence

from .grid import Cell
from .store import ResultsStore

__all__ = ["csv_table", "grid_rows", "markdown_table", "summary_table"]

#: default columns of the per-observation tables, in display order
COLUMNS = (
    "scenario",
    "status",
    "ok",
    "dropped",
    "failed",
    "throughput_rps",
    "latency_p50_s",
    "latency_p95_s",
    "latency_p99_s",
    "mean_batch_size",
    "requests_shed",
    "worker_crashes",
    "cache_hits",
    "bit_hash",
)


def grid_rows(store: ResultsStore) -> list[dict[str, Any]]:
    """One flat dict per recorded execution: scenario label + metrics."""
    rows = []
    for result in store.results():
        cell = Cell(
            key=result["cell_key"],
            seed=result["seed"],
            params=result["params"],
        )
        row: dict[str, Any] = {
            "scenario": cell.scenario,
            "cell_key": result["cell_key"],
            "seed": result["seed"],
            "status": result["status"],
            "runner_fingerprint": result["runner_fingerprint"],
        }
        row.update(result["metrics"])
        rows.append(row)
    return rows


def _format(value: Any) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.4g}"
    if value is None:
        return ""
    return str(value)


def markdown_table(
    store: ResultsStore, columns: Sequence[str] = COLUMNS
) -> str:
    """GitHub-flavoured table of every recorded execution."""
    rows = grid_rows(store)
    lines = [
        "### Experiment grid results",
        "",
        "| " + " | ".join(columns) + " |",
        "| " + " | ".join("---" for _ in columns) + " |",
    ]
    for row in rows:
        lines.append(
            "| " + " | ".join(_format(row.get(col)) for col in columns) + " |"
        )
    if not rows:
        lines.append("| _no results recorded_ " + "| " * (len(columns) - 1) + "|")
    counts = store.counts()
    lines += [
        "",
        "cells: "
        + ", ".join(f"{counts[status]} {status}" for status in sorted(counts)),
    ]
    return "\n".join(lines) + "\n"


def csv_table(store: ResultsStore, columns: Sequence[str] | None = None) -> str:
    """CSV of every recorded execution (all columns unless restricted)."""
    rows = grid_rows(store)
    if columns is None:
        seen: dict[str, None] = {}
        for row in rows:
            for key in row:
                seen.setdefault(key)
        columns = list(seen) or list(COLUMNS)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(columns), extrasaction="ignore")
    writer.writeheader()
    for row in rows:
        writer.writerow({col: row.get(col, "") for col in columns})
    return buffer.getvalue()


#: metrics summarised across replicates (mean / min / max)
SUMMARY_METRICS = ("throughput_rps", "latency_p50_s", "latency_p99_s")


def summary_table(store: ResultsStore) -> str:
    """Replicate-folded markdown summary, one row per grid point.

    Groups observations by scenario-minus-replicate and reports
    mean/min/max of the headline metrics plus whether every replicate
    produced the same ``bit_hash`` (sequential-traffic cells batch
    deterministically, so their replicates must agree bit-for-bit).
    """
    groups: dict[str, list[Mapping[str, Any]]] = {}
    for row in grid_rows(store):
        point = row["scenario"].rsplit("-r", 1)[0]
        groups.setdefault(point, []).append(row)
    header = ["grid point", "n"]
    for metric in SUMMARY_METRICS:
        header += [f"{metric} mean", f"{metric} min..max"]
    header.append("bit_hash")
    lines = [
        "### Experiment grid summary (replicates folded)",
        "",
        "| " + " | ".join(header) + " |",
        "| " + " | ".join("---" for _ in header) + " |",
    ]
    for point in sorted(groups):
        rows = groups[point]
        cells = [point, str(len(rows))]
        for metric in SUMMARY_METRICS:
            values = [
                float(row[metric])
                for row in rows
                if isinstance(row.get(metric), (int, float))
            ]
            if values:
                mean = sum(values) / len(values)
                cells += [
                    _format(mean),
                    f"{_format(min(values))}..{_format(max(values))}",
                ]
            else:
                cells += ["", ""]
        hashes = {row.get("bit_hash") for row in rows}
        if len(hashes) == 1:
            cells.append(next(iter(hashes)) or "")
        else:
            cells.append(f"MIXED({len(hashes)})")
        lines.append("| " + " | ".join(cells) + " |")
    if not groups:
        lines.append("| _no results recorded_ " + "| " * (len(header) - 1) + "|")
    return "\n".join(lines) + "\n"
