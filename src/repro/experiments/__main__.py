"""CLI over the grid harness: ``python -m repro.experiments <command>``.

Commands
--------
``init``
    Create (or extend) a results store from a named grid (``--grid
    smoke``/``paper``) or a GridSpec JSON file (``--grid-file``).
``run``
    Claim and execute pending cells; ``--reclaim-running`` first returns
    orphaned ``running`` claims (a SIGKILLed runner) to the pool,
    ``--reset-failed`` retries failed cells, ``--max-cells`` bounds the
    batch.  ``--json`` prints the run summary for scripting.
``status``
    Cell counts per status; ``--expect-done`` exits non-zero unless
    every cell is ``done`` (the CI strictness hook).
``report``
    Export the results: ``--markdown``/``--summary`` print tables,
    ``--csv PATH``/``--markdown-out PATH`` write files.
``thresholds``
    Derive ``bench_thresholds.json`` from accumulated
    ``BENCH_serving.json`` artifacts (``--bench``, glob-friendly)
    and/or grid stores (``--store``) — see
    :mod:`repro.experiments.thresholds`.

The ``make grid`` target chains ``init`` + ``run`` + ``report`` over the
smoke grid.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .grid import GRIDS, GridSpec
from .report import csv_table, markdown_table, summary_table
from .runner import ExperimentRunner
from .store import ResultsStore
from .thresholds import (
    DEFAULT_MARGIN,
    derive_thresholds,
    load_bench_payloads,
    store_payloads,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Scenario-grid experiment runner over a sqlite results store.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_init = sub.add_parser("init", help="create/extend a store from a grid")
    p_init.add_argument("--store", required=True, help="sqlite store path")
    group = p_init.add_mutually_exclusive_group(required=True)
    group.add_argument("--grid", choices=sorted(GRIDS), help="named grid")
    group.add_argument("--grid-file", help="GridSpec JSON file")

    p_run = sub.add_parser("run", help="claim and execute pending cells")
    p_run.add_argument("--store", required=True)
    p_run.add_argument("--runner-id", default=None)
    p_run.add_argument("--max-cells", type=int, default=None)
    p_run.add_argument(
        "--reclaim-running",
        action="store_true",
        help="return orphaned 'running' claims to the pool before running",
    )
    p_run.add_argument(
        "--reset-failed",
        action="store_true",
        help="retry failed cells (their previous errors are cleared)",
    )
    p_run.add_argument("--json", action="store_true", help="print the run summary")

    p_status = sub.add_parser("status", help="cell counts per status")
    p_status.add_argument("--store", required=True)
    p_status.add_argument(
        "--expect-done",
        action="store_true",
        help="exit non-zero unless every cell is done (CI gate)",
    )

    p_report = sub.add_parser("report", help="export result tables")
    p_report.add_argument("--store", required=True)
    p_report.add_argument(
        "--markdown", action="store_true", help="print the per-run table"
    )
    p_report.add_argument(
        "--summary", action="store_true", help="print the replicate-folded table"
    )
    p_report.add_argument("--csv", metavar="PATH", help="write a CSV export")
    p_report.add_argument(
        "--markdown-out", metavar="PATH", help="write the markdown tables to a file"
    )

    p_thr = sub.add_parser(
        "thresholds", help="derive bench_thresholds.json from run history"
    )
    p_thr.add_argument(
        "--bench",
        nargs="*",
        default=[],
        metavar="GLOB",
        help="BENCH_serving.json artifacts (globs allowed)",
    )
    p_thr.add_argument(
        "--store",
        nargs="*",
        default=[],
        metavar="PATH",
        help="grid stores whose metrics rows join the history",
    )
    p_thr.add_argument("--margin", type=float, default=DEFAULT_MARGIN)
    p_thr.add_argument(
        "--out", default="benchmarks/bench_thresholds.json", metavar="PATH"
    )
    return parser


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)

    if args.command == "init":
        if args.grid is not None:
            spec = GRIDS[args.grid]()
        else:
            spec = GridSpec.from_dict(
                json.loads(Path(args.grid_file).read_text(encoding="utf-8"))
            )
        store = ResultsStore(args.store)
        cells = spec.cells()
        added = store.ensure_cells(cells)
        counts = store.counts()
        print(
            f"{args.store}: {added} cells added "
            f"({len(cells)} in grid, {sum(counts.values())} in store)"
        )
        return 0

    if args.command == "run":
        store = ResultsStore(args.store)
        if args.reclaim_running:
            reclaimed = store.reset_running()
            if reclaimed:
                print(f"reclaimed {reclaimed} orphaned running cells")
        if args.reset_failed:
            retried = store.reset_failed()
            if retried:
                print(f"reset {retried} failed cells for retry")
        runner = ExperimentRunner(store, runner_id=args.runner_id)
        # progress goes to stderr so `--json | tee summary.json` stays parseable
        summary = runner.run(
            max_cells=args.max_cells,
            progress=lambda message: print(message, file=sys.stderr),
        )
        if args.json:
            print(json.dumps(summary.to_dict(), indent=2))
        else:
            print(
                f"runner {summary.runner_id}: claimed {summary.claimed}, "
                f"done {summary.done}, failed {summary.failed}"
            )
        return 1 if summary.failed else 0

    if args.command == "status":
        store = ResultsStore(args.store)
        counts = store.counts()
        total = sum(counts.values())
        print(
            f"{args.store}: {total} cells — "
            + ", ".join(f"{counts[status]} {status}" for status in sorted(counts))
        )
        for row in store.cells("failed"):
            first_line = (row.error or "").strip().splitlines()
            print(f"  failed {row.key}: {first_line[-1] if first_line else '?'}")
        if args.expect_done and (total == 0 or counts["done"] != total):
            print("expected every cell done", file=sys.stderr)
            return 1
        return 0

    if args.command == "report":
        store = ResultsStore(args.store)
        wants_file = bool(args.csv or args.markdown_out)
        wants_stdout = args.markdown or args.summary or not wants_file
        chunks = []
        if args.markdown or (wants_stdout and not args.summary):
            chunks.append(markdown_table(store))
        if args.summary:
            chunks.append(summary_table(store))
        text = "\n".join(chunks)
        if wants_stdout and text:
            print(text, end="")
        if args.markdown_out:
            Path(args.markdown_out).write_text(
                markdown_table(store) + "\n" + summary_table(store),
                encoding="utf-8",
            )
            print(f"markdown written to {args.markdown_out}", file=sys.stderr)
        if args.csv:
            Path(args.csv).write_text(csv_table(store), encoding="utf-8")
            print(f"csv written to {args.csv}", file=sys.stderr)
        return 0

    if args.command == "thresholds":
        payloads = load_bench_payloads(args.bench)
        for store_path in args.store:
            payloads.extend(store_payloads(ResultsStore(store_path)))
        if not payloads:
            print("no run history found (pass --bench and/or --store)", file=sys.stderr)
            return 1
        thresholds = derive_thresholds(payloads, margin=args.margin)
        out = Path(args.out)
        out.write_text(
            json.dumps(thresholds, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        fingerprints = sorted(k for k in thresholds if k != "_meta")
        print(
            f"{out}: bounds for {len(fingerprints)} fingerprint(s) "
            f"from {thresholds['_meta']['runs']} run(s): "
            + ", ".join(fingerprints)
        )
        return 0

    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
