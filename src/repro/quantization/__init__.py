"""Fixed-point quantization (QKeras stand-in, DESIGN.md §3.4)."""

from .fixed_point import STANDARD_BITWIDTHS, FixedPointFormat
from .quantizers import (
    QuantizationConfig,
    QuantizationResult,
    activation_formats,
    quantize_network,
)

__all__ = [
    "STANDARD_BITWIDTHS",
    "FixedPointFormat",
    "QuantizationConfig",
    "QuantizationResult",
    "quantize_network",
    "activation_formats",
]
