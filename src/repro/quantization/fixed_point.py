"""Fixed-point number formats (``ap_fixed<W, I>`` semantics).

The hardware co-exploration of the paper searches weight/activation
bitwidths in {4, 6, 8, 16}.  This module models signed fixed-point formats
with the same semantics as Vivado-HLS ``ap_fixed``: ``total_bits`` bits in
total, of which ``integer_bits`` (including the sign) are above the binary
point, with round-to-nearest and saturation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FixedPointFormat", "STANDARD_BITWIDTHS"]

#: Bitwidths explored by the algorithm–hardware co-exploration (Section IV-D).
STANDARD_BITWIDTHS: tuple[int, ...] = (4, 6, 8, 16)


@dataclass(frozen=True)
class FixedPointFormat:
    """A signed fixed-point format ``ap_fixed<total_bits, integer_bits>``."""

    total_bits: int
    integer_bits: int

    def __post_init__(self) -> None:
        if self.total_bits < 2:
            raise ValueError("total_bits must be at least 2 (sign + 1 data bit)")
        if not 1 <= self.integer_bits <= self.total_bits:
            raise ValueError(
                "integer_bits must be between 1 and total_bits "
                f"(got {self.integer_bits} of {self.total_bits})"
            )

    # ------------------------------------------------------------------ #
    @property
    def fractional_bits(self) -> int:
        return self.total_bits - self.integer_bits

    @property
    def resolution(self) -> float:
        """Smallest representable step."""
        return 2.0 ** (-self.fractional_bits)

    @property
    def max_value(self) -> float:
        return 2.0 ** (self.integer_bits - 1) - self.resolution

    @property
    def min_value(self) -> float:
        return -(2.0 ** (self.integer_bits - 1))

    @property
    def num_levels(self) -> int:
        return 2**self.total_bits

    # ------------------------------------------------------------------ #
    def quantize(self, values: np.ndarray | float) -> np.ndarray:
        """Round-to-nearest quantization with saturation."""
        arr = np.asarray(values, dtype=np.float64)
        scaled = np.round(arr / self.resolution) * self.resolution
        return np.clip(scaled, self.min_value, self.max_value)

    def quantization_error(self, values: np.ndarray) -> float:
        """Root-mean-square error introduced by quantizing ``values``."""
        arr = np.asarray(values, dtype=np.float64)
        return float(np.sqrt(np.mean((arr - self.quantize(arr)) ** 2)))

    def to_integer(self, values: np.ndarray | float) -> np.ndarray:
        """Return the integer codes (two's-complement value / resolution)."""
        q = self.quantize(values)
        return np.round(q / self.resolution).astype(np.int64)

    @classmethod
    def for_range(cls, max_abs: float, total_bits: int) -> "FixedPointFormat":
        """Choose integer bits so that ``[-max_abs, max_abs]`` is representable."""
        if max_abs <= 0:
            integer_bits = 1
        else:
            integer_bits = int(np.ceil(np.log2(max_abs + 1e-12))) + 1
            integer_bits = max(1, min(integer_bits, total_bits))
        return cls(total_bits=total_bits, integer_bits=integer_bits)

    def __str__(self) -> str:
        return f"ap_fixed<{self.total_bits},{self.integer_bits}>"
