"""Post-training quantization of networks.

This replaces the QKeras dependency of the original flow: weights (and,
through a calibration pass, activations) are mapped to fixed-point formats,
and the quantization impact on accuracy can be measured before the hardware
design-space exploration commits to a bitwidth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..nn.model import Network
from .fixed_point import FixedPointFormat

__all__ = [
    "QuantizationConfig",
    "QuantizationResult",
    "quantize_network",
    "activation_formats",
]


@dataclass
class QuantizationConfig:
    """Bitwidth configuration for a whole network.

    ``weight_bits`` / ``activation_bits`` are the default bitwidths; specific
    layers can be overridden via ``per_layer_weight_bits`` keyed by layer
    name (used by the co-exploration when mixing precisions).
    """

    weight_bits: int = 8
    activation_bits: int = 8
    per_layer_weight_bits: dict[str, int] = field(default_factory=dict)

    def weight_bits_for(self, layer_name: str) -> int:
        return self.per_layer_weight_bits.get(layer_name, self.weight_bits)


@dataclass
class QuantizationResult:
    """Outcome of quantizing a network."""

    config: QuantizationConfig
    weight_formats: dict[str, FixedPointFormat]
    weight_rmse: dict[str, float]

    @property
    def mean_rmse(self) -> float:
        if not self.weight_rmse:
            return 0.0
        return float(np.mean(list(self.weight_rmse.values())))


def quantize_network(
    network: Network,
    config: QuantizationConfig,
    in_place: bool = True,
) -> QuantizationResult:
    """Quantize every parameter of a built network to fixed point.

    Parameters
    ----------
    network:
        A built :class:`Network`; its parameters are overwritten with their
        quantized values when ``in_place`` is true.
    config:
        Bitwidth configuration.
    in_place:
        When false, parameter values are left untouched and only the error
        analysis is performed.
    """
    if not network.built:
        raise ValueError("network must be built before quantization")

    formats: dict[str, FixedPointFormat] = {}
    rmse: dict[str, float] = {}
    for param in network.parameters():
        layer_name = param.name.rsplit(".", 1)[0]
        bits = config.weight_bits_for(layer_name)
        max_abs = float(np.max(np.abs(param.value))) if param.size else 1.0
        fmt = FixedPointFormat.for_range(max_abs, bits)
        formats[param.name] = fmt
        rmse[param.name] = fmt.quantization_error(param.value)
        if in_place:
            # assign() bumps the parameter version, so activation caches
            # (repro.inference engines, the serving layer) see the mutation
            param.assign(fmt.quantize(param.value))
    return QuantizationResult(config=config, weight_formats=formats, weight_rmse=rmse)


def activation_formats(
    network: Network,
    calibration_batch: np.ndarray,
    activation_bits: int,
) -> dict[str, FixedPointFormat]:
    """Calibrate per-layer activation formats from a representative batch.

    Runs the batch through the network layer by layer and picks, for each
    layer, the fixed-point format whose range covers the observed maximum
    activation magnitude.
    """
    if not network.built:
        raise ValueError("network must be built before calibration")
    formats: dict[str, FixedPointFormat] = {}
    out = calibration_batch
    for layer in network.layers:
        out = layer.forward(out, training=False)
        max_abs = float(np.max(np.abs(out))) if out.size else 1.0
        formats[layer.name] = FixedPointFormat.for_range(max_abs, activation_bits)
    return formats
