# Tier-1 verification and benchmark entry points (mirrors .github/workflows/ci.yml)

PYTHON ?= python

.PHONY: test bench parallel docs quickstart serve-demo all

# Tier-1: full test suite (pytest config lives in pyproject.toml)
test:
	$(PYTHON) -m pytest -x -q

# Paper-reproduction benchmarks only (tables/figures + perf gates);
# also emits machine-readable metrics to BENCH_serving.json
bench:
	$(PYTHON) -m pytest benchmarks/ -q

# Reentrancy/concurrency suite + the K=4 multi-worker throughput gate
# (gate skips below 4 cores; BLAS pinned so workers scale, not libraries)
parallel:
	OMP_NUM_THREADS=1 OPENBLAS_NUM_THREADS=1 MKL_NUM_THREADS=1 $(PYTHON) -m pytest -q -p no:randomly \
		tests/nn/test_forward_context.py tests/serving/test_parallel_serving.py \
		benchmarks/test_parallel_serving.py

# Documentation gate: relative links resolve, README/docs examples execute
docs:
	$(PYTHON) -m pytest tests/docs/ -q

# Smoke-run the end-to-end quickstart example
quickstart:
	$(PYTHON) examples/quickstart.py

# Smoke-run the async serving demo
serve-demo:
	$(PYTHON) examples/serving_demo.py

all: test bench docs quickstart
