# Tier-1 verification and benchmark entry points (mirrors .github/workflows/ci.yml)

PYTHON ?= python

.PHONY: test bench parallel chaos lint docs quickstart serve-demo serve loadgen grid thresholds all

# Tier-1: full test suite (pytest config lives in pyproject.toml)
test:
	$(PYTHON) -m pytest -x -q

# Paper-reproduction benchmarks only (tables/figures + perf gates);
# also merges machine-readable metrics into BENCH_serving.json
bench:
	$(PYTHON) -m pytest benchmarks/ -q

# Reentrancy/shared-memory/concurrency suites + the K=4 scaling gates
# (threads >= 1.8x, processes >= 2.5x; gates skip below 4 cores; BLAS
# pinned so the workers scale, not the libraries) + the hot-path glue
# gates (fused suffix >= 1.3x, per-batch glue <= 40 us)
parallel:
	OMP_NUM_THREADS=1 OPENBLAS_NUM_THREADS=1 MKL_NUM_THREADS=1 $(PYTHON) -m pytest -q -p no:randomly \
		tests/nn/test_forward_context.py tests/nn/test_shm_params.py \
		tests/serving/test_parallel_serving.py tests/serving/test_procpool.py \
		tests/serving/test_fleet.py \
		benchmarks/test_parallel_serving.py benchmarks/test_procpool_serving.py \
		benchmarks/test_fleet.py \
		benchmarks/test_fused_suffix.py benchmarks/test_glue_breakdown.py

# Fault-injection chaos suite: deterministic kill schedules under live
# traffic, gated on bit-identical responses and a clean /dev/shm.  Opt-in
# (the default pytest selection excludes `-m chaos`); the K=4 stress
# variant self-skips below 4 cores, the headline runs work anywhere.
chaos:
	OMP_NUM_THREADS=1 OPENBLAS_NUM_THREADS=1 MKL_NUM_THREADS=1 $(PYTHON) -m pytest -q -p no:randomly \
		-m chaos tests/serving/test_chaos.py

# Static checks (ruff config lives in pyproject.toml; same gate as CI)
lint:
	ruff check .
	ruff format --check .

# Documentation gate: relative links resolve, README/docs examples execute
docs:
	$(PYTHON) -m pytest tests/docs/ -q

# Smoke-run the end-to-end quickstart example
quickstart:
	$(PYTHON) examples/quickstart.py

# Smoke-run the async serving demo
serve-demo:
	$(PYTHON) examples/serving_demo.py

# Boot the HTTP front end over the demo model (Ctrl-C to stop); pair
# with `make loadgen` from a second shell.  Override flags via ARGS=.
serve:
	PYTHONPATH=src $(PYTHON) -m repro.serving.server $(ARGS)

# Open-loop load against a running `make serve` (Poisson by default)
loadgen:
	PYTHONPATH=src $(PYTHON) -m repro.serving.loadgen $(ARGS)

# Experiment grid quickstart: init the smoke grid into a sqlite store,
# drain it (resumable — rerun after a crash and only pending cells run),
# and print the per-cell + replicate-folded tables.  GRID=paper for the
# full sweep; STORE= to relocate the sqlite file.
GRID ?= smoke
STORE ?= grid_results.sqlite
grid:
	PYTHONPATH=src $(PYTHON) -m repro.experiments init --store $(STORE) --grid $(GRID)
	PYTHONPATH=src $(PYTHON) -m repro.experiments run --store $(STORE) --reclaim-running
	PYTHONPATH=src $(PYTHON) -m repro.experiments report --store $(STORE) --markdown --summary

# Recompute benchmarks/bench_thresholds.json from accumulated run
# history (BENCH_serving.json artifacts and/or grid stores).  Run
# `make bench` a few times first so the envelope reflects real spread.
thresholds:
	PYTHONPATH=src $(PYTHON) -m repro.experiments thresholds \
		--bench BENCH_serving.json --margin 0.5

all: test bench docs quickstart
