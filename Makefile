# Tier-1 verification and benchmark entry points (mirrors .github/workflows/ci.yml)

PYTHON ?= python

.PHONY: test bench quickstart all

# Tier-1: full test suite (pytest config lives in pyproject.toml)
test:
	$(PYTHON) -m pytest -x -q

# Paper-reproduction benchmarks only (tables/figures + inference engine gate)
bench:
	$(PYTHON) -m pytest benchmarks/ -q

# Smoke-run the end-to-end quickstart example
quickstart:
	$(PYTHON) examples/quickstart.py

all: test bench quickstart
