# Tier-1 verification and benchmark entry points (mirrors .github/workflows/ci.yml)

PYTHON ?= python

.PHONY: test bench docs quickstart serve-demo all

# Tier-1: full test suite (pytest config lives in pyproject.toml)
test:
	$(PYTHON) -m pytest -x -q

# Paper-reproduction benchmarks only (tables/figures + perf gates)
bench:
	$(PYTHON) -m pytest benchmarks/ -q

# Documentation gate: relative links resolve, README/docs examples execute
docs:
	$(PYTHON) -m pytest tests/docs/ -q

# Smoke-run the end-to-end quickstart example
quickstart:
	$(PYTHON) examples/quickstart.py

# Smoke-run the async serving demo
serve-demo:
	$(PYTHON) examples/serving_demo.py

all: test bench docs quickstart
