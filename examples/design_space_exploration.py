"""Design-space exploration: mapping mix, bitwidths and platform comparison.

This example focuses on the hardware side of the paper:

* sweep the spatial/temporal mapping mix of the MC engines and show the
  latency / resource / power trade-off (Figure 4 and Figure 5 right);
* run the algorithm-hardware co-exploration over bitwidths {4, 6, 8, 16} and
  channel scalings {C, C/2, C/4, C/8} and print the latency-energy Pareto
  front (Section IV-D);
* place the resulting design in the Table II platform comparison against the
  published CPU / GPU / prior-FPGA numbers.

Run with:  python examples/design_space_exploration.py
"""

from __future__ import annotations

from repro.analysis import build_bayes_lenet_accelerator, format_rows, run_table2
from repro.core import single_exit_bayesnet
from repro.hw import (
    AcceleratorConfig,
    AcceleratorModel,
    CoExplorer,
    MappingPlan,
    pareto_front,
)
from repro.nn.architectures import lenet5_spec


def mapping_sweep() -> None:
    """Latency / resources / power across the spatial-temporal mapping mix."""
    net = single_exit_bayesnet(lenet5_spec(), num_mcd_layers=2, seed=0)
    num_samples = 6
    rows = []
    for engines in range(1, num_samples + 1):
        mapping = MappingPlan(num_samples=num_samples, num_engines=engines)
        accel = AcceleratorModel(
            net,
            AcceleratorConfig(
                device="XCKU115",
                weight_bitwidth=8,
                reuse_factor=64,
                num_mc_samples=num_samples,
                mapping=mapping,
            ),
        )
        power = accel.power()
        rows.append(
            {
                "engines": engines,
                "strategy": mapping.strategy,
                "latency_ms": round(accel.latency_ms(), 4),
                "lut": round(accel.resources().lut),
                "power_w": round(power.total, 2),
                "energy_mj": round(
                    power.energy_per_image_j(accel.latency_ms()) * 1000, 3
                ),
            }
        )
    print(
        format_rows(
            rows,
            ["engines", "strategy", "latency_ms", "lut", "power_w", "energy_mj"],
            title="MC-engine mapping sweep (Bayes-LeNet5, 6 MC samples)",
        )
    )
    print()


def co_exploration() -> None:
    """Bitwidth x channel-scaling x reuse-factor grid search (Phase 3)."""
    explorer = CoExplorer(
        lambda width: single_exit_bayesnet(
            lenet5_spec(width_multiplier=width), num_mcd_layers=1, seed=0
        ),
        device="XCKU115",
        num_mc_samples=3,
    )
    best, points = explorer.run(
        objective="energy",
        bitwidths=(4, 6, 8, 16),
        channel_multipliers=(1.0, 0.5, 0.25, 0.125),
        reuse_factors=(16, 64),
    )
    front = sorted(pareto_front(points), key=lambda p: p.latency_ms)
    rows = [
        {
            "bitwidth": p.point.bitwidth,
            "channels": f"C/{int(1 / p.point.channel_multiplier)}"
            if p.point.channel_multiplier < 1 else "C",
            "reuse": p.point.reuse_factor,
            "mapping": p.mapping.strategy,
            "latency_ms": round(p.latency_ms, 4),
            "energy_mj": round(p.energy_per_image_j * 1000, 3),
            "max_util": f"{p.max_utilization:.1%}",
        }
        for p in front
    ]
    print(
        format_rows(
            rows,
            [
                "bitwidth",
                "channels",
                "reuse",
                "mapping",
                "latency_ms",
                "energy_mj",
                "max_util",
            ],
            title="Phase 3 co-exploration: latency-energy Pareto front",
        )
    )
    print(
        f"\nselected (energy priority): {best.point.bitwidth}-bit, "
        f"channel multiplier {best.point.channel_multiplier}, "
        f"reuse {best.point.reuse_factor} -> "
        f"{best.energy_per_image_j * 1000:.3f} mJ/image\n"
    )


def platform_comparison() -> None:
    """Table II: our design vs the published CPU / GPU / FPGA numbers."""
    accel = build_bayes_lenet_accelerator()
    rows = run_table2(accel)
    print(
        format_rows(
            rows,
            [
                "name",
                "platform",
                "frequency_mhz",
                "power_w",
                "latency_ms",
                "energy_per_image_j",
            ],
            title="Platform comparison (Table II, Bayes-LeNet5, 3 MC samples)",
        )
    )
    ours = [r for r in rows if r["name"] == "Our Work"][0]
    best_prior = min(
        (r for r in rows if r["name"] != "Our Work"),
        key=lambda r: r["energy_per_image_j"],
    )
    print(
        f"\nenergy-efficiency advantage over the best prior design "
        f"({best_prior['name']}): "
        f"{best_prior['energy_per_image_j'] / ours['energy_per_image_j']:.1f}x"
    )


def main() -> None:
    mapping_sweep()
    co_exploration()
    platform_comparison()


if __name__ == "__main__":
    main()
