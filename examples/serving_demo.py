"""Serving demo: async dynamic batching over the folded inference engine.

Simulates a stream of clients hitting a multi-exit MCD BayesNN service one
example at a time, and shows what the serving layer adds over calling the
engine directly:

1. concurrent single-example requests are assembled into microbatches and
   answered from one folded ``predict_mc`` pass per batch;
2. every response carries calibrated uncertainty (entropy + mutual
   information) and its end-to-end latency;
3. overload against a bounded queue either slows submitters down
   (backpressure) or sheds load explicitly (``ServerOverloaded``);
4. an early-exit serving mode answers easy inputs from shallow exits and
   reports the exit distribution;
5. multi-worker serving (``workers=K``): K engine replicas share the model's
   parameter arrays zero-copy and compute batches concurrently — and
   per-request deadlines reorder a backlog earliest-deadline-first;
6. process-pool serving (``worker_backend="process"``): the same replicas
   as true multi-core worker processes over a shared-memory parameter
   arena, with shed-on-missed-deadline enabled (``admission_timeout``);
7. a self-healing fleet (``fleet=FleetConfig(...)``): a worker is killed
   mid-batch under live traffic, the batch is retried on a sibling, the
   supervisor respawns the dead worker back to full strength, and a
   zero-downtime ``swap_model`` rolls a new arena generation — all
   invisible to the clients;
8. the network front end (``ServingServer``): the same engine behind a
   stdlib HTTP/1.1 boundary, driven by an *open-loop* Poisson arrival
   schedule (``LoadGenerator``) with offered-vs-achieved-rate and
   p50/p95/p99 reporting.

Every engine is configured through the frozen, serializable
``ServingConfig`` / ``BatcherConfig`` pair — the same object the CLI
server accepts as ``--config-json``.

Run with:  python examples/serving_demo.py
"""

from __future__ import annotations

import asyncio
import os

import numpy as np

from repro.core import MultiExitBayesNet, MultiExitConfig
from repro.nn.architectures import lenet5_spec
from repro.serving import (
    BatcherConfig,
    FaultPlan,
    FleetConfig,
    LoadGenerator,
    ServerOverloaded,
    ServingConfig,
    ServingServer,
)

NUM_CLIENTS = 96
MC_SAMPLES = 8


def build_model() -> MultiExitBayesNet:
    spec = lenet5_spec(input_shape=(1, 20, 20), num_classes=10)
    return MultiExitBayesNet(
        spec,
        MultiExitConfig(
            num_exits=2,
            mcd_layers_per_exit=1,
            dropout_rate=0.25,
            exit_conv_channels=8,
            seed=0,
        ),
    )


async def client(server, example: np.ndarray, results: list) -> None:
    """One client: submit a single example, keep the response."""
    try:
        results.append(await server.submit(example))
    except ServerOverloaded:
        results.append(None)


async def main() -> None:
    rng = np.random.default_rng(0)
    model = build_model()
    examples = rng.normal(size=(NUM_CLIENTS, 1, 20, 20))
    print(f"model: {model.name}, {model.num_parameters} parameters")

    # ------------------------------------------------------------------ #
    # 1. Monte-Carlo serving with dynamic batching
    # ------------------------------------------------------------------ #
    config = ServingConfig(
        num_samples=MC_SAMPLES,
        batcher=BatcherConfig(max_batch_size=32, max_batch_latency=0.005),
    )
    async with model.serving_engine(config) as server:
        results: list = []
        await asyncio.gather(*(client(server, ex, results) for ex in examples))
        stats = server.stats()

    most_uncertain = max(results, key=lambda r: r.mutual_information)
    print(f"\n--- MC serving ({MC_SAMPLES} samples/request) ---")
    print(
        f"served {stats.requests_completed} requests in "
        f"{stats.num_batches} batches (mean batch {stats.mean_batch_size:.1f}) "
        f"at {stats.throughput_rps:.0f} req/s"
    )
    print(
        f"latency p50 {stats.latency_p50_s * 1e3:.2f} ms, "
        f"p95 {stats.latency_p95_s * 1e3:.2f} ms"
    )
    print(
        f"most epistemically uncertain response: label {most_uncertain.label}, "
        f"confidence {most_uncertain.confidence:.2f}, "
        f"mutual information {most_uncertain.mutual_information:.3f}"
    )

    # ------------------------------------------------------------------ #
    # 2. overload: bounded queue + fail-fast rejection
    # ------------------------------------------------------------------ #
    config = ServingConfig(
        num_samples=MC_SAMPLES,
        batcher=BatcherConfig(
            max_batch_size=8,
            max_batch_latency=0.001,
            max_queue_size=8,
            reject_on_full=True,
        ),
    )
    async with model.serving_engine(config) as server:
        results = []
        await asyncio.gather(*(client(server, ex, results) for ex in examples))
        stats = server.stats()

    shed = sum(r is None for r in results)
    print("\n--- overload against an 8-deep queue (reject policy) ---")
    print(
        f"{stats.requests_completed} served, {shed} shed with ServerOverloaded "
        f"(callers can retry elsewhere); queue peak {stats.queue_peak}"
    )

    # ------------------------------------------------------------------ #
    # 3. early-exit serving: easy inputs answered from shallow exits
    # ------------------------------------------------------------------ #
    config = ServingConfig(
        early_exit_threshold=0.6,
        batcher=BatcherConfig(max_batch_size=32, max_batch_latency=0.005),
    )
    async with model.serving_engine(config) as server:
        results = []
        await asyncio.gather(*(client(server, ex, results) for ex in examples))
        stats = server.stats()

    print("\n--- early-exit serving (threshold 0.6) ---")
    print(
        f"exit distribution over {stats.requests_completed} requests: "
        f"{stats.exit_counts}"
    )
    r = results[0]
    print(
        f"first response: label {r.label}, exit {r.exit_index}, "
        f"confidence {r.confidence:.2f}, latency {r.latency_s * 1e3:.2f} ms"
    )

    # ------------------------------------------------------------------ #
    # 4. multi-worker serving: K engine replicas over shared parameters
    # ------------------------------------------------------------------ #
    workers = min(4, os.cpu_count() or 1)
    config = ServingConfig(
        num_samples=MC_SAMPLES,
        workers=workers,
        batcher=BatcherConfig(max_batch_size=8, max_batch_latency=0.002),
    )
    async with model.serving_engine(config) as server:
        results = []
        # urgent requests carry a deadline: under backlog they are scheduled
        # earliest-deadline-first ahead of the deadline-less crowd
        urgent = asyncio.ensure_future(server.submit(examples[0], deadline=0.01))
        await asyncio.gather(*(client(server, ex, results) for ex in examples))
        results.append(await urgent)
        stats = server.stats()

    print(f"\n--- multi-worker serving (workers={stats.workers}) ---")
    print(
        f"served {stats.requests_completed} requests in {stats.num_batches} "
        f"batches at {stats.throughput_rps:.0f} req/s "
        f"(p95 latency {stats.latency_p95_s * 1e3:.2f} ms)"
    )
    print(
        "replicas share Parameter storage zero-copy; per-batch RNG contexts "
        "make every batch's result independent of worker scheduling"
    )

    # ------------------------------------------------------------------ #
    # 5. process-pool serving: shared-memory replicas past the GIL
    # ------------------------------------------------------------------ #
    config = ServingConfig(
        num_samples=MC_SAMPLES,
        workers=2,
        worker_backend="process",
        batcher=BatcherConfig(
            max_batch_size=8,
            max_batch_latency=0.002,
            admission_timeout=5.0,  # opt-in: shed requests that miss deadlines
        ),
    )
    async with model.serving_engine(config) as server:
        results = []
        await asyncio.gather(*(client(server, ex, results) for ex in examples))
        stats = server.stats()

    print(f"\n--- process-pool serving (workers={stats.workers}) ---")
    print(
        f"served {stats.requests_completed} requests in {stats.num_batches} "
        f"batches at {stats.throughput_rps:.0f} req/s "
        f"({stats.worker_crashes} crashes, {stats.requests_shed} shed)"
    )
    print(
        "worker processes rebuilt zero-copy engine replicas from the "
        "shared-memory arena; weight updates would propagate through the "
        "segment under the weights_version token"
    )

    # ------------------------------------------------------------------ #
    # 6. self-healing fleet: live worker death, respawn and a model swap
    # ------------------------------------------------------------------ #
    # The deterministic fault plan kills one worker mid-compute on batch
    # seq 4 — the same hook the chaos suite uses (`make chaos`).  The batch
    # is retried on the sibling, the supervisor respawns the corpse, and a
    # swap_model mid-stream rolls everyone onto a fresh arena generation.
    plan = FaultPlan([(4, "mid_compute")])
    config = ServingConfig(
        num_samples=MC_SAMPLES,
        workers=2,
        worker_backend="process",
        batcher=BatcherConfig(max_batch_size=8, max_batch_latency=0.002),
        fleet=FleetConfig(health_interval=0.02),
        fault_plan=plan,
    )
    async with model.serving_engine(config) as server:
        results = []
        await asyncio.gather(*(client(server, ex, results) for ex in examples))
        generation = await server.swap_model(build_model())  # zero downtime
        results.append(await server.submit(examples[0]))  # new-model bits
        while server.stats().current_workers < 2:  # supervisor still healing?
            await asyncio.sleep(0.01)
        stats = server.stats()

    print(f"\n--- self-healing fleet (workers={stats.current_workers}) ---")
    print(
        f"served {stats.requests_completed} requests through "
        f"{stats.worker_crashes} mid-batch worker death(s): "
        f"{stats.workers_respawned} respawned, 0 requests failed"
    )
    print(
        f"live swap_model rolled the fleet onto arena generation "
        f"{generation} (stats agree: {stats.arena_generation}) without "
        f"dropping a request"
    )

    # ------------------------------------------------------------------ #
    # 7. network front end: HTTP boundary + open-loop load
    # ------------------------------------------------------------------ #
    # Everything above was closed-loop (clients await their responses).
    # The front end puts the engine behind HTTP/1.1 and an *open-loop*
    # Poisson arrival schedule fires regardless of how the server keeps
    # up — the regime where queueing delay actually shows in the tail.
    config = ServingConfig(
        num_samples=MC_SAMPLES,
        batcher=BatcherConfig(max_batch_size=16, max_batch_latency=0.002),
    )
    engine = model.serving_engine(config)
    async with ServingServer(engine) as http:  # port=0: picks a free port
        gen = LoadGenerator(
            http.host, http.port, rate=60.0, duration=1.0, process="poisson", seed=0
        )
        report = await gen.run()
        status, health = await gen._request("GET", "/v1/health")

    print(f"\n--- network front end (http://{http.host}:{http.port}) ---")
    print(
        f"open-loop poisson: offered {report.offered_rate:.0f} req/s, "
        f"achieved {report.achieved_rate:.0f} req/s, "
        f"{report.ok} ok / {report.failed} failed / {report.dropped} dropped"
    )
    print(
        f"latency p50 {report.latency_p50_s * 1e3:.2f} ms, "
        f"p95 {report.latency_p95_s * 1e3:.2f} ms, "
        f"p99 {report.latency_p99_s * 1e3:.2f} ms"
    )
    print(f"health: {health['status']} ({health['alive_workers']} worker(s) alive)")


if __name__ == "__main__":
    asyncio.run(main())
