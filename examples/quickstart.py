"""Quickstart: build, train and query a multi-exit MCD Bayesian neural network.

This walks through the core ideas of the paper on a laptop-scale synthetic
task (Figure 1 and Equations 1-3):

1. take a standard backbone (LeNet-5) and attach one exit per semantic block;
2. insert Monte-Carlo-dropout layers near each exit;
3. train all exits jointly with exit-ensemble distillation;
4. obtain calibrated predictions and uncertainty from a handful of MC samples
   at a fraction of the cost of re-running the whole network per sample;
5. lower the trained model to an FPGA accelerator report.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table
from repro.core import (
    MultiExitBayesNet,
    MultiExitConfig,
    network_flops,
    reduction_rate,
)
from repro.datasets import mnist_like
from repro.hw import AcceleratorConfig, AcceleratorModel, spatial_mapping
from repro.hw.hls import SynthesisReport
from repro.nn import SGD, DistillationTrainer
from repro.nn.architectures import lenet5_spec
from repro.uncertainty import evaluate_predictions


def main() -> None:
    rng = np.random.default_rng(0)

    # ------------------------------------------------------------------ #
    # 1. data: a small synthetic MNIST-like task (see DESIGN.md for why)
    # ------------------------------------------------------------------ #
    dataset = mnist_like(train_size=384, test_size=192, seed=0, image_size=20)
    print(f"dataset: {dataset.name}, {dataset.train_size} train / {dataset.test_size} test")

    # ------------------------------------------------------------------ #
    # 2. model: LeNet-5 backbone, 2 exits, 1 MCD layer per exit
    # ------------------------------------------------------------------ #
    spec = lenet5_spec(input_shape=dataset.input_shape, num_classes=dataset.num_classes)
    model = MultiExitBayesNet(
        spec,
        MultiExitConfig(
            num_exits=2,
            mcd_layers_per_exit=1,
            dropout_rate=0.25,
            default_mc_samples=4,
            exit_conv_channels=8,
            seed=0,
        ),
    )
    print(
        f"model: {model.name} with {model.num_parameters} parameters, "
        f"{model.num_exits} exits"
    )

    # ------------------------------------------------------------------ #
    # 3. training with exit-ensemble distillation
    # ------------------------------------------------------------------ #
    trainer = DistillationTrainer(
        model,
        SGD(model.parameters(), lr=0.05, momentum=0.9, weight_decay=5e-4),
        distill_weight=0.5,
        batch_size=32,
        seed=0,
    )
    history = trainer.fit(dataset.train.x, dataset.train.y, epochs=4)
    print(
        f"training: loss {history.loss[0]:.3f} -> {history.loss[-1]:.3f}, "
        f"train accuracy {history.accuracy[-1]:.3f}"
    )

    # ------------------------------------------------------------------ #
    # 4. calibrated Monte-Carlo predictions with a cached backbone
    # ------------------------------------------------------------------ #
    prediction = model.predict_mc(dataset.test.x, num_samples=4)
    report = evaluate_predictions(
        prediction.mean_probs, dataset.test.y, prediction.sample_probs
    )
    print("\nuncertainty report (4 MC samples):")
    for key, value in report.as_dict().items():
        print(f"  {key:<26}: {value:.4f}")

    breakdown = model.flop_breakdown()
    se_flops = network_flops(
        lenet5_spec(
            input_shape=dataset.input_shape, num_classes=dataset.num_classes
        ).single_exit_network()
    )
    rows = []
    for samples in (1, 2, 4, 8):
        naive = samples * se_flops
        ours = breakdown.mc_sampling_flops(samples)
        rows.append(
            [
                samples,
                f"{naive:,.0f}",
                f"{ours:,.0f}",
                f"{naive / ours:.2f}x",
                f"{reduction_rate(breakdown.alpha, samples, model.num_exits):.2f}x",
            ]
        )
    print()
    print(
        format_table(
            [
                "MC samples",
                "single-exit FLOPs (Eq.1)",
                "multi-exit FLOPs (Eq.2)",
                "measured reduction",
                "Eq.3 reduction",
            ],
            rows,
            title="Cost of Monte-Carlo sampling (Figure 1 / Equations 1-3)",
        )
    )

    # uncertainty-aware behaviour: one stochastic pass vs the MC ensemble
    single_pass = model.exit_probabilities(dataset.test.x)[-1]
    print(f"\nmax confidence single pass : {single_pass.max(axis=1).mean():.3f}")
    print(
        f"max confidence MC ensemble : {prediction.mean_probs.max(axis=1).mean():.3f} "
        "(ensembling tempers overconfidence)"
    )

    # ------------------------------------------------------------------ #
    # 5. lower to an FPGA accelerator and print the synthesis-style report
    # ------------------------------------------------------------------ #
    accel = AcceleratorModel(
        model,
        AcceleratorConfig(
            device="XCKU115",
            weight_bitwidth=8,
            reuse_factor=32,
            num_mc_samples=4,
            mapping=spatial_mapping(4),
        ),
    )
    print()
    print(SynthesisReport.from_accelerator(accel).to_text())

    # sanity check for CI-style usage of the example
    assert report.accuracy > 1.0 / dataset.num_classes
    assert breakdown.mc_sampling_flops(8) < 8 * se_flops
    _ = rng  # unused, kept to show where extra experimentation would hook in


if __name__ == "__main__":
    main()
