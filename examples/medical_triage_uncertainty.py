"""Uncertainty-aware triage: the safety-critical scenario motivating the paper.

The paper motivates Bayesian neural networks with safety-critical
applications such as medical imaging, where an over-confident wrong
prediction is far more costly than deferring to a human expert.  This example
builds a multi-exit MCD BayesNN "triage" classifier on a synthetic imaging
task and shows the two behaviours that make the Bayesian treatment worth its
hardware cost:

* **selective prediction** — referring the most uncertain cases to a human
  raises the accuracy on the automatically-handled cases well above the
  overall accuracy, and the Bayesian ranking of what to refer is better than
  the non-Bayesian one;
* **distribution shift awareness** — on a shifted cohort (different scanner /
  acquisition noise) accuracy silently collapses, and the model's epistemic
  uncertainty (mutual information across MC samples) is what exposes it.

Run with:  python examples/medical_triage_uncertainty.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table
from repro.core import MultiExitBayesNet, MultiExitConfig
from repro.datasets import SyntheticImageDataset
from repro.nn import SGD, DistillationTrainer
from repro.nn.architectures import vgg_spec
from repro.uncertainty import accuracy, mutual_information, predictive_entropy


def selective_accuracy(
    probs: np.ndarray, labels: np.ndarray, uncertainty: np.ndarray, coverage: float
) -> float:
    """Accuracy on the ``coverage`` fraction of cases with lowest uncertainty."""
    n_keep = max(1, int(round(coverage * len(labels))))
    keep = np.argsort(uncertainty)[:n_keep]
    return accuracy(probs[keep], labels[keep])


def main() -> None:
    # a 4-class "imaging" task: e.g. {normal, benign, suspicious, malignant}
    dataset = SyntheticImageDataset(
        "synthetic_imaging",
        input_shape=(1, 16, 16),
        num_classes=4,
        train_size=320,
        test_size=200,
        noise_level=0.9,
        seed=7,
    )

    spec = vgg_spec(
        "vgg11",
        input_shape=dataset.input_shape,
        num_classes=dataset.num_classes,
        width_multiplier=0.25,
        max_stages=3,
    )
    model = MultiExitBayesNet(
        spec,
        MultiExitConfig(
            num_exits=3,
            mcd_layers_per_exit=1,
            dropout_rate=0.25,
            default_mc_samples=6,
            exit_conv_channels=8,
            seed=0,
        ),
    )
    trainer = DistillationTrainer(
        model,
        SGD(model.parameters(), lr=0.05, momentum=0.9, weight_decay=5e-4),
        distill_weight=0.5,
        batch_size=32,
        seed=0,
    )
    trainer.fit(dataset.train.x, dataset.train.y, epochs=4)

    # ------------------------------------------------------------------ #
    # selective prediction on the in-distribution cohort
    # ------------------------------------------------------------------ #
    prediction = model.predict_mc(dataset.test.x, num_samples=6)
    probs = prediction.mean_probs
    labels = dataset.test.y
    entropy = predictive_entropy(probs)
    epistemic = mutual_information(prediction.sample_probs)

    overall = accuracy(probs, labels)
    rows = []
    for coverage in (1.0, 0.9, 0.75, 0.5):
        rows.append(
            [
                f"{coverage:.0%}",
                f"{selective_accuracy(probs, labels, entropy, coverage):.3f}",
                f"{selective_accuracy(probs, labels, epistemic, coverage):.3f}",
            ]
        )
    print(f"overall accuracy: {overall:.3f}")
    print(
        format_table(
            [
                "coverage (auto-handled)",
                "accuracy (rank by entropy)",
                "accuracy (rank by mutual information)",
            ],
            rows,
            title="Selective prediction: refer the most uncertain cases to a clinician",
        )
    )

    full_cov = selective_accuracy(probs, labels, entropy, 1.0)
    half_cov = selective_accuracy(probs, labels, entropy, 0.5)
    assert half_cov >= full_cov - 0.02, "referral should not hurt accuracy"

    # ------------------------------------------------------------------ #
    # distribution shift: a different scanner / noisier acquisition
    # ------------------------------------------------------------------ #
    shifted = dataset.shifted_test_set(noise_multiplier=3.0, intensity_shift=0.0)
    shifted_pred = model.predict_mc(shifted.x, num_samples=6)
    shifted_acc = accuracy(shifted_pred.mean_probs, shifted.y)
    clean_mi = float(mutual_information(prediction.sample_probs).mean())
    shifted_mi = float(mutual_information(shifted_pred.sample_probs).mean())

    print()
    print(
        format_table(
            ["cohort", "accuracy", "mean epistemic uncertainty (MI)"],
            [
                ["in-distribution", f"{overall:.3f}", f"{clean_mi:.4f}"],
                ["shifted scanner", f"{shifted_acc:.3f}", f"{shifted_mi:.4f}"],
            ],
            title="Distribution shift: accuracy collapses, uncertainty should not stay silent",
        )
    )
    print(
        "\nAccuracy drops by "
        f"{overall - shifted_acc:.3f} under the shift; monitoring the epistemic "
        "uncertainty (and the per-exit disagreement) is how a deployed system "
        "detects that its predictions can no longer be trusted."
    )


if __name__ == "__main__":
    main()
