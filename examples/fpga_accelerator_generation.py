"""End-to-end transformation framework: non-Bayesian model in, FPGA project out.

This runs all four phases of the paper's transformation framework (Figure 2)
on a LeNet-5 backbone and a synthetic MNIST-like task:

* Phase 1: construct and train candidate multi-exit MCD BayesNNs, evaluate
  accuracy / ECE / FLOPs, filter by user constraints, pick by priority;
* Phase 2: choose the spatial/temporal mapping of the MC engines;
* Phase 3: co-explore bitwidth, channel scaling and reuse factor;
* Phase 4: emit the HLS project and the synthesis-style report.

The generated HLS sources are written to ``./generated_hls_project/``.

Run with:  python examples/fpga_accelerator_generation.py
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import format_table
from repro.core import CandidateConfig, UserConstraints
from repro.core.framework import FrameworkConfig, TransformationFramework
from repro.datasets import mnist_like
from repro.nn.architectures import lenet5_spec


def main() -> None:
    dataset = mnist_like(train_size=256, test_size=128, seed=0, image_size=20)

    def spec_factory(width_multiplier: float = 1.0):
        return lenet5_spec(
            input_shape=dataset.input_shape,
            num_classes=dataset.num_classes,
            width_multiplier=width_multiplier,
        )

    framework = TransformationFramework(
        spec_factory=spec_factory,
        train_split=dataset.train,
        test_split=dataset.test,
        config=FrameworkConfig(
            device="XCKU115",
            num_mc_samples=3,
            optimization_priority="calibration",
            constraints=UserConstraints(max_relative_flops=1.5),
            train_epochs=2,
            bitwidths=(8, 16),
            channel_multipliers=(1.0, 0.5),
            reuse_factors=(16, 64),
            seed=0,
        ),
    )

    # a compact Phase-1 grid keeps the example quick; omit `candidates`
    # entirely to search the full default grid of Figure 3
    candidates = [
        CandidateConfig(
            num_exits=1, dropout_rate=0.25, mcd_layers_per_exit=1, num_mc_samples=3
        ),
        CandidateConfig(
            num_exits=2, dropout_rate=0.25, mcd_layers_per_exit=1, num_mc_samples=3
        ),
        CandidateConfig(
            num_exits=2, dropout_rate=0.5, mcd_layers_per_exit=1, num_mc_samples=3
        ),
    ]
    design = framework.run(candidates=candidates)

    # ------------------------------------------------------------------ #
    # Phase 1 outcome
    # ------------------------------------------------------------------ #
    rows = [
        [
            d.config.num_exits,
            d.config.dropout_rate,
            f"{d.accuracy:.3f}",
            f"{d.ece:.3f}",
            f"{d.relative_flops:.3f}",
        ]
        for d in design.phase1_all_designs
    ]
    print(
        format_table(
            ["exits", "dropout", "accuracy", "ECE", "relative FLOPs"],
            rows,
            title="Phase 1: evaluated multi-exit candidates",
        )
    )
    chosen = design.phase1_design
    print(
        f"\nselected: {chosen.config.num_exits} exits, "
        f"dropout {chosen.config.dropout_rate} "
        f"(accuracy {chosen.accuracy:.3f}, ECE {chosen.ece:.3f})"
    )

    # ------------------------------------------------------------------ #
    # Phases 2-3 outcome
    # ------------------------------------------------------------------ #
    print(f"\nPhase 2 mapping   : {design.mapping.describe()}")
    point = design.phase3_point
    print(
        f"Phase 3 selection : {point.point.bitwidth}-bit weights, "
        f"channel multiplier {point.point.channel_multiplier}, "
        f"reuse factor {point.point.reuse_factor} "
        f"(latency {point.latency_ms:.3f} ms, "
        f"energy {point.energy_per_image_j * 1000:.3f} mJ/image)"
    )

    # ------------------------------------------------------------------ #
    # Phase 4: HLS project + synthesis report
    # ------------------------------------------------------------------ #
    output_dir = Path(__file__).resolve().parent / "generated_hls_project"
    output_dir.mkdir(exist_ok=True)
    for filename, content in design.hls_files.items():
        (output_dir / filename).write_text(content)
    print(
        f"\nHLS project written to {output_dir} "
        f"({', '.join(sorted(design.hls_files))})"
    )

    print()
    print(design.report.to_text())

    assert design.accelerator.fits(), "the generated design must fit the XCKU115"


if __name__ == "__main__":
    main()
