"""Repo-wide pytest configuration: hang protection for every test.

CI installs ``pytest-timeout`` (pinned in the ``test`` extra) and the
``timeout``/``timeout_method`` settings in ``pyproject.toml`` give every
test a 120 s budget, so a deadlocked batcher or a wedged serving worker
fails fast instead of hanging the runner until the job-level kill.

Environments without the plugin (minimal dev boxes, hermetic images) get
a *fallback* implemented here: the same ini options and the same
``@pytest.mark.timeout(N)`` marker, enforced with a ``SIGALRM`` interval
timer.  The fallback is weaker than the real plugin — it only fires on
POSIX main-thread tests and cannot interrupt a test stuck inside a C
extension — but it turns the common failure modes (asyncio deadlocks,
worker channels waiting forever) into ordinary test failures.
"""

from __future__ import annotations

import signal
import threading

import pytest

try:
    import pytest_timeout  # noqa: F401  (the real plugin takes over)

    _HAVE_PYTEST_TIMEOUT = True
except ImportError:
    _HAVE_PYTEST_TIMEOUT = False


if not _HAVE_PYTEST_TIMEOUT:

    def pytest_addoption(parser):
        # mirror the plugin's ini options so pyproject.toml parses cleanly
        parser.addini("timeout", "default per-test timeout in seconds", default="0")
        parser.addini("timeout_method", "ignored by the fallback", default="signal")

    def pytest_configure(config):
        config.addinivalue_line(
            "markers",
            "timeout(seconds): fail the test if it runs longer than this "
            "(fallback implementation; install pytest-timeout for the real one)",
        )

    def _timeout_seconds(item) -> float:
        marker = item.get_closest_marker("timeout")
        if marker is not None and marker.args:
            return float(marker.args[0])
        if marker is not None and "timeout" in marker.kwargs:
            return float(marker.kwargs["timeout"])
        try:
            return float(item.config.getini("timeout") or 0)
        except (TypeError, ValueError):
            return 0.0

    @pytest.hookimpl(wrapper=True)
    def pytest_runtest_call(item):
        seconds = _timeout_seconds(item)
        usable = (
            seconds > 0
            and hasattr(signal, "SIGALRM")
            and threading.current_thread() is threading.main_thread()
        )
        if not usable:
            return (yield)

        def _on_alarm(signum, frame):
            pytest.fail(
                f"test exceeded the {seconds:g}s timeout (fallback enforcement)",
                pytrace=False,
            )

        previous = signal.signal(signal.SIGALRM, _on_alarm)
        signal.setitimer(signal.ITIMER_REAL, seconds)
        try:
            return (yield)
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0)
            signal.signal(signal.SIGALRM, previous)
