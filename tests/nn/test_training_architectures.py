"""Tests for the trainers and the backbone architecture factories."""

import numpy as np
import pytest

from repro.core import MultiExitBayesNet, MultiExitConfig
from repro.nn import (
    SGD,
    CrossEntropyLoss,
    DistillationTrainer,
    Trainer,
    evaluate_classifier,
)
from repro.nn.architectures import (
    get_architecture,
    lenet5_spec,
    resnet18_spec,
    resnet_spec,
    vgg11_spec,
    vgg19_spec,
    vgg_spec,
)
from repro.nn.architectures.common import scale_channels
from repro.nn.layers import Conv2D, ResidualBlock
from repro.nn.training import iterate_minibatches

from ..conftest import small_lenet_spec


class TestMinibatches:
    def test_covers_all_samples(self, rng):
        x = np.arange(10)[:, None].astype(float)
        y = np.arange(10)
        seen = []
        for xb, yb in iterate_minibatches(x, y, 3, rng):
            seen.extend(yb.tolist())
        assert sorted(seen) == list(range(10))

    def test_batch_sizes(self):
        x = np.zeros((10, 2))
        y = np.zeros(10, dtype=int)
        sizes = [len(xb) for xb, _ in iterate_minibatches(x, y, 4, shuffle=False)]
        assert sizes == [4, 4, 2]

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            list(iterate_minibatches(np.zeros((3, 1)), np.zeros(2), 2))


class TestTrainer:
    def test_training_reduces_loss(self, tiny_dataset):
        spec = small_lenet_spec()
        net = spec.single_exit_network(seed=0)
        trainer = Trainer(
            net, SGD(
                net.parameters(), lr=0.05
            ), CrossEntropyLoss(), batch_size=32, seed=0
        )
        history = trainer.fit(tiny_dataset.train.x, tiny_dataset.train.y, epochs=3)
        assert history.loss[-1] < history.loss[0]

    def test_training_beats_chance(self, tiny_dataset):
        spec = small_lenet_spec()
        net = spec.single_exit_network(seed=0)
        trainer = Trainer(
            net, SGD(
                net.parameters(), lr=0.05
            ), CrossEntropyLoss(), batch_size=32, seed=0
        )
        trainer.fit(tiny_dataset.train.x, tiny_dataset.train.y, epochs=4)
        _, acc = evaluate_classifier(net, tiny_dataset.train.x, tiny_dataset.train.y)
        assert acc > 1.0 / tiny_dataset.num_classes + 0.1

    def test_validation_metrics_recorded(self, tiny_dataset):
        spec = small_lenet_spec()
        net = spec.single_exit_network(seed=0)
        trainer = Trainer(net, SGD(net.parameters(), lr=0.05), batch_size=32)
        history = trainer.fit(
            tiny_dataset.train.x,
            tiny_dataset.train.y,
            epochs=1,
            validation_data=(tiny_dataset.test.x, tiny_dataset.test.y),
        )
        assert len(history.val_accuracy) == 1

    def test_history_epochs(self, tiny_dataset):
        spec = small_lenet_spec()
        net = spec.single_exit_network(seed=0)
        trainer = Trainer(net, SGD(net.parameters(), lr=0.05), batch_size=32)
        history = trainer.fit(tiny_dataset.train.x, tiny_dataset.train.y, epochs=2)
        assert history.epochs == 2


class TestDistillationTrainer:
    def test_multi_exit_training_reduces_loss(self, tiny_dataset):
        model = MultiExitBayesNet(
            small_lenet_spec(),
            MultiExitConfig(
                num_exits=2, mcd_layers_per_exit=1, dropout_rate=0.125, seed=0
            ),
        )
        trainer = DistillationTrainer(
            model, SGD(model.parameters(), lr=0.05), batch_size=32, seed=0
        )
        history = trainer.fit(tiny_dataset.train.x, tiny_dataset.train.y, epochs=3)
        assert history.loss[-1] < history.loss[0]

    def test_distillation_weight_zero_is_pure_ce(self, tiny_dataset):
        model = MultiExitBayesNet(
            small_lenet_spec(),
            MultiExitConfig(
                num_exits=2, mcd_layers_per_exit=0, dropout_rate=0.0, seed=0
            ),
        )
        trainer = DistillationTrainer(
            model, SGD(model.parameters(), lr=0.05), distill_weight=0.0, batch_size=32
        )
        loss, acc = trainer.train_on_batch(
            tiny_dataset.train.x[:16], tiny_dataset.train.y[:16]
        )
        assert np.isfinite(loss) and 0.0 <= acc <= 1.0

    def test_negative_distill_weight_rejected(self, tiny_dataset, multi_exit_model):
        with pytest.raises(ValueError):
            DistillationTrainer(
                multi_exit_model,
                SGD(multi_exit_model.parameters(), lr=0.05),
                distill_weight=-1.0,
            )


class TestArchitectures:
    def test_scale_channels(self):
        assert scale_channels(64, 0.5) == 32
        assert scale_channels(64, 0.01) == 4  # floor at the minimum
        with pytest.raises(ValueError):
            scale_channels(0, 1.0)

    def test_lenet_structure(self):
        spec = lenet5_spec()
        assert spec.num_blocks == 2
        assert spec.exit_points[-1] == len(spec.backbone.layers)

    def test_lenet_single_exit_network(self, rng):
        spec = lenet5_spec(input_shape=(1, 28, 28))
        net = spec.single_exit_network()
        out = net.predict(rng.normal(size=(2, 1, 28, 28)))
        assert out.shape == (2, 10)

    def test_vgg11_has_five_blocks_at_32(self):
        spec = vgg11_spec(input_shape=(3, 32, 32))
        assert spec.num_blocks == 5

    def test_vgg19_conv_count(self):
        spec = vgg19_spec(input_shape=(3, 32, 32), use_batchnorm=False)
        convs = [layer for layer in spec.backbone.layers if isinstance(layer, Conv2D)]
        assert len(convs) == 16

    def test_vgg_truncated_for_small_inputs(self):
        spec = vgg_spec("vgg11", input_shape=(3, 8, 8))
        assert spec.num_blocks == 3  # 8 -> 4 -> 2 -> 1

    def test_vgg_unknown_variant(self):
        with pytest.raises(ValueError):
            vgg_spec("vgg99")

    def test_resnet18_block_count(self):
        spec = resnet18_spec(input_shape=(3, 32, 32))
        blocks = [
            layer for layer in spec.backbone.layers if isinstance(layer, ResidualBlock)
        ]
        assert len(blocks) == 8
        assert spec.num_blocks == 4

    def test_resnet_forward(self, rng):
        spec = resnet_spec(
            "resnet10", input_shape=(3, 16, 16), width_multiplier=0.125, max_stages=2
        )
        net = spec.single_exit_network()
        assert net.predict(rng.normal(size=(2, 3, 16, 16))).shape == (2, 10)

    def test_resnet_unknown_variant(self):
        with pytest.raises(ValueError):
            resnet_spec("resnet999")

    def test_width_multiplier_reduces_parameters(self):
        wide = lenet5_spec(width_multiplier=1.0).single_exit_network()
        narrow = lenet5_spec(width_multiplier=0.5).single_exit_network()
        assert narrow.num_parameters < wide.num_parameters

    def test_get_architecture_lookup(self):
        assert get_architecture("lenet5").name == "lenet5"
        assert get_architecture("resnet18", input_shape=(3, 32, 32)).name == "resnet18"
        assert get_architecture("vgg11", input_shape=(3, 32, 32)).name == "vgg11"
        with pytest.raises(ValueError):
            get_architecture("alexnet")

    def test_exit_points_increasing(self):
        for spec in (
            lenet5_spec(),
            vgg11_spec(input_shape=(3, 32, 32)),
            resnet18_spec(input_shape=(3, 32, 32)),
        ):
            assert spec.exit_points == sorted(spec.exit_points)

    def test_spec_validation_rejects_bad_exit_points(self):
        spec = lenet5_spec()
        from repro.nn.architectures.common import BackboneSpec

        with pytest.raises(ValueError):
            BackboneSpec(
                name="bad",
                backbone=spec.backbone,
                exit_points=[1, 99],
                input_shape=spec.input_shape,
                num_classes=10,
                final_head_factory=spec.final_head_factory,
            )
