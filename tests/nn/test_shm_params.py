"""Shared-memory parameter storage: arena layout, pickling, release.

These tests exercise :mod:`repro.nn.shm` and the :class:`Parameter`
attach/detach hooks *within one process* (cross-process behaviour is
covered end-to-end by the process-pool serving tests): storage rebinding
preserves values and write-through, shared parameters pickle as cheap
descriptors that re-attach to the live segment, version slots round-trip,
and ``release`` returns the model to fully private, usable storage.
"""

from __future__ import annotations

import pickle
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.nn import Network
from repro.nn.layers import Dense
from repro.nn.layers.base import Parameter
from repro.nn.shm import SharedParameterArena


def _network() -> Network:
    net = Network([Dense(8), Dense(4)])
    net.build((6,), seed=0)
    return net


def test_arena_rebinds_values_preserving_contents():
    net = _network()
    before = net.get_weights()
    params = list(net.parameters())
    arena = SharedParameterArena.create(params)
    try:
        for p, w in zip(params, before):
            assert p.is_shared
            np.testing.assert_array_equal(p.value, w)
        # a write through the parameter is visible through a raw attach of
        # the same segment (i.e. the storage genuinely moved)
        spec = params[0]._shm_spec
        seg = shared_memory.SharedMemory(name=spec[0])
        try:
            view = np.ndarray(spec[2], dtype=np.float64, buffer=seg.buf, offset=spec[1])
            params[0].value[...] = 7.25
            assert float(view.ravel()[0]) == 7.25
        finally:
            seg.close()
    finally:
        arena.release()


def test_shared_parameter_pickles_as_descriptor_and_realiases():
    net = _network()
    params = list(net.parameters())
    heavy = len(pickle.dumps(params[0]))
    arena = SharedParameterArena.create(params)
    try:
        light = len(pickle.dumps(params[0]))
        assert light < heavy / 2, (light, heavy)

        clone = pickle.loads(pickle.dumps(params[0]))
        np.testing.assert_array_equal(clone.value, params[0].value)
        # descriptor unpickling aliases the same storage, both directions
        params[0].value[...] = 1.5
        assert float(clone.value.ravel()[0]) == 1.5
        clone.value[...] = 2.5
        assert float(params[0].value.ravel()[0]) == 2.5
        assert clone.grad.shape == clone.value.shape  # grads rebuilt privately
    finally:
        arena.release()


def test_whole_model_pickle_is_light_when_shared():
    net = _network()
    heavy = len(pickle.dumps(net))
    arena = SharedParameterArena.create(list(net.parameters()))
    try:
        assert len(pickle.dumps(net)) < heavy
        clone = pickle.loads(pickle.dumps(net))
        x = np.random.default_rng(0).normal(size=(3, 6))
        np.testing.assert_array_equal(clone.forward(x), net.forward(x))
    finally:
        arena.release()


def test_version_slots_publish_and_refresh():
    net = _network()
    params = list(net.parameters())
    arena = SharedParameterArena.create(params)
    try:
        clone_params = [pickle.loads(pickle.dumps(p)) for p in params]
        attached = SharedParameterArena.attached(arena.manifest, clone_params)
        assert attached.refresh() is False  # in sync at creation

        params[0].assign(params[0].value + 1.0)
        params[1].bump_version()
        arena.publish()
        assert attached.refresh() is True
        assert clone_params[0].version == params[0].version
        assert clone_params[1].version == params[1].version
        assert attached.refresh() is False  # idempotent once synced
    finally:
        arena.release()


def test_release_restores_private_usable_storage():
    net = _network()
    before = net.get_weights()
    arena = SharedParameterArena.create(list(net.parameters()))
    name = arena.manifest.segment_name
    arena.release()
    arena.release()  # idempotent

    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=name)
    for p, w in zip(net.parameters(), before):
        assert not p.is_shared
        np.testing.assert_array_equal(p.value, w)
    # the model trains/mutates like any private model afterwards
    for p in net.parameters():
        p.assign(p.value * 2.0)
    x = np.random.default_rng(1).normal(size=(2, 6))
    assert net.forward(x).shape == (2, 4)


def test_arena_manifest_mismatch_rejected():
    net = _network()
    params = list(net.parameters())
    arena = SharedParameterArena.create(params)
    try:
        with pytest.raises(ValueError, match="parameters"):
            SharedParameterArena.attached(arena.manifest, params[:1])
        with pytest.raises(ValueError, match="zero parameters"):
            SharedParameterArena.create([])
    finally:
        arena.release()


def test_share_memory_shape_mismatch_rejected():
    p = Parameter(np.zeros((3, 3)))
    with pytest.raises(ValueError, match="shape"):
        p.share_memory_(np.zeros((2, 2)), ("bogus", 0, (2, 2)))
    assert not p.is_shared
    p.unshare_()  # no-op on private parameters
