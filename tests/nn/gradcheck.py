"""Numerical gradient checking helpers shared by the layer tests."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.nn.layers.base import Layer


def numerical_gradient(
    f: Callable[[np.ndarray], float], x: np.ndarray, epsilon: float = 1e-5
) -> np.ndarray:
    """Central-difference gradient of a scalar function of an array."""
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        original = x[idx]
        x[idx] = original + epsilon
        plus = f(x)
        x[idx] = original - epsilon
        minus = f(x)
        x[idx] = original
        grad[idx] = (plus - minus) / (2 * epsilon)
        it.iternext()
    return grad


def check_input_gradient(
    layer: Layer, x: np.ndarray, atol: float = 1e-6, training: bool = True
) -> None:
    """Assert that the layer's backward pass matches numerical differentiation.

    The scalar objective is a fixed random projection of the layer output, so
    the analytic input gradient is ``backward(projection)``.
    """
    rng = np.random.default_rng(123)
    out = layer.forward(x, training=training)
    projection = rng.normal(size=out.shape)

    def objective(inp: np.ndarray) -> float:
        return float(np.sum(layer.forward(inp, training=training) * projection))

    # re-run forward to refresh the cache, then take the analytic gradient
    layer.forward(x, training=training)
    analytic = layer.backward(projection)
    numeric = numerical_gradient(objective, x.copy())
    np.testing.assert_allclose(analytic, numeric, atol=atol, rtol=1e-4)


def check_parameter_gradients(
    layer: Layer, x: np.ndarray, atol: float = 1e-6, training: bool = True
) -> None:
    """Assert that parameter gradients match numerical differentiation."""
    rng = np.random.default_rng(321)
    out = layer.forward(x, training=training)
    projection = rng.normal(size=out.shape)

    layer.zero_grad()
    layer.forward(x, training=training)
    layer.backward(projection)

    for param in layer.parameters():
        analytic = param.grad.copy()

        def objective(values: np.ndarray) -> float:
            param.value[...] = values
            return float(np.sum(layer.forward(x, training=training) * projection))

        numeric = numerical_gradient(objective, param.value.copy())
        np.testing.assert_allclose(
            analytic,
            numeric,
            atol=atol,
            rtol=1e-4,
            err_msg=f"gradient mismatch for parameter {param.name}",
        )
