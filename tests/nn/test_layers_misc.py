"""Tests for pooling, batch-norm, activation, dropout, flatten and residual layers."""

import numpy as np
import pytest

from repro.nn.layers import (
    AvgPool2D,
    BatchNorm,
    Dropout,
    Flatten,
    GlobalAvgPool2D,
    MaxPool2D,
    MCDropout,
    ReLU,
    ResidualBlock,
    Softmax,
)
from repro.nn.layers.activations import log_softmax, softmax

from .gradcheck import check_input_gradient, check_parameter_gradients


def build(layer, shape, seed=0):
    layer.build(shape, np.random.default_rng(seed))
    return layer


class TestPooling:
    def test_maxpool_shape(self):
        layer = build(MaxPool2D(2), (3, 8, 8))
        assert layer.output_shape == (3, 4, 4)

    def test_maxpool_values(self):
        layer = build(MaxPool2D(2), (1, 2, 2))
        x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        np.testing.assert_allclose(layer.forward(x), [[[[4.0]]]])

    def test_avgpool_values(self):
        layer = build(AvgPool2D(2), (1, 2, 2))
        x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        np.testing.assert_allclose(layer.forward(x), [[[[2.5]]]])

    def test_global_avgpool(self, rng):
        layer = build(GlobalAvgPool2D(), (5, 6, 6))
        x = rng.normal(size=(2, 5, 6, 6))
        np.testing.assert_allclose(layer.forward(x), x.mean(axis=(2, 3)))

    def test_maxpool_gradient(self, rng):
        layer = build(MaxPool2D(2), (2, 4, 4))
        check_input_gradient(layer, rng.normal(size=(2, 2, 4, 4)))

    def test_avgpool_gradient(self, rng):
        layer = build(AvgPool2D(2), (2, 4, 4))
        check_input_gradient(layer, rng.normal(size=(2, 2, 4, 4)))

    def test_global_avgpool_gradient(self, rng):
        layer = build(GlobalAvgPool2D(), (3, 4, 4))
        check_input_gradient(layer, rng.normal(size=(2, 3, 4, 4)))

    def test_pooling_has_no_parameters(self):
        assert build(MaxPool2D(2), (1, 4, 4)).num_parameters == 0

    def test_invalid_pool_size(self):
        with pytest.raises(ValueError):
            MaxPool2D(0)


class TestActivations:
    def test_relu_values(self):
        layer = build(ReLU(), (4,))
        x = np.array([[-1.0, 0.0, 2.0, -3.0]])
        np.testing.assert_allclose(layer.forward(x), [[0.0, 0.0, 2.0, 0.0]])

    def test_relu_gradient(self, rng):
        layer = build(ReLU(), (6,))
        check_input_gradient(layer, rng.normal(size=(3, 6)) + 0.1)

    def test_softmax_rows_sum_to_one(self, rng):
        probs = softmax(rng.normal(size=(5, 7)) * 10)
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(5))

    def test_softmax_numerically_stable(self):
        probs = softmax(np.array([[1000.0, 1000.0]]))
        np.testing.assert_allclose(probs, [[0.5, 0.5]])

    def test_log_softmax_consistent_with_softmax(self, rng):
        logits = rng.normal(size=(4, 6))
        np.testing.assert_allclose(np.exp(log_softmax(logits)), softmax(logits))

    def test_softmax_layer_gradient(self, rng):
        layer = build(Softmax(), (5,))
        check_input_gradient(layer, rng.normal(size=(3, 5)))


class TestBatchNorm:
    def test_training_normalises(self, rng):
        layer = build(BatchNorm(), (4, 6, 6))
        x = rng.normal(loc=3.0, scale=2.0, size=(16, 4, 6, 6))
        out = layer.forward(x, training=True)
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-7)
        np.testing.assert_allclose(out.std(axis=(0, 2, 3)), 1.0, atol=1e-2)

    def test_running_stats_updated(self, rng):
        layer = build(BatchNorm(momentum=0.0), (3,))
        x = rng.normal(loc=5.0, size=(64, 3))
        layer.forward(x, training=True)
        np.testing.assert_allclose(layer.running_mean, x.mean(axis=0))

    def test_inference_uses_running_stats(self, rng):
        layer = build(BatchNorm(), (3,))
        x = rng.normal(size=(8, 3))
        out = layer.forward(x, training=False)
        expected = (x - layer.running_mean) / np.sqrt(layer.running_var + layer.epsilon)
        np.testing.assert_allclose(out, expected)

    def test_gradient_dense_input(self, rng):
        layer = build(BatchNorm(), (5,))
        check_input_gradient(layer, rng.normal(size=(6, 5)), atol=1e-5)

    def test_parameter_gradients(self, rng):
        layer = build(BatchNorm(), (3,))
        check_parameter_gradients(layer, rng.normal(size=(6, 3)), atol=1e-5)

    def test_gradient_conv_input(self, rng):
        layer = build(BatchNorm(), (2, 3, 3))
        check_input_gradient(layer, rng.normal(size=(4, 2, 3, 3)), atol=1e-5)

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            BatchNorm(momentum=1.5)


class TestDropout:
    def test_standard_dropout_identity_at_inference(self, rng):
        layer = build(Dropout(0.5), (10,))
        x = rng.normal(size=(4, 10))
        np.testing.assert_allclose(layer.forward(x, training=False), x)

    def test_standard_dropout_active_in_training(self, rng):
        layer = build(Dropout(0.5, filter_wise=False, seed=0), (100,))
        x = np.ones((4, 100))
        out = layer.forward(x, training=True)
        assert np.any(out == 0)

    def test_mc_dropout_active_at_inference(self):
        layer = build(MCDropout(0.5, filter_wise=False, seed=0), (200,))
        x = np.ones((2, 200))
        out = layer.forward(x, training=False)
        assert np.any(out == 0)

    def test_mc_dropout_samples_differ(self):
        layer = build(MCDropout(0.5, filter_wise=False, seed=0), (100,))
        x = np.ones((1, 100))
        assert not np.allclose(layer.forward(x), layer.forward(x))

    def test_mc_dropout_reseed_reproducible(self):
        layer = build(MCDropout(0.5, filter_wise=False), (64,))
        x = np.ones((2, 64))
        layer.reseed(7)
        a = layer.forward(x)
        layer.reseed(7)
        b = layer.forward(x)
        np.testing.assert_allclose(a, b)

    def test_inverted_scaling_preserves_expectation(self):
        layer = build(MCDropout(0.25, filter_wise=False, seed=3), (50,))
        x = np.ones((200, 50))
        out = layer.forward(x)
        assert abs(out.mean() - 1.0) < 0.05

    def test_filter_wise_drops_whole_channels(self):
        layer = build(MCDropout(0.5, filter_wise=True, seed=1), (8, 4, 4))
        x = np.ones((2, 8, 4, 4))
        out = layer.forward(x)
        # each channel is either fully dropped or fully kept
        per_channel = out.reshape(2, 8, -1)
        for n in range(2):
            for c in range(8):
                vals = np.unique(per_channel[n, c])
                assert len(vals) == 1

    def test_filter_wise_dense_mask_shape_and_semantics(self):
        """Regression: on (N, F) activations, filter-wise == element-wise.

        Each dense feature is a single-element filter, so the filter-wise
        mask must cover the full ``(batch, features)`` shape (one draw per
        feature, not per example or shared across the batch) and equal the
        element-wise mask drawn from the same stream.
        """
        fw = build(MCDropout(0.5, filter_wise=True, seed=123), (32,))
        ew = build(MCDropout(0.5, filter_wise=False, seed=123), (32,))
        x = np.ones((6, 32))
        mask_fw = fw._sample_mask(x)
        assert mask_fw.shape == (6, 32)
        np.testing.assert_array_equal(mask_fw, ew._sample_mask(x))
        # per-element masking: rows must not be forced to a single value
        assert any(len(np.unique(mask_fw[n])) == 2 for n in range(6))

    def test_filter_wise_conv_mask_shape(self):
        layer = build(MCDropout(0.5, filter_wise=True, seed=5), (8, 4, 4))
        mask = layer._sample_mask(np.ones((3, 8, 4, 4)))
        assert mask.shape == (3, 8, 1, 1)

    def test_deterministic_forward_is_identity(self, rng):
        layer = build(MCDropout(0.5), (6,))
        x = rng.normal(size=(3, 6))
        np.testing.assert_allclose(layer.deterministic_forward(x), x)

    def test_zero_rate_is_identity(self, rng):
        layer = build(MCDropout(0.0), (6,))
        x = rng.normal(size=(3, 6))
        np.testing.assert_allclose(layer.forward(x), x)

    def test_backward_uses_same_mask(self):
        layer = build(MCDropout(0.5, filter_wise=False, seed=0), (40,))
        x = np.ones((1, 40))
        out = layer.forward(x)
        grad = layer.backward(np.ones_like(out))
        np.testing.assert_allclose(grad, out)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            MCDropout(1.0)

    def test_stochastic_flag(self):
        assert MCDropout(0.1).stochastic is True
        assert Dropout(0.1).stochastic is False


class TestFlattenAndResidual:
    def test_flatten_shape(self, rng):
        layer = build(Flatten(), (3, 4, 5))
        out = layer.forward(rng.normal(size=(2, 3, 4, 5)))
        assert out.shape == (2, 60)

    def test_flatten_gradient_restores_shape(self, rng):
        layer = build(Flatten(), (2, 3, 3))
        x = rng.normal(size=(2, 2, 3, 3))
        out = layer.forward(x)
        grad = layer.backward(np.ones_like(out))
        assert grad.shape == x.shape

    def test_residual_identity_shape(self, rng):
        block = build(ResidualBlock(4), (4, 6, 6))
        assert block.output_shape == (4, 6, 6)
        assert block.shortcut_conv is None

    def test_residual_projection_when_channels_change(self):
        block = build(ResidualBlock(8, stride=2), (4, 8, 8))
        assert block.output_shape == (8, 4, 4)
        assert block.shortcut_conv is not None

    def test_residual_forward_shape(self, rng):
        block = build(ResidualBlock(6, stride=2), (3, 8, 8))
        out = block.forward(rng.normal(size=(2, 3, 8, 8)))
        assert out.shape == (2, 6, 4, 4)

    def test_residual_parameters_collected(self):
        block = build(ResidualBlock(4), (4, 6, 6))
        names = [p.name for p in block.parameters()]
        assert any("conv1" in n for n in names)
        assert any("conv2" in n for n in names)
        assert block.num_parameters == sum(p.size for p in block.parameters())

    def test_residual_gradient_without_batchnorm(self, rng):
        block = build(ResidualBlock(3, use_batchnorm=False), (3, 4, 4))
        check_input_gradient(block, rng.normal(size=(2, 3, 4, 4)), atol=1e-5)

    def test_residual_projection_gradient(self, rng):
        block = build(ResidualBlock(4, stride=2, use_batchnorm=False), (2, 4, 4))
        check_input_gradient(block, rng.normal(size=(2, 2, 4, 4)), atol=1e-5)

    def test_residual_describe_contains_sublayers(self):
        block = build(ResidualBlock(4), (4, 6, 6))
        desc = block.describe()
        assert desc["type"] == "ResidualBlock"
        assert len(desc["sublayers"]) >= 6
