"""ForwardContext: stateless layers, context-owned RNG, the spawn rule.

The reentrancy refactor moved all per-call layer state (backward caches,
dropout masks, RNG streams) into an explicit :class:`ForwardContext`.
These tests pin its contract:

* ctx-less calls resolve to the process-wide default context and behave
  exactly like the historical stateful layers (bit-identical masks);
* two contexts over the *same* layer objects are fully isolated — caches
  don't cross, streams are independent, an interleaved forward/backward
  pair in context A is untouched by work in context B;
* the ``spawn_key`` rule: ``spawn_key=None`` reproduces the historical
  ``default_rng(layer.seed)`` stream; ``spawn_key=k`` gives a deterministic
  stream family independent across keys;
* ``reseed`` stays model-wide: every context re-derives its stream from
  the new seed on the next draw.
"""

import numpy as np
import pytest

from repro.nn import ForwardContext, default_context, resolve_context
from repro.nn.layers import Dense, Flatten, MCDropout, ReLU
from repro.nn.model import Network


def _mcd(seed=0, rate=0.5):
    layer = MCDropout(rate, filter_wise=False, seed=seed)
    layer.build((64,), np.random.default_rng(0))
    return layer


class TestContextResolution:
    def test_none_resolves_to_process_default(self):
        assert resolve_context(None) is default_context()

    def test_explicit_context_passes_through(self):
        ctx = ForwardContext()
        assert resolve_context(ctx) is ctx

    def test_negative_spawn_key_rejected(self):
        with pytest.raises(ValueError):
            ForwardContext(spawn_key=-1)


class TestBackwardCacheIsolation:
    def test_backward_reads_cache_of_its_own_context(self):
        layer = ReLU()
        layer.build((4,), np.random.default_rng(0))
        ctx_a, ctx_b = ForwardContext(), ForwardContext()
        x_a = np.array([[1.0, -1.0, 2.0, -2.0]])
        x_b = np.array([[-1.0, 1.0, -2.0, 2.0]])  # opposite mask

        layer.forward(x_a, ctx=ctx_a)
        layer.forward(x_b, ctx=ctx_b)  # would clobber self._mask pre-refactor

        grad = np.ones((1, 4))
        np.testing.assert_array_equal(
            layer.backward(grad, ctx=ctx_a), [[1.0, 0.0, 1.0, 0.0]]
        )
        np.testing.assert_array_equal(
            layer.backward(grad, ctx=ctx_b), [[0.0, 1.0, 0.0, 1.0]]
        )

    def test_backward_without_forward_in_context_fails_clearly(self):
        layer = Flatten()
        layer.build((2, 2), np.random.default_rng(0))
        layer.forward(np.ones((1, 2, 2)))  # default context only
        with pytest.raises(RuntimeError, match="no forward cache"):
            layer.backward(np.ones((1, 4)), ctx=ForwardContext())

    def test_network_forward_backward_pairs_through_one_context(self):
        net = Network([Flatten(), Dense(3)]).build((2, 2), seed=0)
        ctx = ForwardContext()
        x = np.random.default_rng(1).normal(size=(5, 2, 2))
        out = net.forward(x, training=True, ctx=ctx)
        grad = net.backward(np.ones_like(out), ctx=ctx)
        assert grad.shape == x.shape

    def test_clear_drops_caches(self):
        layer = ReLU()
        layer.build((2,), np.random.default_rng(0))
        ctx = ForwardContext()
        layer.forward(np.ones((1, 2)), ctx=ctx)
        ctx.clear()
        with pytest.raises(RuntimeError, match="no forward cache"):
            layer.backward(np.ones((1, 2)), ctx=ctx)


class TestContextOwnedRNG:
    def test_plain_context_matches_historical_stream(self):
        """spawn_key=None seeds exactly like default_rng(layer.seed) did."""
        layer = _mcd(seed=42)
        ctx = ForwardContext()
        x = np.ones((3, 64))
        out = layer.forward(x, ctx=ctx)

        reference = np.random.default_rng(42)
        mask = (reference.random((3, 64)) < 0.5).astype(x.dtype)
        np.testing.assert_array_equal(out, x * (mask / 0.5))

    def test_two_plain_contexts_draw_identical_independent_streams(self):
        layer = _mcd(seed=7)
        ctx_a, ctx_b = ForwardContext(), ForwardContext()
        x = np.ones((2, 64))
        a1, a2 = layer.forward(x, ctx=ctx_a), layer.forward(x, ctx=ctx_a)
        b1, b2 = layer.forward(x, ctx=ctx_b), layer.forward(x, ctx=ctx_b)
        # same seed ⇒ same sequence, each context advancing privately
        np.testing.assert_array_equal(a1, b1)
        np.testing.assert_array_equal(a2, b2)
        assert not np.array_equal(a1, a2)

    def test_spawned_contexts_are_deterministic_per_key(self):
        layer = _mcd(seed=3)
        x = np.ones((2, 64))
        out_k1 = layer.forward(x, ctx=ForwardContext(spawn_key=1))
        out_k1_again = layer.forward(x, ctx=ForwardContext(spawn_key=1))
        out_k2 = layer.forward(x, ctx=ForwardContext(spawn_key=2))
        out_plain = layer.forward(x, ctx=ForwardContext())
        np.testing.assert_array_equal(out_k1, out_k1_again)
        assert not np.array_equal(out_k1, out_k2)
        assert not np.array_equal(out_k1, out_plain)

    def test_reseed_is_visible_to_every_context(self):
        layer = _mcd(seed=0)
        ctx = ForwardContext()
        x = np.ones((2, 64))
        layer.forward(x, ctx=ctx)  # advance the context's stream
        layer.reseed(99)
        a = layer.forward(x, ctx=ctx)  # re-derived from seed 99
        b = layer.forward(x, ctx=ForwardContext())  # fresh context, same seed
        np.testing.assert_array_equal(a, b)

    def test_reseed_replays_masks_within_one_context(self):
        layer = _mcd()
        ctx = ForwardContext()
        x = np.ones((2, 64))
        layer.reseed(5)
        first = [layer.forward(x, ctx=ctx) for _ in range(3)]
        layer.reseed(5)
        second = [layer.forward(x, ctx=ctx) for _ in range(3)]
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a, b)

    def test_layers_carry_no_per_call_state(self):
        """The reentrancy invariant itself: forward leaves the layer untouched."""
        layers = [_mcd(), ReLU(), Flatten()]
        for layer in layers[1:]:
            layer.build((64,), np.random.default_rng(0))
        x = np.ones((2, 64))
        for layer in layers:
            before = set(vars(layer))
            layer.forward(x.reshape(2, 64), ctx=ForwardContext())
            assert set(vars(layer)) == before, (
                f"{type(layer).__name__}.forward mutated the layer: "
                f"{set(vars(layer)) - before}"
            )


class TestContextMemoryBehaviour:
    def test_dead_layers_do_not_accumulate_in_context(self):
        ctx = ForwardContext()
        for _ in range(5):
            layer = ReLU()
            layer.build((8,), np.random.default_rng(0))
            layer.forward(np.ones((1, 8)), ctx=ctx)
        # weak keys: dropping the layers drops their cache entries
        del layer
        import gc

        gc.collect()
        assert len(ctx._saved) == 0
