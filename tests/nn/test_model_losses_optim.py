"""Tests for the Network container, losses, optimizers, and initializers."""

import numpy as np
import pytest

from repro.nn import (
    SGD,
    Adam,
    CosineLR,
    CrossEntropyLoss,
    DistillationLoss,
    MSELoss,
    Network,
    StepLR,
)
from repro.nn.initializers import (
    Constant,
    HeNormal,
    Ones,
    XavierUniform,
    Zeros,
    get_initializer,
)
from repro.nn.layers import Conv2D, Dense, Flatten, MaxPool2D, MCDropout, ReLU
from repro.nn.layers.activations import softmax
from repro.nn.losses import cross_entropy, kl_divergence

from .gradcheck import numerical_gradient


def small_network() -> Network:
    net = Network(name="small")
    net.add(Conv2D(4, 3, padding=1, name="conv"))
    net.add(ReLU())
    net.add(MaxPool2D(2))
    net.add(Flatten())
    net.add(Dense(8, name="hidden"))
    net.add(ReLU())
    net.add(Dense(3, name="out"))
    return net


class TestNetwork:
    def test_build_and_shapes(self):
        net = small_network().build((1, 8, 8))
        assert net.output_shape == (3,)
        assert net.layers[0].output_shape == (4, 8, 8)

    def test_forward_shape(self, rng):
        net = small_network().build((1, 8, 8))
        assert net.forward(rng.normal(size=(5, 1, 8, 8))).shape == (5, 3)

    def test_forward_range_composition(self, rng):
        net = small_network().build((1, 8, 8))
        x = rng.normal(size=(2, 1, 8, 8))
        mid = net.forward_range(x, 0, 3)
        full_split = net.forward_range(mid, 3, len(net.layers))
        np.testing.assert_allclose(full_split, net.forward(x))

    def test_forward_range_invalid_bounds(self, rng):
        net = small_network().build((1, 8, 8))
        with pytest.raises(IndexError):
            net.forward_range(rng.normal(size=(1, 1, 8, 8)), 3, 2)

    def test_unbuilt_forward_raises(self, rng):
        with pytest.raises(RuntimeError):
            small_network().forward(rng.normal(size=(1, 1, 8, 8)))

    def test_add_after_build_raises(self):
        net = small_network().build((1, 8, 8))
        with pytest.raises(RuntimeError):
            net.add(Dense(2))

    def test_get_set_weights_roundtrip(self, rng):
        net = small_network().build((1, 8, 8))
        x = rng.normal(size=(2, 1, 8, 8))
        before = net.forward(x)
        weights = net.get_weights()
        for p in net.parameters():
            p.value[...] = rng.normal(size=p.value.shape)
        net.set_weights(weights)
        np.testing.assert_allclose(net.forward(x), before)

    def test_set_weights_shape_mismatch(self):
        net = small_network().build((1, 8, 8))
        weights = net.get_weights()
        weights[0] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            net.set_weights(weights)

    def test_layer_lookup(self):
        net = small_network().build((1, 8, 8))
        assert net.layer_index("conv") == 0
        assert net.get_layer("hidden").units == 8
        with pytest.raises(KeyError):
            net.layer_index("missing")

    def test_duplicate_names_made_unique(self):
        net = Network([ReLU(name="act"), ReLU(name="act")]).build((4,))
        assert net.layers[0].name != net.layers[1].name

    def test_stochastic_index(self):
        net = Network(
            [Dense(4, name="d1"), ReLU(), MCDropout(0.5), Dense(2, name="d2")]
        ).build((6,))
        assert net.stochastic_layer_indices() == [2]
        assert net.first_stochastic_index() == 2

    def test_first_stochastic_index_without_mcd(self):
        net = small_network().build((1, 8, 8))
        assert net.first_stochastic_index() == len(net.layers)

    def test_describe_and_summary(self):
        net = small_network().build((1, 8, 8))
        desc = net.describe()
        assert len(desc["layers"]) == len(net.layers)
        assert "total parameters" in net.summary()

    def test_num_parameters_positive(self):
        net = small_network().build((1, 8, 8))
        assert net.num_parameters > 0

    def test_backward_shapes(self, rng):
        net = small_network().build((1, 8, 8))
        x = rng.normal(size=(2, 1, 8, 8))
        out = net.forward(x, training=True)
        grad = net.backward(np.ones_like(out))
        assert grad.shape == x.shape


class TestLosses:
    def test_cross_entropy_uniform(self):
        logits = np.zeros((4, 10))
        labels = np.array([0, 1, 2, 3])
        assert abs(cross_entropy(logits, labels) - np.log(10)) < 1e-9

    def test_cross_entropy_perfect_prediction(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        assert cross_entropy(logits, np.array([0, 1])) < 1e-6

    def test_cross_entropy_gradient_matches_numeric(self, rng):
        loss = CrossEntropyLoss()
        logits = rng.normal(size=(3, 5))
        labels = np.array([0, 2, 4])

        def f(lg):
            return CrossEntropyLoss()(lg, labels)

        loss(logits, labels)
        np.testing.assert_allclose(
            loss.backward(), numerical_gradient(f, logits.copy()), atol=1e-6
        )

    def test_kl_divergence_zero_for_identical(self, rng):
        p = softmax(rng.normal(size=(4, 6)))
        assert kl_divergence(p, p) < 1e-10

    def test_kl_divergence_positive(self, rng):
        p = softmax(rng.normal(size=(4, 6)))
        q = softmax(rng.normal(size=(4, 6)))
        assert kl_divergence(p, q) > 0

    def test_distillation_gradient_matches_numeric(self, rng):
        teacher = softmax(rng.normal(size=(3, 4)))
        logits = rng.normal(size=(3, 4))
        loss = DistillationLoss(temperature=2.0)

        def f(lg):
            return DistillationLoss(temperature=2.0)(lg, teacher)

        loss(logits, teacher)
        np.testing.assert_allclose(
            loss.backward(), numerical_gradient(f, logits.copy()), atol=1e-6
        )

    def test_distillation_zero_when_matching_teacher(self, rng):
        logits = rng.normal(size=(3, 4))
        teacher = softmax(logits / 3.0)
        assert DistillationLoss(temperature=3.0)(logits, teacher) < 1e-10

    def test_mse(self):
        loss = MSELoss()
        value = loss(np.array([[1.0, 2.0]]), np.array([[0.0, 0.0]]))
        assert abs(value - 2.5) < 1e-12

    def test_invalid_temperature(self):
        with pytest.raises(ValueError):
            DistillationLoss(temperature=0)


class TestOptimizers:
    def _quadratic_problem(self):
        net = Network([Dense(1, use_bias=False, name="w")]).build((1,), seed=0)
        return net

    def test_sgd_reduces_quadratic_loss(self):
        net = self._quadratic_problem()
        param = next(net.parameters())
        opt = SGD(net.parameters(), lr=0.1, momentum=0.0, weight_decay=0.0)
        x = np.ones((1, 1))
        for _ in range(50):
            opt.zero_grad()
            out = net.forward(x)
            param.grad += 2 * (out - 3.0).T @ x  # d/dw of (w - 3)^2
            opt.step()
        assert abs(param.value[0, 0] - 3.0) < 1e-3

    def test_sgd_weight_decay_shrinks_weights(self):
        net = self._quadratic_problem()
        param = next(net.parameters())
        param.value[...] = 10.0
        opt = SGD(net.parameters(), lr=0.1, momentum=0.0, weight_decay=0.5)
        for _ in range(5):
            opt.zero_grad()
            opt.step()
        assert abs(param.value[0, 0]) < 10.0

    def test_adam_reduces_quadratic_loss(self):
        net = self._quadratic_problem()
        param = next(net.parameters())
        opt = Adam(net.parameters(), lr=0.2)
        x = np.ones((1, 1))
        for _ in range(100):
            opt.zero_grad()
            out = net.forward(x)
            param.grad += 2 * (out - 3.0).T @ x
            opt.step()
        assert abs(param.value[0, 0] - 3.0) < 1e-2

    def test_empty_parameters_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_invalid_lr_rejected(self):
        net = self._quadratic_problem()
        with pytest.raises(ValueError):
            SGD(net.parameters(), lr=0)

    def test_step_lr_schedule(self):
        net = self._quadratic_problem()
        opt = SGD(net.parameters(), lr=1.0)
        sched = StepLR(opt, step_size=2, gamma=0.1)
        lrs = [sched.step() for _ in range(4)]
        np.testing.assert_allclose(lrs, [1.0, 0.1, 0.1, 0.01])

    def test_cosine_lr_schedule_monotone_decreasing(self):
        net = self._quadratic_problem()
        opt = SGD(net.parameters(), lr=1.0)
        sched = CosineLR(opt, total_epochs=10)
        lrs = [sched.step() for _ in range(10)]
        assert all(a >= b for a, b in zip(lrs, lrs[1:]))
        assert lrs[-1] < 1e-9


class TestInitializers:
    def test_he_normal_scale(self, rng):
        w = HeNormal()((1000, 100), rng)
        assert abs(w.std() - np.sqrt(2.0 / 1000)) < 0.01

    def test_xavier_uniform_bounds(self, rng):
        w = XavierUniform()((50, 50), rng)
        limit = np.sqrt(6.0 / 100)
        assert w.min() >= -limit and w.max() <= limit

    def test_zeros_ones_constant(self, rng):
        assert np.all(Zeros()((3, 3), rng) == 0)
        assert np.all(Ones()((3, 3), rng) == 1)
        assert np.all(Constant(2.5)((2,), rng) == 2.5)

    def test_conv_fan_in(self, rng):
        w = HeNormal()((64, 32, 3, 3), rng)
        assert abs(w.std() - np.sqrt(2.0 / (32 * 9))) < 0.01

    def test_registry_lookup(self):
        assert isinstance(get_initializer("he_normal"), HeNormal)
        with pytest.raises(ValueError):
            get_initializer("bogus")

    def test_instance_passthrough(self):
        init = XavierUniform()
        assert get_initializer(init) is init
