"""Tests for im2col / col2im and shape utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.tensor import col2im, conv_output_size, im2col, one_hot, pad_input


class TestConvOutputSize:
    def test_same_padding_preserves_size(self):
        assert conv_output_size(28, 3, 1, 1) == 28

    def test_stride_two_halves_size(self):
        assert conv_output_size(32, 2, 2, 0) == 16

    def test_no_padding_shrinks(self):
        assert conv_output_size(28, 5, 1, 0) == 24

    def test_invalid_input_size_raises(self):
        with pytest.raises(ValueError):
            conv_output_size(0, 3, 1, 1)

    def test_invalid_kernel_raises(self):
        with pytest.raises(ValueError):
            conv_output_size(8, 0, 1, 1)

    def test_too_large_kernel_raises(self):
        with pytest.raises(ValueError):
            conv_output_size(4, 9, 1, 0)


class TestPadInput:
    def test_zero_padding_is_identity(self, rng):
        x = rng.normal(size=(2, 3, 5, 5))
        assert pad_input(x, 0) is x

    def test_padding_shape(self, rng):
        x = rng.normal(size=(2, 3, 5, 5))
        assert pad_input(x, 2).shape == (2, 3, 9, 9)

    def test_padding_values_are_zero(self, rng):
        x = rng.normal(size=(1, 1, 3, 3))
        padded = pad_input(x, 1)
        assert np.all(padded[:, :, 0, :] == 0)
        assert np.all(padded[:, :, :, -1] == 0)

    def test_negative_padding_raises(self, rng):
        with pytest.raises(ValueError):
            pad_input(rng.normal(size=(1, 1, 3, 3)), -1)


class TestIm2Col:
    def test_shape(self, rng):
        x = rng.normal(size=(2, 3, 8, 8))
        cols = im2col(x, 3, 3, stride=1, padding=1)
        assert cols.shape == (2 * 8 * 8, 3 * 9)

    def test_identity_kernel_1x1(self, rng):
        x = rng.normal(size=(2, 4, 5, 5))
        cols = im2col(x, 1, 1)
        reconstructed = cols.reshape(2, 5, 5, 4).transpose(0, 3, 1, 2)
        np.testing.assert_allclose(reconstructed, x)

    def test_matches_naive_convolution(self, rng):
        """im2col-based convolution must equal a direct nested-loop convolution."""
        x = rng.normal(size=(1, 2, 6, 6))
        w = rng.normal(size=(3, 2, 3, 3))
        cols = im2col(x, 3, 3, stride=1, padding=0)
        out = (cols @ w.reshape(3, -1).T).reshape(1, 4, 4, 3).transpose(0, 3, 1, 2)

        expected = np.zeros((1, 3, 4, 4))
        for oc in range(3):
            for i in range(4):
                for j in range(4):
                    expected[0, oc, i, j] = np.sum(
                        x[0, :, i : i + 3, j : j + 3] * w[oc]
                    )
        np.testing.assert_allclose(out, expected, atol=1e-10)

    def test_stride_two(self, rng):
        x = rng.normal(size=(1, 1, 8, 8))
        cols = im2col(x, 2, 2, stride=2)
        assert cols.shape == (16, 4)


class TestCol2Im:
    @given(
        n=st.integers(1, 3),
        c=st.integers(1, 3),
        size=st.integers(4, 9),
        kernel=st.integers(1, 3),
    )
    @settings(max_examples=25, deadline=None)
    def test_adjoint_property(self, n, c, size, kernel):
        """col2im is the adjoint of im2col: <im2col(x), y> == <x, col2im(y)>."""
        rng = np.random.default_rng(42)
        x = rng.normal(size=(n, c, size, size))
        cols = im2col(x, kernel, kernel, stride=1, padding=0)
        y = rng.normal(size=cols.shape)
        lhs = float(np.sum(cols * y))
        back = col2im(y, x.shape, kernel, kernel, stride=1, padding=0)
        rhs = float(np.sum(x * back))
        np.testing.assert_allclose(lhs, rhs, rtol=1e-9)

    def test_accumulates_overlaps(self):
        x_shape = (1, 1, 3, 3)
        cols = np.ones((1 * 2 * 2, 1 * 2 * 2))
        img = col2im(cols, x_shape, 2, 2, stride=1, padding=0)
        # centre pixel is covered by all four 2x2 windows
        assert img[0, 0, 1, 1] == 4.0
        assert img[0, 0, 0, 0] == 1.0


class TestOneHot:
    def test_basic(self):
        out = one_hot(np.array([0, 2, 1]), 3)
        np.testing.assert_array_equal(out, np.eye(3)[[0, 2, 1]])

    def test_rows_sum_to_one(self, rng):
        labels = rng.integers(0, 7, size=20)
        out = one_hot(labels, 7)
        np.testing.assert_array_equal(out.sum(axis=1), np.ones(20))

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            one_hot(np.array([0, 5]), 3)

    def test_wrong_ndim_raises(self):
        with pytest.raises(ValueError):
            one_hot(np.zeros((2, 2), dtype=int), 3)
