"""Tests for the Conv2D and Dense layers, including gradient checks."""

import numpy as np
import pytest

from repro.nn.layers import Conv2D, Dense

from .gradcheck import check_input_gradient, check_parameter_gradients


def build(layer, shape, seed=0):
    layer.build(shape, np.random.default_rng(seed))
    return layer


class TestConv2DShapes:
    def test_same_padding_output_shape(self):
        layer = build(Conv2D(8, 3, padding="same"), (3, 16, 16))
        assert layer.output_shape == (8, 16, 16)

    def test_valid_padding_output_shape(self):
        layer = build(Conv2D(4, 5, padding=0), (1, 28, 28))
        assert layer.output_shape == (4, 24, 24)

    def test_strided_output_shape(self):
        layer = build(Conv2D(4, 3, stride=2, padding=1), (3, 16, 16))
        assert layer.output_shape == (4, 8, 8)

    def test_forward_batch_shape(self, rng):
        layer = build(Conv2D(6, 3), (2, 10, 10))
        out = layer.forward(rng.normal(size=(5, 2, 10, 10)))
        assert out.shape == (5, 6, 10, 10)

    def test_parameter_count(self):
        layer = build(Conv2D(8, 3, padding=1), (4, 6, 6))
        assert layer.num_parameters == 8 * 4 * 3 * 3 + 8

    def test_no_bias_parameter_count(self):
        layer = build(Conv2D(8, 3, use_bias=False), (4, 6, 6))
        assert layer.num_parameters == 8 * 4 * 3 * 3

    def test_invalid_filters(self):
        with pytest.raises(ValueError):
            Conv2D(0, 3)

    def test_same_padding_even_kernel_rejected(self):
        with pytest.raises(ValueError):
            Conv2D(4, 2, padding="same")

    def test_wrong_input_rank_rejected(self):
        with pytest.raises(ValueError):
            Conv2D(4, 3).compute_output_shape((16, 16))


class TestConv2DValues:
    def test_identity_kernel(self, rng):
        """A 1x1 convolution with identity weights reproduces the input channel."""
        layer = build(Conv2D(1, 1, padding=0, use_bias=False), (1, 5, 5))
        layer.weight.value[...] = 1.0
        x = rng.normal(size=(2, 1, 5, 5))
        np.testing.assert_allclose(layer.forward(x), x)

    def test_bias_added(self):
        layer = build(Conv2D(2, 1, padding=0), (1, 3, 3))
        layer.weight.value[...] = 0.0
        layer.bias.value[...] = np.array([1.5, -2.0])
        out = layer.forward(np.zeros((1, 1, 3, 3)))
        np.testing.assert_allclose(out[0, 0], 1.5)
        np.testing.assert_allclose(out[0, 1], -2.0)

    def test_input_gradient(self, rng):
        layer = build(Conv2D(3, 3, padding=1), (2, 5, 5))
        check_input_gradient(layer, rng.normal(size=(2, 2, 5, 5)))

    def test_parameter_gradients(self, rng):
        layer = build(Conv2D(2, 3, padding=1), (2, 4, 4))
        check_parameter_gradients(layer, rng.normal(size=(2, 2, 4, 4)))

    def test_strided_gradients(self, rng):
        layer = build(Conv2D(2, 3, stride=2, padding=1), (1, 6, 6))
        check_input_gradient(layer, rng.normal(size=(2, 1, 6, 6)))


class TestDense:
    def test_output_shape(self):
        layer = build(Dense(7), (12,))
        assert layer.output_shape == (7,)

    def test_requires_flat_input(self):
        with pytest.raises(ValueError):
            Dense(4).compute_output_shape((3, 8, 8))

    def test_linear_map(self, rng):
        layer = build(Dense(3), (4,))
        x = rng.normal(size=(5, 4))
        expected = x @ layer.weight.value + layer.bias.value
        np.testing.assert_allclose(layer.forward(x), expected)

    def test_parameter_count(self):
        layer = build(Dense(10), (20,))
        assert layer.num_parameters == 20 * 10 + 10

    def test_input_gradient(self, rng):
        layer = build(Dense(6), (5,))
        check_input_gradient(layer, rng.normal(size=(3, 5)))

    def test_parameter_gradients(self, rng):
        layer = build(Dense(4), (6,))
        check_parameter_gradients(layer, rng.normal(size=(3, 6)))

    def test_gradient_accumulates_across_backward_calls(self, rng):
        layer = build(Dense(3), (4,))
        x = rng.normal(size=(2, 4))
        g = rng.normal(size=(2, 3))
        layer.forward(x)
        layer.backward(g)
        first = layer.weight.grad.copy()
        layer.forward(x)
        layer.backward(g)
        np.testing.assert_allclose(layer.weight.grad, 2 * first)

    def test_zero_grad(self, rng):
        layer = build(Dense(3), (4,))
        layer.forward(rng.normal(size=(2, 4)))
        layer.backward(rng.normal(size=(2, 3)))
        layer.zero_grad()
        assert np.all(layer.weight.grad == 0)
        assert np.all(layer.bias.grad == 0)
