"""Async microbatching (`aiter_microbatches`) and engine `apredict_stream` hooks."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.core import MultiExitBayesNet, MultiExitConfig, single_exit_bayesnet
from repro.inference import aiter_microbatches
from repro.nn.architectures import lenet5_spec

RNG = np.random.default_rng(3)


def _collect(agen):
    async def main():
        return [batch async for batch in agen]

    return asyncio.run(main())


def test_aiter_microbatches_on_batch_array():
    x = RNG.normal(size=(10, 4))
    batches = _collect(aiter_microbatches(x, batch_size=4))
    assert [b.shape[0] for b in batches] == [4, 4, 2]
    np.testing.assert_array_equal(np.concatenate(batches), x)


def test_aiter_microbatches_on_sync_iterable():
    x = RNG.normal(size=(5, 3))
    batches = _collect(aiter_microbatches(iter(x), batch_size=2))
    assert [b.shape[0] for b in batches] == [2, 2, 1]
    np.testing.assert_array_equal(np.concatenate(batches), x)


def test_aiter_microbatches_on_async_iterable():
    x = RNG.normal(size=(7, 3))

    async def source():
        for row in x:
            yield row

    batches = _collect(aiter_microbatches(source(), batch_size=3))
    assert [b.shape[0] for b in batches] == [3, 3, 1]
    np.testing.assert_array_equal(np.concatenate(batches), x)


def test_aiter_microbatches_max_latency_flushes_partial_batch():
    x = RNG.normal(size=(3, 2))

    async def trickle():
        for row in x:
            yield row
        await asyncio.sleep(0.2)  # stream stays open but goes quiet

    async def main():
        batches = []
        agen = aiter_microbatches(trickle(), batch_size=64, max_latency=0.02)
        # the first batch must arrive long before the 0.2 s stream tail
        batches.append(await asyncio.wait_for(anext(agen), timeout=0.15))
        async for batch in agen:
            batches.append(batch)
        return batches

    batches = asyncio.run(main())
    assert batches[0].shape[0] == 3  # flushed by deadline, not by stream end
    np.testing.assert_array_equal(np.concatenate(batches), x)


def test_aiter_microbatches_propagates_source_errors():
    async def broken():
        yield np.zeros(2)
        raise RuntimeError("sensor died")

    async def main():
        async for _ in aiter_microbatches(broken(), batch_size=8):
            pass

    with pytest.raises(RuntimeError, match="sensor died"):
        asyncio.run(main())


def test_aiter_microbatches_validates_arguments():
    async def main(**kwargs):
        async for _ in aiter_microbatches(np.zeros((2, 2)), **kwargs):
            pass

    with pytest.raises(ValueError, match="batch_size"):
        asyncio.run(main(batch_size=0))
    with pytest.raises(ValueError, match="max_latency"):
        asyncio.run(main(batch_size=2, max_latency=-1.0))


def _small_spec():
    return lenet5_spec(input_shape=(1, 12, 12), num_classes=5, width_multiplier=0.5)


def test_inference_engine_apredict_stream_matches_sync_stream():
    model = MultiExitBayesNet(
        _small_spec(), MultiExitConfig(num_exits=2, mcd_layers_per_exit=0, seed=0)
    )
    x = RNG.normal(size=(9, 1, 12, 12))
    sync_batches = list(model.engine.predict_stream(x, batch_size=4, num_samples=2))

    async def main():
        return [
            b
            async for b in model.engine.apredict_stream(x, batch_size=4, num_samples=2)
        ]

    async_batches = asyncio.run(main())
    assert len(async_batches) == len(sync_batches)
    for a, s in zip(async_batches, sync_batches):
        np.testing.assert_allclose(a, s, atol=1e-12)


def test_inference_engine_apredict_stream_early_exit_mode():
    model = MultiExitBayesNet(
        _small_spec(), MultiExitConfig(num_exits=2, mcd_layers_per_exit=0, seed=0)
    )
    x = RNG.normal(size=(6, 1, 12, 12))

    async def main():
        return [
            b
            async for b in model.engine.apredict_stream(
                x, batch_size=3, early_exit_threshold=0.5
            )
        ]

    batches = asyncio.run(main())
    assert [b.shape for b in batches] == [(3, 5), (3, 5)]


def test_network_engine_apredict_stream_async_source():
    net = single_exit_bayesnet(_small_spec(), num_mcd_layers=1, seed=0)
    from repro.inference.engine import NetworkEngine

    engine = NetworkEngine(net, seed=0)
    x = RNG.normal(size=(5, 1, 12, 12))

    async def source():
        for row in x:
            yield row

    async def main():
        return [
            b
            async for b in engine.apredict_stream(
                source(), batch_size=2, num_samples=3, max_latency=0.05
            )
        ]

    batches = asyncio.run(main())
    assert sum(b.shape[0] for b in batches) == 5
    for b in batches:
        np.testing.assert_allclose(b.sum(axis=1), 1.0, atol=1e-9)
