"""Fused stochastic-suffix kernel: bit-exactness against the legacy loop.

The fusion (:func:`repro.inference.folding.folded_forward_range`) collapses
an ``MCDropout -> Dense`` pair into one pass per sample block: the scaled
keep-mask is folded into the GEMM operand instead of materialising the
masked ``(S·N, F)`` intermediate.  These tests pin the acceptance criterion:
for every suffix composition (Dense-only, Conv2D-interleaved, ResidualBlock)
and S in {1, 4, 10}, the fused engine is **bit-identical** to the legacy
one-pass-per-sample loop — and the fusion actually engages, so the guarantee
is not vacuously about the unfused path.
"""

import numpy as np
import pytest

from repro.core import single_exit_bayesnet
from repro.inference.engine import NetworkEngine
from repro.inference.legacy import looped_mc_sample
from repro.nn.context import ForwardContext
from repro.nn.layers import (
    Conv2D,
    Dense,
    Flatten,
    GlobalAvgPool2D,
    MCDropout,
    ReLU,
    ResidualBlock,
)
from repro.nn.model import Network

from ..conftest import small_lenet_spec


def _dense_suffix_layers():
    return [
        Flatten(),
        Dense(32, name="fc1"),
        ReLU(),
        MCDropout(0.25, name="mcd0"),
        Dense(5, name="classifier"),
    ]


def _conv_suffix_layers():
    # filter-wise MCD on 4-D features (not fused) feeding a Conv2D, then a
    # fused MCD -> Dense pair at the end: both dispatch arms in one network
    return [
        Conv2D(6, 3, padding="same", name="c1"),
        ReLU(),
        MCDropout(0.25, filter_wise=True, name="mcd0"),
        Conv2D(6, 3, padding="same", name="c2"),
        ReLU(),
        Flatten(),
        MCDropout(0.375, name="mcd1"),
        Dense(5, name="classifier"),
    ]


def _residual_suffix_layers():
    return [
        ResidualBlock(8, stride=1, name="res"),
        GlobalAvgPool2D(),
        MCDropout(0.25, name="mcd0"),
        Dense(5, name="classifier"),
    ]


SUFFIXES = {
    "dense": (_dense_suffix_layers, (1, 6, 6)),
    "conv": (_conv_suffix_layers, (3, 8, 8)),
    "residual": (_residual_suffix_layers, (8, 6, 6)),
}


def _twin_networks(arch):
    layer_fn, shape = SUFFIXES[arch]
    nets = []
    for _ in range(2):
        net = Network(layer_fn())
        net.build(shape, seed=0)
        nets.append(net)
    return nets[0], nets[1], shape


@pytest.mark.parametrize("num_samples", [1, 4, 10])
@pytest.mark.parametrize("arch", sorted(SUFFIXES))
def test_fused_suffix_bit_identical_to_legacy_loop(arch, num_samples):
    fused_net, looped_net, shape = _twin_networks(arch)
    x = np.random.default_rng(3).normal(size=(6,) + shape)

    fused = NetworkEngine(fused_net, seed=7).sample(x, num_samples)
    NetworkEngine(looped_net, seed=7)  # reseed the twin's MCD layers identically
    looped = looped_mc_sample(looped_net, x, num_samples)

    np.testing.assert_array_equal(fused.sample_probs, looped.sample_probs)
    np.testing.assert_array_equal(fused.mean_probs, looped.mean_probs)


@pytest.mark.parametrize("num_samples", [1, 4, 10])
def test_fused_suffix_on_full_architecture(num_samples):
    """End-to-end over a real backbone: MCD layers deep enough to hit convs."""
    fused_net = single_exit_bayesnet(small_lenet_spec(), num_mcd_layers=3, seed=0)
    looped_net = single_exit_bayesnet(small_lenet_spec(), num_mcd_layers=3, seed=0)
    x = np.random.default_rng(1).normal(size=(5, 1, 12, 12))

    fused = NetworkEngine(fused_net, seed=2).sample(x, num_samples)
    NetworkEngine(looped_net, seed=2)
    looped = looped_mc_sample(looped_net, x, num_samples)
    np.testing.assert_array_equal(fused.sample_probs, looped.sample_probs)


def test_fusion_engages_on_dense_suffix(monkeypatch):
    """The MCD->Dense pair really takes the fused path, not the fallback."""
    net, _, shape = _twin_networks("dense")
    engine = NetworkEngine(net, seed=0)
    calls = []
    original = Dense.forward_folded

    def spy(self, x, num_samples, scaled_mask=None):
        calls.append(scaled_mask is not None)
        return original(self, x, num_samples, scaled_mask=scaled_mask)

    monkeypatch.setattr(Dense, "forward_folded", spy)
    engine.sample(np.random.default_rng(0).normal(size=(4,) + shape), 4)
    assert any(calls), "fused kernel never engaged on an MCD->Dense suffix"


def test_fused_kernel_matches_materialised_mask():
    """Block-wise mask folding == materialised elementwise multiply, bitwise."""
    rng = np.random.default_rng(5)
    layer = Dense(7)
    layer.build((12,), rng)
    num_samples, n = 4, 3
    x = rng.normal(size=(num_samples * n, 12))
    mask = (rng.random(x.shape) < 0.75).astype(x.dtype) / 0.75
    fused = layer.forward_folded(x, num_samples, scaled_mask=mask)
    unfused = layer.forward_folded(x * mask, num_samples)
    np.testing.assert_array_equal(fused, unfused)


def test_folded_scaled_mask_consumes_stream_like_apply():
    """folded_scaled_mask draws the identical mask _apply would."""
    a = MCDropout(0.25, seed=9)
    b = MCDropout(0.25, seed=9)
    for layer in (a, b):
        layer.build((16,), np.random.default_rng(0))
    x = np.ones((5, 16))
    ctx_a, ctx_b = ForwardContext(), ForwardContext()
    scaled = a.folded_scaled_mask(x, ctx_a)
    applied = b._apply(x, ctx_b)
    np.testing.assert_array_equal(x * scaled, applied)
    # second draws stay aligned: the fused draw advanced the stream equally
    np.testing.assert_array_equal(
        a.folded_scaled_mask(x, ctx_a), b._apply(x, ctx_b)
    )


def test_zero_rate_mcd_before_dense_stays_identity():
    """rate=0 pairs skip fusion (no stream consumed) and stay bit-exact."""
    fused_net = Network([Flatten(), MCDropout(0.0), Dense(3)])
    fused_net.build((2, 3, 3), seed=0)
    looped_net = Network([Flatten(), MCDropout(0.0), Dense(3)])
    looped_net.build((2, 3, 3), seed=0)
    x = np.random.default_rng(2).normal(size=(4, 2, 3, 3))
    fused = NetworkEngine(fused_net, seed=1).sample(x, 3)
    NetworkEngine(looped_net, seed=1)
    looped = looped_mc_sample(looped_net, x, 3)
    np.testing.assert_array_equal(fused.sample_probs, looped.sample_probs)
