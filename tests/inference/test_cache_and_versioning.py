"""Regression tests for the weights-version cache-invalidation contract and
the early-exit activation-cache reuse.

The ROADMAP named two holes after PR 1:

* code writing ``param.value[...]`` directly bypassed
  ``Network.weights_version`` and could serve stale cached activations —
  closed by the ``Parameter``-level version counter (``Parameter.assign`` /
  ``bump_version``) that ``weights_version`` now aggregates;
* ``InferenceEngine.early_exit_predict`` recomputed backbone segments even
  when the engine had the batch's activations memoised — closed by the
  cache-reuse fast path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MultiExitBayesNet, MultiExitConfig, single_exit_bayesnet
from repro.nn import SGD
from repro.nn.architectures import lenet5_spec
from repro.nn.layers.base import Parameter


def _small_spec():
    return lenet5_spec(input_shape=(1, 12, 12), num_classes=5, width_multiplier=0.5)


def _model(mcd=1):
    return MultiExitBayesNet(
        _small_spec(), MultiExitConfig(num_exits=2, mcd_layers_per_exit=mcd, seed=0)
    )


X = np.random.default_rng(11).normal(size=(8, 1, 12, 12))


# --------------------------------------------------------------------------- #
# Parameter-level versioning
# --------------------------------------------------------------------------- #
def test_parameter_assign_bumps_version_and_keeps_storage():
    p = Parameter(np.zeros((2, 3)), name="w")
    storage = p.value
    assert p.version == 0
    p.assign(np.ones((2, 3)))
    assert p.version == 1
    assert p.value is storage  # in-place: optimizer/engine references stay valid
    np.testing.assert_array_equal(p.value, 1.0)
    p.assign(5.0)  # broadcasting assignment
    assert p.version == 2
    np.testing.assert_array_equal(p.value, 5.0)


def test_network_weights_version_reflects_parameter_mutations():
    net = single_exit_bayesnet(_small_spec(), num_mcd_layers=1, seed=0)
    v0 = net.weights_version
    param = next(net.parameters())
    param.assign(param.value * 2.0)
    assert net.weights_version > v0
    v1 = net.weights_version
    param.value[...] = 0.0  # raw write: invisible on its own...
    assert net.weights_version == v1
    param.bump_version()  # ...until recorded
    assert net.weights_version > v1
    net.bump_weights_version()  # network-level escape hatch still works
    assert net.weights_version > v1 + 1


def test_optimizer_step_bumps_weights_version():
    net = single_exit_bayesnet(_small_spec(), num_mcd_layers=1, seed=0)
    v0 = net.weights_version
    opt = SGD(net.parameters(), lr=0.01)
    for p in opt.parameters:
        p.grad[...] = 1.0
    opt.step()
    assert net.weights_version > v0


def test_direct_param_assign_invalidates_engine_cache():
    """The ROADMAP staleness hole: mutate weights via the documented setter
    with *no* manual invalidation and the engine must not serve stale
    activations."""
    model = _model(mcd=0)  # deterministic so staleness would be observable
    engine = model.engine
    before = engine.predict_mc(X, num_samples=2).mean_probs
    before_again = engine.predict_mc(X, num_samples=2).mean_probs
    np.testing.assert_array_equal(before, before_again)  # cache hit, stable

    for param in model.backbone.parameters():
        param.assign(param.value + 0.1)

    after = engine.predict_mc(X, num_samples=2).mean_probs
    assert not np.allclose(before, after), (
        "engine served stale cached activations after Parameter.assign"
    )


def test_set_weights_still_invalidates():
    model = _model(mcd=0)
    engine = model.engine
    before = engine.predict_mc(X, num_samples=2).mean_probs
    weights = model.backbone.get_weights()
    model.backbone.set_weights([w + 0.05 for w in weights])
    after = engine.predict_mc(X, num_samples=2).mean_probs
    assert not np.allclose(before, after)


# --------------------------------------------------------------------------- #
# early-exit activation-cache reuse
# --------------------------------------------------------------------------- #
def test_early_exit_reuses_cached_backbone_activations():
    model = _model(mcd=0)
    engine = model.engine
    cold = engine.early_exit_predict(X, 0.5)

    engine.backbone_activations(X)  # memoise this batch
    calls = 0
    original = model.backbone.forward_range

    def counting_forward_range(*args, **kwargs):
        nonlocal calls
        calls += 1
        return original(*args, **kwargs)

    model.backbone.forward_range = counting_forward_range
    try:
        warm = engine.early_exit_predict(X, 0.5)
    finally:
        model.backbone.forward_range = original

    assert calls == 0, "early_exit_predict recomputed memoised backbone segments"
    np.testing.assert_allclose(warm.probs, cold.probs, atol=1e-9)
    np.testing.assert_array_equal(warm.exit_indices, cold.exit_indices)
    np.testing.assert_allclose(warm.exit_distribution, cold.exit_distribution)


def test_early_exit_cache_reuse_respects_weight_changes():
    model = _model(mcd=0)
    engine = model.engine
    engine.backbone_activations(X)  # memoise under the current weights
    before = engine.early_exit_predict(X, 0.5)
    for param in model.backbone.parameters():
        param.assign(param.value + 0.1)
    after = engine.early_exit_predict(X, 0.5)
    assert not np.allclose(before.probs, after.probs), (
        "early-exit served activations cached under stale weights"
    )


def test_early_exit_cold_path_unchanged():
    """Without a cache hit the streaming active-set path still runs (and
    matches the legacy eager path, which is pinned elsewhere)."""
    model = _model(mcd=0)
    engine = model.engine
    res = engine.early_exit_predict(X, 0.7)
    assert res.probs.shape == (X.shape[0], 5)
    assert res.exit_distribution.sum() == pytest.approx(1.0)
