"""Folded-vs-looped equivalence: the refactor must be bit-invisible.

These tests guard the acceptance criterion of the sample-folded engine:
for a fixed seed, ``MCSampler.sample`` and ``MultiExitBayesNet.predict_mc``
(now folded) produce **bit-identical** ``sample_probs`` to the pre-refactor
per-sample loops, which live on verbatim in :mod:`repro.inference.legacy`.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    MCSampler,
    MultiExitBayesNet,
    MultiExitConfig,
    single_exit_bayesnet,
)
from repro.inference import (
    fold_batch,
    looped_mc_sample,
    looped_predict_mc,
    unfold_samples,
)
from repro.inference.engine import NetworkEngine
from repro.nn.layers import Conv2D, MCDropout, ResidualBlock

from ..conftest import small_lenet_spec, small_resnet_spec, small_vgg_spec

SPECS = {
    "lenet": (small_lenet_spec, (1, 12, 12)),
    "resnet": (small_resnet_spec, (3, 8, 8)),
    "vgg": (small_vgg_spec, (3, 8, 8)),
}


def _batch(shape, n=6, seed=0):
    return np.random.default_rng(seed).normal(size=(n,) + shape)


# --------------------------------------------------------------------------- #
# MCSampler (single-exit Bayes nets) vs the legacy per-sample loop
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("arch", sorted(SPECS))
@pytest.mark.parametrize("num_mcd_layers", [1, 3])
def test_mcsampler_bit_identical_to_legacy_loop(arch, num_mcd_layers):
    spec_fn, shape = SPECS[arch]
    x = _batch(shape)

    folded_net = single_exit_bayesnet(spec_fn(), num_mcd_layers=num_mcd_layers, seed=0)
    looped_net = single_exit_bayesnet(spec_fn(), num_mcd_layers=num_mcd_layers, seed=0)

    folded = MCSampler(folded_net, seed=11).sample(x, num_samples=5)
    NetworkEngine(looped_net, seed=11)  # reseed the twin's MCD layers identically
    looped = looped_mc_sample(looped_net, x, num_samples=5)

    np.testing.assert_array_equal(folded.sample_probs, looped.sample_probs)
    np.testing.assert_array_equal(folded.mean_probs, looped.mean_probs)


def test_mcsampler_repeated_calls_stay_aligned_with_loop(lenet_spec_small):
    """The folded pass consumes exactly the legacy RNG stream per call."""
    x = _batch((1, 12, 12))
    net_a = single_exit_bayesnet(lenet_spec_small, num_mcd_layers=2, seed=0)
    net_b = single_exit_bayesnet(small_lenet_spec(), num_mcd_layers=2, seed=0)
    sampler = MCSampler(net_a, seed=3)
    NetworkEngine(net_b, seed=3)
    for num_samples in (1, 4, 2):
        folded = sampler.sample(x, num_samples)
        looped = looped_mc_sample(net_b, x, num_samples)
        np.testing.assert_array_equal(folded.sample_probs, looped.sample_probs)


# --------------------------------------------------------------------------- #
# MultiExitBayesNet.predict_mc vs the legacy per-pass loop
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("arch", sorted(SPECS))
@pytest.mark.parametrize(
    "mcd_layers,conv_channels", [(1, 0), (2, 8)], ids=["mcd1", "mcd2+conv"]
)
def test_predict_mc_bit_identical_to_legacy_loop(arch, mcd_layers, conv_channels):
    spec_fn, shape = SPECS[arch]
    x = _batch(shape)
    config = dict(
        num_exits=2,
        mcd_layers_per_exit=mcd_layers,
        dropout_rate=0.25,
        default_mc_samples=5,
        exit_conv_channels=conv_channels,
        seed=0,
    )
    folded_model = MultiExitBayesNet(spec_fn(), MultiExitConfig(**config))
    looped_model = MultiExitBayesNet(spec_fn(), MultiExitConfig(**config))

    for num_samples in (5, 2):  # truncation below/above num_exits boundaries
        folded = folded_model.predict_mc(x, num_samples)
        looped = looped_predict_mc(looped_model, x, num_samples)
        np.testing.assert_array_equal(folded.sample_probs, looped.sample_probs)
        np.testing.assert_array_equal(folded.mean_probs, looped.mean_probs)


def test_exit_mc_probabilities_match_pass_accumulation(lenet_spec_small):
    """The folded per-exit MC mean equals the legacy accumulate-over-passes loop."""
    config = dict(
        num_exits=2,
        mcd_layers_per_exit=1,
        dropout_rate=0.25,
        default_mc_samples=4,
        seed=0,
    )
    folded_model = MultiExitBayesNet(lenet_spec_small, MultiExitConfig(**config))
    looped_model = MultiExitBayesNet(small_lenet_spec(), MultiExitConfig(**config))
    x = _batch((1, 12, 12))
    passes = 3

    folded = folded_model.engine.exit_mc_probabilities(x, passes)

    accumulated = None
    for _ in range(passes):
        exit_probs = looped_model.exit_probabilities(x, stochastic=True)
        if accumulated is None:
            accumulated = [p.copy() for p in exit_probs]
        else:
            for acc, p in zip(accumulated, exit_probs):
                acc += p
    legacy = [acc / passes for acc in accumulated]

    assert len(folded) == len(legacy) == 2
    for fold, ref in zip(folded, legacy):
        np.testing.assert_allclose(fold, ref, atol=1e-15)


def test_non_bayesian_predict_mc_matches_legacy(lenet_spec_small):
    """Deterministic heads: folding degenerates to replication, still identical."""
    config = dict(
        num_exits=2,
        mcd_layers_per_exit=0,
        dropout_rate=0.0,
        default_mc_samples=4,
        seed=0,
    )
    model_a = MultiExitBayesNet(lenet_spec_small, MultiExitConfig(**config))
    model_b = MultiExitBayesNet(small_lenet_spec(), MultiExitConfig(**config))
    x = _batch((1, 12, 12))
    folded = model_a.predict_mc(x, 4)
    looped = looped_predict_mc(model_b, x, 4)
    np.testing.assert_array_equal(folded.sample_probs, looped.sample_probs)


# --------------------------------------------------------------------------- #
# Conv2D / ResidualBlock flat-fold vs the per-slice loop
# --------------------------------------------------------------------------- #
def _folded_vs_sliced(layer, shape, n, num_samples, seed=1):
    """Compare ``forward_folded`` against per-slice ``forward`` + concat."""
    x = np.random.default_rng(seed).normal(size=(num_samples * n,) + shape)
    folded = layer.forward_folded(x, num_samples)
    sliced = np.concatenate(
        [
            layer.forward(x[s * n : (s + 1) * n], training=False)
            for s in range(num_samples)
        ]
    )
    np.testing.assert_array_equal(folded, sliced)


@pytest.mark.parametrize("n", [1, 3], ids=["n1", "n3"])
@pytest.mark.parametrize(
    "kernel,stride,padding,use_bias",
    [(3, 1, "same", True), (3, 2, 1, False), (1, 1, 0, True)],
    ids=["k3same", "k3s2", "k1"],
)
def test_conv_flat_fold_bit_identical_to_slices(n, kernel, stride, padding, use_bias):
    """The conv flat-fold must match the per-slice loop *bitwise*.

    ``n == 1`` is the load-bearing case: there the legacy per-slice
    ``im2col`` hands BLAS an F-ordered view, so the fold has to reproduce
    that exact operand layout (see ``Conv2D.forward_folded``) — allclose
    would hide a regression that bit-equality catches.
    """
    shape = (3, 9, 9)
    layer = Conv2D(8, kernel, stride=stride, padding=padding, use_bias=use_bias)
    layer.build(shape, np.random.default_rng(0))
    _folded_vs_sliced(layer, shape, n, num_samples=5)


@pytest.mark.parametrize("n", [1, 2], ids=["n1", "n2"])
@pytest.mark.parametrize(
    "stride,use_batchnorm",
    [(1, True), (2, True), (2, False)],
    ids=["identity", "proj", "proj-nobn"],
)
def test_residual_flat_fold_bit_identical_to_slices(n, stride, use_batchnorm):
    shape = (4, 8, 8)
    block = ResidualBlock(8, stride=stride, use_batchnorm=use_batchnorm)
    block.build(shape, np.random.default_rng(0))
    _folded_vs_sliced(block, shape, n, num_samples=4)


def test_conv_flat_fold_rejects_indivisible_batch():
    layer = Conv2D(4, 3)
    layer.build((1, 6, 6), np.random.default_rng(0))
    with pytest.raises(ValueError, match="not divisible"):
        layer.forward_folded(np.zeros((7, 1, 6, 6)), num_samples=3)


# --------------------------------------------------------------------------- #
# property test: folded masks are independent across the S tiles
# --------------------------------------------------------------------------- #
@settings(max_examples=25, deadline=None)
@given(
    rate=st.floats(min_value=0.1, max_value=0.7),
    num_samples=st.integers(min_value=2, max_value=6),
    batch=st.integers(min_value=1, max_value=4),
    filter_wise=st.booleans(),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_folded_masks_independent_across_tiles(
    rate, num_samples, batch, filter_wise, seed
):
    """One folded draw == S independent sequential draws, tile for tile.

    Running an MCDropout layer on the sample-folded batch must (a) give each
    of the S tiles its own mask — not a shared/broadcast one — and (b) draw
    those masks from the layer's RNG stream in exactly the order the legacy
    per-sample loop would, which is the precise sense in which the tiles are
    independent Bernoulli draws.
    """
    features = 64
    folded_layer = MCDropout(rate, filter_wise=filter_wise, seed=seed)
    looped_layer = MCDropout(rate, filter_wise=filter_wise, seed=seed)
    for layer in (folded_layer, looped_layer):
        layer.build((features,), np.random.default_rng(0))

    x = np.ones((batch, features))
    folded_out = folded_layer.forward(fold_batch(x, num_samples))
    tiles = unfold_samples(folded_out, num_samples)

    sequential = np.stack([looped_layer.forward(x) for _ in range(num_samples)])
    np.testing.assert_array_equal(tiles, sequential)

    # with 64 features and rate in [0.1, 0.7], two identical tiles would be a
    # ~(p^p·q^q)^64 coincidence — treat any collision as dependence
    for s in range(num_samples - 1):
        assert not np.array_equal(tiles[s], tiles[s + 1])


@settings(max_examples=10, deadline=None)
@given(num_samples=st.integers(min_value=2, max_value=5), seed=st.integers(0, 2**16))
def test_folded_conv_masks_independent_across_tiles(num_samples, seed):
    """Filter-wise 4-D masks: one (S·N, C, 1, 1) draw == S (N, C, 1, 1) draws."""
    shape = (3, 16, 2, 2)
    folded_layer = MCDropout(0.5, filter_wise=True, seed=seed)
    looped_layer = MCDropout(0.5, filter_wise=True, seed=seed)
    for layer in (folded_layer, looped_layer):
        layer.build(shape[1:], np.random.default_rng(0))

    x = np.ones(shape)
    tiles = unfold_samples(
        folded_layer.forward(fold_batch(x, num_samples)), num_samples
    )
    sequential = np.stack([looped_layer.forward(x) for _ in range(num_samples)])
    np.testing.assert_array_equal(tiles, sequential)
