"""Unit tests for the sample-folded inference engines."""

import numpy as np
import pytest

from repro.core import MultiExitBayesNet, MultiExitConfig
from repro.core.mcd import MCPrediction
from repro.inference import (
    InferenceEngine,
    NetworkEngine,
    eager_early_exit,
    fold_batch,
    folded_forward_range,
    iter_microbatches,
    unfold_samples,
)
from repro.nn.layers import Dense, Flatten, MCDropout, ReLU
from repro.nn.model import Network

from ..conftest import small_lenet_spec


def _bayes_net(rate=0.5, seed=0):
    net = Network(
        [
            Flatten(),
            Dense(16, name="fc1"),
            ReLU(),
            MCDropout(rate, filter_wise=False, name="mcd", seed=seed),
            Dense(3, name="out"),
        ]
    )
    return net.build((2, 4, 4), seed=0)


def _multi_exit(mcd_layers=1, rate=0.25, num_exits=2):
    return MultiExitBayesNet(
        small_lenet_spec(),
        MultiExitConfig(
            num_exits=num_exits,
            mcd_layers_per_exit=mcd_layers,
            dropout_rate=rate,
            default_mc_samples=4,
            seed=0,
        ),
    )


# --------------------------------------------------------------------------- #
# folding primitives
# --------------------------------------------------------------------------- #
class TestFolding:
    def test_fold_unfold_roundtrip(self, rng):
        x = rng.normal(size=(5, 3, 4, 4))
        folded = fold_batch(x, 4)
        assert folded.shape == (20, 3, 4, 4)
        tiles = unfold_samples(folded, 4)
        for s in range(4):
            np.testing.assert_array_equal(tiles[s], x)

    def test_fold_invalid_samples(self, rng):
        with pytest.raises(ValueError):
            fold_batch(rng.normal(size=(2, 3)), 0)
        with pytest.raises(ValueError):
            unfold_samples(rng.normal(size=(6, 3)), 4)

    def test_folded_forward_range_validates(self, rng):
        net = _bayes_net()
        x = rng.normal(size=(8, 16))
        with pytest.raises(IndexError):
            folded_forward_range(net, x, 2, 3, 99)
        with pytest.raises(ValueError):
            folded_forward_range(net, rng.normal(size=(7, 16)), 2, 3, 5)
        with pytest.raises(RuntimeError):
            folded_forward_range(Network([Dense(2)]), x, 2, 0, 1)

    def test_exact_and_fast_paths_agree_to_ulp(self, rng):
        x = rng.normal(size=(4, 2, 4, 4))
        exact_net, fast_net = _bayes_net(seed=9), _bayes_net(seed=9)
        exact = NetworkEngine(exact_net, exact=True).sample(x, 5)
        fast = NetworkEngine(fast_net, exact=False).sample(x, 5)
        np.testing.assert_allclose(exact.sample_probs, fast.sample_probs, atol=1e-12)


# --------------------------------------------------------------------------- #
# microbatching
# --------------------------------------------------------------------------- #
class TestMicrobatches:
    def test_array_is_sliced(self, rng):
        x = rng.normal(size=(10, 3))
        batches = list(iter_microbatches(x, 4))
        assert [b.shape[0] for b in batches] == [4, 4, 2]
        np.testing.assert_array_equal(np.concatenate(batches), x)

    def test_example_stream_is_stacked(self, rng):
        examples = [rng.normal(size=(3, 4, 4)) for _ in range(5)]
        batches = list(iter_microbatches(iter(examples), 2))
        assert [b.shape for b in batches] == [(2, 3, 4, 4)] * 2 + [(1, 3, 4, 4)]
        np.testing.assert_array_equal(np.concatenate(batches), np.stack(examples))

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            list(iter_microbatches(np.zeros((4, 2)), 0))


# --------------------------------------------------------------------------- #
# NetworkEngine
# --------------------------------------------------------------------------- #
class TestNetworkEngine:
    def test_requires_built_network(self):
        with pytest.raises(ValueError):
            NetworkEngine(Network([Dense(2)]))

    def test_sample_shapes_and_mean(self, rng):
        engine = NetworkEngine(_bayes_net(), seed=0)
        pred = engine.sample(rng.normal(size=(5, 2, 4, 4)), num_samples=7)
        assert isinstance(pred, MCPrediction)
        assert pred.sample_probs.shape == (7, 5, 3)
        np.testing.assert_allclose(pred.sample_probs.mean(axis=0), pred.mean_probs)

    def test_deterministic_network_replicates_sample(self, rng):
        net = Network([Flatten(), Dense(3)]).build((2, 4, 4), seed=0)
        engine = NetworkEngine(net)
        assert not engine.has_stochastic_layers
        pred = engine.sample(rng.normal(size=(2, 2, 4, 4)), num_samples=3)
        np.testing.assert_array_equal(pred.sample_probs[0], pred.sample_probs[2])

    def test_invalid_sample_count(self, rng):
        with pytest.raises(ValueError):
            NetworkEngine(_bayes_net()).sample(rng.normal(size=(1, 2, 4, 4)), 0)

    def test_predict_stream_matches_full_batch(self, rng):
        net = Network([Flatten(), Dense(3)]).build((2, 4, 4), seed=0)
        engine = NetworkEngine(net)
        x = rng.normal(size=(10, 2, 4, 4))
        streamed = np.concatenate(list(engine.predict_stream(x, batch_size=3)))
        np.testing.assert_allclose(streamed, engine.predict_proba(x), atol=1e-12)

    def test_prefix_cache_reused(self, rng):
        net = _bayes_net()
        engine = NetworkEngine(net, seed=0, cache_size=2)
        x = rng.normal(size=(3, 2, 4, 4))
        engine.sample(x, 2)
        calls = {"n": 0}
        original = net.forward_range

        def counting(*args, **kwargs):
            calls["n"] += 1
            return original(*args, **kwargs)

        net.forward_range = counting
        engine.sample(x, 2)  # prefix served from cache; no prefix re-run
        assert calls["n"] == 0
        engine.invalidate_cache()
        engine.sample(x, 2)
        assert calls["n"] == 1


# --------------------------------------------------------------------------- #
# InferenceEngine
# --------------------------------------------------------------------------- #
class TestInferenceEngine:
    def test_model_engine_is_cached_singleton(self):
        model = _multi_exit()
        assert model.engine is model.engine
        assert isinstance(model.engine, InferenceEngine)

    def test_predict_mc_shapes(self, rng):
        model = _multi_exit()
        x = rng.normal(size=(5, 1, 12, 12))
        pred = model.predict_mc(x, 7)
        assert pred.sample_probs.shape == (7, 5, 5)
        np.testing.assert_allclose(pred.sample_probs.sum(axis=-1), 1.0)

    def test_activation_cache_shared_across_methods(self, rng):
        model = _multi_exit()
        engine = model.engine
        x = rng.normal(size=(4, 1, 12, 12))
        engine.predict_mc(x, 4)
        calls = {"n": 0}
        original = model.backbone_activations

        def counting(*args, **kwargs):
            calls["n"] += 1
            return original(*args, **kwargs)

        model.backbone_activations = counting
        engine.predict_mc(x, 4)
        engine.exit_probabilities(x)
        engine.exit_mc_probabilities(x, 2)
        assert calls["n"] == 0  # every method reused the cached segments

    def test_training_invalidates_activation_cache(self, rng):
        model = _multi_exit()
        engine = model.engine
        x = rng.normal(size=(4, 1, 12, 12))
        before = engine.predict_proba(x, 4)
        # a training step changes weights; forward_exits must drop the cache
        logits = model.forward_exits(x, training=True)
        model.backward_exits([np.ones_like(lg) for lg in logits])
        for p in model.parameters():
            p.value -= 0.05 * p.grad
        after = engine.predict_proba(x, 4)
        assert not np.allclose(before, after)

    def test_quantization_invalidates_activation_cache(self, rng):
        """Weights-version tokens: quantize -> predict must not serve stale activations."""
        from repro.quantization import QuantizationConfig, quantize_network

        model = _multi_exit(mcd_layers=0, rate=0.0)  # deterministic: only weights move
        x = rng.normal(size=(4, 1, 12, 12))
        before = model.engine.predict_proba(x)
        quantize_network(model.backbone, QuantizationConfig(weight_bits=2))
        after = model.engine.predict_proba(x)
        assert not np.allclose(before, after)

    def test_set_weights_invalidates_activation_cache(self, rng):
        model = _multi_exit(mcd_layers=0, rate=0.0)
        x = rng.normal(size=(4, 1, 12, 12))
        before = model.engine.predict_proba(x)
        model.backbone.set_weights([w * 1.5 for w in model.backbone.get_weights()])
        after = model.engine.predict_proba(x)
        assert not np.allclose(before, after)

    def test_exit_probabilities_deterministic_mode_stable(self, rng):
        model = _multi_exit()
        x = rng.normal(size=(3, 1, 12, 12))
        a = model.exit_probabilities(x, stochastic=False)
        b = model.exit_probabilities(x, stochastic=False)
        for pa, pb in zip(a, b):
            np.testing.assert_array_equal(pa, pb)

    def test_predict_stream_matches_predict_proba(self, rng):
        model = _multi_exit(mcd_layers=0, rate=0.0)  # deterministic for equality
        x = rng.normal(size=(9, 1, 12, 12))
        streamed = np.concatenate(list(model.predict_stream(x, batch_size=4)))
        np.testing.assert_allclose(streamed, model.predict_proba(x), atol=1e-12)

    def test_predict_stream_early_exit_mode(self, rng):
        model = _multi_exit(mcd_layers=0, rate=0.0)
        x = rng.normal(size=(6, 1, 12, 12))
        streamed = np.concatenate(
            list(model.predict_stream(x, batch_size=3, early_exit_threshold=0.5))
        )
        assert streamed.shape == (6, 5)
        np.testing.assert_allclose(streamed.sum(axis=1), 1.0)


class TestActiveSetEarlyExit:
    @pytest.mark.parametrize("use_ensemble", [True, False])
    @pytest.mark.parametrize("threshold", [0.25, 0.5, 0.9, 0.999])
    def test_matches_eager_path_on_deterministic_model(
        self, rng, threshold, use_ensemble
    ):
        model = _multi_exit(mcd_layers=0, rate=0.0)
        x = rng.normal(size=(12, 1, 12, 12))
        lazy = model.early_exit_predict(x, threshold, use_ensemble=use_ensemble)
        eager = eager_early_exit(model, x, threshold, use_ensemble=use_ensemble)
        np.testing.assert_array_equal(lazy.exit_indices, eager.exit_indices)
        np.testing.assert_allclose(lazy.probs, eager.probs, atol=1e-10)
        np.testing.assert_allclose(lazy.exit_distribution, eager.exit_distribution)

    def test_later_segments_only_see_active_examples(self, rng):
        model = _multi_exit(mcd_layers=0, rate=0.0)
        x = rng.normal(size=(16, 1, 12, 12))
        seen_batches = []
        original = model.backbone.forward_range

        def recording(inp, start, stop, **kwargs):
            seen_batches.append(inp.shape[0])
            return original(inp, start, stop, **kwargs)

        model.backbone.forward_range = recording
        result = model.early_exit_predict(x, threshold=0.25, use_ensemble=False)
        model.backbone.forward_range = original
        assert seen_batches[0] == 16
        retired_at_first = int((result.exit_indices == 0).sum())
        if retired_at_first and len(seen_batches) > 1:
            assert seen_batches[1] == 16 - retired_at_first

    def test_invalid_threshold(self, rng):
        model = _multi_exit(mcd_layers=0, rate=0.0)
        with pytest.raises(ValueError):
            model.early_exit_predict(rng.normal(size=(2, 1, 12, 12)), 1.0)

    def test_distribution_sums_to_one(self, rng):
        model = _multi_exit()
        result = model.early_exit_predict(rng.normal(size=(8, 1, 12, 12)), 0.8)
        assert abs(result.exit_distribution.sum() - 1.0) < 1e-12
        assert result.probs.shape == (8, 5)
