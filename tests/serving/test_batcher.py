"""DynamicBatcher unit tests: assembly, backpressure and cancellation.

These tests drive the batcher with trivial payloads and controllable fake
dispatch functions (no model involved) so that every edge case is
deterministic: queue-full rejection and awaiting, max-latency flushes of
partial batches, single-request batches, and cancellation both while queued
and while a batch is in flight.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.serving import DeadlineExceeded, DynamicBatcher, ServerOverloaded


async def _echo_dispatch(payloads):
    return [p * 10 for p in payloads]


def test_batches_respect_max_batch_size():
    async def main():
        async with DynamicBatcher(
            _echo_dispatch, max_batch_size=4, max_batch_latency=0.05
        ) as batcher:
            results = await asyncio.gather(*(batcher.submit(i) for i in range(10)))
        assert results == [i * 10 for i in range(10)]
        stats = batcher.stats
        assert stats.completed == 10
        assert stats.batches >= 3  # 10 requests can never fit in 2 batches of 4
        assert stats.batched_requests == 10
        assert stats.mean_batch_size <= 4

    asyncio.run(main())


def test_single_request_batches():
    async def main():
        async with DynamicBatcher(
            _echo_dispatch, max_batch_size=1, max_batch_latency=0.05
        ) as batcher:
            results = await asyncio.gather(*(batcher.submit(i) for i in range(5)))
        assert results == [0, 10, 20, 30, 40]
        assert batcher.stats.batches == 5
        assert batcher.stats.mean_batch_size == 1.0

    asyncio.run(main())


def test_max_latency_flushes_partial_batch():
    async def main():
        async with DynamicBatcher(
            _echo_dispatch, max_batch_size=64, max_batch_latency=0.02
        ) as batcher:
            # 3 requests can never fill a 64-wide batch: only the deadline
            # can flush them
            results = await asyncio.wait_for(
                asyncio.gather(*(batcher.submit(i) for i in range(3))), timeout=5.0
            )
        assert results == [0, 10, 20]
        assert batcher.stats.batches == 1
        assert batcher.stats.batched_requests == 3

    asyncio.run(main())


def test_queue_full_rejection():
    release = None

    async def blocked_dispatch(payloads):
        await release.wait()
        return payloads

    async def main():
        nonlocal release
        release = asyncio.Event()
        async with DynamicBatcher(
            blocked_dispatch,
            max_batch_size=1,
            max_batch_latency=0.005,
            max_queue_size=2,
            reject_on_full=True,
        ) as batcher:
            first = asyncio.ensure_future(batcher.submit("a"))
            await asyncio.sleep(0.02)  # collector takes "a" into the blocked batch
            q1 = asyncio.ensure_future(batcher.submit("b"))
            q2 = asyncio.ensure_future(batcher.submit("c"))
            await asyncio.sleep(0.02)  # queue now holds exactly "b" and "c"
            with pytest.raises(ServerOverloaded):
                await batcher.submit("d")
            assert batcher.stats.rejected == 1
            release.set()
            assert await asyncio.gather(first, q1, q2) == ["a", "b", "c"]
        assert batcher.stats.completed == 3

    asyncio.run(main())


def test_queue_full_awaits_instead_of_rejecting():
    async def main():
        async with DynamicBatcher(
            _echo_dispatch,
            max_batch_size=2,
            max_batch_latency=0.005,
            max_queue_size=1,
            reject_on_full=False,
        ) as batcher:
            results = await asyncio.gather(*(batcher.submit(i) for i in range(12)))
        assert results == [i * 10 for i in range(12)]
        assert batcher.stats.rejected == 0
        assert batcher.stats.completed == 12
        assert batcher.stats.queue_peak <= 1

    asyncio.run(main())


def test_cancellation_while_queued_skips_request():
    release = None

    async def blocked_dispatch(payloads):
        await release.wait()
        return payloads

    async def main():
        nonlocal release
        release = asyncio.Event()
        async with DynamicBatcher(
            blocked_dispatch,
            max_batch_size=1,
            max_batch_latency=0.005,
            max_queue_size=8,
        ) as batcher:
            first = asyncio.ensure_future(batcher.submit("a"))
            await asyncio.sleep(0.02)  # "a" is in flight (blocked)
            doomed = asyncio.ensure_future(batcher.submit("b"))
            survivor = asyncio.ensure_future(batcher.submit("c"))
            await asyncio.sleep(0.02)
            doomed.cancel()
            release.set()
            assert await first == "a"
            assert await survivor == "c"
            with pytest.raises(asyncio.CancelledError):
                await doomed
        stats = batcher.stats
        assert stats.cancelled == 1
        assert stats.completed == 2
        # the cancelled request was skipped at assembly, not dispatched
        assert stats.batched_requests == 2

    asyncio.run(main())


def test_cancellation_mid_flight_is_harmless():
    release = None

    async def blocked_dispatch(payloads):
        await release.wait()
        return payloads

    async def main():
        nonlocal release
        release = asyncio.Event()
        async with DynamicBatcher(
            blocked_dispatch, max_batch_size=2, max_batch_latency=0.005
        ) as batcher:
            doomed = asyncio.ensure_future(batcher.submit("a"))
            survivor = asyncio.ensure_future(batcher.submit("b"))
            await asyncio.sleep(0.02)  # both are inside the in-flight batch
            doomed.cancel()
            release.set()
            assert await survivor == "b"
            with pytest.raises(asyncio.CancelledError):
                await doomed
            # the batcher keeps serving after a mid-flight cancellation
            assert await batcher.submit("c") == "c"
        assert batcher.stats.cancelled == 1

    asyncio.run(main())


def test_dispatch_error_propagates_to_batch_and_batcher_survives():
    fail = True

    async def flaky_dispatch(payloads):
        if fail:
            raise ValueError("model exploded")
        return payloads

    async def main():
        nonlocal fail
        async with DynamicBatcher(
            flaky_dispatch, max_batch_size=4, max_batch_latency=0.005
        ) as batcher:
            with pytest.raises(ValueError, match="model exploded"):
                await batcher.submit("a")
            fail = False
            assert await batcher.submit("b") == "b"

    asyncio.run(main())


def test_stop_drains_queued_requests():
    async def main():
        batcher = DynamicBatcher(
            _echo_dispatch, max_batch_size=4, max_batch_latency=0.01
        )
        await batcher.start()
        pending = [asyncio.ensure_future(batcher.submit(i)) for i in range(6)]
        await asyncio.sleep(0)  # let every submit reach the queue before stopping
        await batcher.stop(drain=True)
        assert await asyncio.gather(*pending) == [i * 10 for i in range(6)]
        with pytest.raises(RuntimeError, match="not running"):
            await batcher.submit(99)

    asyncio.run(main())


def test_stop_without_drain_cancels_blocked_submitters():
    """stop(drain=False) must fail every pending request, including
    submitters parked in `await queue.put(...)` by backpressure."""
    release = None

    async def blocked_dispatch(payloads):
        await release.wait()
        return payloads

    async def main():
        nonlocal release
        release = asyncio.Event()
        batcher = DynamicBatcher(
            blocked_dispatch,
            max_batch_size=1,
            max_batch_latency=0.005,
            max_queue_size=2,
            reject_on_full=False,
        )
        await batcher.start()
        # 1 in flight + 2 queued + 7 blocked awaiting queue capacity
        pending = [asyncio.ensure_future(batcher.submit(i)) for i in range(10)]
        await asyncio.sleep(0.02)
        await batcher.stop(drain=False)
        outcomes = await asyncio.gather(*pending, return_exceptions=True)
        assert all(isinstance(o, asyncio.CancelledError) for o in outcomes), (
            f"every request must fail on non-draining stop, got {outcomes}"
        )

    asyncio.run(asyncio.wait_for(main(), timeout=10.0))


def test_submit_before_start_raises():
    async def main():
        batcher = DynamicBatcher(_echo_dispatch)
        with pytest.raises(RuntimeError, match="not running"):
            await batcher.submit(1)

    asyncio.run(main())


def test_invalid_configuration_rejected():
    for kwargs in (
        {"max_batch_size": 0},
        {"max_batch_latency": 0.0},
        {"max_queue_size": 0},
    ):
        with pytest.raises(ValueError):
            DynamicBatcher(_echo_dispatch, **kwargs)


# --------------------------------------------------------------------------- #
# shed-on-missed-deadline (opt-in admission_timeout policy)
# --------------------------------------------------------------------------- #
def test_expired_deadline_is_shed_with_typed_error():
    """A request that missed its deadline behind a slow batch is rejected."""
    release = None
    dispatched: list[list[str]] = []

    async def blocked_dispatch(payloads):
        dispatched.append(list(payloads))
        await release.wait()
        return payloads

    async def main():
        nonlocal release
        release = asyncio.Event()
        async with DynamicBatcher(
            blocked_dispatch,
            max_batch_size=1,
            max_batch_latency=0.001,
            max_queue_size=8,
            admission_timeout=10.0,
        ) as batcher:
            first = asyncio.ensure_future(batcher.submit("first"))
            await asyncio.sleep(0.02)  # "first" is in flight (blocked)
            doomed = asyncio.ensure_future(batcher.submit("doomed", deadline=0.01))
            keeper = asyncio.ensure_future(batcher.submit("keeper", deadline=30.0))
            await asyncio.sleep(0.05)  # doomed's deadline passes while queued
            release.set()
            await first
            with pytest.raises(DeadlineExceeded, match="shed after waiting"):
                await doomed
            await keeper
        assert batcher.stats.shed == 1
        assert batcher.stats.completed == 2
        assert ["doomed"] not in dispatched  # never reached dispatch

    asyncio.run(main())


def test_admission_timeout_bounds_queue_wait_of_deadline_less_requests():
    """Without explicit deadlines, requests shed after admission_timeout."""
    release = None

    async def blocked_dispatch(payloads):
        await release.wait()
        return payloads

    async def main():
        nonlocal release
        release = asyncio.Event()
        async with DynamicBatcher(
            blocked_dispatch,
            max_batch_size=1,
            max_batch_latency=0.001,
            max_queue_size=8,
            admission_timeout=0.02,
        ) as batcher:
            first = asyncio.ensure_future(batcher.submit("first"))
            await asyncio.sleep(0.01)
            stale = asyncio.ensure_future(batcher.submit("stale"))
            await asyncio.sleep(0.05)  # exceeds the admission timeout
            release.set()
            await first
            with pytest.raises(DeadlineExceeded):
                await stale
        assert batcher.stats.shed == 1

    asyncio.run(main())


def test_no_admission_timeout_keeps_missed_deadlines_served():
    """Historical default: deadlines order the backlog but never shed."""
    release = None

    async def blocked_dispatch(payloads):
        await release.wait()
        return payloads

    async def main():
        nonlocal release
        release = asyncio.Event()
        async with DynamicBatcher(
            blocked_dispatch,
            max_batch_size=1,
            max_batch_latency=0.001,
            max_queue_size=8,
        ) as batcher:
            first = asyncio.ensure_future(batcher.submit("first"))
            await asyncio.sleep(0.01)
            late = asyncio.ensure_future(batcher.submit("late", deadline=0.005))
            await asyncio.sleep(0.05)  # deadline long gone
            release.set()
            assert await first == "first"
            assert await late == "late"  # still served, just EDF-ordered
        assert batcher.stats.shed == 0
        assert batcher.stats.completed == 2

    asyncio.run(main())


def test_fresh_requests_are_not_shed():
    """Requests within budget flow through a shedding batcher untouched."""
    async def main():
        async with DynamicBatcher(
            _echo_dispatch,
            max_batch_size=4,
            max_batch_latency=0.005,
            admission_timeout=5.0,
        ) as batcher:
            results = await asyncio.gather(
                *(batcher.submit(i, deadline=10.0) for i in range(8))
            )
        assert results == [i * 10 for i in range(8)]
        assert batcher.stats.shed == 0

    asyncio.run(main())


def test_admission_timeout_validated():
    with pytest.raises(ValueError, match="admission_timeout"):
        DynamicBatcher(_echo_dispatch, admission_timeout=0.0)
    with pytest.raises(ValueError, match="admission_timeout"):
        DynamicBatcher(_echo_dispatch, admission_timeout=-1.0)
