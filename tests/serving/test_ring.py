"""Ring-buffer transport: slot mechanics, fallbacks, crashes, teardown.

The shm ring is an *optimisation* of the worker channel, never a semantic
change: every test here pins one of the ways it must degrade gracefully —
oversized payloads and exhausted slots fall back to the pickle pipe,
over-long responses come back pickled, a worker crash mid-slot retries on
a sibling and unlinks the dead worker's segment, and ``stop()`` releases
every ring segment.  Bit-identity between ``worker_transport="ring"`` and
``"pipe"`` is the umbrella guarantee the fallbacks make unconditional.
"""

from __future__ import annotations

import asyncio
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.core import MultiExitBayesNet, MultiExitConfig
from repro.nn.architectures import lenet5_spec
from repro.serving import ServingConfig, ServingEngine
from repro.serving.workers.ring import BatchRing


def cfg(**kwargs):
    """Shorthand: flat serving kwargs -> a validated ServingConfig."""
    return ServingConfig.from_kwargs(**kwargs)


NUM_SAMPLES = 6

X = np.random.default_rng(7).normal(size=(8, 1, 12, 12))


def _model(seed=0):
    return MultiExitBayesNet(
        lenet5_spec(input_shape=(1, 12, 12), num_classes=5, width_multiplier=0.5),
        MultiExitConfig(num_exits=2, mcd_layers_per_exit=1, seed=seed),
    )


def _serve_sequentially(backend: str, workers: int = 2, shrink=None, **kwargs):
    """Serve X one request at a time; ``shrink`` tweaks ring geometry."""
    model = _model()
    server = ServingEngine(
        model,
        cfg(num_samples=NUM_SAMPLES, workers=workers, worker_backend=backend, **kwargs),
    )
    if shrink is not None:
        server._pool._ring_request_bytes = shrink[0]
        server._pool._ring_response_bytes = shrink[1]

    async def main():
        async with server:
            results = [await server.submit(x) for x in X]
            return results, server.stats()

    return asyncio.run(main())


def _next_victim(server: ServingEngine):
    return server._pool._checkout._queue[0]


# --------------------------------------------------------------------------- #
# slot mechanics (in-process unit tests)
# --------------------------------------------------------------------------- #
def test_ring_roundtrip_through_attached_view():
    ring = BatchRing.create(slots=2, request_bytes=4096, response_bytes=4096)
    try:
        attached = BatchRing.attached(ring.manifest)
        dest = ring.stage_request(1, (4, 2, 3))
        assert dest is not None and dest.shape == (4, 2, 3)
        batch = np.arange(24, dtype=np.float64).reshape(4, 2, 3)
        dest[...] = batch
        np.testing.assert_array_equal(attached.read_request(1), batch)

        probs = np.linspace(0.0, 1.0, 12).reshape(3, 4)
        exits = np.array([0, 1, 1], dtype=np.int64)
        assert attached.write_response(1, [probs, exits])
        got_probs, got_exits = ring.read_response(1)
        np.testing.assert_array_equal(got_probs, probs)
        np.testing.assert_array_equal(got_exits, exits)
        assert got_exits.dtype == np.int64
    finally:
        ring.release()
    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=ring.manifest.segment_name)


def test_ring_refuses_what_does_not_fit():
    ring = BatchRing.create(slots=1, request_bytes=64, response_bytes=64)
    try:
        assert ring.stage_request(0, (4, 4)) is None  # 128 B > 64 B
        assert ring.stage_request(0, (2, 4)) is not None  # 64 B fits
        too_big = np.zeros((3, 4))
        assert not ring.write_response(0, [too_big])
        assert ring.write_response(0, [np.zeros(8)])
        # unsupported dtype falls back rather than corrupting the slot
        assert not ring.write_response(0, [np.zeros(4, dtype=np.float32)])
    finally:
        ring.release()


def test_ring_read_returns_fresh_view_objects():
    """Each read maps its own view: callers may hold one across a recycle."""
    ring = BatchRing.create(slots=1, request_bytes=1024, response_bytes=1024)
    try:
        ring.stage_request(0, (4, 4))
        first = ring.read_request(0)
        second = ring.read_request(0)
        assert first is not second
    finally:
        ring.release()


# --------------------------------------------------------------------------- #
# transport equivalence and fallbacks (full serving stack)
# --------------------------------------------------------------------------- #
@pytest.mark.timeout(120)
def test_ring_transport_bit_identical_to_pipe_transport():
    results_ring, stats_ring = _serve_sequentially("process")
    results_pipe, stats_pipe = _serve_sequentially("process", worker_transport="pipe")
    for rr, rp in zip(results_ring, results_pipe):
        np.testing.assert_array_equal(rr.probs, rp.probs)
        assert rr.entropy == rp.entropy
    assert stats_ring.transport == "ring"
    assert stats_ring.transport_ring_batches == len(X)
    assert stats_ring.transport_pipe_batches == 0
    assert stats_pipe.transport == "pipe"
    assert stats_pipe.transport_ring_batches == 0
    assert stats_pipe.transport_pipe_batches == len(X)


@pytest.mark.timeout(120)
def test_thread_backend_reports_inproc_transport():
    results, stats = _serve_sequentially("thread", workers=1)
    assert stats.transport == "inproc"
    assert stats.transport_ring_batches == 0
    assert stats.transport_pipe_batches == 0
    assert len(results) == len(X)


@pytest.mark.timeout(120)
def test_oversized_payload_falls_back_to_pipe():
    """A ring too small for the batch must degrade, not fail or distort."""
    reference, _ = _serve_sequentially("process", worker_transport="pipe")
    results, stats = _serve_sequentially("process", shrink=(64, 1 << 20))
    for rr, rp in zip(results, reference):
        np.testing.assert_array_equal(rr.probs, rp.probs)
    assert stats.transport == "ring"
    assert stats.transport_ring_batches == 0
    assert stats.transport_pipe_batches == len(X)


@pytest.mark.timeout(120)
def test_response_overflow_returns_pickled_result():
    """Doorbell rings, response does not fit: the worker pickles it instead."""
    reference, _ = _serve_sequentially("process", worker_transport="pipe")
    results, stats = _serve_sequentially("process", shrink=(1 << 20, 64))
    for rr, rp in zip(results, reference):
        np.testing.assert_array_equal(rr.probs, rp.probs)
    # the request leg used the ring (counted at send); the response leg fell
    # back inside the worker, invisibly to the caller
    assert stats.transport_ring_batches == len(X)


@pytest.mark.timeout(120)
def test_slot_exhaustion_under_pipelined_dispatch_falls_back():
    """No free slot ⇒ the batch ships over the pipe; service is unaffected."""
    model = _model()
    server = ServingEngine(
        model, cfg(num_samples=NUM_SAMPLES, workers=2, worker_backend="process")
    )

    async def main():
        async with server:
            await server.submit(X[0])  # warm the channel
            for handle in server._pool._handles:
                handle._free_slots.clear()  # all slots in flight, forever
            results = await server.submit_many(X)
            return results, server.stats()

    results, stats = asyncio.run(main())
    assert len(results) == len(X)
    assert stats.transport_pipe_batches >= len(X) // server._batcher.max_batch_size
    for res in results:
        assert res.probs.shape == (5,)


# --------------------------------------------------------------------------- #
# crash handling and teardown
# --------------------------------------------------------------------------- #
@pytest.mark.timeout(120)
def test_worker_crash_mid_slot_retries_and_unlinks_its_ring():
    model = _model()

    async def main():
        async with ServingEngine(
            model, cfg(num_samples=4, workers=2, worker_backend="process")
        ) as server:
            await server.submit(X[0])
            victim = _next_victim(server)
            victim_segment = victim.ring.manifest.segment_name
            victim.process.kill()
            victim.process.join(10.0)
            results = await server.submit_many(X)
            # the reaped worker's ring segment is gone with it
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=victim_segment)
            return results, server.stats()

    results, stats = asyncio.run(main())
    assert len(results) == len(X)
    assert stats.worker_crashes >= 1
    for res in results:
        assert res.probs.shape == (5,)


@pytest.mark.timeout(120)
def test_stop_releases_every_ring_segment():
    model = _model()

    async def main():
        async with ServingEngine(
            model, cfg(num_samples=4, workers=2, worker_backend="process")
        ) as server:
            await server.submit(X[0])
            return [h.ring.manifest.segment_name for h in server._pool._handles]

    segments = asyncio.run(main())
    assert len(segments) == 2
    for name in segments:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


def test_worker_transport_validated():
    with pytest.raises(ValueError, match="worker_transport"):
        ServingEngine(_model(), cfg(worker_transport="telepathy"))
