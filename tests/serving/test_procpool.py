"""Process-pool serving: backend equivalence, staleness, crashes, teardown.

The process backend is only acceptable if it is *semantically invisible*:
``worker_backend="process"`` must produce bit-identical responses to the
thread backend (and to ``workers=1``) under identical batch formation,
propagate weight updates through the shared-memory arena via the
``weights_version`` token, absorb individual worker crashes by retrying on
live siblings, and shut down without leaking shared-memory segments or
leaving the model in a degraded state.  All tests run fine on one core —
process scheduling interleaves without parallel speedup; the throughput
gate lives in ``benchmarks/test_procpool_serving.py``.

Every test carries an explicit timeout: a deadlocked worker channel must
fail the test, not hang the runner.
"""

from __future__ import annotations

import asyncio
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.core import MultiExitBayesNet, MultiExitConfig
from repro.nn.architectures import lenet5_spec
from repro.serving import ServingConfig, ServingEngine, WorkerCrashed


def cfg(**kwargs):
    """Shorthand: flat serving kwargs -> a validated ServingConfig."""
    return ServingConfig.from_kwargs(**kwargs)


NUM_SAMPLES = 6

X = np.random.default_rng(7).normal(size=(8, 1, 12, 12))


def _model(mcd=1, seed=0):
    return MultiExitBayesNet(
        lenet5_spec(input_shape=(1, 12, 12), num_classes=5, width_multiplier=0.5),
        MultiExitConfig(num_exits=2, mcd_layers_per_exit=mcd, seed=seed),
    )


def _serve_sequentially(backend: str, workers: int, **kwargs) -> list:
    """Serve X one request at a time (deterministic batch formation)."""
    model = _model()

    async def main():
        async with ServingEngine(
            model,
            cfg(num_samples=NUM_SAMPLES, workers=workers, worker_backend=backend),
            **kwargs,
        ) as server:
            results = [await server.submit(x) for x in X]
            return results, server.stats()

    return asyncio.run(main())


def _next_victim(server: ServingEngine):
    """The worker handle that will serve the next batch (checkout order)."""
    return server._pool._checkout._queue[0]


# --------------------------------------------------------------------------- #
# backend / worker-count bit-identity
# --------------------------------------------------------------------------- #
@pytest.mark.timeout(120)
def test_process_backend_bit_identical_to_thread_backend():
    """Same request sequence ⇒ bit-identical responses across backends.

    Both backends run the same compute path under a per-batch context
    spawned from (layer seed, batch seq), so where a batch executes — a
    worker thread or a spawned process — cannot affect a single bit.
    """
    results_thread, stats_thread = _serve_sequentially("thread", 1)
    results_proc, stats_proc = _serve_sequentially("process", 2)
    for rt, rp in zip(results_thread, results_proc):
        np.testing.assert_array_equal(rt.probs, rp.probs)
        assert rt.label == rp.label
        assert rt.entropy == rp.entropy
        assert rt.mutual_information == rp.mutual_information
    assert stats_thread.worker_backend == "thread"
    assert stats_proc.worker_backend == "process"
    assert stats_proc.workers == 2
    assert stats_proc.worker_crashes == 0
    assert stats_proc.requests_completed == len(X)


@pytest.mark.timeout(120)
def test_process_backend_bit_identical_across_worker_counts():
    results_k1, _ = _serve_sequentially("process", 1)
    results_k2, _ = _serve_sequentially("process", 2)
    for r1, r2 in zip(results_k1, results_k2):
        np.testing.assert_array_equal(r1.probs, r2.probs)
        assert r1.entropy == r2.entropy


@pytest.mark.timeout(120)
def test_early_exit_mode_matches_thread_backend():
    def serve(backend):
        model = _model()

        async def main():
            async with ServingEngine(
                model, cfg(early_exit_threshold=0.5, workers=2, worker_backend=backend)
            ) as server:
                return [await server.submit(x) for x in X]

        return asyncio.run(main())

    for rt, rp in zip(serve("thread"), serve("process")):
        np.testing.assert_array_equal(rt.probs, rp.probs)
        assert rt.exit_index == rp.exit_index


@pytest.mark.timeout(120)
def test_flat_network_engine_served_by_process_backend():
    """NetworkEngine (single-exit) models cross the process boundary too."""
    from repro.core.bayesnn import single_exit_bayesnet

    net = single_exit_bayesnet(
        lenet5_spec(input_shape=(1, 12, 12), num_classes=5, width_multiplier=0.5),
        num_mcd_layers=1,
        seed=0,
    )

    async def main():
        async with ServingEngine(
            net, cfg(num_samples=4, workers=2, worker_backend="process")
        ) as server:
            return await server.submit_many(X[:4])

    results = asyncio.run(main())
    assert len(results) == 4
    for res in results:
        assert res.probs.shape == (5,)
        assert res.probs.sum() == pytest.approx(1.0)


# --------------------------------------------------------------------------- #
# weight-update propagation (weights_version staleness rule)
# --------------------------------------------------------------------------- #
@pytest.mark.timeout(120)
def test_weight_updates_propagate_and_match_thread_backend():
    """Mutating parameters mid-serve reaches workers, bit-for-bit.

    The parent's ``assign`` writes land directly in the shared segment;
    the bumped ``weights_version`` token riding the next batch makes the
    worker resync counters and drop stale activation caches.  The served
    response after the update must equal the thread backend's response
    after the identical update (same batch formation ⇒ same spawn keys).
    """

    def serve_with_update(backend):
        model = _model()

        async def main():
            async with ServingEngine(
                model, cfg(num_samples=NUM_SAMPLES, workers=2, worker_backend=backend)
            ) as server:
                before = await server.submit(X[0])
                for p in model.parameters():
                    p.assign(p.value * 1.25)
                after = await server.submit(X[1])
                return before, after

        return asyncio.run(main())

    before_t, after_t = serve_with_update("thread")
    before_p, after_p = serve_with_update("process")
    np.testing.assert_array_equal(before_t.probs, before_p.probs)
    np.testing.assert_array_equal(after_t.probs, after_p.probs)


@pytest.mark.timeout(120)
def test_same_input_changes_after_weight_update():
    model = _model()

    async def main():
        async with ServingEngine(
            model, cfg(num_samples=NUM_SAMPLES, workers=1, worker_backend="process")
        ) as server:
            before = await server.submit(X[0])
            for p in model.parameters():
                p.assign(p.value * 1.5)
            after = await server.submit(X[0])
            return before, after

    before, after = asyncio.run(main())
    assert not np.array_equal(before.probs, after.probs)


# --------------------------------------------------------------------------- #
# crash handling
# --------------------------------------------------------------------------- #
@pytest.mark.timeout(120)
def test_dead_workers_batch_retried_on_live_sibling():
    model = _model()

    async def main():
        async with ServingEngine(
            model, cfg(num_samples=4, workers=2, worker_backend="process")
        ) as server:
            await server.submit(X[0])  # warm both ends of the channel
            victim = _next_victim(server)
            victim.process.kill()
            victim.process.join(10.0)
            results = await server.submit_many(X)
            return results, server.stats()

    results, stats = asyncio.run(main())
    assert len(results) == len(X)
    assert stats.worker_crashes >= 1
    for res in results:
        assert res.probs.shape == (5,)


@pytest.mark.timeout(120)
def test_all_workers_dead_raises_worker_crashed():
    """Total pool death fails fast — on every submit, and stop() still drains.

    Regression shape: the first submit after the death detects it via the
    broken channel, but *subsequent* submits never touch a channel — they
    must fail fast from the checkout path instead of parking forever on an
    empty queue (which would also wedge ``stop(drain=True)``, exercised
    here by the context-manager exit).
    """
    model = _model()

    async def main():
        async with ServingEngine(
            model, cfg(num_samples=4, workers=1, worker_backend="process")
        ) as server:
            await server.submit(X[0])
            victim = _next_victim(server)
            victim.process.kill()
            victim.process.join(10.0)
            with pytest.raises(WorkerCrashed):
                await server.submit(X[0])
            with pytest.raises(WorkerCrashed):
                await server.submit(X[1])
            with pytest.raises(WorkerCrashed):
                await asyncio.wait_for(server.submit(X[2]), timeout=30.0)
            return server.stats()

    stats = asyncio.run(main())
    assert stats.worker_crashes == 1


# --------------------------------------------------------------------------- #
# teardown
# --------------------------------------------------------------------------- #
@pytest.mark.timeout(120)
def test_stop_releases_segment_and_model_stays_usable():
    model = _model()

    async def main():
        async with ServingEngine(
            model, cfg(num_samples=4, workers=2, worker_backend="process")
        ) as server:
            await server.submit(X[0])
            return server._pool._arena.manifest.segment_name

    segment_name = asyncio.run(main())
    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=segment_name)
    assert not any(p.is_shared for p in model.parameters())
    # the model is untouched by a serve/stop cycle: private storage,
    # normal mutation, batch inference all work
    direct = model.engine.predict_mc(X, num_samples=2)
    assert direct.mean_probs.shape == (len(X), 5)
    for p in model.parameters():
        p.assign(p.value * 0.5)


@pytest.mark.timeout(120)
def test_worker_backend_validated():
    with pytest.raises(ValueError, match="worker_backend"):
        ServingEngine(_model(), cfg(worker_backend="fiber"))


# --------------------------------------------------------------------------- #
# crash-retry unhappy edges (deterministic via FaultPlan)
# --------------------------------------------------------------------------- #
@pytest.mark.timeout(120)
def test_crash_holding_ring_slot_retried_then_crashed_again_on_sibling():
    """A batch whose first AND second workers die still completes on a third.

    Both kills fire ``pre_doorbell`` — the victim dies *after* the batch
    was staged into its ring slot — so the retry path must release the
    dead worker's slot, re-stage the same payloads into the sibling's
    ring, and (when that sibling is killed too) do it all again.  The
    survivor's response must be bit-identical to an undisturbed run: the
    batch seq, not the worker, seeds the RNG context.
    """
    from repro.serving import FaultPlan

    plan = FaultPlan([(1, "pre_doorbell"), (1, "pre_doorbell")])

    async def main():
        async with ServingEngine(
            _model(),
            cfg(
                num_samples=NUM_SAMPLES,
                workers=3,
                worker_backend="process",
                fault_plan=plan,
            ),
        ) as server:
            first = await server.submit(X[0])  # seq 0: undisturbed
            second = await server.submit(X[1])  # seq 1: killed twice
            return first, second, server.stats()

    first, second, stats = asyncio.run(main())
    oracle, _ = _serve_sequentially("thread", 1)
    np.testing.assert_array_equal(first.probs, oracle[0].probs)
    np.testing.assert_array_equal(second.probs, oracle[1].probs)
    assert stats.worker_crashes == 2
    assert len(plan) == 0


@pytest.mark.timeout(120)
def test_double_crash_with_two_workers_exhausts_pool():
    """Two scheduled kills against K=2 leave no sibling: WorkerCrashed."""
    from repro.serving import FaultPlan

    plan = FaultPlan([(0, "mid_compute"), (0, "mid_compute")])

    async def main():
        async with ServingEngine(
            _model(),
            cfg(num_samples=4, workers=2, worker_backend="process", fault_plan=plan),
        ) as server:
            with pytest.raises(WorkerCrashed):
                await server.submit(X[0])
            return server.stats()

    stats = asyncio.run(main())
    assert stats.worker_crashes == 2


@pytest.mark.timeout(120)
def test_worker_crash_during_stop_drain_still_answers_queued_requests():
    """A kill landing on a batch served during ``stop(drain=True)`` is retried.

    The queued requests behind the crashed batch must all be answered by
    the drain — a crash mid-shutdown must not strand the queue or wedge
    ``stop``.
    """
    from repro.serving import FaultPlan

    plan = FaultPlan([(2, "mid_compute")])

    async def main():
        server = ServingEngine(
            _model(),
            cfg(
                num_samples=4,
                workers=2,
                worker_backend="process",
                max_batch_size=1,
                fault_plan=plan,
            ),
        )
        await server.start()
        pending = [asyncio.ensure_future(server.submit(X[i])) for i in range(6)]
        await asyncio.sleep(0)  # let the submissions enqueue
        await server.stop(drain=True)
        results = await asyncio.gather(*pending)
        return results, server.stats()

    results, stats = asyncio.run(main())
    assert len(results) == 6
    assert stats.requests_completed == 6
    assert stats.worker_crashes == 1
    for res in results:
        assert res.probs.shape == (5,)


@pytest.mark.timeout(120)
@pytest.mark.parametrize("backend", ["thread", "process"])
def test_stop_is_idempotent_across_backends(backend):
    """Double stop, stop-after-drain and serve-after-restart all behave."""
    model = _model()

    async def main():
        server = ServingEngine(
            model, cfg(num_samples=4, workers=2, worker_backend=backend)
        )
        await server.start()
        first = await server.submit(X[0])
        await server.stop(drain=True)
        await server.stop(drain=True)  # second stop: clean no-op
        await server.stop(drain=False)  # and with the other drain mode
        # a stopped engine restarts cleanly and serves again
        await server.start()
        second = await server.submit(X[1])
        await server.stop()
        await server.stop()
        return first, second

    first, second = asyncio.run(main())
    assert first.probs.shape == (5,)
    assert second.probs.shape == (5,)
    # the model came back to private storage exactly once
    assert not any(p.is_shared for p in model.parameters())
