"""ISSUE-9 hot-path staging: response-side staging, content-keyed cache
stats, and the staged pipe fallback when ring slots are exhausted.

Three properties are pinned here:

* :class:`~repro.serving.workers.base.ResponseStager` assembles MC results
  on pre-pinned scratch **bit-identically** to the allocating
  :func:`~repro.uncertainty.metrics.mc_uncertainty_results` path, and
  falls back (returns ``None``) outside its geometry.
* The content-keyed activation cache is observable end-to-end: repeated
  request bytes hit (``ServingStats.cache_hits``), a zero-downtime
  ``swap_model`` invalidates (the first post-swap batch misses), and the
  process backend reports the same counters across its pipe.
* Exhausted ring slots fall back to the *staged* pipe — one pre-assembled
  ``("batch", ...)`` frame, never the legacy per-row list when the batch
  conforms — with responses bit-identical to the all-ring run.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.core import MultiExitBayesNet, MultiExitConfig
from repro.nn.architectures import lenet5_spec
from repro.serving import ServingConfig, ServingEngine
from repro.serving.workers.base import ResponseStager, assemble_results, BatchOutput
from repro.uncertainty.metrics import mc_uncertainty_results

NUM_SAMPLES = 6

X = np.random.default_rng(11).normal(size=(8, 1, 12, 12))


def cfg(**kwargs):
    return ServingConfig.from_kwargs(**kwargs)


def _model(seed=0):
    return MultiExitBayesNet(
        lenet5_spec(input_shape=(1, 12, 12), num_classes=5, width_multiplier=0.5),
        MultiExitConfig(num_exits=2, mcd_layers_per_exit=1, seed=seed),
    )


# --------------------------------------------------------------------------- #
# ResponseStager: bit-exactness and geometry fallback
# --------------------------------------------------------------------------- #
def _random_sample_probs(rng, s, n, c):
    raw = rng.random((s, n, c))
    return raw / raw.sum(axis=-1, keepdims=True)


@pytest.mark.parametrize("n", [1, 3, 8])
def test_response_stager_bit_identical_to_allocating_path(n):
    rng = np.random.default_rng(0)
    sample_probs = _random_sample_probs(rng, NUM_SAMPLES, n, 5)
    stager = ResponseStager(max_batch_size=8, num_samples=NUM_SAMPLES, num_classes=5)
    staged = stager.assemble(sample_probs)
    legacy = mc_uncertainty_results(sample_probs)
    assert staged is not None and len(staged) == len(legacy) == n
    for a, b in zip(staged, legacy):
        np.testing.assert_array_equal(a.probs, b.probs)
        assert a.label == b.label
        assert a.confidence == b.confidence
        assert a.entropy == b.entropy
        assert a.mutual_information == b.mutual_information
        assert a.num_samples == b.num_samples


def test_response_stager_results_survive_the_next_batch():
    """Delivered results must not alias scratch the next batch overwrites."""
    rng = np.random.default_rng(1)
    stager = ResponseStager(max_batch_size=4, num_samples=3, num_classes=5)
    first_probs = _random_sample_probs(rng, 3, 4, 5)
    first = stager.assemble(first_probs)
    kept = [r.probs.copy() for r in first]
    stager.assemble(_random_sample_probs(rng, 3, 4, 5))  # overwrite scratch
    for res, snapshot in zip(first, kept):
        np.testing.assert_array_equal(res.probs, snapshot)


def test_response_stager_rejects_foreign_geometry():
    rng = np.random.default_rng(2)
    stager = ResponseStager(max_batch_size=4, num_samples=3, num_classes=5)
    assert stager.assemble(_random_sample_probs(rng, 4, 2, 5)) is None  # S
    assert stager.assemble(_random_sample_probs(rng, 3, 5, 5)) is None  # N
    assert stager.assemble(_random_sample_probs(rng, 3, 2, 6)) is None  # C
    assert (
        stager.assemble(_random_sample_probs(rng, 3, 2, 5).astype(np.float32)) is None
    )
    # and assemble_results degrades to the allocating path, same answer
    probs = _random_sample_probs(rng, 4, 2, 5)
    out = BatchOutput(sample_probs=probs)
    staged = assemble_results(out, stager)
    legacy = mc_uncertainty_results(probs)
    for a, b in zip(staged, legacy):
        np.testing.assert_array_equal(a.probs, b.probs)
        assert a.entropy == b.entropy


@pytest.mark.timeout(120)
def test_thread_backend_with_and_without_response_stager_bit_identical():
    """The served responses do not change when response staging engages."""

    def serve(strip_stager: bool):
        server = ServingEngine(
            _model(), cfg(num_samples=NUM_SAMPLES, workers=2, worker_backend="thread")
        )
        if strip_stager:
            for replica in server._pool._replicas:
                replica.response_stager = None

        async def main():
            async with server:
                return [await server.submit(x) for x in X]

        return asyncio.run(main())

    staged = serve(strip_stager=False)
    legacy = serve(strip_stager=True)
    for a, b in zip(staged, legacy):
        np.testing.assert_array_equal(a.probs, b.probs)
        assert a.entropy == b.entropy
        assert a.mutual_information == b.mutual_information


# --------------------------------------------------------------------------- #
# content-keyed cache: hits, misses, swap invalidation — via ServingStats
# --------------------------------------------------------------------------- #
@pytest.mark.timeout(120)
def test_cache_hits_on_repeated_bytes_and_invalidates_on_swap_thread():
    def serve(defeat_cache: bool):
        server = ServingEngine(
            _model(), cfg(num_samples=NUM_SAMPLES, workers=1, worker_backend="thread")
        )

        async def main():
            async with server:
                results, snapshots = [], []
                # same bytes in a fresh buffer every time: only the content
                # key can hit.  MC draws still differ per batch seq — the
                # guarantee under test is hit == cold path *at the same seq*
                for _ in range(3):
                    if defeat_cache:
                        server._pool._replicas[0].engine.invalidate_cache()
                    results.append(await server.submit(np.array(X[0])))
                    snapshots.append(server.stats())
                await server.swap_model(_model(seed=1))
                results.append(await server.submit(np.array(X[0])))
                snapshots.append(server.stats())
                return results, snapshots

        return asyncio.run(main())

    results, stats = serve(defeat_cache=False)
    cold_results, _ = serve(defeat_cache=True)
    s1, s2, s3, s_swap = stats
    assert s1.cache_misses >= 1 and s1.cache_hits == 0
    # identical bytes in different buffers: the content key hits
    assert s2.cache_hits == s1.cache_hits + 1
    assert s2.cache_misses == s1.cache_misses
    assert s3.cache_hits == s1.cache_hits + 2
    # a hit reuses the memoised backbone, whose bytes are exactly what a
    # cold recompute would produce: responses bit-equal to the cold run
    for hit, cold in zip(results, cold_results):
        np.testing.assert_array_equal(hit.probs, cold.probs)
        assert hit.entropy == cold.entropy
        assert hit.mutual_information == cold.mutual_information
    # swap_model invalidates: the swapped cohort starts cold and misses
    assert s_swap.cache_misses > s3.cache_misses
    assert s_swap.cache_hits == s3.cache_hits
    # retired-cohort traffic was banked, not lost, across the swap
    assert s_swap.cache_hits + s_swap.cache_misses > s3.cache_hits


@pytest.mark.timeout(120)
def test_cache_counters_cross_the_process_boundary():
    server = ServingEngine(
        _model(), cfg(num_samples=NUM_SAMPLES, workers=1, worker_backend="process")
    )

    async def main():
        async with server:
            await server.submit(X[0])
            await server.submit(np.array(X[0]))
            return server.stats()

    stats = asyncio.run(main())
    # the worker process saw one cold batch and one repeated-bytes batch;
    # the per-reply deltas reassemble to the same totals in the parent
    assert stats.cache_hits >= 1
    assert stats.cache_misses >= 1


# --------------------------------------------------------------------------- #
# staged pipe fallback on slot exhaustion
# --------------------------------------------------------------------------- #
@pytest.mark.timeout(120)
def test_exhausted_slots_ship_staged_batch_frames_bit_identically():
    def serve(exhaust: bool):
        server = ServingEngine(
            _model(), cfg(num_samples=NUM_SAMPLES, workers=2, worker_backend="process")
        )
        kinds: list[str] = []

        async def main():
            async with server:
                for handle in server._pool._handles:
                    assert handle.stager is not None
                    if exhaust:
                        handle._free_slots.clear()  # all slots in flight, forever

                    def spy(msg, _orig=handle.conn.send):
                        if msg[0] in ("ring", "batch", "predict"):
                            kinds.append(msg[0])
                        return _orig(msg)

                    handle.conn.send = spy
                results = [await server.submit(x) for x in X]
                return results, server.stats()

        return asyncio.run(main()) + (kinds,)

    ring_results, ring_stats, ring_kinds = serve(exhaust=False)
    pipe_results, pipe_stats, pipe_kinds = serve(exhaust=True)

    assert ring_stats.transport_ring_batches == len(X)
    assert set(ring_kinds) <= {"ring"}
    # every exhausted batch fell back to ONE pre-assembled "batch" frame —
    # never the legacy per-row "predict" list, since the payloads conform
    assert pipe_stats.transport_pipe_batches == len(X)
    assert pipe_stats.transport_ring_batches == 0
    assert "batch" in pipe_kinds
    assert "predict" not in pipe_kinds
    # and the fallback is invisible in the responses, bit for bit
    for rr, rp in zip(ring_results, pipe_results):
        np.testing.assert_array_equal(rr.probs, rp.probs)
        assert rr.entropy == rp.entropy
        assert rr.mutual_information == rp.mutual_information
