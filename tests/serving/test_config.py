"""ServingConfig / BatcherConfig: validation, wire round-trip, legacy shim."""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.core import MultiExitBayesNet, MultiExitConfig
from repro.nn.architectures import lenet5_spec
from repro.serving import (
    BatcherConfig,
    FaultPlan,
    FleetConfig,
    ServingConfig,
    ServingEngine,
)


def _model():
    spec = lenet5_spec(input_shape=(1, 12, 12), num_classes=5, width_multiplier=0.5)
    return MultiExitBayesNet(
        spec, MultiExitConfig(num_exits=2, mcd_layers_per_exit=1, seed=0)
    )


# --------------------------------------------------------------------- #
# eager validation
# --------------------------------------------------------------------- #
@pytest.mark.parametrize(
    ("kwargs", "match"),
    [
        ({"max_batch_size": 0}, "max_batch_size must be positive"),
        ({"max_batch_latency": 0}, "max_batch_latency must be positive"),
        ({"max_queue_size": -1}, "max_queue_size must be positive"),
        ({"admission_timeout": 0.0}, "admission_timeout must be positive"),
    ],
)
def test_batcher_config_validates_eagerly(kwargs, match):
    with pytest.raises(ValueError, match=match):
        BatcherConfig(**kwargs)


@pytest.mark.parametrize(
    ("kwargs", "match"),
    [
        ({"num_samples": 0}, "num_samples must be positive"),
        ({"early_exit_threshold": 1.0}, "early_exit_threshold must be in"),
        ({"workers": 0}, "workers must be positive"),
        ({"worker_backend": "gpu"}, "worker_backend must be one of"),
        ({"worker_transport": "smoke"}, "worker_transport must be"),
        (
            {"fault_plan": FaultPlan([(1, "mid_compute")])},
            "requires worker_backend",
        ),
        (
            {"workers": 4, "fleet": FleetConfig(min_workers=8)},
            "fleet bounds must satisfy",
        ),
    ],
)
def test_serving_config_validates_eagerly(kwargs, match):
    with pytest.raises(ValueError, match=match):
        ServingConfig(**kwargs)


def test_serving_config_rejects_non_batcher_config():
    with pytest.raises(TypeError, match="batcher must be a BatcherConfig"):
        ServingConfig(batcher={"max_batch_size": 4})


def test_configs_are_frozen():
    config = ServingConfig()
    with pytest.raises(AttributeError):
        config.workers = 4
    with pytest.raises(AttributeError):
        config.batcher.max_batch_size = 1


# --------------------------------------------------------------------- #
# from_kwargs: the flat namespace splits into the nested one
# --------------------------------------------------------------------- #
def test_from_kwargs_splits_flat_namespace():
    config = ServingConfig.from_kwargs(
        num_samples=8, workers=2, max_batch_size=4, reject_on_full=True
    )
    assert config.num_samples == 8
    assert config.workers == 2
    assert config.batcher == BatcherConfig(max_batch_size=4, reject_on_full=True)


def test_from_kwargs_rejects_unknown_and_mixed():
    with pytest.raises(TypeError, match="unknown serving configuration fields"):
        ServingConfig.from_kwargs(batch_size=4)
    with pytest.raises(TypeError, match="not both"):
        ServingConfig.from_kwargs(batcher=BatcherConfig(), max_batch_size=4)


# --------------------------------------------------------------------- #
# wire round-trip
# --------------------------------------------------------------------- #
def test_to_dict_round_trips_through_json():
    config = ServingConfig(
        num_samples=6,
        workers=2,
        worker_backend="process",
        worker_transport="pipe",
        batcher=BatcherConfig(max_batch_size=4, admission_timeout=2.0),
        fleet=FleetConfig(min_workers=1, max_workers=3, health_interval=0.1),
        fault_plan=FaultPlan([(3, "mid_compute"), (5, "post_response")]),
    )
    wire = json.loads(json.dumps(config.to_dict()))
    rebuilt = ServingConfig.from_dict(wire)
    assert rebuilt.batcher == config.batcher
    assert rebuilt.fleet == config.fleet
    assert [(s.seq, s.point) for s in rebuilt.fault_plan.pending] == [
        (3, "mid_compute"),
        (5, "post_response"),
    ]
    # a rebuilt plan is a *fresh* consume-once instance, never shared state
    assert rebuilt.fault_plan is not config.fault_plan
    # defaults survive a minimal dict too
    assert ServingConfig.from_dict({"workers": 2}).batcher == BatcherConfig()


def test_from_dict_rejects_unknown_fields():
    with pytest.raises(ValueError, match="unknown ServingConfig fields"):
        ServingConfig.from_dict({"wokers": 2})
    with pytest.raises(ValueError, match="unknown BatcherConfig fields"):
        BatcherConfig.from_dict({"batch": 4})


# --------------------------------------------------------------------- #
# the engine's config surface + legacy shim
# --------------------------------------------------------------------- #
def test_engine_accepts_config_object():
    config = ServingConfig(num_samples=4, batcher=BatcherConfig(max_batch_size=2))
    engine = ServingEngine(_model(), config)
    assert engine.config is config
    assert engine.num_samples == 4  # compat attributes still exposed

    with pytest.raises(TypeError, match="config must be a ServingConfig"):
        ServingEngine(_model(), {"num_samples": 4})


def test_legacy_flat_kwargs_warn_and_match_config_form():
    with pytest.warns(DeprecationWarning, match="flat keyword arguments"):
        engine = ServingEngine(_model(), num_samples=4, max_batch_size=2)
    assert engine.config == ServingConfig(
        num_samples=4, batcher=BatcherConfig(max_batch_size=2)
    )

    with pytest.raises(TypeError, match="not both"):
        ServingEngine(_model(), ServingConfig(), num_samples=4)


def test_legacy_and_config_forms_serve_identical_bits():
    # the shim must be a pure repackaging: same batches, same RNG spawn
    # keys, same bits
    X = np.random.default_rng(3).normal(size=(4, 1, 12, 12))

    async def serve(engine):
        async with engine:
            return [await engine.submit(x) for x in X]

    config = ServingConfig(num_samples=4, batcher=BatcherConfig(max_batch_size=2))
    via_config = asyncio.run(serve(ServingEngine(_model(), config)))
    with pytest.warns(DeprecationWarning):
        legacy = ServingEngine(_model(), num_samples=4, max_batch_size=2)
    via_kwargs = asyncio.run(serve(legacy))
    for a, b in zip(via_config, via_kwargs):
        assert a.probs.tobytes() == b.probs.tobytes()
