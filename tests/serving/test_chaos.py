"""Chaos suite: deterministic kill schedules under sustained live traffic.

These tests are the acceptance gate for the self-healing fleet: a
supervised process server is flooded with singleton batches while a
:class:`~repro.serving.fleet.FaultPlan` kills workers at scheduled batch
sequence numbers — before the doorbell, mid-compute, and silently after
responding — and the run must be *indistinguishable from an undisturbed
one*:

* every response is bit-identical to a thread-backend ``workers=1``
  oracle (``max_batch_size=1`` + ordered submission makes batch seq ==
  request index on both sides, and the spawn-key rule does the rest);
* the supervisor restores the fleet to its target size;
* no shared-memory segment outlives the server (``/dev/shm`` scan —
  crashed workers' rings and retired arena generations included);
* a generation swap in the middle of the flood never surfaces a torn
  read: each response matches the old-model oracle or the new-model
  oracle exactly, never a mixture.

Everything here is deterministic — kills are keyed on batch seq, not
wall-clock — but the runs are heavier than the unit suites, so they are
tagged ``chaos`` and wired into `make chaos` / the CI `parallel` job.
The headline runs work on any core count (one core time-slices the
workers); only the K=4 stress variant requires real parallelism.
"""

from __future__ import annotations

import asyncio
import os
import time

import numpy as np
import pytest

from repro.core import MultiExitBayesNet, MultiExitConfig
from repro.nn.architectures import lenet5_spec
from repro.serving import FaultPlan, FleetConfig, ServingConfig, ServingEngine


def cfg(**kwargs):
    """Shorthand: flat serving kwargs -> a validated ServingConfig."""
    return ServingConfig.from_kwargs(**kwargs)


pytestmark = pytest.mark.chaos

NUM_SAMPLES = 6

X = np.random.default_rng(7).normal(size=(8, 1, 12, 12))

needs_cores = pytest.mark.skipif(
    (os.cpu_count() or 1) < 4, reason="parallel stress variant needs >= 4 cores"
)


def _model(seed=0, width=0.5):
    return MultiExitBayesNet(
        lenet5_spec(input_shape=(1, 12, 12), num_classes=5, width_multiplier=width),
        MultiExitConfig(num_exits=2, mcd_layers_per_exit=1, seed=seed),
    )


def _shm_segments() -> set[str]:
    """Names of POSIX shared-memory segments currently backing /dev/shm."""
    path = "/dev/shm"
    if not os.path.isdir(path):  # pragma: no cover - non-Linux fallback
        return set()
    return {name for name in os.listdir(path) if name.startswith("psm_")}


def _thread_oracle(model_factory, n: int) -> list:
    """Serve n ordered singleton batches on an undisturbed thread server."""

    async def main():
        async with ServingEngine(
            model_factory(), cfg(num_samples=NUM_SAMPLES, workers=1, max_batch_size=1)
        ) as server:
            return [await server.submit(X[i % len(X)]) for i in range(n)]

    return asyncio.run(main())


async def _wait_until(predicate, timeout=60.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError("condition not reached before timeout")
        await asyncio.sleep(interval)


def _run_chaos_flood(n: int, kills, workers: int) -> tuple[list, object, int]:
    """Flood a supervised process server while the plan kills workers.

    Returns (ordered results, final stats, unleaked-segment check input):
    the per-request results in submission order, the server's final
    stats, and the number of injections left unfired (must be 0).
    """
    plan = FaultPlan(kills)

    async def main():
        async with ServingEngine(
            _model(),
            cfg(
                num_samples=NUM_SAMPLES,
                workers=workers,
                worker_backend="process",
                max_batch_size=1,
                max_queue_size=max(2 * n, 128),
                fleet=FleetConfig(health_interval=0.02),
                fault_plan=plan,
            ),
        ) as server:
            results = await asyncio.gather(
                *(server.submit(X[i % len(X)]) for i in range(n))
            )
            # the supervisor must heal the fleet back to full strength
            await _wait_until(lambda: server.stats().current_workers == workers)
            return results, server.stats()

    results, stats = asyncio.run(main())
    return results, stats, len(plan)


# --------------------------------------------------------------------------- #
# headline: kill a worker every ~50 batches, demand a perfect run
# --------------------------------------------------------------------------- #
@pytest.mark.timeout(300)
def test_chaos_kill_schedule_is_invisible_to_callers():
    n = 200
    kills = [
        (40, "pre_doorbell"),
        (90, "mid_compute"),
        (140, "post_response"),
        (190, "pre_doorbell"),
    ]
    before = _shm_segments()
    results, stats, unfired = _run_chaos_flood(n, kills, workers=2)
    leaked = _shm_segments() - before

    assert leaked == set(), f"leaked shared-memory segments: {leaked}"
    assert unfired == 0, "every scheduled kill must actually fire"
    assert len(results) == n
    assert stats.requests_completed == n
    assert stats.requests_rejected == 0
    assert stats.worker_crashes == len(kills)
    assert stats.workers_respawned >= 1  # the silent post_response death
    assert stats.current_workers == 2

    oracle = _thread_oracle(_model, n)
    for i, (got, want) in enumerate(zip(results, oracle)):
        np.testing.assert_array_equal(got.probs, want.probs, err_msg=f"seq {i}")
        assert got.entropy == want.entropy, f"seq {i}"
        assert got.mutual_information == want.mutual_information, f"seq {i}"


# --------------------------------------------------------------------------- #
# generation swap mid-traffic: zero failures, no torn reads
# --------------------------------------------------------------------------- #
@pytest.mark.timeout(300)
def test_chaos_generation_swap_mid_traffic_never_tears():
    """Swap weights *and shapes* under live load; every bit stays honest.

    While 120 singleton batches flow, the server rolls from the original
    model onto a different-seed, different-width replacement.  Each
    response must be bitwise equal to the old-model oracle or the
    new-model oracle at its seq — a response matching neither would be a
    torn read (a worker computing over a half-updated arena), which the
    generation protocol exists to make impossible.  The four requests
    submitted after the swap returns must all carry new-model bits.
    """
    n = 120
    before = _shm_segments()

    async def main():
        async with ServingEngine(
            _model(seed=0, width=0.5),
            cfg(
                num_samples=NUM_SAMPLES,
                workers=2,
                worker_backend="process",
                max_batch_size=1,
                max_queue_size=2 * n,
                fleet=FleetConfig(health_interval=0.02),
            ),
        ) as server:
            flood = [
                asyncio.ensure_future(server.submit(X[i % len(X)]))
                for i in range(n)
            ]
            await _wait_until(lambda: server.stats().requests_completed >= 10)
            generation = await server.swap_model(_model(seed=3, width=0.75))
            results = await asyncio.gather(*flood)
            # submissions after the swap must be served by the new model
            tail = [await server.submit(X[i % len(X)]) for i in range(n, n + 4)]
            return results, tail, generation, server.stats()

    results, tail, generation, stats = asyncio.run(main())
    leaked = _shm_segments() - before

    assert leaked == set(), f"leaked shared-memory segments: {leaked}"
    assert generation == 1
    assert stats.arena_generation == 1
    assert stats.requests_completed == n + 4
    assert stats.requests_rejected == 0
    assert stats.current_workers == 2

    oracle_old = _thread_oracle(lambda: _model(seed=0, width=0.5), n + 4)
    oracle_new = _thread_oracle(lambda: _model(seed=3, width=0.75), n + 4)
    from_old = from_new = 0
    for i, got in enumerate(results):
        if np.array_equal(got.probs, oracle_old[i].probs):
            from_old += 1
        elif np.array_equal(got.probs, oracle_new[i].probs):
            from_new += 1
        else:
            raise AssertionError(
                f"seq {i}: torn read — matches neither the old-model nor "
                f"the new-model oracle"
            )
    # the flood started on the old model, so its early responses are old
    assert from_old >= 10
    assert from_old + from_new == n
    for i, got in enumerate(tail):
        np.testing.assert_array_equal(
            got.probs, oracle_new[n + i].probs, err_msg=f"tail seq {n + i}"
        )


# --------------------------------------------------------------------------- #
# K=4 stress variant: genuinely parallel batches + the same guarantees
# --------------------------------------------------------------------------- #
@needs_cores
@pytest.mark.timeout(300)
def test_chaos_parallel_k4_kill_schedule():
    n = 160
    kills = [
        (30, "pre_doorbell"),
        (60, "mid_compute"),
        (90, "post_response"),
        (120, "mid_compute"),
        (150, "pre_doorbell"),
    ]
    before = _shm_segments()
    results, stats, unfired = _run_chaos_flood(n, kills, workers=4)
    leaked = _shm_segments() - before

    assert leaked == set(), f"leaked shared-memory segments: {leaked}"
    assert unfired == 0
    assert stats.requests_completed == n
    assert stats.worker_crashes == len(kills)
    assert stats.current_workers == 4

    # singleton batches keep seq == submission index even with four
    # batches genuinely in flight, so bit-identity must still hold
    oracle = _thread_oracle(_model, n)
    for i, (got, want) in enumerate(zip(results, oracle)):
        np.testing.assert_array_equal(got.probs, want.probs, err_msg=f"seq {i}")
