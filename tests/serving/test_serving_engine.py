"""ServingEngine integration tests over small real models.

Covers: response correctness against the batch engines (deterministic
model, so batched serving must agree with direct batch inference), the
early-exit serving mode, serving a flat single-exit network, overload
behaviour under both backpressure policies, input validation, and the
stats surface.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.core import MultiExitBayesNet, MultiExitConfig, single_exit_bayesnet
from repro.nn.architectures import lenet5_spec
from repro.serving import ServerOverloaded, ServingConfig, ServingEngine


def cfg(**kwargs):
    """Shorthand: flat serving kwargs -> a validated ServingConfig."""
    return ServingConfig.from_kwargs(**kwargs)


def _small_spec():
    return lenet5_spec(input_shape=(1, 12, 12), num_classes=5, width_multiplier=0.5)


def _model(num_exits=2, mcd=1, seed=0):
    return MultiExitBayesNet(
        _small_spec(),
        MultiExitConfig(num_exits=num_exits, mcd_layers_per_exit=mcd, seed=seed),
    )


RNG = np.random.default_rng(7)
X = RNG.normal(size=(12, 1, 12, 12))


def test_served_predictions_match_batch_engine_for_deterministic_model():
    # mcd=0 makes every pass deterministic, so serving (whatever batches it
    # forms) must agree with direct batch inference up to GEMM batch-shape ULPs
    model = _model(mcd=0)
    direct = model.engine.predict_mc(X, num_samples=2)

    async def main():
        async with model.serving_engine(
            cfg(num_samples=2, max_batch_size=5, max_batch_latency=0.01)
        ) as server:
            return await server.submit_many(X)

    results = asyncio.run(main())
    assert len(results) == X.shape[0]
    for i, res in enumerate(results):
        np.testing.assert_allclose(res.probs, direct.mean_probs[i], atol=1e-9)
        assert res.label == int(direct.mean_probs[i].argmax())
        assert res.num_samples == 2
        # mcd=0 removes dropout noise, but predict_mc draws samples
        # round-robin across exits, so exit disagreement still shows up as MI
        assert res.mutual_information is not None and res.mutual_information >= -1e-9
        assert res.latency_s is not None and res.latency_s > 0
        assert res.exit_index is None


def test_bayesian_serving_returns_uncertainty():
    model = _model(mcd=1)

    async def main():
        async with model.serving_engine(cfg(num_samples=8, max_batch_size=8)) as server:
            return await server.submit_many(X[:4])

    results = asyncio.run(main())
    for res in results:
        assert res.probs.shape == (5,)
        assert res.probs.sum() == pytest.approx(1.0)
        assert res.entropy >= 0.0
        assert res.mutual_information is not None and res.mutual_information >= -1e-9
        assert res.num_samples == 8


def test_early_exit_serving_mode():
    # deterministic comparison needs deterministic heads (stochastic heads
    # would make exit decisions draw-dependent), so use the mcd=0 model
    model_det = _model(mcd=0)
    direct = model_det.engine.early_exit_predict(X, 0.5)

    async def main_det():
        async with model_det.serving_engine(
            cfg(
                early_exit_threshold=0.5,
                max_batch_size=X.shape[0],
                max_batch_latency=0.02,
            ),
        ) as server:
            results = await server.submit_many(X)
            return results, server.stats()

    results, stats = asyncio.run(main_det())
    for i, res in enumerate(results):
        assert res.exit_index == int(direct.exit_indices[i])
        np.testing.assert_allclose(res.probs, direct.probs[i], atol=1e-9)
        assert res.mutual_information is None
    assert stats.exit_counts is not None
    assert sum(stats.exit_counts) == X.shape[0]
    np.testing.assert_array_equal(
        stats.exit_counts, np.bincount(direct.exit_indices, minlength=2)
    )


def test_early_exit_requires_multi_exit_model():
    net = single_exit_bayesnet(_small_spec(), num_mcd_layers=1, seed=0)
    with pytest.raises(ValueError, match="multi-exit"):
        ServingEngine(net, cfg(early_exit_threshold=0.5))


def test_serving_flat_network():
    net = single_exit_bayesnet(_small_spec(), num_mcd_layers=1, seed=0)

    async def main():
        async with ServingEngine(net, cfg(num_samples=4, max_batch_size=4)) as server:
            return await server.submit_many(X[:6])

    results = asyncio.run(main())
    for res in results:
        assert res.probs.shape == (5,)
        assert res.num_samples == 4
        assert res.mutual_information is not None


def test_overload_rejection_policy():
    model = _model(mcd=0)

    async def main():
        server = model.serving_engine(
            cfg(
                num_samples=1,
                max_batch_size=1,
                max_batch_latency=0.001,
                max_queue_size=4,
                reject_on_full=True,
            ),
        )
        async with server:
            outcomes = await asyncio.gather(
                *(server.submit(x) for x in np.repeat(X, 4, axis=0)),
                return_exceptions=True,
            )
        return outcomes, server.stats()

    outcomes, stats = asyncio.run(main())
    rejected = [o for o in outcomes if isinstance(o, ServerOverloaded)]
    completed = [o for o in outcomes if not isinstance(o, Exception)]
    assert len(rejected) + len(completed) == len(outcomes)
    assert rejected, "flooding a 4-deep queue with 48 requests must shed load"
    assert completed, "the queue capacity that was accepted must still be served"
    assert stats.requests_rejected == len(rejected)
    assert stats.requests_completed == len(completed)


def test_overload_await_policy_completes_everything():
    model = _model(mcd=0)

    async def main():
        async with model.serving_engine(
            cfg(
                num_samples=1,
                max_batch_size=4,
                max_batch_latency=0.001,
                max_queue_size=2,
                reject_on_full=False,
            ),
        ) as server:
            results = await asyncio.gather(*(server.submit(x) for x in X))
            return results, server.stats()

    results, stats = asyncio.run(main())
    assert len(results) == X.shape[0]
    assert stats.requests_rejected == 0
    assert stats.requests_completed == X.shape[0]
    assert stats.queue_peak <= 2


def test_mis_shaped_request_fails_fast_without_poisoning_batch():
    model = _model(mcd=0)

    async def main():
        async with model.serving_engine(cfg(num_samples=1, max_batch_size=4)) as server:
            good = server.submit(X[0])
            with pytest.raises(ValueError, match="expected a single example"):
                await server.submit(np.zeros((3, 3)))
            return await good

    res = asyncio.run(main())
    assert res.probs.shape == (5,)


def test_stats_surface():
    model = _model(mcd=1)

    async def main():
        async with model.serving_engine(cfg(num_samples=4, max_batch_size=6)) as server:
            await server.submit_many(X)
            return server.stats()

    stats = asyncio.run(main())
    assert stats.requests_completed == X.shape[0]
    assert stats.num_batches >= 1
    assert 1.0 <= stats.mean_batch_size <= 6.0
    assert stats.throughput_rps > 0
    assert 0 < stats.latency_p50_s <= stats.latency_p95_s <= stats.latency_max_s
    assert stats.exit_counts is None


def test_serving_engine_rejects_bad_arguments():
    model = _model()
    with pytest.raises(ValueError, match="num_samples"):
        ServingEngine(model, cfg(num_samples=0))
    with pytest.raises(ValueError, match="early_exit_threshold"):
        ServingEngine(model, cfg(early_exit_threshold=1.5))
    with pytest.raises(TypeError, match="model must be"):
        ServingEngine(object())


def test_submit_many_propagates_deadlines():
    # regression: submit_many used to drop deadlines silently — under the
    # shed policy a lapsed per-example budget must now surface as
    # DeadlineExceeded for exactly the deadlined examples
    from repro.serving import DeadlineExceeded

    model = _model(mcd=1)
    config = cfg(num_samples=512, max_batch_size=1, admission_timeout=5.0)

    async def main():
        async with ServingEngine(model, config) as server:
            # occupy the single batch slot with fillers, then ask for a
            # nanosecond budget: it has always lapsed by the time assembly
            # re-checks the backlog, however fast this host computes
            fillers = asyncio.ensure_future(server.submit_many(X[:3]))
            await asyncio.sleep(0.001)
            results = await asyncio.gather(
                server.submit_many(X[3:5], deadline=[None, 1e-9]),
                return_exceptions=True,
            )
            await fillers
            return results[0]

    outcome = asyncio.run(main())
    assert isinstance(outcome, DeadlineExceeded)


def test_submit_many_scalar_deadline_and_length_check():
    model = _model(mcd=1)

    async def main():
        async with ServingEngine(model, cfg(num_samples=2)) as server:
            # a generous scalar budget applies to all and all complete
            results = await server.submit_many(X[:3], deadline=30.0)
            assert len(results) == 3
            with pytest.raises(ValueError, match="deadline sequence has 2"):
                await server.submit_many(X[:3], deadline=[1.0, 1.0])

    asyncio.run(main())
