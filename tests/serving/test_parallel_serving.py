"""Reentrancy and multi-worker serving: determinism, isolation, scheduling.

The reentrancy refactor is only worth anything if it is *observationally
invisible*: a ``workers=K`` server must produce bit-identical responses to
the ``workers=1`` server for the same request sequence, and concurrent
engine replicas must never leak state into each other.  These tests pin
both properties (they run fine on a single core — threads interleave even
without parallel speedup), plus the new batcher scheduling features:
earliest-deadline-first assembly and pipelined dispatch.
"""

from __future__ import annotations

import asyncio
import threading

import numpy as np
import pytest

from repro.core import MultiExitBayesNet, MultiExitConfig
from repro.nn import ForwardContext
from repro.nn.architectures import lenet5_spec
from repro.serving import DynamicBatcher, ServingConfig, ServingEngine


def cfg(**kwargs):
    """Shorthand: flat serving kwargs -> a validated ServingConfig."""
    return ServingConfig.from_kwargs(**kwargs)


NUM_SAMPLES = 6


def _model(mcd=1, seed=0):
    return MultiExitBayesNet(
        lenet5_spec(input_shape=(1, 12, 12), num_classes=5, width_multiplier=0.5),
        MultiExitConfig(num_exits=2, mcd_layers_per_exit=mcd, seed=seed),
    )


X = np.random.default_rng(7).normal(size=(16, 1, 12, 12))


# --------------------------------------------------------------------------- #
# 1-worker vs K-worker bit-identity
# --------------------------------------------------------------------------- #
def _serve_sequentially(workers: int) -> list:
    """Serve X one request at a time (deterministic batch formation)."""
    model = _model(mcd=1)

    async def main():
        async with ServingEngine(
            model, cfg(num_samples=NUM_SAMPLES, workers=workers)
        ) as server:
            return [await server.submit(x) for x in X]

    return asyncio.run(main())


def test_one_vs_four_workers_bit_identical_responses():
    """Same request sequence ⇒ bit-identical probs/uncertainty at any K.

    Per-batch RNG contexts spawn from (layer seed, batch sequence number),
    so a response depends only on the request's position — never on which
    worker thread computed it or what that worker served before.
    """
    results_1 = _serve_sequentially(workers=1)
    results_4 = _serve_sequentially(workers=4)
    for r1, r4 in zip(results_1, results_4):
        np.testing.assert_array_equal(r1.probs, r4.probs)
        assert r1.label == r4.label
        assert r1.entropy == r4.entropy
        assert r1.mutual_information == r4.mutual_information


def test_replicas_and_spawned_contexts_pin_sample_probs():
    """predict_mc under a spawned context is replica-independent, bit for bit."""
    model = _model(mcd=1)
    engine = model.engine
    replica = engine.replicate()
    for k in (0, 3):
        a = engine.predict_mc(X, NUM_SAMPLES, ctx=ForwardContext(spawn_key=k))
        b = replica.predict_mc(X, NUM_SAMPLES, ctx=ForwardContext(spawn_key=k))
        np.testing.assert_array_equal(a.sample_probs, b.sample_probs)
    # distinct spawn keys give distinct (deterministic) sample sets
    a0 = engine.predict_mc(X, NUM_SAMPLES, ctx=ForwardContext(spawn_key=0))
    a1 = engine.predict_mc(X, NUM_SAMPLES, ctx=ForwardContext(spawn_key=1))
    assert not np.array_equal(a0.sample_probs, a1.sample_probs)


def test_multiworker_serving_matches_direct_engine_for_deterministic_model():
    """K workers under concurrent load: responses must match batch inference."""
    model = _model(mcd=0)
    direct = model.engine.predict_mc(X, num_samples=2)

    async def main():
        async with ServingEngine(
            model,
            cfg(num_samples=2, workers=4, max_batch_size=4, max_batch_latency=0.005),
        ) as server:
            return await server.submit_many(X)

    results = asyncio.run(main())
    for i, res in enumerate(results):
        np.testing.assert_allclose(res.probs, direct.mean_probs[i], atol=1e-9)


# --------------------------------------------------------------------------- #
# hammer test: no cross-request state leakage between concurrent replicas
# --------------------------------------------------------------------------- #
def test_hammer_concurrent_replicas_no_state_leakage():
    """Two replicas hammered in lockstep threads reproduce serial results.

    Every iteration both threads run folded MC prediction *and* the
    active-set early-exit path on different inputs through a barrier, so
    their layer forwards interleave heavily.  Any shared per-call state —
    a mask on the layer, a cache entry, a shared stream — would corrupt at
    least one of the 2x20x2 comparisons against the serially-computed
    ground truth.
    """
    model = _model(mcd=1)
    engines = [model.engine, model.engine.replicate()]
    inputs = [X[:8], X[8:] * 2.0]
    rounds = 20

    def run_round(engine, x, key):
        mc = engine.predict_mc(x, NUM_SAMPLES, ctx=ForwardContext(spawn_key=key))
        ee = engine.early_exit_predict(x, 0.5, ctx=ForwardContext(spawn_key=key + 1))
        return mc.sample_probs, ee.probs, ee.exit_indices

    # serial ground truth on fresh replicas (same spawn keys ⇒ same draws)
    expected = [
        [
            run_round(model.engine.replicate(), inputs[t], 10_000 * t + 2 * r)
            for r in range(rounds)
        ]
        for t in range(2)
    ]

    barrier = threading.Barrier(2)
    observed: list[list] = [[], []]
    errors: list[BaseException] = []

    def worker(t: int) -> None:
        try:
            for r in range(rounds):
                barrier.wait(timeout=30)
                observed[t].append(
                    run_round(engines[t], inputs[t], 10_000 * t + 2 * r)
                )
        except BaseException as exc:  # surface failures in the main thread
            errors.append(exc)
            barrier.abort()

    threads = [threading.Thread(target=worker, args=(t,)) for t in range(2)]
    for th in threads:
        th.start()
    for th in threads:
        th.join(timeout=60)
    assert not errors, f"worker thread failed: {errors[0]!r}"

    for t in range(2):
        assert len(observed[t]) == rounds
        for r in range(rounds):
            exp_mc, exp_probs, exp_idx = expected[t][r]
            got_mc, got_probs, got_idx = observed[t][r]
            np.testing.assert_array_equal(got_mc, exp_mc)
            np.testing.assert_array_equal(got_idx, exp_idx)
            np.testing.assert_allclose(got_probs, exp_probs, atol=1e-12)


# --------------------------------------------------------------------------- #
# earliest-deadline-first scheduling
# --------------------------------------------------------------------------- #
def test_edf_orders_backlog_by_deadline():
    release = None
    dispatched: list[list[str]] = []

    async def blocked_dispatch(payloads):
        dispatched.append(list(payloads))
        await release.wait()
        return payloads

    async def main():
        nonlocal release
        release = asyncio.Event()
        async with DynamicBatcher(
            blocked_dispatch,
            max_batch_size=1,
            max_batch_latency=0.005,
            max_queue_size=8,
        ) as batcher:
            first = asyncio.ensure_future(batcher.submit("first"))
            await asyncio.sleep(0.02)  # "first" is in flight (blocked)
            # backlog arrives in *non*-deadline order while blocked
            loose = asyncio.ensure_future(batcher.submit("loose", deadline=10.0))
            fifo = asyncio.ensure_future(batcher.submit("fifo"))  # no deadline
            tight = asyncio.ensure_future(batcher.submit("tight", deadline=0.01))
            await asyncio.sleep(0.02)
            release.set()
            await asyncio.gather(first, loose, fifo, tight)

    asyncio.run(main())
    # EDF: tight before loose; deadline-less FIFO request drains last
    assert dispatched == [["first"], ["tight"], ["loose"], ["fifo"]]


def test_no_deadlines_means_pure_fifo():
    order: list[str] = []

    async def recording_dispatch(payloads):
        order.extend(payloads)
        return payloads

    async def main():
        async with DynamicBatcher(
            recording_dispatch, max_batch_size=1, max_batch_latency=0.005
        ) as batcher:
            await asyncio.gather(*(batcher.submit(f"r{i}") for i in range(6)))

    asyncio.run(main())
    assert order == [f"r{i}" for i in range(6)]


def test_negative_deadline_rejected():
    async def main():
        async with DynamicBatcher(lambda p: p) as batcher:
            with pytest.raises(ValueError, match="deadline"):
                await batcher.submit("x", deadline=-1.0)

    asyncio.run(main())


def test_serving_engine_accepts_deadlines():
    model = _model(mcd=0)

    async def main():
        async with ServingEngine(model, cfg(num_samples=1, workers=2)) as server:
            results = await asyncio.gather(
                *(server.submit(x, deadline=0.5) for x in X[:4])
            )
            return results

    results = asyncio.run(main())
    assert len(results) == 4
    assert all(r.probs.shape == (5,) for r in results)


# --------------------------------------------------------------------------- #
# pipelined dispatch
# --------------------------------------------------------------------------- #
def test_pipelining_overlaps_batches_up_to_limit():
    """With max_concurrent_batches=2, two batches must be in flight at once."""
    release = None
    in_flight = 0
    peak = 0

    async def slow_dispatch(payloads):
        nonlocal in_flight, peak
        in_flight += 1
        peak = max(peak, in_flight)
        await release.wait()
        in_flight -= 1
        return payloads

    async def main():
        nonlocal release
        release = asyncio.Event()
        async with DynamicBatcher(
            slow_dispatch,
            max_batch_size=2,
            max_batch_latency=0.002,
            max_concurrent_batches=2,
            max_queue_size=32,
        ) as batcher:
            pending = [asyncio.ensure_future(batcher.submit(i)) for i in range(8)]
            await asyncio.sleep(0.05)  # let the collector assemble + dispatch
            release.set()
            results = await asyncio.gather(*pending)
        assert sorted(results) == list(range(8))

    asyncio.run(main())
    assert peak == 2, f"expected 2 concurrent batches in flight, saw {peak}"


def test_serial_batcher_never_overlaps_batches():
    """Default max_concurrent_batches=1 keeps the historical serial dispatch."""
    in_flight = 0
    peak = 0

    async def tracking_dispatch(payloads):
        nonlocal in_flight, peak
        in_flight += 1
        peak = max(peak, in_flight)
        await asyncio.sleep(0.002)
        in_flight -= 1
        return payloads

    async def main():
        async with DynamicBatcher(
            tracking_dispatch,
            max_batch_size=2,
            max_batch_latency=0.001,
            max_queue_size=32,
        ) as batcher:
            await asyncio.gather(*(batcher.submit(i) for i in range(10)))

    asyncio.run(main())
    assert peak == 1


def test_pipelined_drain_answers_everything():
    """stop(drain=True) must flush queued work through concurrent batches."""

    async def dispatch(payloads):
        await asyncio.sleep(0.001)
        return [p * 10 for p in payloads]

    async def main():
        batcher = DynamicBatcher(
            dispatch,
            max_batch_size=2,
            max_batch_latency=0.002,
            max_concurrent_batches=3,
            max_queue_size=64,
        )
        await batcher.start()
        pending = [asyncio.ensure_future(batcher.submit(i)) for i in range(12)]
        await asyncio.sleep(0)  # submissions reach the queue
        await batcher.stop(drain=True)
        assert await asyncio.gather(*pending) == [i * 10 for i in range(12)]
        assert batcher.stats.completed == 12

    asyncio.run(main())


def test_pipelined_stop_without_drain_cancels_in_flight():
    release = None

    async def blocked_dispatch(payloads):
        await release.wait()
        return payloads

    async def main():
        nonlocal release
        release = asyncio.Event()
        batcher = DynamicBatcher(
            blocked_dispatch,
            max_batch_size=1,
            max_batch_latency=0.002,
            max_concurrent_batches=2,
            max_queue_size=8,
        )
        await batcher.start()
        pending = [asyncio.ensure_future(batcher.submit(i)) for i in range(4)]
        await asyncio.sleep(0.02)  # two in flight, two queued/heaped
        await batcher.stop(drain=False)
        outcomes = await asyncio.gather(*pending, return_exceptions=True)
        assert all(isinstance(o, asyncio.CancelledError) for o in outcomes)

    asyncio.run(asyncio.wait_for(main(), timeout=10.0))


def test_workers_validated():
    model = _model(mcd=0)
    with pytest.raises(ValueError, match="workers"):
        ServingEngine(model, cfg(workers=0))
    with pytest.raises(ValueError, match="max_concurrent_batches"):
        DynamicBatcher(lambda p: p, max_concurrent_batches=0)


def test_start_is_idempotent_while_serving():
    """A second start() must not re-enqueue replicas already checked out.

    Rebuilding the worker checkout queue on a redundant start() would let
    two batches run concurrently on one non-reentrant replica; instead the
    pool keeps its state and the server serves exactly as before.
    """
    model = _model(mcd=1)

    async def main():
        server = ServingEngine(model, cfg(num_samples=NUM_SAMPLES, workers=2))
        await server.start()
        first = asyncio.ensure_future(server.submit(X[0]))
        await asyncio.sleep(0)  # the first batch is in flight
        await server.start()  # documented idempotent: must be a no-op
        await first
        results = await server.submit_many(X)
        stats = server.stats()
        # the invariant the no-op protects: with every batch done, the
        # checkout queue holds each replica exactly once — a rebuilt queue
        # would have re-enqueued the replica that was checked out above
        queue = server._pool._checkout
        assert queue.qsize() == 2
        replicas = [queue.get_nowait() for _ in range(queue.qsize())]
        assert len({id(r) for r in replicas}) == 2
        for r in replicas:
            queue.put_nowait(r)
        await server.stop()
        return results, stats

    results, stats = asyncio.run(main())
    assert len(results) == len(X)
    assert stats.requests_completed == len(X) + 1
