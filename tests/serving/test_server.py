"""Network front end tests: wire fidelity, error mapping, lifecycle.

The contract under test is :class:`repro.serving.ServingServer`:

* a served ``/v1/predict`` response is **bit-identical** to a direct
  ``ServingEngine.submit`` under the same config and batch formation
  (JSON carries repr-faithful float64);
* engine failures map to typed HTTP statuses (``ServerOverloaded`` → 503,
  ``DeadlineExceeded`` → 504), payload problems to 400/413/404/405;
* ``/v1/health`` flips the moment a supervised worker is killed — before
  the supervisor's next scan — and recovers after the respawn;
* ``stop(drain=True)`` lets in-flight requests finish with a response.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.core import MultiExitBayesNet, MultiExitConfig
from repro.nn.architectures import lenet5_spec
from repro.serving import (
    FleetConfig,
    LoadGenerator,
    ServingConfig,
    ServingEngine,
    ServingServer,
)


def cfg(**kwargs):
    return ServingConfig.from_kwargs(**kwargs)


def _model(seed=0):
    spec = lenet5_spec(input_shape=(1, 12, 12), num_classes=5, width_multiplier=0.5)
    return MultiExitBayesNet(
        spec, MultiExitConfig(num_exits=2, mcd_layers_per_exit=1, seed=seed)
    )


RNG = np.random.default_rng(11)
X = RNG.normal(size=(6, 1, 12, 12))


async def _request(server, method, path, payload=None, raw: bytes | None = None):
    """One HTTP exchange against ``server`` (optionally with a raw body)."""
    reader, writer = await asyncio.open_connection(server.host, server.port)
    try:
        body = raw if raw is not None else (
            b"" if payload is None else json.dumps(payload).encode()
        )
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {server.host}\r\nContent-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        )
        writer.write(head.encode() + body)
        await writer.drain()
        status_line = await reader.readline()
        status = int(status_line.split()[1])
        length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode().partition(":")
            if name.strip().lower() == "content-length":
                length = int(value)
        data = await reader.readexactly(length)
        return status, json.loads(data) if data else {}
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


# --------------------------------------------------------------------- #
# wire fidelity
# --------------------------------------------------------------------- #
def test_served_response_bit_identical_to_direct_submit():
    # same model seed + same config + one-at-a-time submission => identical
    # batch formation => the spawn-key rule makes the bits equal; JSON must
    # not perturb them on the way through
    config = cfg(num_samples=4, max_batch_size=4)

    async def main():
        direct = []
        async with ServingEngine(_model(), config) as ref:
            for x in X:
                direct.append(await ref.submit(x))
        async with ServingServer(ServingEngine(_model(), config)) as server:
            for i, x in enumerate(X):
                status, resp = await _request(
                    server, "POST", "/v1/predict", {"x": x.tolist()}
                )
                assert status == 200
                probs = np.asarray(resp["probs"], dtype=np.float64)
                assert probs.tobytes() == direct[i].probs.tobytes()
                assert resp["label"] == direct[i].label
                assert resp["num_samples"] == direct[i].num_samples

    asyncio.run(main())


def test_stats_and_health_endpoints():
    async def main():
        async with ServingServer(ServingEngine(_model(), cfg(num_samples=2))) as srv:
            status, health = await _request(srv, "GET", "/v1/health")
            assert status == 200
            assert health["status"] == "ok"
            assert health["alive_workers"] == 1
            assert health["input_shape"] == [1, 12, 12]
            assert health["num_classes"] == 5

            await _request(srv, "POST", "/v1/predict", {"x": X[0].tolist()})
            status, stats = await _request(srv, "GET", "/v1/stats")
            assert status == 200
            assert stats["requests_completed"] == 1
            # the full ServingStats surface crosses the wire
            assert srv.engine.stats().to_dict().keys() == stats.keys()

    asyncio.run(main())


# --------------------------------------------------------------------- #
# typed error mapping
# --------------------------------------------------------------------- #
def test_bad_payloads_map_to_400():
    async def main():
        async with ServingServer(ServingEngine(_model(), cfg(num_samples=1))) as srv:
            for payload, raw in [
                (None, b"{not json"),  # malformed JSON
                ({"y": 1}, None),  # missing x
                ({"x": "strings"}, None),  # non-numeric
                ({"x": X[0].tolist(), "deadline_ms": -5}, None),  # bad deadline
                ({"x": [[1.0, 2.0]]}, None),  # wrong shape for the model
            ]:
                status, body = await _request(
                    srv, "POST", "/v1/predict", payload, raw=raw
                )
                assert status == 400, (payload, raw, body)
                assert body["error"] == "bad_request"
            status, body = await _request(srv, "GET", "/v1/missing")
            assert status == 404
            status, body = await _request(srv, "GET", "/v1/predict")
            assert status == 405

    asyncio.run(main())


def test_oversized_body_maps_to_413():
    async def main():
        engine = ServingEngine(_model(), cfg(num_samples=1))
        async with ServingServer(engine, max_body_bytes=1024) as srv:
            status, body = await _request(
                srv, "POST", "/v1/predict", raw=b"x" * 2048
            )
            assert status == 413
            assert body["error"] == "payload_too_large"

    asyncio.run(main())


def test_overload_maps_to_503():
    # queue of 1 + fail-fast policy + a storm of concurrent requests:
    # the queue is guaranteed full for most arrivals
    config = cfg(
        num_samples=4, max_batch_size=1, max_queue_size=1, reject_on_full=True
    )

    async def main():
        async with ServingServer(ServingEngine(_model(), config)) as srv:
            results = await asyncio.gather(
                *(
                    _request(srv, "POST", "/v1/predict", {"x": X[0].tolist()})
                    for _ in range(24)
                )
            )
            statuses = [status for status, _ in results]
            assert set(statuses) <= {200, 503}
            assert 503 in statuses
            assert 200 in statuses
            for status, body in results:
                if status == 503:
                    assert body["error"] == "overloaded"

    asyncio.run(main())


def test_missed_deadline_maps_to_504():
    # a 1 us budget has always lapsed by the time assembly re-checks the
    # backlog (the enqueue->assembly hop alone costs microseconds), so the
    # shed is deterministic however fast this host drains the fillers
    config = cfg(num_samples=512, max_batch_size=1, admission_timeout=5.0)

    async def main():
        async with ServingServer(ServingEngine(_model(), config)) as srv:
            fillers = [
                asyncio.ensure_future(
                    _request(srv, "POST", "/v1/predict", {"x": X[i].tolist()})
                )
                for i in range(4)
            ]
            await asyncio.sleep(0.005)  # let a filler reach the worker
            status, body = await _request(
                srv,
                "POST",
                "/v1/predict",
                {"x": X[5].tolist(), "deadline_ms": 0.001},
            )
            assert status == 504
            assert body["error"] == "deadline_exceeded"
            for status_f, _ in await asyncio.gather(*fillers):
                assert status_f == 200

    asyncio.run(main())


# --------------------------------------------------------------------- #
# lifecycle
# --------------------------------------------------------------------- #
def test_health_flips_during_supervised_worker_kill():
    config = cfg(
        num_samples=2,
        workers=1,
        worker_backend="process",
        fleet=FleetConfig(health_interval=0.05, respawn_wait=10.0),
    )

    async def main():
        engine = ServingEngine(_model(), config)
        async with ServingServer(engine) as srv:
            status, health = await _request(srv, "GET", "/v1/health")
            assert (status, health["status"]) == (200, "ok")

            # kill the only worker out from under the supervisor
            engine._pool._handles[0].process.kill()
            for _ in range(100):
                status, health = await _request(srv, "GET", "/v1/health")
                if status == 503:
                    break
                await asyncio.sleep(0.01)
            assert status == 503
            assert health["status"] == "down"

            # the supervisor respawns; health must recover on its own
            for _ in range(400):
                status, health = await _request(srv, "GET", "/v1/health")
                if status == 200 and health["status"] == "ok":
                    break
                await asyncio.sleep(0.02)
            assert (status, health["status"]) == (200, "ok")

            # and the fleet still serves
            status, _ = await _request(
                srv, "POST", "/v1/predict", {"x": X[0].tolist()}
            )
            assert status == 200

    asyncio.run(main())


def test_graceful_stop_drains_in_flight_requests():
    config = cfg(num_samples=16, max_batch_size=1)

    async def main():
        engine = ServingEngine(_model(), config)
        server = ServingServer(engine)
        await server.start()
        inflight = asyncio.ensure_future(
            _request(server, "POST", "/v1/predict", {"x": X[0].tolist()})
        )
        await asyncio.sleep(0.02)  # the request is past its request line
        await server.stop(drain=True)
        status, resp = await inflight
        assert status == 200
        assert resp["label"] in range(5)
        assert not server.running
        assert not engine.running  # server-started engine is server-stopped
        # listener really closed
        with pytest.raises(OSError):
            await asyncio.open_connection(server.host, server.port)

    asyncio.run(main())


def test_server_leaves_caller_owned_engine_running():
    async def main():
        async with ServingEngine(_model(), cfg(num_samples=1)) as engine:
            async with ServingServer(engine) as srv:
                status, _ = await _request(
                    srv, "POST", "/v1/predict", {"x": X[0].tolist()}
                )
                assert status == 200
            assert engine.running  # not ours to stop
            await engine.submit(X[1])  # still serving directly

    asyncio.run(main())


def test_loadgen_trace_replay_and_reports():
    # a trace schedule is replayed exactly; the report accounts for every
    # scheduled arrival
    async def main():
        async with ServingServer(ServingEngine(_model(), cfg(num_samples=1))) as srv:
            gen = LoadGenerator(
                srv.host,
                srv.port,
                process="trace",
                schedule=[0.0, 0.0, 0.01, 0.02, 0.05],
            )
            report = await gen.run()
            assert report.scheduled == 5
            assert report.ok + report.failed + report.dropped == 5
            assert report.failed == 0
            assert len(gen.latencies) == report.ok

    asyncio.run(main())


def test_loadgen_keep_alive_reuses_connections():
    # keep-alive (the default) pays one dial per concurrency slot; the
    # pre-reuse mode pays one per request — both serve every arrival
    schedule = [i * 0.005 for i in range(10)]

    async def drive(keep_alive):
        async with ServingServer(ServingEngine(_model(), cfg(num_samples=1))) as srv:
            gen = LoadGenerator(
                srv.host,
                srv.port,
                process="trace",
                schedule=schedule,
                keep_alive=keep_alive,
            )
            return await gen.run()

    pooled = asyncio.run(drive(True))
    churned = asyncio.run(drive(False))
    for report in (pooled, churned):
        assert report.failed == 0
        assert report.ok == report.scheduled == len(schedule)
    assert pooled.keep_alive and not churned.keep_alive
    # +1: the health probe that discovers input_shape dials too, and in
    # keep-alive mode its connection is then reused for the predicts
    assert churned.connections_opened == churned.sent + 1
    assert pooled.connections_opened < churned.connections_opened
    assert pooled.connections_opened <= len(schedule)


def test_loadgen_trace_capture_replay_round_trip(tmp_path):
    # capture a Poisson run's schedule, replay it from the file: the
    # replayed run fires the identical offsets (bit-for-bit floats)
    from repro.serving import load_trace

    async def main():
        async with ServingServer(ServingEngine(_model(), cfg(num_samples=1))) as srv:
            recorded = LoadGenerator(
                srv.host, srv.port, rate=200.0, duration=0.1, seed=3
            )
            report = await recorded.run()
            trace_file = report.save_trace(tmp_path / "arrivals.json")
            replayed = LoadGenerator(
                srv.host, srv.port, process="trace", schedule=load_trace(trace_file)
            )
            replay_report = await replayed.run()
            assert replayed.schedule == recorded.schedule
            assert replay_report.scheduled == report.scheduled
            assert replay_report.failed == 0
            # the replayed report snapshots the same schedule it ran
            assert replay_report.schedule == report.schedule

    asyncio.run(main())
