"""Fleet layer: fault plans, autoscaler policy, supervision, swaps, scaling.

Unit tests drive the pure pieces (:class:`FaultPlan` consume-once
semantics, :meth:`Autoscaler.decide` hysteresis) without any processes;
integration tests run real supervised process fleets — kill workers and
watch the supervisor restore K, scale the pool up and down with
drain-before-retire, and roll a live server onto a new model generation
(weights *and shapes* changed) with zero failed requests.  All tests run
on any core count: one core merely time-slices the workers.

The adversarial kill-schedule runs (a worker dying every ~N batches under
sustained traffic, with bit-identity asserted against a thread oracle)
live in ``test_chaos.py`` behind the ``chaos`` marker.
"""

from __future__ import annotations

import asyncio
import time
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.core import MultiExitBayesNet, MultiExitConfig
from repro.nn.architectures import lenet5_spec
from repro.serving import (
    Autoscaler,
    FaultInjection,
    FaultPlan,
    FleetConfig,
    FleetSignals,
    ServingConfig,
    ServingEngine,
)


def cfg(**kwargs):
    """Shorthand: flat serving kwargs -> a validated ServingConfig."""
    return ServingConfig.from_kwargs(**kwargs)


NUM_SAMPLES = 6

X = np.random.default_rng(7).normal(size=(8, 1, 12, 12))


def _model(mcd=1, seed=0, width=0.5):
    return MultiExitBayesNet(
        lenet5_spec(input_shape=(1, 12, 12), num_classes=5, width_multiplier=width),
        MultiExitConfig(num_exits=2, mcd_layers_per_exit=mcd, seed=seed),
    )


def _next_victim(server: ServingEngine):
    """The worker handle that will serve the next batch (checkout order)."""
    return server._pool._checkout._queue[0]


async def _wait_until(predicate, timeout=30.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError("condition not reached before timeout")
        await asyncio.sleep(interval)


# --------------------------------------------------------------------------- #
# FaultPlan / FaultInjection (pure)
# --------------------------------------------------------------------------- #
def test_fault_injection_validates_point_and_seq():
    with pytest.raises(ValueError, match="fault point"):
        FaultInjection(0, "mid_gemm")
    with pytest.raises(ValueError, match="non-negative"):
        FaultInjection(-1, "pre_doorbell")


def test_fault_plan_consumes_each_injection_exactly_once():
    plan = FaultPlan([(3, "pre_doorbell"), (3, "mid_compute"), (7, "post_response")])
    assert len(plan) == 3
    assert plan.take(0) is None
    # two injections for seq 3 fire on consecutive attempts, in order —
    # this is how the retry-on-sibling double-kill edge is scheduled
    assert plan.take(3) == "pre_doorbell"
    assert plan.take(3) == "mid_compute"
    assert plan.take(3) is None
    assert plan.take(7) == "post_response"
    assert len(plan) == 0
    assert plan.pending == ()
    assert [spec.seq for spec in plan.fired] == [3, 3, 7]


def test_fault_plan_accepts_injection_objects():
    plan = FaultPlan([FaultInjection(1, "mid_compute")])
    assert plan.take(1) == "mid_compute"


def test_fault_plan_requires_process_backend():
    with pytest.raises(ValueError, match="process"):
        ServingEngine(_model(), cfg(fault_plan=FaultPlan([(0, "pre_doorbell")])))


# --------------------------------------------------------------------------- #
# FleetConfig / Autoscaler (pure)
# --------------------------------------------------------------------------- #
def test_fleet_config_resolves_bounds_from_initial_workers():
    assert FleetConfig().resolve_bounds(3) == (3, 3)
    assert FleetConfig(min_workers=1, max_workers=4).resolve_bounds(2) == (1, 4)
    assert not FleetConfig().autoscaling
    assert FleetConfig(max_workers=4).autoscaling
    with pytest.raises(ValueError, match="bounds"):
        FleetConfig(min_workers=4, max_workers=2).resolve_bounds(3)
    with pytest.raises(ValueError, match="bounds"):
        FleetConfig(min_workers=0).resolve_bounds(3)


def test_autoscaler_grows_on_backlog_and_clamps_at_max():
    scaler = Autoscaler(
        FleetConfig(min_workers=1, max_workers=3, scale_up_backlog=4.0), workers=1
    )
    # backlog below threshold: hold
    assert scaler.decide(FleetSignals(queue_depth=3, current_workers=1)) == 1
    # backlog over 4 per worker: grow one step at a time
    assert scaler.decide(FleetSignals(queue_depth=9, current_workers=1)) == 2
    assert scaler.decide(FleetSignals(queue_depth=9, current_workers=2)) == 3
    # never past max
    assert scaler.decide(FleetSignals(queue_depth=99, current_workers=3)) == 3


def test_autoscaler_grows_on_shed_regardless_of_backlog():
    scaler = Autoscaler(FleetConfig(min_workers=1, max_workers=4), workers=1)
    assert (
        scaler.decide(FleetSignals(queue_depth=0, current_workers=1, shed_delta=2))
        == 2
    )
    off = Autoscaler(
        FleetConfig(min_workers=1, max_workers=4, scale_up_on_shed=False), workers=1
    )
    assert (
        off.decide(FleetSignals(queue_depth=0, current_workers=1, shed_delta=2)) == 1
    )


def test_autoscaler_shrinks_only_after_idle_streak():
    scaler = Autoscaler(
        FleetConfig(min_workers=1, max_workers=3, scale_down_idle_evals=3), workers=3
    )
    idle3 = FleetSignals(queue_depth=0, current_workers=3)
    assert scaler.decide(idle3) == 3
    assert scaler.decide(idle3) == 3
    assert scaler.decide(idle3) == 2  # third consecutive idle eval: shrink one
    # pressure resets the streak
    assert scaler.decide(FleetSignals(queue_depth=1, current_workers=2)) == 2
    idle2 = FleetSignals(queue_depth=0, current_workers=2)
    assert scaler.decide(idle2) == 2
    assert scaler.decide(idle2) == 2
    assert scaler.decide(idle2) == 1
    # never below min
    idle1 = FleetSignals(queue_depth=0, current_workers=1)
    assert scaler.decide(idle1) == 1
    assert scaler.decide(idle1) == 1
    assert scaler.decide(idle1) == 1


# --------------------------------------------------------------------------- #
# supervisor: respawn restores K (process backend)
# --------------------------------------------------------------------------- #
@pytest.mark.timeout(120)
def test_supervisor_respawns_killed_worker_and_restores_k():
    model = _model()

    async def main():
        async with ServingEngine(
            model,
            cfg(
                num_samples=4,
                workers=2,
                worker_backend="process",
                fleet=FleetConfig(health_interval=0.02),
            ),
        ) as server:
            await server.submit(X[0])
            victim = _next_victim(server)
            victim.process.kill()
            victim.process.join(10.0)
            # the victim died *idle* — only the liveness scan can find it
            await _wait_until(lambda: server.stats().workers_respawned >= 1)
            await _wait_until(lambda: server.stats().current_workers == 2)
            results = await server.submit_many(X)
            return results, server.stats()

    results, stats = asyncio.run(main())
    assert len(results) == len(X)
    assert stats.workers_respawned >= 1
    assert stats.worker_crashes >= 1
    assert stats.current_workers == 2


@pytest.mark.timeout(120)
def test_supervised_total_death_recovers_instead_of_failing():
    """With K=1 supervised, killing the only worker must not fail submits.

    Unsupervised, this exact sequence raises ``WorkerCrashed`` (pinned by
    ``test_all_workers_dead_raises_worker_crashed``); under a supervisor
    the batch parks until the respawn lands and then completes — and the
    respawned worker's response is bit-identical to an uninterrupted run,
    because the batch seq (not the worker) seeds the RNG context.
    """

    async def serve(kill: bool):
        async with ServingEngine(
            _model(),
            cfg(
                num_samples=NUM_SAMPLES,
                workers=1,
                worker_backend="process",
                fleet=FleetConfig(health_interval=0.02),
            ),
        ) as server:
            first = await server.submit(X[0])
            if kill:
                victim = _next_victim(server)
                victim.process.kill()
                victim.process.join(10.0)
            second = await server.submit(X[1])
            return first, second, server.stats()

    async def main():
        return await serve(kill=True), await serve(kill=False)

    (f_kill, s_kill, stats_kill), (f_ok, s_ok, _) = asyncio.run(main())
    np.testing.assert_array_equal(f_kill.probs, f_ok.probs)
    np.testing.assert_array_equal(s_kill.probs, s_ok.probs)
    assert stats_kill.worker_crashes >= 1
    assert stats_kill.workers_respawned >= 1


# --------------------------------------------------------------------------- #
# manual scaling: grow and drain-shrink (both backends)
# --------------------------------------------------------------------------- #
@pytest.mark.timeout(120)
@pytest.mark.parametrize("backend", ["thread", "process"])
def test_scale_to_grows_and_drains_back(backend):
    model = _model()

    async def main():
        async with ServingEngine(
            model, cfg(num_samples=4, workers=1, worker_backend=backend)
        ) as server:
            await server.submit(X[0])
            await server._pool.scale_to(3)
            assert server.stats().current_workers == 3
            grown = await server.submit_many(X)
            await server._pool.scale_to(1)
            await _wait_until(lambda: server.stats().current_workers == 1)
            shrunk = await server.submit_many(X)
            return grown, shrunk, server.stats()

    grown, shrunk, stats = asyncio.run(main())
    assert len(grown) == len(shrunk) == len(X)
    assert stats.scale_events == 2
    assert stats.current_workers == 1
    assert stats.requests_completed == 2 * len(X) + 1


@pytest.mark.timeout(120)
def test_autoscaler_grows_under_pressure_and_shrinks_when_idle():
    model = _model()
    fleet = FleetConfig(
        min_workers=1,
        max_workers=3,
        scale_interval=0.01,
        scale_up_backlog=0.5,
        scale_down_idle_evals=2,
    )

    async def main():
        async with ServingEngine(
            model,
            cfg(
                num_samples=32,
                workers=1,
                max_batch_size=1,
                max_queue_size=256,
                fleet=fleet,
            ),
        ) as server:
            assert server.supervisor is not None and server.supervisor.running
            # sustained backlog: many singleton batches behind one worker
            flood = [server.submit(X[i % len(X)]) for i in range(96)]
            results = await asyncio.gather(*flood)
            grown_stats = server.stats()
            # traffic stops: the idle streak shrinks the fleet back down
            await _wait_until(lambda: server.stats().current_workers == 1)
            return results, grown_stats, server.stats()

    results, grown_stats, final_stats = asyncio.run(main())
    assert len(results) == 96
    assert grown_stats.scale_events >= 1  # grew under pressure
    assert final_stats.current_workers == 1  # drained back down when idle
    assert final_stats.scale_events >= 2  # ... via at least one shrink event


# --------------------------------------------------------------------------- #
# generation swaps (weights and shapes)
# --------------------------------------------------------------------------- #
@pytest.mark.timeout(120)
@pytest.mark.parametrize("backend", ["thread", "process"])
def test_swap_model_changes_weights_and_shapes_without_downtime(backend):
    """A quiesced swap onto a different-width model serves the new bits.

    The replacement model has a different seed *and* a different hidden
    width (``width_multiplier``), so parameter shapes change — the
    process backend must build a whole new arena generation, not mutate
    the old segment.  Responses after the swap must be bit-identical to a
    server that ran the new model from the start (same seqs ⇒ same spawn
    keys), which also proves no worker kept serving stale weights.
    """

    async def serve_plain(model_factory, seqs):
        async with ServingEngine(
            model_factory(), cfg(num_samples=NUM_SAMPLES, workers=1)
        ) as server:
            return [await server.submit(X[i]) for i in range(seqs)]

    async def main():
        oracle_old = await serve_plain(lambda: _model(seed=0, width=0.5), 8)
        oracle_new = await serve_plain(lambda: _model(seed=3, width=0.75), 8)
        async with ServingEngine(
            _model(seed=0, width=0.5),
            cfg(num_samples=NUM_SAMPLES, workers=2, worker_backend=backend),
        ) as server:
            before = [await server.submit(X[i]) for i in range(4)]
            generation = await server.swap_model(_model(seed=3, width=0.75))
            after = [await server.submit(X[i]) for i in range(4, 8)]
            return before, after, generation, server.stats(), oracle_old, oracle_new

    before, after, generation, stats, oracle_old, oracle_new = asyncio.run(main())
    assert generation == 1
    assert stats.arena_generation == 1
    assert stats.requests_completed == 8
    assert stats.current_workers == 2
    for got, want in zip(before, oracle_old[:4]):
        np.testing.assert_array_equal(got.probs, want.probs)
    for got, want in zip(after, oracle_new[4:]):
        np.testing.assert_array_equal(got.probs, want.probs)


@pytest.mark.timeout(120)
def test_swap_releases_old_arena_segment():
    model = _model()

    async def main():
        async with ServingEngine(
            model, cfg(num_samples=4, workers=2, worker_backend="process")
        ) as server:
            await server.submit(X[0])
            old_segment = server._pool._arena.manifest.segment_name
            await server.swap_model(_model(seed=1))
            new_segment = server._pool._arena.manifest.segment_name
            await server.submit(X[1])
            return old_segment, new_segment

    old_segment, new_segment = asyncio.run(main())
    assert old_segment != new_segment
    for name in (old_segment, new_segment):
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


@pytest.mark.timeout(120)
def test_swap_model_to_live_model_keeps_parameters_shared():
    """Rolling the currently-served model into a new generation is safe.

    ``swap_model(model)`` with the model already being served rebinds the
    same ``Parameter`` objects into the successor arena; releasing the old
    generation must not detach them (the owner would silently stop
    propagating weight updates to the workers).
    """
    model = _model()

    async def oracle_main():
        async with ServingEngine(
            _model(), cfg(num_samples=NUM_SAMPLES, workers=1, max_batch_size=1)
        ) as server:
            return [await server.submit(X[0]) for _ in range(3)]

    oracle = asyncio.run(oracle_main())

    async def main():
        async with ServingEngine(
            model,
            cfg(
                num_samples=NUM_SAMPLES,
                workers=2,
                worker_backend="process",
                max_batch_size=1,
            ),
        ) as server:
            before = await server.submit(X[0])
            generation = await server.swap_model(model)
            still_shared = all(p.is_shared for p in model.parameters())
            after = await server.submit(X[0])
            # owner-side mutations must still land in the live segment
            p0 = next(iter(model.parameters()))
            p0.assign(p0.value * 2.0)
            bumped = await server.submit(X[0])
            return before, after, bumped, generation, still_shared

    before, after, bumped, generation, still_shared = asyncio.run(main())
    assert generation == 1
    assert still_shared, "swap released the live generation's bindings"
    # same model, same batch formation ⇒ the swap itself is bit-invisible
    np.testing.assert_array_equal(before.probs, oracle[0].probs)
    np.testing.assert_array_equal(after.probs, oracle[1].probs)
    # ...and the post-bump response must NOT match the unbumped oracle
    assert not np.array_equal(bumped.probs, oracle[2].probs)
    # the model survives teardown with ordinary private storage
    assert not any(p.is_shared for p in model.parameters())


@pytest.mark.timeout(120)
def test_swap_model_rejects_input_shape_change():
    model = _model()

    async def main():
        async with ServingEngine(model, cfg(num_samples=4, workers=1)) as server:
            wrong = MultiExitBayesNet(
                lenet5_spec(
                    input_shape=(1, 16, 16), num_classes=5, width_multiplier=0.5
                ),
                MultiExitConfig(num_exits=2, mcd_layers_per_exit=1, seed=0),
            )
            with pytest.raises(ValueError, match="input shape"):
                await server.swap_model(wrong)
            # the server is untouched and keeps serving
            return await server.submit(X[0])

    result = asyncio.run(main())
    assert result.probs.shape == (5,)
