"""Tests for the synthetic dataset generators and the data loader."""

import numpy as np
import pytest

from repro.datasets import (
    DataLoader,
    DatasetSplit,
    SyntheticImageDataset,
    cifar100_like,
    cifar10_like,
    mnist_like,
    svhn_like,
)


class TestSyntheticDataset:
    def test_shapes_and_sizes(self):
        ds = SyntheticImageDataset(
            "t", (3, 8, 8), 4, train_size=40, test_size=10, seed=0
        )
        assert ds.train.x.shape == (40, 3, 8, 8)
        assert ds.test.x.shape == (10, 3, 8, 8)
        assert ds.train.y.shape == (40,)

    def test_labels_in_range(self):
        ds = SyntheticImageDataset(
            "t", (1, 8, 8), 6, train_size=60, test_size=20, seed=1
        )
        assert ds.train.y.min() >= 0 and ds.train.y.max() < 6

    def test_deterministic_given_seed(self):
        a = SyntheticImageDataset(
            "t", (1, 8, 8), 3, train_size=20, test_size=10, seed=7
        )
        b = SyntheticImageDataset(
            "t", (1, 8, 8), 3, train_size=20, test_size=10, seed=7
        )
        np.testing.assert_allclose(a.train.x, b.train.x)
        np.testing.assert_array_equal(a.train.y, b.train.y)

    def test_different_seeds_differ(self):
        a = SyntheticImageDataset(
            "t", (1, 8, 8), 3, train_size=20, test_size=10, seed=1
        )
        b = SyntheticImageDataset(
            "t", (1, 8, 8), 3, train_size=20, test_size=10, seed=2
        )
        assert not np.allclose(a.train.x, b.train.x)

    def test_normalisation(self):
        ds = SyntheticImageDataset(
            "t", (3, 8, 8), 4, train_size=200, test_size=50, seed=0
        )
        assert abs(ds.train.x.mean()) < 0.1
        assert abs(ds.train.x.std() - 1.0) < 0.1

    def test_task_is_learnable(self):
        """Same-class samples must be closer to their prototype than to others."""
        ds = SyntheticImageDataset(
            "t", (1, 10, 10), 3, train_size=90, test_size=30, noise_level=0.3, seed=0
        )
        x, y = ds.train.x, ds.train.y
        centroids = np.stack([x[y == c].mean(axis=0) for c in range(3)])
        correct = 0
        for xi, yi in zip(x, y):
            dists = [np.linalg.norm(xi - c) for c in centroids]
            correct += int(np.argmin(dists) == yi)
        assert correct / len(y) > 0.7

    def test_shifted_test_set_is_shifted(self):
        ds = SyntheticImageDataset(
            "t", (1, 8, 8), 3, train_size=20, test_size=20, seed=0
        )
        shifted = ds.shifted_test_set(noise_multiplier=2.0, intensity_shift=1.0)
        assert shifted.x.shape == ds.test.x.shape
        assert shifted.x.mean() > ds.test.x.mean() + 0.5
        np.testing.assert_array_equal(shifted.y, ds.test.y)

    def test_subset(self):
        ds = SyntheticImageDataset(
            "t", (1, 8, 8), 3, train_size=20, test_size=10, seed=0
        )
        sub = ds.train.subset(5)
        assert len(sub) == 5
        with pytest.raises(ValueError):
            ds.train.subset(0)

    def test_describe(self):
        ds = mnist_like(train_size=16, test_size=8)
        meta = ds.describe()
        assert meta["name"] == "mnist_like"
        assert meta["num_classes"] == 10

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SyntheticImageDataset("t", (1, 8, 8), 1, train_size=10, test_size=5)
        with pytest.raises(ValueError):
            SyntheticImageDataset("t", (1, 8, 8), 3, train_size=0, test_size=5)
        with pytest.raises(ValueError):
            DatasetSplit(np.zeros((3, 1)), np.zeros(2))

    def test_factory_shapes(self):
        assert mnist_like(train_size=4, test_size=2).input_shape == (1, 28, 28)
        assert cifar10_like(train_size=4, test_size=2).input_shape == (3, 32, 32)
        assert svhn_like(train_size=4, test_size=2).input_shape == (3, 32, 32)
        ds = cifar100_like(train_size=4, test_size=2, num_classes=20)
        assert ds.num_classes == 20


class TestDataLoader:
    def _split(self, n=20):
        return DatasetSplit(np.arange(n)[:, None].astype(float), np.arange(n))

    def test_batches_cover_dataset(self):
        loader = DataLoader(self._split(), batch_size=6, shuffle=True, seed=0)
        seen = np.concatenate([y for _, y in loader])
        assert sorted(seen.tolist()) == list(range(20))

    def test_len(self):
        assert len(DataLoader(self._split(20), batch_size=6)) == 4
        assert len(DataLoader(self._split(20), batch_size=6, drop_last=True)) == 3

    def test_drop_last(self):
        loader = DataLoader(
            self._split(20), batch_size=6, drop_last=True, shuffle=False
        )
        sizes = [len(x) for x, _ in loader]
        assert sizes == [6, 6, 6]

    def test_no_shuffle_preserves_order(self):
        loader = DataLoader(self._split(10), batch_size=5, shuffle=False)
        first_batch = next(iter(loader))[1]
        np.testing.assert_array_equal(first_batch, np.arange(5))

    def test_shuffle_changes_between_epochs(self):
        loader = DataLoader(self._split(50), batch_size=50, shuffle=True, seed=0)
        first = next(iter(loader))[1].copy()
        second = next(iter(loader))[1].copy()
        assert not np.array_equal(first, second)

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            DataLoader(self._split(), batch_size=0)
