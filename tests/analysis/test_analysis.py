"""Tests for the table formatter and the experiment runners."""

import pytest

from repro.analysis import (
    Table1Settings,
    build_bayes_lenet_accelerator,
    format_rows,
    format_table,
    run_figure5_latency,
    run_figure5_resources,
    run_flops_reduction,
    run_table1,
    run_table2,
    run_table3,
)


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [30, 0.001]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_format_rows_selects_columns(self):
        rows = [{"x": 1, "y": 2, "z": 3}]
        text = format_rows(rows, ["x", "z"])
        assert "y" not in text.splitlines()[0]

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_scientific_notation_for_small_values(self):
        assert "e-06" in format_table(["v"], [[1.5e-6]])


class TestTable2And3:
    @pytest.fixture(scope="class")
    def accel(self):
        # small model keeps this fast; the default (full LeNet) is exercised
        # by the benchmark suite
        return build_bayes_lenet_accelerator(width_multiplier=0.5, reuse_factor=32)

    def test_table2_rows(self, accel):
        rows = run_table2(accel)
        names = [r["name"] for r in rows]
        assert "Our Work" in names and "CPU" in names and "TPDS'22" in names
        assert len(rows) == 7

    def test_table2_our_work_best_energy(self, accel):
        rows = run_table2(accel)
        ours = [r for r in rows if r["name"] == "Our Work"][0]
        others = [r for r in rows if r["name"] != "Our Work"]
        assert all(ours["energy_per_image_j"] < r["energy_per_image_j"] for r in others)

    def test_table2_cpu_gpu_much_worse(self, accel):
        rows = {r["name"]: r for r in run_table2(accel)}
        ours = rows["Our Work"]["energy_per_image_j"]
        assert rows["CPU"]["energy_per_image_j"] / ours > 10
        assert rows["GPU"]["energy_per_image_j"] / ours > 10

    def test_table3_percentages(self, accel):
        result = run_table3(accel)
        pct = result["percentages"]
        assert sum(pct.values()) == pytest.approx(1.0)
        # dynamic power dominates, as in the paper (72% dynamic)
        assert 1.0 - pct["static"] > 0.5
        # logic&signal and IO are the two largest dynamic components
        dynamic_parts = {k: v for k, v in pct.items() if k != "static"}
        top_two = sorted(dynamic_parts, key=dynamic_parts.get, reverse=True)[:2]
        assert set(top_two) == {"logic_signal", "io"}

    def test_table3_report_attached(self, accel):
        result = run_table3(accel)
        assert result["report"]["device"] == "XCKU115"


class TestFigure5:
    def test_resources_trends(self):
        rows = run_figure5_resources(
            mcd_layer_counts=(1, 3, 5), models=("bayes_lenet5",), width_multiplier=0.5
        )
        assert len(rows) == 3
        lut = [r["lut"] for r in rows]
        ff = [r["ff"] for r in rows]
        bram = [r["bram_18k"] for r in rows]
        assert lut == sorted(lut) and lut[0] < lut[-1]
        assert ff == sorted(ff) and ff[0] < ff[-1]
        assert len(set(bram)) == 1  # BRAM flat: MCD layers use no BRAM

    def test_latency_trends(self):
        rows = run_figure5_latency(
            mc_sample_counts=(1, 3, 5), models=("bayes_lenet5",), width_multiplier=0.5
        )
        unopt = [r["latency_ms"] for r in rows if r["mapping"] == "unoptimized"]
        spatial = [r["latency_ms"] for r in rows if r["mapping"] == "spatial"]
        assert unopt == sorted(unopt) and unopt[-1] > unopt[0]
        assert max(spatial) - min(spatial) < 1e-9  # flat under spatial mapping
        assert all(s <= u + 1e-12 for s, u in zip(spatial, unopt))

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError):
            run_figure5_resources(models=("bayes_alexnet",))


class TestFlopsReductionSweep:
    def test_rows_and_monotonicity(self):
        rows = run_flops_reduction(
            alphas=(0.1,), sample_counts=(2, 4, 8), exit_counts=(1, 2)
        )
        assert all(r["reduction_rate"] >= 1.0 for r in rows)
        by_exits = {}
        for r in rows:
            by_exits.setdefault(r["num_samples"], {})[r["num_exits"]] = r[
                "reduction_rate"
            ]
        for rates in by_exits.values():
            if 1 in rates and 2 in rates:
                assert rates[2] >= rates[1]

    def test_skips_exits_exceeding_samples(self):
        rows = run_flops_reduction(
            alphas=(0.1,), sample_counts=(2,), exit_counts=(1, 4)
        )
        assert all(r["num_exits"] <= r["num_samples"] for r in rows)


class TestTable1Small:
    """A miniature Table I run: tiny dataset, one epoch, one architecture."""

    @pytest.fixture(scope="class")
    def results(self):
        from repro.nn.architectures import lenet5_spec

        settings = Table1Settings(
            train_size=96,
            test_size=64,
            num_classes=5,
            image_size=12,
            epochs=2,
            num_mc_samples=4,
            dropout_rates=(0.25,),
            confidence_thresholds=(0.8,),
            architectures={
                "lenet5": lambda width_multiplier=1.0: lenet5_spec(
                    input_shape=(3, 12, 12),
                    num_classes=5,
                    width_multiplier=0.5 * width_multiplier,
                )
            },
        )
        return run_table1(settings)

    def test_all_variants_present(self, results):
        assert set(results["lenet5"]) == {"SE", "MCD", "ME", "MCD+ME"}

    def test_entries_have_metrics(self, results):
        for variant in ("SE", "MCD", "ME", "MCD+ME"):
            entry = results["lenet5"][variant]["acc_opt"]
            assert 0.0 <= entry["accuracy"] <= 1.0
            assert entry["ece"] >= 0.0
            assert entry["relative_flops"] > 0.0

    def test_se_reference_flops_is_one(self, results):
        assert results["lenet5"]["SE"]["acc_opt"]["relative_flops"] == pytest.approx(
            1.0
        )

    def test_multi_exit_flops_near_se(self, results):
        """ME / MCD+ME forward cost within a few percent of SE (Table I shape)."""
        for variant in ("ME", "MCD+ME"):
            entry = results["lenet5"][variant]["acc_opt"]
            assert entry["relative_flops"] < 1.6

    def test_ece_opt_no_worse_than_acc_opt(self, results):
        for variant in ("ME", "MCD+ME"):
            block = results["lenet5"][variant]
            assert block["ece_opt"]["ece"] <= block["acc_opt"]["ece"] + 1e-12

    def test_meta_recorded(self, results):
        assert results["_meta"]["dataset"]["num_classes"] == 5
