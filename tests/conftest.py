"""Shared fixtures for the test suite.

Fixtures deliberately build *small* networks and datasets (tiny images, few
channels) so the full suite stays fast while still exercising every code
path of the library.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MultiExitBayesNet, MultiExitConfig
from repro.datasets import SyntheticImageDataset
from repro.nn.architectures import lenet5_spec, resnet_spec, vgg_spec


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0)


@pytest.fixture
def tiny_images(rng) -> np.ndarray:
    """A small batch of 1-channel 8x8 images."""
    return rng.normal(size=(4, 1, 8, 8))


@pytest.fixture
def tiny_rgb_images(rng) -> np.ndarray:
    """A small batch of 3-channel 8x8 images."""
    return rng.normal(size=(4, 3, 8, 8))


@pytest.fixture
def tiny_dataset() -> SyntheticImageDataset:
    """A small learnable synthetic dataset (5 classes, 12x12 images)."""
    return SyntheticImageDataset(
        "tiny",
        input_shape=(1, 12, 12),
        num_classes=5,
        train_size=96,
        test_size=48,
        noise_level=0.4,
        seed=0,
    )


def small_lenet_spec(width_multiplier: float = 1.0):
    """LeNet-5 spec on 12x12 inputs with 5 classes (fast to train)."""
    return lenet5_spec(
        input_shape=(1, 12, 12), num_classes=5, width_multiplier=0.5 * width_multiplier
    )


def small_resnet_spec(width_multiplier: float = 1.0):
    """Two-stage ResNet on 8x8 RGB inputs."""
    return resnet_spec(
        "resnet10",
        input_shape=(3, 8, 8),
        num_classes=4,
        width_multiplier=0.125 * width_multiplier,
        max_stages=2,
    )


def small_vgg_spec(width_multiplier: float = 1.0):
    """Two-stage VGG-11 on 8x8 RGB inputs."""
    return vgg_spec(
        "vgg11",
        input_shape=(3, 8, 8),
        num_classes=4,
        width_multiplier=0.125 * width_multiplier,
        max_stages=2,
    )


@pytest.fixture
def lenet_spec_small():
    return small_lenet_spec()


@pytest.fixture
def resnet_spec_small():
    return small_resnet_spec()


@pytest.fixture
def vgg_spec_small():
    return small_vgg_spec()


@pytest.fixture
def multi_exit_model(lenet_spec_small) -> MultiExitBayesNet:
    """A 2-exit Bayesian LeNet on 12x12 inputs."""
    return MultiExitBayesNet(
        lenet_spec_small,
        MultiExitConfig(
            num_exits=2,
            mcd_layers_per_exit=1,
            dropout_rate=0.25,
            default_mc_samples=4,
            seed=0,
        ),
    )
