"""The reporting `_meta` merge contract: first timestamp survives, fingerprint lands.

Regression suite for the PR-10 satellite fix: ``reporting.flush()`` used
to overwrite ``_meta.generated_at`` on every merge, so a long-lived
``BENCH_serving.json`` always looked freshly generated and threshold
derivation had no stable hardware key.  Now ``generated_at`` is the
*first* flush into the file, ``updated_at`` tracks the latest, and
``runner_fingerprint`` identifies the hardware class.
"""

from __future__ import annotations

import json

import pytest

from benchmarks import reporting
from repro.experiments.thresholds import fingerprint_from_meta, runner_fingerprint


@pytest.fixture()
def clean_registry():
    """Isolate the module-level results registry around each test."""
    saved = dict(reporting._RESULTS)
    reporting._RESULTS.clear()
    try:
        yield reporting._RESULTS
    finally:
        reporting._RESULTS.clear()
        reporting._RESULTS.update(saved)


def _flush(tmp_path, **metrics):
    for name, values in metrics.items():
        reporting.record(name, **values)
    path = reporting.flush(tmp_path)
    reporting._RESULTS.clear()
    return json.loads(path.read_text(encoding="utf-8"))


def test_generated_at_survives_merges(tmp_path, clean_registry):
    first = _flush(tmp_path, suite_a={"throughput_rps": 1.0})
    second = _flush(tmp_path, suite_b={"throughput_rps": 2.0})
    assert second["_meta"]["generated_at"] == first["_meta"]["generated_at"]
    assert second["_meta"]["updated_at"] >= second["_meta"]["generated_at"]
    # both suites' sections merged into one artifact
    assert second["suite_a"] == {"throughput_rps": 1.0}
    assert second["suite_b"] == {"throughput_rps": 2.0}


def test_meta_carries_runner_fingerprint(tmp_path, clean_registry):
    payload = _flush(tmp_path, suite={"throughput_rps": 1.0})
    assert payload["_meta"]["runner_fingerprint"] == runner_fingerprint()
    assert fingerprint_from_meta(payload["_meta"]) == runner_fingerprint()


def test_corrupt_meta_starts_fresh(tmp_path, clean_registry):
    (tmp_path / reporting.RESULTS_FILENAME).write_text(
        json.dumps({"_meta": "not-a-dict", "old": {"kept": 1}})
    )
    payload = _flush(tmp_path, suite={"throughput_rps": 1.0})
    assert isinstance(payload["_meta"], dict)
    assert payload["_meta"]["generated_at"]
    assert payload["old"] == {"kept": 1}, "other sections still merge"
