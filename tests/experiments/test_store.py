"""ResultsStore: claim/resume/concurrency semantics over sqlite."""

from __future__ import annotations

import sqlite3
import threading

import pytest

from repro.experiments.grid import GridSpec
from repro.experiments.store import ResultsStore


def _store(tmp_path, cells=None):
    store = ResultsStore(tmp_path / "grid.sqlite")
    if cells is None:
        cells = GridSpec(num_samples=(2, 4), replicates=2).cells()
    store.ensure_cells(cells)
    return store, cells


def test_ensure_cells_is_idempotent(tmp_path):
    store, cells = _store(tmp_path)
    assert store.ensure_cells(cells) == 0, "re-init must add nothing"
    counts = store.counts()
    assert counts["pending"] == len(cells)
    # extending the grid adds only the new points
    extra = GridSpec(num_samples=(8,)).cells()
    assert store.ensure_cells(cells + extra) == len(extra)


def test_ensure_cells_never_resets_progress(tmp_path):
    store, cells = _store(tmp_path)
    row = store.claim("runner-a")
    store.mark_done(row.id, {"ok": 1}, "fp")
    store.ensure_cells(cells)
    assert store.counts()["done"] == 1, "init over a half-done store reset work"


def test_claim_transitions_and_drains(tmp_path):
    store, cells = _store(tmp_path)
    seen = set()
    for _ in cells:
        row = store.claim("runner-a")
        assert row.status == "pending", "claim returns the pre-claim row"
        seen.add(row.key)
    assert seen == {cell.key for cell in cells}, "each cell claimed exactly once"
    assert store.claim("runner-a") is None, "drained store must return None"
    assert store.counts()["running"] == len(cells)


def test_done_cells_are_never_reclaimed(tmp_path):
    store, cells = _store(tmp_path)
    row = store.claim("runner-a")
    store.mark_done(row.id, {"throughput_rps": 10.0}, "fp")
    remaining = {cell.key for cell in cells} - {row.key}
    claimed = {store.claim("runner-a").key for _ in remaining}
    assert claimed == remaining
    assert store.claim("runner-a") is None


def test_mark_failed_keeps_error_and_reset_failed_retries(tmp_path):
    store, _ = _store(tmp_path)
    row = store.claim("runner-a")
    store.mark_failed(row.id, "ValueError: boom")
    failed = store.cells("failed")
    assert [r.key for r in failed] == [row.key]
    assert "boom" in failed[0].error
    assert store.reset_failed() == 1
    retry = store.claim("runner-b")
    assert retry.key == row.key
    assert retry.error is None


def test_reset_running_recovers_sigkilled_claims(tmp_path):
    """A runner that died mid-cell leaves `running` rows; reset frees them."""
    store, cells = _store(tmp_path)
    dead = store.claim("runner-dead")
    survivor = store.claim("runner-live")
    assert store.reset_running(claimed_by="runner-dead") == 1
    assert store.counts()["running"] == 1, "the live claim must survive"
    reclaimed = store.claim("runner-live")
    assert reclaimed.key == dead.key
    assert survivor.key != reclaimed.key


def test_reset_running_older_than_spares_fresh_claims(tmp_path):
    store, _ = _store(tmp_path)
    store.claim("runner-a")
    assert store.reset_running(older_than=3600.0) == 0, "fresh claim is not stale"
    assert store.reset_running(older_than=0.0) == 1


def test_concurrent_runners_never_double_claim(tmp_path):
    """Many threads hammering claim() get disjoint cells (the CAS holds)."""
    cells = GridSpec(num_samples=(2, 3, 4, 5), replicates=4).cells()
    store, _ = _store(tmp_path, cells)
    claimed: list[str] = []
    lock = threading.Lock()

    def worker(runner_id: str) -> None:
        while True:
            row = store.claim(runner_id)
            if row is None:
                return
            with lock:
                claimed.append(row.key)
            store.mark_done(row.id, {"ok": 1}, "fp")

    threads = [
        threading.Thread(target=worker, args=(f"runner-{i}",)) for i in range(8)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    assert len(claimed) == len(cells)
    assert len(set(claimed)) == len(cells), "a cell was claimed twice"
    assert store.counts()["done"] == len(cells)


def test_metrics_rows_accumulate_per_attempt(tmp_path):
    """Reset-and-rerun keeps the old observation for threshold history."""
    store, _ = _store(tmp_path, GridSpec().cells())
    row = store.claim("runner-a")
    store.mark_done(row.id, {"throughput_rps": 10.0}, "fp-one")
    # simulate a deliberate rerun of the same cell on another machine
    with sqlite3.connect(store.path) as conn:
        conn.execute("UPDATE cells SET status = 'pending'")
    row = store.claim("runner-b")
    store.mark_done(row.id, {"throughput_rps": 12.0}, "fp-two")
    results = store.results()
    assert [r["metrics"]["throughput_rps"] for r in results] == [10.0, 12.0]
    assert [r["runner_fingerprint"] for r in results] == ["fp-one", "fp-two"]
    assert results[0]["params"] == results[1]["params"]


def test_counts_and_status_filter_validation(tmp_path):
    store, cells = _store(tmp_path)
    counts = store.counts()
    assert set(counts) == {"pending", "running", "done", "failed"}
    assert counts["pending"] == len(cells)
    with pytest.raises(ValueError, match="unknown status"):
        store.cells("exploded")


def test_store_survives_reopen(tmp_path):
    """The store object holds no connection; reopening sees all state."""
    path = tmp_path / "grid.sqlite"
    store = ResultsStore(path)
    cells = GridSpec().cells()
    store.ensure_cells(cells)
    row = store.claim("runner-a")
    store.mark_done(row.id, {"ok": 1.0}, "fp")
    reopened = ResultsStore(path)
    assert reopened.counts()["done"] == 1
    assert reopened.results()[0]["metrics"] == {"ok": 1.0}
