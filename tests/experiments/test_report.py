"""Reporting layer: markdown/CSV/summary tables over a results store."""

from __future__ import annotations

import csv
import io

from repro.experiments.grid import GridSpec
from repro.experiments.report import csv_table, markdown_table, summary_table
from repro.experiments.runner import ExperimentRunner
from repro.experiments.store import ResultsStore


def _run_grid(tmp_path, execute, replicates=2):
    store = ResultsStore(tmp_path / "grid.sqlite")
    store.ensure_cells(GridSpec(num_samples=(2, 4), replicates=replicates).cells())
    ExperimentRunner(store, runner_id="r", execute=execute).run()
    return store


def test_markdown_table_lists_every_cell(tmp_path):
    store = _run_grid(tmp_path, lambda p, s: {"throughput_rps": 10.0})
    table = markdown_table(store)
    assert table.count("-sequential-r") == 4, "one row per cell"
    assert "| done |" in table


def test_summary_folds_replicates_and_flags_mixed_hashes(tmp_path):
    store = _run_grid(
        tmp_path,
        lambda p, s: {
            "throughput_rps": 100.0 + p["replicate"],
            "bit_hash": f"h{p['num_samples']}-{p['replicate']}",
        },
    )
    table = summary_table(store)
    assert "MIXED(2)" in table, "replicates with differing hashes must be loud"
    assert "100..101" in table


def test_summary_without_bit_hash_renders_blank(tmp_path):
    """Stub executions record no bit_hash; the table must not crash on it."""
    store = _run_grid(tmp_path, lambda p, s: {"throughput_rps": 10.0})
    table = summary_table(store)
    assert "MIXED" not in table
    assert "None" not in table


def test_csv_round_trips_through_reader(tmp_path):
    store = _run_grid(
        tmp_path, lambda p, s: {"throughput_rps": 10.0, "bit_hash": "abc"}
    )
    rows = list(csv.DictReader(io.StringIO(csv_table(store))))
    assert len(rows) == 4
    assert all(row["status"] == "done" for row in rows)
    assert all(row["bit_hash"] == "abc" for row in rows)


def test_empty_store_tables_render(tmp_path):
    store = ResultsStore(tmp_path / "grid.sqlite")
    assert "no results" in summary_table(store)
    assert markdown_table(store)
    assert csv_table(store)
