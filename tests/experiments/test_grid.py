"""Grid expansion: axes, seeds, replicates, digests, round trips."""

from __future__ import annotations

import pytest

from repro.experiments.grid import GRIDS, Cell, GridSpec, cell_digest, smoke_grid


def test_cartesian_expansion_counts():
    spec = GridSpec(
        num_samples=(4, 8),
        batchers=({"max_batch_size": 8}, {"max_batch_size": 32}),
        workers=(1, 2),
        replicates=3,
    )
    cells = spec.cells()
    assert len(cells) == 2 * 2 * 2 * 3
    assert len({cell.key for cell in cells}) == len(cells), "keys must be unique"


def test_replicates_share_seed_and_differ_in_key():
    spec = GridSpec(replicates=3)
    cells = spec.cells()
    assert len(cells) == 3
    assert len({cell.seed for cell in cells}) == 1
    assert len({cell.key for cell in cells}) == 3
    assert [cell.params["replicate"] for cell in cells] == [0, 1, 2]


def test_seed_ignores_execution_axes():
    """Cells differing only in execution axes serve the same seeded model."""
    spec = GridSpec(
        workers=(1, 2),
        worker_backends=("thread", "process"),
        batchers=({"max_batch_size": 8}, {"max_batch_size": 32}),
        traffic=(
            {"process": "sequential", "num_requests": 4},
            {"process": "poisson"},
        ),
    )
    assert len({cell.seed for cell in spec.cells()}) == 1


def test_seed_tracks_model_axes():
    seeds = {cell.seed for cell in GridSpec(num_samples=(2, 4, 8)).cells()}
    assert len(seeds) == 3
    base0 = GridSpec().cells()[0].seed
    base1 = GridSpec(base_seed=1).cells()[0].seed
    assert base0 != base1


def test_expansion_is_deterministic():
    a = GridSpec(num_samples=(4, 8), replicates=2).cells()
    b = GridSpec(num_samples=(4, 8), replicates=2).cells()
    assert [(c.key, c.seed, c.params) for c in a] == [
        (c.key, c.seed, c.params) for c in b
    ]


def test_digest_canonicalises_order_and_tuples():
    assert cell_digest({"a": 1, "b": (1, 2)}) == cell_digest({"b": [1, 2], "a": 1})
    assert cell_digest({"a": 1}) != cell_digest({"a": 2})


def test_json_round_trip():
    spec = GridSpec(
        num_samples=(4, 8),
        exit_policies=(None, 0.7),
        replicates=2,
        base_seed=7,
    )
    rebuilt = GridSpec.from_dict(spec.to_dict())
    assert [c.key for c in rebuilt.cells()] == [c.key for c in spec.cells()]
    with pytest.raises(ValueError, match="unknown GridSpec fields"):
        GridSpec.from_dict({"nope": 1})


@pytest.mark.parametrize(
    "kwargs, message",
    [
        (dict(num_samples=()), "must not be empty"),
        (dict(replicates=0), "replicates"),
        (dict(num_samples=(0,)), "num_samples"),
        (dict(exit_policies=(1.5,)), "exit policies"),
        (dict(worker_backends=("gpu",)), "worker backend"),
        (dict(worker_transports=("carrier-pigeon",)), "worker transport"),
        (dict(traffic=({"process": "avalanche"},)), "traffic process"),
        (dict(batchers=({"max_batch_size": -1},)), "max_batch_size"),
    ],
)
def test_validation_rejects_bad_axes(kwargs, message):
    with pytest.raises(ValueError, match=message):
        GridSpec(**kwargs)


def test_scenario_labels_are_compact_and_distinct():
    cells = GridSpec(num_samples=(4, 8), exit_policies=(None, 0.7)).cells()
    labels = {cell.scenario for cell in cells}
    assert len(labels) == 4
    assert any("-mc-" in label for label in labels)
    assert any("-ee0.7-" in label for label in labels)


def test_named_grids_expand():
    assert set(GRIDS) >= {"smoke", "paper"}
    smoke = smoke_grid().cells()
    assert len(smoke) == 4, "the CI smoke grid is a 2x2"
    assert all(c.params["traffic"]["process"] == "sequential" for c in smoke)
    for name, factory in GRIDS.items():
        assert factory().cells(), f"grid {name} expanded to nothing"


def test_cell_is_storable():
    cell = GridSpec().cells()[0]
    clone = Cell(key=cell.key, seed=cell.seed, params=dict(cell.params))
    assert clone.scenario == cell.scenario
